//! The self-healing contract, end to end: a supervised run hit by the
//! full fault matrix — rank death, exchange timeout, checkpoint-store
//! sabotage (torn write, CRC corruption, ENOSPC), physics blow-up —
//! must detect the fault, roll back to the newest *readable* snapshot,
//! resume, and finish **bit-identical** to a fault-free run of the same
//! configuration and seed. The recovery record must be byte-identical
//! across reruns of the same seed + fault plan.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use foam::checkpoint::{load_latest, load_snapshot};
use foam::supervisor::{supervise_run, RecoveryAction, RunFault, SupervisorConfig};
use foam::{
    try_run_coupled, Backoff, CheckpointStore, CkptConfig, CkptError, CoupledError, CoupledOutput,
    FoamConfig, PhysicsFault, PhysicsFaultKind, RankKill, StoreFaultPlan,
};
use foam::{SupervisorError, SupervisorErrorKind};
use foam_coupler::tags::TAG_SST;
use foam_grid::Field2;
use foam_mpi::{FaultAction, FaultPlan, FaultRule};
use proptest::prelude::*;

/// A fresh scratch directory under the system temp dir (the build has
/// no `tempfile` crate); any debris from a previous run is removed.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foam-heal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny config checkpointing into `dir` every 2 coupling intervals,
/// periodic snapshots only (the supervisor forces `on_error` off
/// anyway — emergency snapshots lie off the failure-free trajectory).
fn ckpt_tiny(seed: u64, dir: &Path) -> FoamConfig {
    let mut cfg = FoamConfig::tiny(seed);
    cfg.ckpt = CkptConfig {
        dir: Some(dir.to_path_buf()),
        interval: 2,
        keep: 3,
        on_error: false,
        fault_plan: None,
    };
    cfg
}

/// Zero-sleep supervisor with room for `n` recoveries.
fn sup(n: u32) -> SupervisorConfig {
    SupervisorConfig {
        max_recoveries: n,
        backoff: Backoff::capped(0.0, 0.0),
    }
}

fn assert_fields_bit_equal(a: &Field2, b: &Field2, what: &str) {
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()), "{what}: shape");
    for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {k} differs ({x} vs {y})"
        );
    }
}

fn assert_outputs_bit_equal(a: &CoupledOutput, b: &CoupledOutput, what: &str) {
    assert_eq!(
        a.mean_sst_series.len(),
        b.mean_sst_series.len(),
        "{what}: series length"
    );
    for (k, (x, y)) in a.mean_sst_series.iter().zip(&b.mean_sst_series).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: series entry {k} differs ({x} vs {y})"
        );
    }
    assert_fields_bit_equal(&a.final_sst, &b.final_sst, what);
    assert_eq!(
        a.ice_fraction.to_bits(),
        b.ice_fraction.to_bits(),
        "{what}: ice fraction"
    );
}

/// A fault plan that delivers the first `hits` messages on `TAG_SST`
/// untouched and silently drops every later one, including
/// retransmissions — the exchange's retry protocol must give up.
fn kill_sst_after(seed: u64, hits: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(TAG_SST),
            action: FaultAction::Delay(0.0),
            max_hits: Some(hits),
            probability: 1.0,
        })
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(TAG_SST),
            action: FaultAction::Drop,
            max_hits: None,
            probability: 1.0,
        })
}

/// The fault-free 2-day reference run, shared across tests (same seed
/// everywhere bit-identity is asserted).
fn reference() -> &'static CoupledOutput {
    static REF: OnceLock<CoupledOutput> = OnceLock::new();
    REF.get_or_init(|| try_run_coupled(&FoamConfig::tiny(91), 2.0).expect("reference run"))
}

/// The acceptance scenario: the snapshot at interval 4 is sabotaged by
/// a torn write, then rank 1 dies at interval 5. The supervisor must
/// classify the death, fall back *past the torn snapshot* to the intact
/// interval-2 one, resume, and land bit-identical to the fault-free
/// run — while the recovery record names both the fault and the
/// rollback point.
#[test]
fn rank_death_plus_torn_checkpoint_recovers_bit_identically() {
    let dir = scratch("torn");
    let mut cfg = ckpt_tiny(91, &dir);
    cfg.ckpt.fault_plan = Some(StoreFaultPlan::new().torn_write(4));
    cfg.runtime.kill_rank = Some(RankKill {
        rank: 1,
        interval: 5,
    });

    let out = supervise_run(&cfg, 2.0, &sup(2)).expect("supervised recovery");
    assert_outputs_bit_equal(&out.output, reference(), "torn+death");

    assert_eq!(out.recovery.rollbacks(), 1);
    let e = &out.recovery.events[0];
    assert!(
        matches!(&e.fault, RunFault::RankDead { rank: 1, .. }),
        "{:?}",
        e.fault
    );
    // The interval-4 snapshot is torn, so the rollback landed on 2 and
    // replayed intervals 2..5.
    assert_eq!(e.action, RecoveryAction::Resumed { from_interval: 2 });
    assert_eq!(e.replayed_intervals, 3);
    // 3 intervals × 6 h = 0.75 simulated days integrated twice.
    assert!((out.recovery.sim_days_replayed - 0.75).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected CRC corruption: the sabotaged snapshot fails its section
/// checksum with a typed error, the loader falls back to the previous
/// retained snapshot, and a supervised run recovering across it is
/// still bit-identical.
#[test]
fn crc_corrupted_checkpoint_is_typed_and_fallen_back_over() {
    let dir = scratch("crc");
    let mut cfg = ckpt_tiny(91, &dir);
    cfg.ckpt.fault_plan = Some(StoreFaultPlan::new().crc_corruption(4));
    cfg.runtime.kill_rank = Some(RankKill {
        rank: 0,
        interval: 5,
    });

    let out = supervise_run(&cfg, 2.0, &sup(2)).expect("supervised recovery");
    assert_outputs_bit_equal(&out.output, reference(), "crc+death");
    assert_eq!(
        out.recovery.events[0].action,
        RecoveryAction::Resumed { from_interval: 2 }
    );

    // The corrupt snapshot is still on disk (retention keeps 3): its
    // damage surfaces as the typed CRC error, and `load_latest` keeps
    // falling back to the newest intact snapshot.
    let store = CheckpointStore::open(dir.as_path()).unwrap();
    let dirs = store.candidates().unwrap();
    let (_, corrupt_dir) = dirs.iter().find(|(i, _)| *i == 4).expect("ckpt-4 retained");
    let err = load_snapshot(corrupt_dir, &cfg).unwrap_err();
    assert!(matches!(err, CkptError::CrcMismatch { .. }), "{err}");
    let newest_intact = load_latest(&store, &cfg).unwrap();
    assert_ne!(newest_intact.interval, 4, "the corrupt snapshot is dead");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An ENOSPC-style write failure abandons the snapshot — never the
/// run: the supervised run completes with zero rollbacks and the
/// faulted interval's snapshot is simply missing.
#[test]
fn write_error_abandons_the_snapshot_not_the_run() {
    let dir = scratch("enospc");
    let mut cfg = ckpt_tiny(91, &dir);
    cfg.ckpt.fault_plan = Some(StoreFaultPlan::new().write_error(2));

    let out = supervise_run(&cfg, 2.0, &sup(2)).expect("run survives ENOSPC");
    assert_outputs_bit_equal(&out.output, reference(), "enospc");
    assert_eq!(out.recovery.rollbacks(), 0);

    let store = CheckpointStore::open(dir.as_path()).unwrap();
    let intervals: Vec<u64> = store
        .candidates()
        .unwrap()
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(!intervals.contains(&2), "interval 2 was abandoned");
    assert!(intervals.contains(&4), "later snapshots committed normally");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lossy exchange past its retry budget is classified as an exchange
/// timeout; the supervisor disarms the comm fault plan (the
/// transient-fault model), resumes from the last snapshot, and the
/// output is bit-identical to the fault-free run.
#[test]
fn exchange_timeout_recovers_bit_identically() {
    let dir = scratch("timeout");
    let mut cfg = ckpt_tiny(91, &dir);
    cfg.runtime.sst_retry_timeout_secs = 0.3;
    cfg.runtime.sst_retry_backoff_secs = 0.02;
    cfg.runtime.sst_retry_max = 2;
    // Initial SST + intervals 0..=3 delivered, so the snapshots at 2
    // and 4 commit on the failure-free trajectory before the drop.
    cfg.runtime.fault_plan = Some(kill_sst_after(7, 5));

    let out = supervise_run(&cfg, 2.0, &sup(2)).expect("supervised recovery");
    assert_outputs_bit_equal(&out.output, reference(), "timeout");
    assert_eq!(out.recovery.rollbacks(), 1);
    assert!(matches!(
        out.recovery.events[0].fault,
        RunFault::ExchangeTimeout { .. }
    ));
    assert_eq!(
        out.recovery.events[0].action,
        RecoveryAction::Resumed { from_interval: 4 }
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovery record of a faulted supervised run is byte-identical
/// across reruns of the same seed + fault plan, and the telemetry
/// report embeds exactly that record as its `recovery` section.
#[test]
fn recovery_report_is_byte_identical_across_reruns() {
    let run = |tag: &str| {
        let dir = scratch(tag);
        let mut cfg = ckpt_tiny(91, &dir);
        cfg.telemetry.enabled = true;
        cfg.ckpt.fault_plan = Some(StoreFaultPlan::new().torn_write(4));
        cfg.runtime.kill_rank = Some(RankKill {
            rank: 1,
            interval: 5,
        });
        let out = supervise_run(&cfg, 2.0, &sup(2)).expect("supervised recovery");
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let a = run("rerun-a");
    let b = run("rerun-b");
    let ja = a.recovery.to_json().to_string_pretty();
    let jb = b.recovery.to_json().to_string_pretty();
    assert_eq!(ja, jb, "recovery record must not depend on wall clock");
    assert!(ja.contains("\"schema\": \"foam-recovery/1\""), "{ja}");
    assert!(ja.contains("\"rank_dead\""), "{ja}");

    // The telemetry report carries the identical section.
    let report = a.output.telemetry.expect("telemetry on");
    let section = report.extra.get("recovery").expect("recovery section");
    assert_eq!(section.to_string_pretty(), ja);
}

/// A run that can never start (the checkpoint root is a regular file)
/// burns through the recovery budget and surfaces the typed terminal
/// error, with every attempt — and the failing rollback loads — on the
/// record.
#[test]
fn unusable_store_exhausts_the_recovery_budget() {
    let dir = scratch("budget");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("not-a-directory");
    std::fs::write(&file, b"occupied").unwrap();
    let mut cfg = FoamConfig::tiny(91);
    cfg.ckpt = CkptConfig {
        dir: Some(file),
        interval: 2,
        keep: 2,
        on_error: false,
        fault_plan: None,
    };

    let err: SupervisorError = supervise_run(&cfg, 0.5, &sup(2)).unwrap_err();
    assert_eq!(
        err.kind,
        SupervisorErrorKind::BudgetExhausted { recoveries: 2 }
    );
    assert!(matches!(err.last_error, CoupledError::Ckpt(_)));
    assert_eq!(err.recovery.rollbacks(), 2);
    for e in &err.recovery.events {
        assert!(matches!(e.fault, RunFault::CheckpointStore { .. }));
        assert_eq!(e.action, RecoveryAction::Restarted);
        assert!(e.store_error.is_some(), "the rollback load failed too");
    }
    // Two run faults + two failed rollback loads.
    assert_eq!(err.recovery.faults_seen(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Shuffling the fault schedule within the same simulated day — a
    /// rank death and a physics blow-up landing on any intervals of day
    /// 2, in any order, against any rank — must converge to the same
    /// final bits as the fault-free run. The fault positions may only
    /// show in the recovery record.
    #[test]
    fn shuffled_fault_schedules_converge_to_identical_bits(
        kill_interval in 4usize..8,
        rank in 0usize..3,
        pf_interval in 4usize..8,
        nan in any::<bool>(),
    ) {
        let dir = scratch(&format!("shuffle-{kill_interval}-{rank}-{pf_interval}-{nan}"));
        let mut cfg = ckpt_tiny(91, &dir);
        cfg.runtime.kill_rank = Some(RankKill { rank, interval: kill_interval });
        cfg.runtime.physics_fault = Some(PhysicsFault {
            interval: pf_interval,
            kind: if nan { PhysicsFaultKind::Nan } else { PhysicsFaultKind::OutOfRange },
        });

        let out = supervise_run(&cfg, 2.0, &sup(3)).expect("supervised recovery");
        assert_outputs_bit_equal(&out.output, reference(), "shuffled schedule");
        prop_assert_eq!(out.recovery.rollbacks(), 2, "both faults fired: {:?}", out.recovery.events);
        let kinds: Vec<&str> = out.recovery.events.iter().map(|e| e.fault.kind()).collect();
        prop_assert!(kinds.contains(&"rank_dead"), "{kinds:?}");
        prop_assert!(kinds.contains(&"physics_sentinel"), "{kinds:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
