//! Cross-crate integration: the full coupled system and the component
//! interfaces it exercises.

use foam::{run_coupled, CouplingMode, FoamConfig, OceanModel, World};
use foam_grid::constants::SEAWATER_FREEZE_C;
use foam_grid::OverlapGrid;

#[test]
fn two_day_coupled_run_keeps_all_invariants() {
    let cfg = FoamConfig::tiny(21);
    let out = run_coupled(&cfg, 2.0);
    // SST physical everywhere; the clamp is the hard floor.
    let world = World::earthlike();
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world);
    for (k, &sea) in mask.iter().enumerate() {
        if sea {
            let t = out.final_sst.as_slice()[k];
            assert!(
                (SEAWATER_FREEZE_C - 1e-9..45.0).contains(&t),
                "SST out of range at {k}: {t}"
            );
        }
    }
    // The mean SST must not jump unphysically between intervals.
    for w in out.mean_sst_series.windows(2) {
        assert!((w[1] - w[0]).abs() < 1.0, "mean SST jump {:?}", w);
    }
    assert!(out.model_speedup > 100.0, "implausibly slow");
}

#[test]
fn coupled_run_is_reproducible_for_fixed_seed() {
    let cfg = FoamConfig::tiny(33);
    let a = run_coupled(&cfg, 1.0);
    let b = run_coupled(&cfg, 1.0);
    for (x, y) in a.final_sst.as_slice().iter().zip(b.final_sst.as_slice()) {
        assert_eq!(x, y, "same seed must reproduce bit-for-bit");
    }
}

#[test]
fn different_seeds_give_different_weather_but_similar_climate() {
    let a = run_coupled(&FoamConfig::tiny(1), 2.0);
    let b = run_coupled(&FoamConfig::tiny(2), 2.0);
    // Weather diverges…
    let differs = a
        .final_sst
        .as_slice()
        .iter()
        .zip(b.final_sst.as_slice())
        .any(|(x, y)| (x - y).abs() > 1e-12);
    assert!(differs, "different seeds must diverge");
    // …while the climate (mean SST) stays in the same band.
    let ma = a.mean_sst_series.last().unwrap();
    let mb = b.mean_sst_series.last().unwrap();
    assert!((ma - mb).abs() < 1.0, "climates diverged: {ma} vs {mb}");
}

#[test]
fn rank_count_does_not_change_the_answer() {
    // Decomposition invariance: 1, 2 and 3 atmosphere ranks must produce
    // the same trajectory (the transforms reduce deterministically).
    let mut outs = Vec::new();
    for n_atm in [1usize, 2, 3] {
        let mut cfg = FoamConfig::tiny(5);
        cfg.n_atm_ranks = n_atm;
        outs.push(run_coupled(&cfg, 1.0));
    }
    for other in &outs[1..] {
        for (x, y) in outs[0]
            .final_sst
            .as_slice()
            .iter()
            .zip(other.final_sst.as_slice())
        {
            assert!(
                (x - y).abs() < 1e-9,
                "decomposition changed the answer: {x} vs {y}"
            );
        }
    }
}

#[test]
fn sequential_coupling_matches_lagged_climate() {
    let cfg = FoamConfig::tiny(8);
    let lagged = run_coupled(&cfg, 1.5);
    let mut cfg2 = cfg.clone();
    cfg2.coupling = CouplingMode::Sequential;
    let seq = run_coupled(&cfg2, 1.5);
    let a = lagged.mean_sst_series.last().unwrap();
    let b = seq.mean_sst_series.last().unwrap();
    assert!((a - b).abs() < 0.3, "{a} vs {b}");
}

#[test]
fn overlap_grid_conserves_fluxes_at_production_resolution() {
    // The R15 × 128×128 production pairing, full conservation check.
    let world = World::earthlike();
    let atm = foam_grid::AtmGrid::r15();
    let ocn = foam_grid::OceanGrid::foam_default();
    let mask = world.ocean_sea_mask(&ocn);
    let ov = OverlapGrid::build(&atm, &ocn, &mask);
    let (fa, fo) =
        ov.compute_on_overlap(|ka, ko| ((ka % 13) as f64 - 6.0) * 10.0 + ((ko % 7) as f64) * 3.0);
    let ia = ov.integral_atm_sea(&fa);
    let io = ov.integral_ocean(&fo);
    assert!(
        (ia - io).abs() < 1e-8 * ia.abs().max(io.abs()),
        "conservation violated at production resolution: {ia} vs {io}"
    );
    // Every ocean sea cell is covered by the atmosphere.
    let ones = foam_grid::Field2::filled(atm.nlon, atm.nlat, 1.0);
    let cover = ov.atm_to_ocean(&ones);
    for (k, &sea) in mask.iter().enumerate() {
        if sea {
            assert!((cover.as_slice()[k] - 1.0).abs() < 1e-9, "hole at {k}");
        }
    }
}

#[test]
fn work_imbalance_exists_across_atmosphere_ranks() {
    // The paper attributes the ragged coupler entries of Figure 2 to
    // cloud-driven load imbalance; verify the physics work actually
    // varies across ranks.
    let mut cfg = FoamConfig::tiny(13);
    cfg.n_atm_ranks = 2;
    let out = run_coupled(&cfg, 1.0);
    assert_eq!(out.work_per_rank.len(), 2);
    assert!(out.work_per_rank.iter().all(|&w| w > 0));
    assert_ne!(
        out.work_per_rank[0], out.work_per_rank[1],
        "expected load imbalance between latitude bands"
    );
}

#[test]
fn slowdown_factor_buys_the_expected_barotropic_step() {
    // Ablation A1 shape in miniature: the slowed free surface raises the
    // barotropic CFL step by √α (α = 16 → 4×), which is where FOAM's 2-D
    // subsystem savings come from.
    use foam_ocean::barotropic::BarotropicSystem;
    let world = World::earthlike();
    let grid = foam_grid::OceanGrid::mercator(64, 48, 70.0);
    let mask = world.ocean_sea_mask(&grid);
    let slow = BarotropicSystem::new(grid.clone(), mask.clone(), 5000.0, 16.0);
    let fast = BarotropicSystem::new(grid, mask, 5000.0, 1.0);
    let ratio = slow.max_dt() / fast.max_dt();
    assert!((ratio - 4.0).abs() < 1e-9, "√α step ratio {ratio}");
}

#[test]
fn history_file_roundtrips_a_coupled_run() {
    // End-to-end: write monthly SST to a history file during analysis,
    // read it back identically (the dataset-output path of the paper's
    // outlook section).
    let mut cfg = FoamConfig::tiny(44);
    cfg.collect_monthly_sst = false;
    let out = run_coupled(&cfg, 1.0);
    let path = std::env::temp_dir().join(format!("foam_e2e_{}.hist", std::process::id()));
    {
        let mut w = foam::HistoryWriter::create(&path, cfg.ocean.nx, cfg.ocean.ny).unwrap();
        w.write_frame(out.sim_seconds, &out.final_sst).unwrap();
        w.finish().unwrap();
    }
    let mut r = foam::HistoryReader::open(&path).unwrap();
    let frames = r.read_all().unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].1, out.final_sst);
    std::fs::remove_file(path).ok();
}

#[test]
fn ccm2_and_ccm3_coupled_climates_differ() {
    // §6 shape: the physics vintage changes the coupled climate (the
    // tropical hydrological cycle especially) within days.
    let mut cfg2 = FoamConfig::tiny(55);
    cfg2.atm.physics = foam_physics::PhysicsConfig::ccm2();
    let mut cfg3 = FoamConfig::tiny(55);
    cfg3.atm.physics = foam_physics::PhysicsConfig::default();
    let a = run_coupled(&cfg2, 1.0);
    let b = run_coupled(&cfg3, 1.0);
    let differs = a
        .final_sst
        .as_slice()
        .iter()
        .zip(b.final_sst.as_slice())
        .any(|(x, y)| (x - y).abs() > 1e-9);
    assert!(differs, "physics vintage must matter");
}
