//! Property-based tests of the ensemble orchestration's determinism
//! contract: for *any* member set, worker count, and submission order,
//! the work-stealing scheduler fills the same result slots and the
//! aggregate `foam-ensemble/1` JSON report comes out byte-identical.
//!
//! The scheduler property is exercised heavily with synthetic jobs
//! (cheap); the end-to-end property runs the real coupled model at the
//! smallest useful size (one coupling interval per member), so its case
//! count is deliberately low.

use proptest::prelude::*;

use foam::FoamConfig;
use foam_ensemble::{run_ensemble, scheduler, EnsembleSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slot-indexed results are a pure function of the job set: worker
    /// count and submission order are invisible.
    #[test]
    fn scheduler_results_are_independent_of_workers_and_order(
        n in 1usize..24,
        perm_seed in 0u32..1000,
        jitter in prop::collection::vec(0usize..4, 24),
    ) {
        // A deterministic permutation of 0..n as the submission order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = perm_seed as u64;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let run = |workers: usize, order: &[usize]| {
            scheduler::execute(order, n, workers, |job| {
                // Uneven, timing-jittered jobs: force real stealing.
                if jitter[job] == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                (job as u64).wrapping_mul(2654435761) ^ 0x5bd1e995
            })
        };
        let reference = run(1, &(0..n).collect::<Vec<_>>());
        prop_assert_eq!(&run(2, &order), &reference);
        prop_assert_eq!(&run(8, &order), &reference);
    }
}

proptest! {
    // Each case runs 4 real (tiny, one-interval) ensembles; keep the
    // case count low so the suite stays in tier-1 time budget.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// End-to-end: N members through the real coupled model produce a
    /// byte-identical aggregate JSON report for worker counts {1, 2, 8}
    /// and for a shuffled member submission order.
    #[test]
    fn aggregate_json_is_byte_identical_for_any_worker_count(
        n_members in 1usize..=3,
        seed in 1u32..500,
        shuffle in any::<bool>(),
    ) {
        let mk = || EnsembleSpec::seed_sweep(FoamConfig::tiny(seed as u64), 0.25, n_members);

        let reference = {
            let mut s = mk();
            s.workers = 1;
            run_ensemble(&s).unwrap().report.to_json().to_string_pretty()
        };

        for workers in [2usize, 8] {
            let mut s = mk();
            s.workers = workers;
            if shuffle {
                s.members.reverse();
            }
            let json = run_ensemble(&s).unwrap().report.to_json().to_string_pretty();
            prop_assert_eq!(&json, &reference, "workers = {}, shuffled = {}", workers, shuffle);
        }
    }
}
