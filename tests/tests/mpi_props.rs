//! Property-based tests of the foam-mpi collectives: the binomial-tree
//! reductions must agree with a serial fold for *any* rank count and
//! input, `alltoallv` must round-trip arbitrary shapes, and
//! communicator splitting must order ranks exactly by (key, parent
//! rank) — not just for the hand-picked cases of the unit tests.

use foam_mpi::{ReduceOp, Universe};
use proptest::prelude::*;

/// Elements per rank in the reduction tests.
const ELEMS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reductions_agree_with_serial_fold(
        p in 1usize..=8,
        base in prop::collection::vec(-1e3f64..1e3, 8 * ELEMS),
    ) {
        let contrib = |r: usize| base[r * ELEMS..(r + 1) * ELEMS].to_vec();
        let out = Universe::run(p, |comm| {
            let mine = contrib(comm.rank());
            (
                comm.allreduce(&mine, ReduceOp::Sum),
                comm.allreduce(&mine, ReduceOp::Min),
                comm.allreduce(&mine, ReduceOp::Max),
            )
        });
        for k in 0..ELEMS {
            let serial_sum: f64 = (0..p).map(|r| contrib(r)[k]).sum();
            let serial_min = (0..p).map(|r| contrib(r)[k]).fold(f64::INFINITY, f64::min);
            let serial_max = (0..p).map(|r| contrib(r)[k]).fold(f64::NEG_INFINITY, f64::max);
            for (sum, min, max) in &out.results {
                // The tree reduction associates differently from the
                // serial fold; sums match to rounding, min/max exactly.
                prop_assert!(
                    (sum[k] - serial_sum).abs() <= 1e-9 * (1.0 + serial_sum.abs()),
                    "sum[{}] = {} vs serial {}", k, sum[k], serial_sum
                );
                prop_assert_eq!(min[k], serial_min);
                prop_assert_eq!(max[k], serial_max);
            }
        }
        prop_assert!(out.lint.is_clean(), "{}", out.lint);
    }

    #[test]
    fn reduce_delivers_to_the_root_only(
        p in 1usize..=6,
        root_sel in 0usize..6,
        base in prop::collection::vec(-50.0f64..50.0, 6),
    ) {
        let root = root_sel % p;
        let out = Universe::run(p, |comm| {
            let x = base[comm.rank()];
            let r = comm.reduce(&[x], ReduceOp::Sum, root);
            let all = comm.allreduce_scalar(x, ReduceOp::Sum);
            (r, all)
        });
        for (rank, (r, all)) in out.results.iter().enumerate() {
            if rank == root {
                let v = r.as_ref().expect("the root receives the reduction")[0];
                prop_assert!((v - all).abs() <= 1e-9 * (1.0 + all.abs()));
            } else {
                prop_assert!(r.is_none(), "rank {} got a root-only result", rank);
            }
        }
    }

    #[test]
    fn alltoallv_round_trips_arbitrary_shapes(
        p in 1usize..=6,
        lens in prop::collection::vec(0usize..5, 36),
    ) {
        let len = |src: usize, dst: usize| lens[src * 6 + dst];
        let payload = |src: usize, dst: usize| -> Vec<f64> {
            (0..len(src, dst))
                .map(|k| (src * 100 + dst * 10 + k) as f64)
                .collect()
        };
        let out = Universe::run(p, |comm| {
            let me = comm.rank();
            let sends: Vec<Vec<f64>> = (0..p).map(|dst| payload(me, dst)).collect();
            let recvd = comm.alltoallv(sends);
            for (src, buf) in recvd.iter().enumerate() {
                assert_eq!(buf, &payload(src, me), "rank {me} <- rank {src}");
            }
            recvd.iter().map(Vec::len).sum::<usize>()
        });
        for (rank, total) in out.results.iter().enumerate() {
            let expect: usize = (0..p).map(|src| len(src, rank)).sum();
            prop_assert_eq!(*total, expect);
        }
        prop_assert!(out.lint.is_clean(), "{}", out.lint);
    }

    #[test]
    fn split_orders_ranks_by_key_then_parent_rank(
        p in 2usize..=8,
        colors in prop::collection::vec(0i64..3, 8),
        keys in prop::collection::vec(-4i64..4, 8),
    ) {
        let out = Universe::run(p, |comm| {
            let me = comm.rank();
            let sub = comm.split(colors[me], keys[me]).expect("non-negative color");
            // The members of my color, in the order split() must impose:
            // ascending (key, parent rank).
            let mut members: Vec<(i64, usize)> = (0..p)
                .filter(|r| colors[*r] == colors[me])
                .map(|r| (keys[r], r))
                .collect();
            members.sort();
            assert_eq!(sub.size(), members.len());
            let my_pos = members.iter().position(|&(_, r)| r == me).unwrap();
            assert_eq!(sub.rank(), my_pos, "rank {me} misplaced in its sub-comm");
            for (i, &(_, r)) in members.iter().enumerate() {
                assert_eq!(sub.translate(i), r);
            }
            // The new communicator must actually function.
            let total = sub.allreduce_scalar(me as f64, ReduceOp::Sum);
            let expect: f64 = members.iter().map(|&(_, r)| r as f64).sum();
            assert_eq!(total, expect);
            sub.size()
        });
        prop_assert!(out.lint.is_clean(), "{}", out.lint);
        prop_assert!(out.results.iter().all(|&s| s >= 1));
    }
}
