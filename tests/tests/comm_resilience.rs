//! Integration tests of the failure-aware runtime through the whole
//! coupled model: deadline + comm-lint diagnosis of a miscommunicating
//! job, survival of deterministically injected message loss via the
//! driver's retry protocol, and the per-tag statistics the exchange is
//! expected to produce.

use std::time::Duration;

use foam::{run_coupled, CouplingMode, FoamConfig};
use foam_coupler::tags::{TAG_FORCING, TAG_SST};
use foam_mpi::{CommStats, FaultPlan, Universe};

/// Tiny config with the retry protocol tightened for fast tests.
fn resilient_tiny(seed: u64) -> FoamConfig {
    let mut cfg = FoamConfig::tiny(seed);
    cfg.runtime.sst_retry_timeout_secs = 0.2;
    cfg.runtime.sst_retry_backoff_secs = 0.02;
    cfg
}

fn merged_stats(traces: &[foam_mpi::RankTrace]) -> CommStats {
    let mut merged = CommStats::default();
    for t in traces {
        merged.merge(&t.stats);
    }
    merged
}

#[test]
fn lagged_and_sequential_structurally_agree_without_faults() {
    // Same seeds, no faults: the two coupling modes must produce
    // mean-SST series of identical length and (near-)identical final
    // ice state — the lag shifts timing by one interval, nothing else.
    let cfg = FoamConfig::tiny(21);
    let lag = run_coupled(&cfg, 1.5);
    let mut cfg_seq = cfg.clone();
    cfg_seq.coupling = CouplingMode::Sequential;
    let seq = run_coupled(&cfg_seq, 1.5);

    assert_eq!(lag.mean_sst_series.len(), seq.mean_sst_series.len());
    assert_eq!(lag.mean_sst_series.len(), 6); // 4 exchanges/day × 1.5 d
    assert!(
        (lag.ice_fraction - seq.ice_fraction).abs() < 0.02,
        "ice fraction lagged {} vs sequential {}",
        lag.ice_fraction,
        seq.ice_fraction
    );
    assert!(lag.comm_lint.is_clean(), "{}", lag.comm_lint);
    assert!(seq.comm_lint.is_clean(), "{}", seq.comm_lint);
}

#[test]
fn injected_sst_drop_is_survived_by_retry() {
    // Drop the ocean's very first SST (world rank 2 → root, tag SST).
    // The root's deadline trips, it NACKs, the ocean retransmits, and
    // the run completes with a *clean* comm-lint: the loss was injected
    // and fully absorbed.
    let mut cfg = resilient_tiny(22);
    let ocean_world_rank = cfg.n_atm_ranks;
    cfg.runtime.fault_plan = Some(FaultPlan::new(5).drop_first(ocean_world_rank, 0, TAG_SST, 1));

    let out = run_coupled(&cfg, 1.0);

    let sst = merged_stats(&out.traces).tag(TAG_SST);
    assert_eq!(sst.injected_drops, 1, "the drop must actually fire");
    assert_eq!(out.comm_lint.injected_drops, 1);
    assert!(out.comm_lint.is_clean(), "{}", out.comm_lint);
    assert_eq!(out.mean_sst_series.len(), 4);
    assert!(out.final_sst.all_finite());
}

#[test]
fn dropped_forcing_is_recovered_by_forcing_retransmission() {
    // Losing a *forcing* is the harder case: the ocean cannot
    // retransmit what it never got. The stale SST it resends on NACK
    // tells the root which interval is missing, and the root resends
    // that forcing (the ocean recognizes duplicates by index).
    let mut cfg = resilient_tiny(23);
    let ocean_world_rank = cfg.n_atm_ranks;
    cfg.runtime.fault_plan =
        Some(FaultPlan::new(9).drop_first(0, ocean_world_rank, TAG_FORCING, 1));

    let out = run_coupled(&cfg, 1.0);

    assert_eq!(merged_stats(&out.traces).tag(TAG_FORCING).injected_drops, 1);
    assert!(out.comm_lint.is_clean(), "{}", out.comm_lint);
    assert_eq!(out.mean_sst_series.len(), 4);
    assert!(out.final_sst.all_finite());
}

#[test]
fn mismatched_tag_trips_deadline_and_lint_names_the_pair() {
    // The classic MPI deadlock: sender and receiver disagree on the
    // tag. With a deadline the receiver gets a diagnosis instead of a
    // hang, and teardown lint names the leaked (source, tag) pair.
    let out = Universe::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 41, 7i32);
            None
        } else {
            // Let the mismatched message land so the diagnosis sees it.
            std::thread::sleep(Duration::from_millis(20));
            Some(
                comm.recv_deadline::<i32>(0, 42, Duration::from_millis(60))
                    .unwrap_err(),
            )
        }
    });
    let err = out.results[1].clone().expect("rank 1 must time out");
    let msg = err.to_string();
    assert!(msg.contains("deadline expired"), "{msg}");
    assert!(msg.contains("tag 41"), "diagnosis must name the tag: {msg}");
    assert!(!out.lint.is_clean());
    assert_eq!(out.lint.leaked_pairs(), vec![(0, 41)]);
    assert_eq!(out.lint.timed_out_ranks, vec![1]);
}

#[test]
fn coupled_run_counts_traffic_on_the_exchange_tags() {
    // Acceptance check: per-tag byte/message counters come back
    // non-zero for TAG_FORCING and TAG_SST after a short coupled run,
    // attributed to the expected ranks.
    let mut cfg = FoamConfig::tiny(24);
    // Generous timeout: exact counts must not be skewed by spurious
    // retransmissions on a slow machine.
    cfg.runtime.sst_retry_timeout_secs = 30.0;
    let out = run_coupled(&cfg, 1.0);
    let ocean = cfg.n_atm_ranks;

    // The root sends the forcings and receives the SSTs...
    let root = &out.traces[0].stats;
    assert!(root.tag(TAG_FORCING).msgs_sent > 0);
    assert!(root.tag(TAG_FORCING).bytes_sent > 0);
    assert!(root.tag(TAG_SST).msgs_recvd > 0);
    // ...the ocean the reverse...
    let ocn = &out.traces[ocean].stats;
    assert!(ocn.tag(TAG_SST).msgs_sent > 0);
    assert!(ocn.tag(TAG_SST).bytes_sent > 0);
    assert!(ocn.tag(TAG_FORCING).msgs_recvd > 0);
    // ...and the ocean's wait-for-forcing time is accounted per tag.
    assert!(ocn.tag(TAG_FORCING).wait_hist.count() > 0 || ocn.tag(TAG_FORCING).wait_seconds >= 0.0);
    // Non-root atmosphere ranks never touch the exchange tags.
    let other = &out.traces[1].stats;
    assert_eq!(other.tag(TAG_FORCING).msgs_sent, 0);
    assert_eq!(other.tag(TAG_SST).msgs_recvd, 0);
}
