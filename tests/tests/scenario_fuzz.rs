//! Property tests of the scenario front end: for *any* input — valid
//! library files, randomly generated valid scenarios, or random
//! mutations of either — the parser must never panic, and every error
//! must be typed with an in-bounds source span. Random *valid*
//! scenarios must parse, lower, and digest deterministically.

use std::path::PathBuf;

use foam_scenario::{Scenario, ScenarioError};
use proptest::prelude::*;
use proptest::TestRng;

fn library_sources() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../scenarios");
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .expect("scenarios/ exists")
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("toml"))
        .map(|e| std::fs::read_to_string(e.path()).unwrap())
        .collect();
    out.sort();
    assert!(out.len() >= 6);
    out
}

/// The error's span (when it has one) must point inside the source —
/// a diagnostic at line 40 of a 12-line file is a bug.
fn assert_span_in_bounds(src: &str, err: &ScenarioError) {
    let n_lines = src.lines().count().max(1);
    let span = match err {
        ScenarioError::Syntax { span, .. }
        | ScenarioError::DuplicateKey { span, .. }
        | ScenarioError::UnknownSection { span, .. }
        | ScenarioError::UnknownKey { span, .. }
        | ScenarioError::Expected { span, .. }
        | ScenarioError::OutOfRange { span, .. }
        | ScenarioError::Invalid { span, .. } => *span,
        ScenarioError::MissingKey { .. } | ScenarioError::Config(_) => return,
    };
    assert!(
        span.line >= 1 && span.line <= n_lines,
        "span {span:?} outside {n_lines}-line source: {err}"
    );
    assert!(span.col >= 1, "columns are 1-based: {err}");
    let line = src.lines().nth(span.line - 1).unwrap_or("");
    assert!(
        span.col <= line.chars().count() + 2,
        "span {span:?} beyond end of line {:?}: {err}",
        line
    );
}

/// Apply `n` random single-edit mutations (byte tweak, deletion,
/// insertion, line duplication, line swap) to `src`.
fn mutate(src: &str, rng: &mut TestRng, n: usize) -> String {
    let mut text = src.to_string();
    const GLYPHS: &[u8] = b"[]=#\".,_-eE0123456789xyz \n";
    for _ in 0..n {
        if text.is_empty() {
            break;
        }
        match rng.next_range_usize(0, 5) {
            0 => {
                // Overwrite one character with a grammar-relevant glyph.
                let g = GLYPHS[rng.next_range_usize(0, GLYPHS.len())] as char;
                let mut bytes: Vec<char> = text.chars().collect();
                let j = rng.next_range_usize(0, bytes.len());
                bytes[j] = g;
                text = bytes.into_iter().collect();
            }
            1 => {
                // Delete a character.
                let mut bytes: Vec<char> = text.chars().collect();
                let j = rng.next_range_usize(0, bytes.len());
                bytes.remove(j);
                text = bytes.into_iter().collect();
            }
            2 => {
                // Insert a glyph.
                let mut bytes: Vec<char> = text.chars().collect();
                let j = rng.next_range_usize(0, bytes.len() + 1);
                let g = GLYPHS[rng.next_range_usize(0, GLYPHS.len())] as char;
                bytes.insert(j, g);
                text = bytes.into_iter().collect();
            }
            3 => {
                // Duplicate a line (tickles duplicate-key/section checks).
                let lines: Vec<&str> = text.lines().collect();
                if !lines.is_empty() {
                    let j = rng.next_range_usize(0, lines.len());
                    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
                    out.insert(j, lines[j].to_string());
                    text = out.join("\n");
                }
            }
            _ => {
                // Swap two lines (tickles section-ordering assumptions).
                let lines: Vec<&str> = text.lines().collect();
                if lines.len() >= 2 {
                    let a = rng.next_range_usize(0, lines.len());
                    let b = rng.next_range_usize(0, lines.len());
                    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
                    out.swap(a, b);
                    text = out.join("\n");
                }
            }
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random mutations of valid scenario files never panic the
    /// parser, and any rejection is a typed error whose span points
    /// inside the mutated source.
    #[test]
    fn mutated_library_files_fail_closed_with_useful_spans(
        seed in 0u32..1_000_000,
        edits in 1usize..6,
    ) {
        let sources = library_sources();
        let mut rng = TestRng::from_seed(seed as u64);
        let base = &sources[rng.next_range_usize(0, sources.len())];
        let mutated = mutate(base, &mut rng, edits);
        match Scenario::parse(&mutated) {
            // Mutation happened to stay valid: lowering must not panic
            // either (it may still reject via the config backstop).
            Ok(sc) => {
                let _ = sc.config();
                let _ = sc.ensemble();
            }
            Err(e) => {
                // Displayable, typed, in-bounds.
                let _ = e.to_string();
                assert_span_in_bounds(&mutated, &e);
            }
        }
    }

    /// Arbitrary byte soup (not derived from a valid file) also fails
    /// closed.
    #[test]
    fn random_text_never_panics(seed in 0u32..1_000_000, len in 0usize..400) {
        let mut rng = TestRng::from_seed(seed as u64 ^ 0xdead_beef);
        let text: String = (0..len)
            .map(|_| {
                let b = rng.next_range_usize(0x09, 0x7f) as u8;
                b as char
            })
            .collect();
        if let Err(e) = Scenario::parse(&text) {
            assert_span_in_bounds(&text, &e);
        }
    }

    /// Randomly *generated* valid scenarios always parse, lower, and
    /// produce a deterministic content digest (parse twice → same
    /// digest).
    #[test]
    fn generated_valid_scenarios_parse_and_lower(
        seed in 0u32..1000,
        days in 1.0f64..30.0,
        co2_to in 0.5f64..8.0,
        end_day in 5.0f64..300.0,
        solar in 0.85f64..1.15,
        peak in 0.0f64..2.0,
        obliquity in 5.0f64..40.0,
        pick in 0u32..8,
    ) {
        let mut src = format!(
            "[scenario]\nname = \"generated\"\nseed = {seed}\ndays = {days}\n"
        );
        if pick & 1 != 0 {
            src.push_str(&format!(
                "[forcing.co2]\nkind = ramp\nfrom = 1.0\nto = {co2_to}\n\
                 start_day = 0\nend_day = {end_day}\n"
            ));
        }
        if pick & 2 != 0 {
            src.push_str(&format!("[forcing.solar]\nkind = constant\nvalue = {solar}\n"));
        }
        if pick & 4 != 0 {
            src.push_str(&format!(
                "[forcing.aerosol]\nkind = pulse\npeak = {peak}\nonset_day = 3\n\
                 rise_days = 2\ndecay_days = {end_day}\n[model]\nobliquity_deg = {obliquity}\n"
            ));
        }
        let sc = Scenario::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let cfg = sc.config().unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert!(cfg.validate().is_ok());
        let again = Scenario::parse(&src).unwrap();
        prop_assert_eq!(sc.content_digest().unwrap(), again.content_digest().unwrap());
        // The digest folds the forcing content (the canonical-digest
        // satellite): any forced variant differs from the unforced base.
        if pick != 0 {
            let base = Scenario::parse(&format!(
                "[scenario]\nname = \"generated\"\nseed = {seed}\ndays = {days}\n"
            ))
            .unwrap();
            prop_assert_ne!(sc.content_digest().unwrap(), base.content_digest().unwrap());
        }
    }
}
