//! Property-based tests of the telemetry reduction: the cross-rank
//! reduce must be independent of the order ranks are harvested in, and
//! same-rank registry merging must be commutative and associative — the
//! algebra that makes the end-of-run reduction safe to reorder.

use proptest::prelude::*;

use foam_telemetry::{TelemetryRegistry, TelemetryReport};

/// A small closed vocabulary keeps collisions (the interesting case)
/// frequent.
const PHASES: &[&str] = &["atm", "atm/dyn", "atm/phys", "ocean", "coupler"];
const COUNTERS: &[&str] = &["msgs", "bytes", "retries"];

/// Raw material for one registry: phase entries as (vocabulary index,
/// seconds), counter entries as (vocabulary index, amount).
type Spec = (Vec<(usize, f64)>, Vec<(usize, u32)>);

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((0usize..PHASES.len(), 0.0f64..10.0), 0..8),
        prop::collection::vec((0usize..COUNTERS.len(), 0u32..1000), 0..6),
    )
}

fn build(rank: usize, (phases, counters): &Spec) -> TelemetryRegistry {
    let mut r = TelemetryRegistry::new(rank);
    for &(p, s) in phases {
        r.record_phase(PHASES[p], s);
    }
    for &(c, n) in counters {
        r.add(COUNTERS[c], n as u64);
    }
    r.set_wall_seconds(phases.iter().map(|(_, s)| *s).sum());
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation of the per-rank registries reduces to the same
    /// report — down to the serialized JSON text.
    #[test]
    fn reduction_is_order_independent(
        specs in prop::collection::vec(spec(), 1..6),
        perm in prop::collection::vec(0usize..64, 0..16),
    ) {
        let regs: Vec<TelemetryRegistry> = specs
            .iter()
            .enumerate()
            .map(|(rank, s)| build(rank, s))
            .collect();
        let mut shuffled = regs.clone();
        // Deterministic permutation driven by generated swap indices.
        let n = shuffled.len();
        for (i, &j) in perm.iter().enumerate() {
            shuffled.swap(i % n, j % n);
        }
        let a = TelemetryReport::from_ranks(86_400.0, 2.0, regs);
        let b = TelemetryReport::from_ranks(86_400.0, 2.0, shuffled);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    /// Same-rank merging is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(sa in spec(), sb in spec()) {
        let (a, b) = (build(0, &sa), build(0, &sb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.phases(), ba.phases());
        prop_assert_eq!(ab.counters(), ba.counters());
    }

    /// Same-rank merging is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(sa in spec(), sb in spec(), sc in spec()) {
        let (a, b, c) = (build(0, &sa), build(0, &sb), build(0, &sc));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Phase seconds are f64 sums; a different association can differ
        // by rounding, so seconds compare with a tolerance while counts
        // (integers) must match exactly.
        prop_assert_eq!(left.counters(), right.counters());
        let lp = left.phases();
        let rp = right.phases();
        prop_assert_eq!(lp.len(), rp.len());
        for (path, stat) in lp {
            let other = &rp[path];
            prop_assert_eq!(stat.calls, other.calls);
            prop_assert!(
                (stat.seconds - other.seconds).abs() <= 1e-9 * (1.0 + stat.seconds.abs()),
                "{}: {} vs {}", path, stat.seconds, other.seconds
            );
        }
    }
}
