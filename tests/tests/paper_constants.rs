//! The paper states several constants verbatim; these tests pin them so
//! refactors cannot silently drift from the published configuration.

use foam::FoamConfig;
use foam_grid::constants::SEAWATER_FREEZE_C;
use foam_land::hydrology::{BUCKET_CAPACITY, SNOW_CAP};
use foam_land::river::FLOW_VELOCITY;
use foam_land::{ICE_FORMATION_WATER, ICE_STRESS_FACTOR};

#[test]
fn bucket_is_15_cm_and_snow_caps_at_1_m() {
    // "Precipitation is added to a 15 cm soil moisture box…"
    assert_eq!(BUCKET_CAPACITY, 0.15);
    // "Snow depths greater than 1 m liquid water equivalent are also
    //  sent to the river model…"
    assert_eq!(SNOW_CAP, 1.0);
}

#[test]
fn river_velocity_is_0_35_m_per_s() {
    // "…u is an effective flow velocity which is taken as a constant
    //  0.35 meters per second."
    assert_eq!(FLOW_VELOCITY, 0.35);
}

#[test]
fn sea_ice_constants_match_the_paper() {
    // "…a clamp on temperature is imposed by the ocean model at -1.92
    //  degrees Celsius."
    assert_eq!(SEAWATER_FREEZE_C, -1.92);
    // "…the formation of sea ice is treated as a flux of 2 m of water
    //  out of the ocean."
    assert_eq!(ICE_FORMATION_WATER, 2.0);
    // "The stress between the ice and the atmosphere is arbitrarily
    //  divided by 15 before passing to the ocean model."
    assert_eq!(ICE_STRESS_FACTOR, 1.0 / 15.0);
}

#[test]
fn production_configuration_matches_the_paper() {
    let cfg = FoamConfig::paper(16, 0);
    // R15: "40 latitudes … and 48 longitudes", "18 vertical levels",
    // "30 minute time step".
    assert_eq!((cfg.atm.nlon, cfg.atm.nlat), (48, 40));
    assert_eq!(cfg.atm.m_max, 15);
    assert_eq!(cfg.atm.nlev_phys, 18);
    assert_eq!(cfg.atm.dt, 1800.0);
    // "A simple, unstaggered Mercator 128 x 128 point grid", "a sixteen
    // layer version was used".
    assert_eq!((cfg.ocean.nx, cfg.ocean.ny), (128, 128));
    assert_eq!(cfg.ocean.nz, 16);
    // "The ocean time step is six hours, so the ocean is called four
    // times per simulated day."
    assert_eq!(cfg.dt_couple, 21_600.0);
    // "we typically run on 17 or 34 nodes, with 1 or 2 of those
    // processors … dedicated to the ocean".
    assert_eq!(cfg.n_ranks(), 17);
    // Radiation recomputed twice per simulated day.
    assert_eq!(cfg.atm.physics.rad_refresh, 43_200.0);
}

#[test]
fn r15_grid_spacing_matches_the_paper_text() {
    // "an average grid size of 4.5 degrees of latitude and 7.5 degrees
    //  of longitude"
    let g = foam_grid::AtmGrid::r15();
    let dlon = g.dlon().to_degrees();
    assert!((dlon - 7.5).abs() < 1e-9);
    let dlat_mid = (g.lats[20] - g.lats[19]).to_degrees();
    assert!((dlat_mid - 4.5).abs() < 0.5);
    // Ocean: "approximately 1.4 degrees latitude by 2.8 degrees
    // longitude".
    let o = foam_grid::OceanGrid::foam_default();
    assert!((o.dlon().to_degrees() - 2.8125).abs() < 1e-9);
    let dlat_eq = (o.lats[64] - o.lats[63]).to_degrees();
    assert!((1.2..1.8).contains(&dlat_eq));
}
