//! Bit-identity of the zero-churn workspace hot loop (PERFORMANCE.md,
//! DESIGN.md §14): driving the atmosphere + coupler through the
//! pre-allocated workspace path (`step_ws` / `step_rows_ws`, what the
//! coupled driver runs) must produce exactly the bits of the
//! allocate-per-step reference path (`step` / `step_rows`), including
//! across a checkpoint/resume split where the resumed leg starts from
//! freshly constructed workspaces mid-trajectory — exactly what a
//! driver restart does.

use foam::{FoamConfig, World};
use foam_atm::{AtmExport, AtmForcing, AtmModel, AtmState, AtmWorkspace};
use foam_ckpt::Codec;
use foam_coupler::{AtmSurfaceFields, AtmSurfaceView, Coupler, CouplerState};
use foam_grid::Field2;
use foam_mpi::{Comm, Universe};
use foam_ocean::OceanModel;

/// One-rank harness holding everything the driver's inner loop touches.
struct Harness {
    model: AtmModel,
    coupler: Coupler,
    sst: Field2,
    dt: f64,
}

impl Harness {
    fn new(cfg: &FoamConfig, comm: &Comm) -> Self {
        let planet = World::earthlike();
        let model = AtmModel::new(cfg.atm.clone(), comm);
        let sea_mask = OceanModel::effective_sea_mask(&cfg.ocean, &planet);
        let ocn_grid =
            foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
        let coupler = Coupler::new(
            model.grid().clone(),
            ocn_grid,
            sea_mask,
            &planet,
            cfg.atm.physics,
        );
        let ocean = OceanModel::new(cfg.ocean.clone(), &planet);
        let sst = ocean.sst(&ocean.init_state(&planet));
        Harness {
            model,
            coupler,
            sst,
            dt: cfg.atm.dt,
        }
    }

    fn init(&self) -> (AtmState, CouplerState, AtmExport) {
        let state = self.model.init_state();
        let cstate = self.coupler.init_state(&self.sst, AtmModel::t_init);
        let export = self.model.initial_export(&state);
        (state, cstate, export)
    }

    /// The pre-refactor reference step: clone the surface fields, let
    /// the coupler and the atmosphere allocate their outputs fresh.
    fn step_reference(
        &self,
        comm: &Comm,
        state: &mut AtmState,
        cstate: &mut CouplerState,
        export: &mut AtmExport,
    ) {
        let (j0, j1) = self.model.rows();
        let nlon = self.model.grid().nlon;
        let (ka0, ka1) = (j0 * nlon, j1 * nlon);
        let fields = AtmSurfaceFields {
            t_low: export.t_low.clone(),
            q_low: export.q_low.clone(),
            u_low: export.u_low.clone(),
            v_low: export.v_low.clone(),
            precip: export.precip.clone(),
            sw_sfc: export.sw_sfc.clone(),
            lw_down: export.lw_down.clone(),
        };
        let (sfc, runoff) = self
            .coupler
            .step_rows(cstate, &fields, &self.sst, self.dt, ka0, ka1, ka0);
        self.coupler
            .route_rivers(cstate, &runoff[ka0..ka1], self.dt);
        let forcing = AtmForcing {
            fluxes: sfc.fluxes[ka0..ka1].to_vec(),
            t_sfc: sfc.t_sfc[ka0..ka1].to_vec(),
            albedo: sfc.albedo[ka0..ka1].to_vec(),
        };
        *export = self.model.step(state, comm, &forcing);
    }

    /// The workspace step the coupled driver runs (`StepWorkspace`).
    #[allow(clippy::too_many_arguments)]
    fn step_ws(
        &self,
        comm: &Comm,
        state: &mut AtmState,
        cstate: &mut CouplerState,
        export: &mut AtmExport,
        aws: &mut AtmWorkspace,
        cws: &mut foam_coupler::CouplerWorkspace,
        forcing: &mut AtmForcing,
        full_runoff: &mut Vec<f64>,
    ) {
        let (j0, j1) = self.model.rows();
        let nlon = self.model.grid().nlon;
        let (ka0, ka1) = (j0 * nlon, j1 * nlon);
        let view = AtmSurfaceView {
            t_low: &export.t_low,
            q_low: &export.q_low,
            u_low: &export.u_low,
            v_low: &export.v_low,
            precip: &export.precip,
            sw_sfc: &export.sw_sfc,
            lw_down: &export.lw_down,
        };
        self.coupler
            .step_rows_ws(cstate, view, &self.sst, self.dt, ka0, ka1, ka0, cws);
        // Mirrors the driver: the (allgathered) global runoff lives in
        // its own reused buffer, separate from the coupler workspace.
        full_runoff.clear();
        full_runoff.extend_from_slice(&cws.runoff[ka0..ka1]);
        self.coupler
            .route_rivers_ws(cstate, full_runoff, self.dt, cws);
        forcing.fluxes.clear();
        forcing.fluxes.extend_from_slice(&cws.out.fluxes[ka0..ka1]);
        forcing.t_sfc.clear();
        forcing.t_sfc.extend_from_slice(&cws.out.t_sfc[ka0..ka1]);
        forcing.albedo.clear();
        forcing.albedo.extend_from_slice(&cws.out.albedo[ka0..ka1]);
        self.model.step_ws(state, comm, forcing, aws, export);
    }
}

fn encode_all(state: &AtmState, cstate: &CouplerState, export: &AtmExport) -> Vec<u8> {
    let mut buf = Vec::new();
    state.encode(&mut buf);
    cstate.encode(&mut buf);
    export.encode(&mut buf);
    buf
}

/// Property: for every (seed, resume split) pair, N workspace steps with
/// a checkpoint/resume at the split — resuming into *fresh* workspaces,
/// like a driver restart — equal N allocate-per-step reference steps,
/// bit for bit, in the dynamical state, the tracer fields, the coupler
/// state, and every export field.
#[test]
fn workspace_path_is_bit_identical_across_resume_splits() {
    const N_STEPS: usize = 6;
    for seed in [3u64, 17] {
        for split in [1usize, 3, 5] {
            let cfg = FoamConfig::tiny(seed);
            Universe::run(1, move |comm| {
                let h = Harness::new(&cfg, comm);

                // Reference trajectory, allocate-per-step all the way.
                let (mut state_a, mut cstate_a, mut export_a) = h.init();
                for _ in 0..N_STEPS {
                    h.step_reference(comm, &mut state_a, &mut cstate_a, &mut export_a);
                }

                // Workspace trajectory with a mid-run serialize →
                // deserialize → fresh-workspace resume at `split`.
                let (mut state_b, mut cstate_b, mut export_b) = h.init();
                let mut aws = AtmWorkspace::new(&h.model);
                let mut cws = h.coupler.workspace();
                let mut forcing = AtmForcing {
                    fluxes: Vec::new(),
                    t_sfc: Vec::new(),
                    albedo: Vec::new(),
                };
                let mut full_runoff = Vec::new();
                for _ in 0..split {
                    h.step_ws(
                        comm,
                        &mut state_b,
                        &mut cstate_b,
                        &mut export_b,
                        &mut aws,
                        &mut cws,
                        &mut forcing,
                        &mut full_runoff,
                    );
                }
                let snapshot = encode_all(&state_b, &cstate_b, &export_b);
                let mut r = foam_ckpt::ByteReader::new(&snapshot);
                let mut state_b = AtmState::decode(&mut r).expect("atm state round-trips");
                let mut cstate_b = CouplerState::decode(&mut r).expect("coupler state round-trips");
                let mut export_b = AtmExport::decode(&mut r).expect("export round-trips");
                let mut aws = AtmWorkspace::new(&h.model);
                let mut cws = h.coupler.workspace();
                let mut forcing = AtmForcing {
                    fluxes: Vec::new(),
                    t_sfc: Vec::new(),
                    albedo: Vec::new(),
                };
                let mut full_runoff = Vec::new();
                for _ in split..N_STEPS {
                    h.step_ws(
                        comm,
                        &mut state_b,
                        &mut cstate_b,
                        &mut export_b,
                        &mut aws,
                        &mut cws,
                        &mut forcing,
                        &mut full_runoff,
                    );
                }

                assert_eq!(
                    encode_all(&state_a, &cstate_a, &export_a),
                    encode_all(&state_b, &cstate_b, &export_b),
                    "seed {seed}, split {split}: workspace path diverged from the reference"
                );
            });
        }
    }
}
