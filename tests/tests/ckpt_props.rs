//! Property tests of the checkpoint codec: serialize → deserialize must
//! be the *bit-level* identity for the state actually checkpointed —
//! grid fields, the ocean's prognostic state, and the coupler's
//! sequence-numbered exchange buffers — for arbitrary f64 bit patterns
//! (including NaNs and infinities, which a restart must carry through
//! unchanged rather than launder).

use foam_ckpt::{Codec, Snapshot, SnapshotWriter};
use foam_coupler::ExchangeBuffers;
use foam_grid::Field2;
use foam_ocean::barotropic::BarotropicState;
use foam_ocean::{OceanForcing, OceanState};
use proptest::prelude::*;

/// Drain `n` raw bit patterns into a field of the given shape.
fn take_field(bits: &mut impl Iterator<Item = u64>, nx: usize, ny: usize) -> Field2 {
    Field2::from_vec(
        nx,
        ny,
        (0..nx * ny)
            .map(|_| f64::from_bits(bits.next().unwrap()))
            .collect(),
    )
}

fn assert_field_bits(a: &Field2, b: &Field2) {
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()));
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// Round-trip a value through a full snapshot file image (header,
/// section table, CRC), not just the bare codec.
fn snapshot_roundtrip<T: Codec>(value: &T) -> T {
    let mut w = SnapshotWriter::new();
    w.put("x", value);
    Snapshot::from_bytes(&w.to_bytes())
        .unwrap()
        .get("x")
        .unwrap()
}

/// Raw f64 bit patterns: `any::<i64>()` covers the whole u64 space,
/// including NaN payloads, ±∞, and subnormals.
fn bit_vec(n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<i64>(), n).prop_map(|v| v.into_iter().map(|x| x as u64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn field2_roundtrips_bit_exactly(
        dims in (1usize..=6, 1usize..=6),
        raw in bit_vec(36),
    ) {
        let (nx, ny) = dims;
        let mut bits = raw.into_iter();
        let f = take_field(&mut bits, nx, ny);
        assert_field_bits(&f, &snapshot_roundtrip(&f));
        let direct = Field2::from_bytes(&f.to_bytes()).unwrap();
        assert_field_bits(&f, &direct);
    }

    #[test]
    fn ocean_state_roundtrips_bit_exactly(
        dims in (1usize..=4, 1usize..=4, 1usize..=3),
        raw in bit_vec(16 * 15 + 2),
    ) {
        let (nx, ny, nz) = dims;
        let mut bits = raw.into_iter();
        let mut level = |n: usize| (0..n).map(|_| take_field(&mut bits, nx, ny)).collect::<Vec<_>>();
        let state = OceanState {
            u: level(nz),
            v: level(nz),
            t: level(nz),
            s: level(nz),
            baro: BarotropicState {
                eta: take_field(&mut bits, nx, ny),
                u: take_field(&mut bits, nx, ny),
                v: take_field(&mut bits, nx, ny),
            },
            sim_t: f64::from_bits(bits.next().unwrap()),
            step_count: bits.next().unwrap(),
        };
        let back = snapshot_roundtrip(&state);
        prop_assert_eq!(back.step_count, state.step_count);
        prop_assert_eq!(back.sim_t.to_bits(), state.sim_t.to_bits());
        for (a, b) in [(&state.u, &back.u), (&state.v, &back.v), (&state.t, &back.t), (&state.s, &back.s)] {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_field_bits(x, y);
            }
        }
        assert_field_bits(&state.baro.eta, &back.baro.eta);
        assert_field_bits(&state.baro.u, &back.baro.u);
        assert_field_bits(&state.baro.v, &back.baro.v);
    }

    #[test]
    fn exchange_buffers_roundtrip_bit_exactly(
        dims in (1usize..=4, 1usize..=4, 0usize..=2),
        seq in 0usize..1_000_000,
        raw in bit_vec(16 * 9),
    ) {
        let (nx, ny, n_recent) = dims;
        let mut bits = raw.into_iter();
        let recent: Vec<(usize, OceanForcing)> = (0..n_recent)
            .map(|k| {
                (seq + k, OceanForcing {
                    tau_x: take_field(&mut bits, nx, ny),
                    tau_y: take_field(&mut bits, nx, ny),
                    heat: take_field(&mut bits, nx, ny),
                    freshwater: take_field(&mut bits, nx, ny),
                })
            })
            .collect();
        let buf = ExchangeBuffers {
            sst_seq: seq,
            sst: take_field(&mut bits, nx, ny),
            recent,
        };
        let back = snapshot_roundtrip(&buf);
        prop_assert_eq!(back.sst_seq, buf.sst_seq);
        assert_field_bits(&buf.sst, &back.sst);
        prop_assert_eq!(back.recent.len(), buf.recent.len());
        for ((ia, fa), (ib, fb)) in buf.recent.iter().zip(back.recent.iter()) {
            prop_assert_eq!(ia, ib);
            assert_field_bits(&fa.tau_x, &fb.tau_x);
            assert_field_bits(&fa.tau_y, &fb.tau_y);
            assert_field_bits(&fa.heat, &fb.heat);
            assert_field_bits(&fa.freshwater, &fb.freshwater);
        }
    }
}
