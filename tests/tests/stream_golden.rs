//! Golden regression of the Figure-3/4 diagnostics on the streaming
//! path: a short deterministic coupled run with *both* statistics paths
//! enabled must render byte-identical analysis text from the batch
//! (retained-history) pipeline and the streaming pipeline — and that
//! text must match the committed golden file, so a silent change to
//! either estimator shows up as a diff.
//!
//! Regenerate the golden after an *intentional* change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p foam-tests --test stream_golden
//! ```
//!
//! Layout: the F3 block (mean-SST series tail, time-mean field moments)
//! is printed at full round-trip precision — the streaming mean is
//! bit-identical to the batch average by construction. The F4 block
//! (EOF/VARIMAX spectra on a deterministic synthetic record) is printed
//! at 6 significant digits, inside the 1e-10 agreement the subspace
//! sketch guarantees.

use std::fmt::Write as _;
use std::path::PathBuf;

use foam::{run_coupled, FoamConfig};
use foam_stats::{anomalies_monthly, correlation, detrend, eof_analysis, lanczos_lowpass, varimax};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/stream_f3_f4.txt")
}

/// The deterministic synthetic monthly record the F4 block analyzes:
/// annual cycle + trend + two slow patterns + xorshift noise.
fn synth_months(n_t: usize, n_s: usize) -> Vec<Vec<f64>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n_t)
        .map(|t| {
            let annual = (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin();
            let slow = (t as f64 * 0.07).sin();
            let slow2 = (t as f64 * 0.13).cos();
            (0..n_s)
                .map(|s| {
                    let p1 = (s as f64 * 0.8).sin();
                    let p2 = (s as f64 * 1.7).cos();
                    15.0 + 0.002 * t as f64 + annual + slow * p1 + slow2 * p2 + 0.01 * rng()
                })
                .collect()
        })
        .collect()
}

#[test]
fn streaming_f3_f4_text_matches_batch_and_golden() {
    let mut text = String::new();

    // ---- F3 block: a 3-month coupled run, both paths on. -------------
    let mut cfg = FoamConfig::century(1914);
    cfg.collect_monthly_sst = true;
    let out = run_coupled(&cfg, 90.0);
    let ds = out.stream.as_ref().expect("century config streams");
    assert_eq!(out.monthly_sst.len(), 3);
    assert_eq!(ds.months(), 3);

    writeln!(text, "# F3: streaming vs batch monthly climatology").unwrap();
    writeln!(text, "months = {}", ds.months()).unwrap();
    for (t, v) in out.mean_sst_series.iter().rev().take(4).enumerate() {
        writeln!(text, "series[-{}] = {v:.17e}", t + 1).unwrap();
    }
    // The streaming time-mean must be *bit-identical* to averaging the
    // retained history; render both paths through the same value.
    let stream_mean = ds.mean_field().expect("three months streamed");
    let n = out.monthly_sst.len() as f64;
    let mut max_mean = f64::MIN;
    for (s, &m) in stream_mean.iter().enumerate() {
        let batch: f64 = out.monthly_sst.iter().map(|f| f.as_slice()[s]).sum::<f64>() / n;
        assert_eq!(
            m.to_bits(),
            batch.to_bits(),
            "stream/batch mean field differs at point {s}"
        );
        max_mean = max_mean.max(m);
    }
    writeln!(text, "mean_field_max = {max_mean:.17e}").unwrap();
    let var = ds.variance_field().unwrap();
    let total_var: f64 = var.iter().sum();
    writeln!(text, "variance_field_sum = {total_var:.12e}").unwrap();

    // ---- F4 block: EOF/VARIMAX on the synthetic record, both paths. --
    let (n_t, n_s) = (48, 20);
    let months = synth_months(n_t, n_s);
    let weights: Vec<f64> = (0..n_s)
        .map(|s| {
            if s % 6 == 5 {
                0.0
            } else {
                1.0 + 0.02 * s as f64
            }
        })
        .collect();

    let render_f4 = |varfrac: &[f64], rot_varfrac: &[f64], corr: f64| -> String {
        let mut b = String::new();
        writeln!(b, "# F4: low-passed EOF/VARIMAX decomposition").unwrap();
        for (k, v) in varfrac.iter().take(3).enumerate() {
            writeln!(b, "eof_varfrac[{k}] = {v:.6e}").unwrap();
        }
        for (k, v) in rot_varfrac.iter().take(2).enumerate() {
            writeln!(b, "varimax_varfrac[{k}] = {v:.6e}").unwrap();
        }
        writeln!(b, "box_correlation = {corr:.6}").unwrap();
        b
    };
    let box_a: Vec<f64> = (0..n_s)
        .map(|s| if s < n_s / 2 { weights[s] } else { 0.0 })
        .collect();
    let box_b: Vec<f64> = (0..n_s)
        .map(|s| if s >= n_s / 2 { weights[s] } else { 0.0 })
        .collect();

    // Batch pipeline, per grid point.
    let lp = foam::stream::lowpass_period(n_t);
    let mut data = vec![vec![0.0; n_s]; n_t];
    for s in 0..n_s {
        if weights[s] == 0.0 {
            continue;
        }
        let col: Vec<f64> = months.iter().map(|m| m[s]).collect();
        let mut a = anomalies_monthly(&col);
        detrend(&mut a);
        for (t, v) in lanczos_lowpass(&a, lp).into_iter().enumerate() {
            data[t][s] = v;
        }
    }
    let batch_eof = eof_analysis(&data, &weights, 5);
    let batch_rot = varimax(&data, &weights, &batch_eof, 2);
    let series_of = |profile: &[f64]| -> Vec<f64> {
        (0..n_t)
            .map(|t| (0..n_s).map(|s| profile[s] * data[t][s]).sum())
            .collect()
    };
    let batch_corr = correlation(&series_of(&box_a), &series_of(&box_b));
    let batch_f4 = render_f4(
        &batch_eof.variance_fraction,
        &batch_rot.variance_fraction,
        batch_corr,
    );

    // Streaming pipeline through DriverStream. The record is full rank
    // (per-point noise), so grant the sketch a full-rank budget — at
    // r_max = n_s the subspace sketch is exact for *any* data and the
    // batch agreement is 1e-10, not merely low-rank-conditional.
    let mut ds = foam::DriverStream::new(weights.clone(), n_s);
    for m in &months {
        ds.push_month(m).unwrap();
    }
    let analysis = ds.analyze_variability(5).expect("48 months streamed");
    let rot = analysis.varimax(2);
    let stream_corr = correlation(&analysis.series(&box_a), &analysis.series(&box_b));
    let stream_f4 = render_f4(
        &analysis.eof.variance_fraction,
        &rot.variance_fraction,
        stream_corr,
    );

    assert_eq!(
        batch_f4, stream_f4,
        "batch and streaming F4 text must be byte-identical at 6 digits"
    );
    text.push_str(&stream_f4);

    // ---- Golden comparison. ------------------------------------------
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "streaming F3/F4 analysis text drifted from the committed golden"
    );
}
