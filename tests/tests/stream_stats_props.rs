//! The streaming↔batch equivalence layer: property tests proving that
//! every streaming estimator in `foam-stats` reproduces its batch
//! counterpart across arbitrary record lengths, values, and chunkings —
//! and that checkpointing a stream at *any* point (encode → decode →
//! continue) is invisible, bit for bit.
//!
//! Equivalence tiers, matching what the algebra guarantees:
//! * **bit-identical** — streaming mean (same accumulation order as the
//!   batch sum), the streaming Lanczos filter (same tap order), and
//!   every checkpoint/resume split;
//! * **1e-10 relative** — Welford variance vs the two-pass batch
//!   variance, merged (chunked) moments, and streaming-EOF spectra on
//!   data within the sketch's rank budget (different but equivalent
//!   accumulation orders).

use foam::DriverStream;
use foam_ckpt::{ByteReader, Codec};
use foam_stats::{
    anomalies_monthly, detrend, eof_analysis, lanczos_lowpass, FieldMoments, OnlineMoments,
    StreamingEof, StreamingLanczos,
};
use proptest::prelude::*;

/// Finite, well-scaled sample values (equivalence is a statement about
/// arithmetic order, not about NaN propagation).
fn series(len: impl Into<prop::collection::SizeRange>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, len)
}

fn roundtrip<T: Codec>(v: &T) -> T {
    T::decode(&mut ByteReader::new(&v.to_bytes())).expect("codec roundtrip")
}

/// Relative-scale closeness for quantities accumulated in different
/// (but mathematically equal) orders.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-10 * scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming mean is bit-identical to the batch `sum/n`; streaming
    /// variance matches the two-pass batch variance to 1e-10 relative.
    #[test]
    fn online_moments_match_batch(xs in series(1..200)) {
        let mut m = OnlineMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let n = xs.len() as f64;
        let batch_mean = xs.iter().sum::<f64>() / n;
        prop_assert_eq!(m.mean().to_bits(), batch_mean.to_bits());
        if xs.len() >= 2 {
            let batch_var = xs.iter().map(|x| (x - batch_mean).powi(2)).sum::<f64>() / n;
            let scale = xs.iter().map(|x| x * x).sum::<f64>() / n;
            prop_assert!(close(m.variance(), batch_var, scale));
        }
    }

    /// Splitting the stream into two chunks and merging (Chan's update)
    /// agrees with the unsplit stream to 1e-10 relative.
    #[test]
    fn chunked_merge_matches_single_stream(xs in series(2..200), cut_frac in 0.0..1.0f64) {
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let mut whole = OnlineMoments::new();
        let (mut a, mut b) = (OnlineMoments::new(), OnlineMoments::new());
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < cut { a.push(x) } else { b.push(x) }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let scale = xs.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
        prop_assert!(close(a.mean(), whole.mean(), scale));
        prop_assert!(close(a.variance(), whole.variance(), scale * scale));
    }

    /// Checkpointing field moments at any point — encode, decode,
    /// continue — leaves the final state bit-identical (PartialEq on
    /// these types compares raw f64 values).
    #[test]
    fn field_moments_split_anywhere_resume(
        xs in series(6..120),
        width in 1usize..6,
        cut_frac in 0.0..1.0f64,
    ) {
        // width < 6 and len ≥ 6 guarantee at least one full row.
        let n_t = xs.len() / width;
        let cut = (n_t as f64 * cut_frac) as usize;
        let mut whole = FieldMoments::new(width);
        let mut split = FieldMoments::new(width);
        for t in 0..n_t {
            let row = &xs[t * width..(t + 1) * width];
            whole.push(row).unwrap();
            split.push(row).unwrap();
            if t == cut {
                split = roundtrip(&split);
            }
        }
        prop_assert_eq!(whole, split);
    }

    /// The streaming Lanczos filter emits exactly the batch filter's
    /// output, bit for bit, for arbitrary lengths and cutoffs — and a
    /// checkpoint/resume at any point changes nothing.
    #[test]
    fn streaming_lanczos_is_bit_identical_and_resumable(
        xs in series(0..150),
        period in 2.0..40.0f64,
        cut_frac in 0.0..1.0f64,
    ) {
        let batch = lanczos_lowpass(&xs, period);
        let cut = (xs.len() as f64 * cut_frac) as usize;
        let mut sl = StreamingLanczos::new(period);
        let mut got = Vec::new();
        for (t, &x) in xs.iter().enumerate() {
            if t == cut {
                sl = roundtrip(&sl);
            }
            got.extend(sl.push(x));
        }
        got.extend(sl.finish());
        prop_assert_eq!(got.len(), batch.len());
        for (a, b) in got.iter().zip(&batch) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// On data within the sketch's rank budget the streaming EOF
    /// reproduces the batch snapshot-method spectrum to 1e-10 relative,
    /// and a mid-stream checkpoint/resume is invisible.
    #[test]
    fn streaming_eof_matches_batch_on_low_rank_data(
        coef in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 8..60),
        seed in 0u32..1000,
        cut_frac in 0.0..1.0f64,
    ) {
        let n_s = 15;
        // Two fixed, independent spatial patterns → data of rank ≤ 2.
        let p1: Vec<f64> = (0..n_s).map(|s| ((s as f64 + seed as f64) * 0.7).sin()).collect();
        let p2: Vec<f64> = (0..n_s).map(|s| ((s as f64) * 1.9 + seed as f64).cos()).collect();
        let weights: Vec<f64> = (0..n_s)
            .map(|s| if s == 3 { 0.0 } else { 1.0 + 0.05 * s as f64 })
            .collect();
        let data: Vec<Vec<f64>> = coef
            .iter()
            .map(|(a, b)| (0..n_s).map(|s| a * p1[s] + b * p2[s]).collect())
            .collect();
        let cut = (data.len() as f64 * cut_frac) as usize;
        let mut se = StreamingEof::new(&weights, 4);
        let mut uninterrupted = StreamingEof::new(&weights, 4);
        for (t, row) in data.iter().enumerate() {
            if t == cut {
                se = roundtrip(&se);
            }
            se.push(row).unwrap();
            uninterrupted.push(row).unwrap();
        }
        prop_assert_eq!(&se, &uninterrupted);
        prop_assert!(se.discarded_fraction() < 1e-12);
        let stream = se.finish(2);
        let batch = eof_analysis(&data, &weights, 2);
        prop_assert!(close(stream.total_variance, batch.total_variance, batch.total_variance));
        for k in 0..stream.variance_fraction.len().min(batch.variance_fraction.len()) {
            prop_assert!(close(stream.variance_fraction[k], batch.variance_fraction[k], 1.0));
        }
    }

    /// The driver-level stream (moments + EOF + the Figure-4 transform
    /// pipeline) survives "split anywhere, resume, continue" with a
    /// state bit-identical to the uninterrupted stream, and its analysis
    /// equals the batch per-point pipeline on low-rank data.
    #[test]
    fn driver_stream_split_anywhere_analysis_matches_batch(
        coef in prop::collection::vec(-5.0..5.0f64, 26..80),
        cut_frac in 0.0..1.0f64,
    ) {
        let n_s = 10;
        let weights: Vec<f64> = (0..n_s).map(|s| 1.0 + 0.1 * s as f64).collect();
        let pat: Vec<f64> = (0..n_s).map(|s| (s as f64 * 0.9).sin() + 1.5).collect();
        let months: Vec<Vec<f64>> = coef
            .iter()
            .enumerate()
            .map(|(t, a)| {
                let annual = (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin();
                (0..n_s).map(|s| 10.0 + annual + a * pat[s]).collect()
            })
            .collect();
        let cut = (months.len() as f64 * cut_frac) as usize;
        let mut ds = DriverStream::new(weights.clone(), 6);
        let mut uninterrupted = DriverStream::new(weights.clone(), 6);
        for (t, m) in months.iter().enumerate() {
            if t == cut {
                ds = roundtrip(&ds);
            }
            ds.push_month(m).unwrap();
            uninterrupted.push_month(m).unwrap();
        }
        prop_assert_eq!(&ds, &uninterrupted);

        // Batch Figure-4 pipeline, per grid point.
        let n_t = months.len();
        let lp = foam::stream::lowpass_period(n_t);
        let mut data = vec![vec![0.0; n_s]; n_t];
        for s in 0..n_s {
            let col: Vec<f64> = months.iter().map(|m| m[s]).collect();
            let mut a = anomalies_monthly(&col);
            detrend(&mut a);
            for (t, v) in lanczos_lowpass(&a, lp).into_iter().enumerate() {
                data[t][s] = v;
            }
        }
        let batch = eof_analysis(&data, &weights, 2);
        let analysis = ds.analyze_variability(2).expect("≥ 24 months streamed");
        prop_assert!(close(
            analysis.eof.total_variance,
            batch.total_variance,
            batch.total_variance
        ));
        for k in 0..analysis.eof.variance_fraction.len().min(batch.variance_fraction.len()) {
            prop_assert!(close(
                analysis.eof.variance_fraction[k],
                batch.variance_fraction[k],
                1.0
            ));
        }
    }
}
