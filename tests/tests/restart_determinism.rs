//! The checkpoint/restart contract, end to end: a run interrupted at a
//! snapshot and resumed must land on *bit-identical* state (same rank
//! count), corrupted snapshots must fail with typed errors and fall
//! back to older retained ones, and the crash-recovery path — kill the
//! exchange mid-run with the fault injector, restart from the last good
//! checkpoint — must reproduce the uninterrupted run exactly.

use std::path::{Path, PathBuf};

use foam::checkpoint::{load_latest, load_snapshot};
use foam::{
    try_resume_coupled, try_run_coupled, CheckpointStore, CkptConfig, CkptError, CoupledError,
    FoamConfig,
};
use foam_coupler::tags::TAG_SST;
use foam_grid::Field2;
use foam_mpi::{FaultAction, FaultPlan, FaultRule};

/// A fresh scratch directory under the system temp dir (the build has
/// no `tempfile` crate); any debris from a previous run is removed.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foam-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny config with checkpointing into `dir` every `interval` coupling
/// intervals. Emergency checkpoints are off by default so periodic
/// snapshots (which lie exactly on the failure-free trajectory) are the
/// ones resumed from.
fn ckpt_tiny(seed: u64, dir: &Path, interval: usize) -> FoamConfig {
    let mut cfg = FoamConfig::tiny(seed);
    cfg.ckpt = CkptConfig {
        dir: Some(dir.to_path_buf()),
        interval,
        keep: 3,
        on_error: false,
        fault_plan: None,
    };
    cfg
}

fn assert_fields_bit_equal(a: &Field2, b: &Field2, what: &str) {
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()), "{what}: shape");
    for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {k} differs ({x} vs {y})"
        );
    }
}

fn assert_series_bit_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: entry {k} differs ({x} vs {y})"
        );
    }
}

/// A fault plan that delivers the first `hits` messages on `tag`
/// untouched (zero-second delay) and silently drops every later one —
/// including retransmissions, so the retry protocol must eventually
/// give up. This is how the harness "kills" the exchange mid-run.
fn kill_tag_after(seed: u64, tag: u32, hits: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(tag),
            action: FaultAction::Delay(0.0),
            max_hits: Some(hits),
            probability: 1.0,
        })
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(tag),
            action: FaultAction::Drop,
            max_hits: None,
            probability: 1.0,
        })
}

#[test]
fn restart_resumes_bit_identically() {
    // N + M straight vs N → checkpoint → restart → M: every field and
    // every diagnostic must agree to the last bit.
    let dir = scratch("bitident");
    let mut straight_cfg = FoamConfig::tiny(31);
    straight_cfg.collect_monthly_sst = true;
    let straight = try_run_coupled(&straight_cfg, 2.0).unwrap();

    let mut cfg = ckpt_tiny(31, &dir, 4);
    cfg.collect_monthly_sst = true;
    let part1 = try_run_coupled(&cfg, 1.0).unwrap(); // snapshots at interval 4
    assert_series_bit_equal(
        &part1.mean_sst_series,
        &straight.mean_sst_series[..4],
        "first-leg series",
    );

    let resumed = try_resume_coupled(&cfg, 2.0).unwrap(); // intervals 4..8
    assert_fields_bit_equal(&resumed.final_sst, &straight.final_sst, "final SST");
    assert_series_bit_equal(
        &resumed.mean_sst_series,
        &straight.mean_sst_series,
        "mean-SST series",
    );
    assert_eq!(
        resumed.ice_fraction.to_bits(),
        straight.ice_fraction.to_bits(),
        "ice fraction"
    );
    assert_eq!(resumed.sim_seconds, straight.sim_seconds);

    // Resuming a run the checkpoint has already finished is a typed
    // config mismatch, not a silent no-op.
    let err = try_resume_coupled(&cfg, 1.0).unwrap_err();
    assert!(
        matches!(err, CoupledError::Ckpt(CkptError::ConfigMismatch(_))),
        "{err}"
    );

    // So is resuming under a different model geometry.
    let mut cfg_bad = cfg.clone();
    cfg_bad.ocean.nx = 48;
    let err = try_resume_coupled(&cfg_bad, 2.0).unwrap_err();
    assert!(
        matches!(err, CoupledError::Ckpt(CkptError::ConfigMismatch(_))),
        "{err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_snapshots_is_a_typed_error() {
    let dir = scratch("empty");
    let cfg = ckpt_tiny(32, &dir, 2);
    let err = try_resume_coupled(&cfg, 1.0).unwrap_err();
    assert_eq!(err, CoupledError::Ckpt(CkptError::NoCheckpoint));

    // No checkpoint directory configured at all: same typed refusal.
    let err = try_resume_coupled(&FoamConfig::tiny(32), 1.0).unwrap_err();
    assert_eq!(err, CoupledError::Ckpt(CkptError::NoCheckpoint));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_reproduces_the_uninterrupted_run() {
    // The crash-recovery harness of the roadmap: the fault plan lets
    // the first five SSTs through (the initial one plus intervals
    // 0..=3, so the periodic snapshots at intervals 2 and 4 commit on
    // the failure-free trajectory), then drops the tag forever. The run
    // dies mid-flight, is restarted from the last good checkpoint with
    // a clean runtime, and must finish bit-identical to a run that
    // never crashed.
    let dir = scratch("crash");
    let straight = try_run_coupled(&FoamConfig::tiny(34), 2.0).unwrap();

    let mut crashing = ckpt_tiny(34, &dir, 2);
    crashing.runtime.sst_retry_timeout_secs = 0.3;
    crashing.runtime.sst_retry_backoff_secs = 0.02;
    crashing.runtime.sst_retry_max = 2;
    crashing.runtime.fault_plan = Some(kill_tag_after(77, TAG_SST, 5));
    let err = try_run_coupled(&crashing, 2.0).unwrap_err();
    assert!(matches!(err, CoupledError::SstExchange { .. }), "{err}");

    // The periodic snapshots survived the crash; the newest is the
    // restart point.
    let recover = ckpt_tiny(34, &dir, 2);
    let store = CheckpointStore::open(dir.as_path()).unwrap();
    let last_good = load_latest(&store, &recover).unwrap();
    assert_eq!(last_good.interval, 4);
    assert!(!last_good.emergency);

    let resumed = try_resume_coupled(&recover, 2.0).unwrap();
    assert_fields_bit_equal(&resumed.final_sst, &straight.final_sst, "final SST");
    assert_series_bit_equal(
        &resumed.mean_sst_series,
        &straight.mean_sst_series,
        "mean-SST series",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_are_typed_and_fall_back_to_older_ones() {
    // Write three snapshots, then damage them one by one: a flipped
    // payload byte (CRC mismatch), a truncated shard, a wrong-version
    // manifest. Each damage mode must surface as its typed error, and
    // the loader must keep falling back to the newest *intact*
    // snapshot until none is left.
    let dir = scratch("corrupt");
    let cfg = ckpt_tiny(35, &dir, 2);
    try_run_coupled(&cfg, 1.5).unwrap(); // snapshots at intervals 2, 4, 6

    let store = CheckpointStore::open(dir.as_path()).unwrap();
    let dirs: Vec<(u64, PathBuf)> = store.candidates().unwrap();
    assert_eq!(
        dirs.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![6, 4, 2]
    );
    assert_eq!(load_latest(&store, &cfg).unwrap().interval, 6);

    // Newest snapshot: flip one payload byte in a shard → CRC mismatch.
    let shard6 = CheckpointStore::shard_path(&dirs[0].1, 0);
    let mut bytes = std::fs::read(&shard6).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&shard6, &bytes).unwrap();
    let err = load_snapshot(&dirs[0].1, &cfg).unwrap_err();
    assert!(matches!(err, CkptError::CrcMismatch { .. }), "{err}");

    // Second snapshot: truncate the other rank's shard.
    let shard4 = CheckpointStore::shard_path(&dirs[1].1, 1);
    let bytes = std::fs::read(&shard4).unwrap();
    std::fs::write(&shard4, &bytes[..bytes.len() / 2]).unwrap();
    let err = load_snapshot(&dirs[1].1, &cfg).unwrap_err();
    assert!(matches!(err, CkptError::Truncated { .. }), "{err}");

    // The loader now falls back past both to the oldest snapshot.
    assert_eq!(load_latest(&store, &cfg).unwrap().interval, 2);

    // Oldest snapshot: stamp a wrong format version into the manifest.
    let manifest2 = CheckpointStore::manifest_path(&dirs[2].1);
    let good_manifest = std::fs::read(&manifest2).unwrap();
    let mut bad = good_manifest.clone();
    bad[8] ^= 0xFF; // version field, u32 LE at offset 8
    std::fs::write(&manifest2, &bad).unwrap();
    let err = load_snapshot(&dirs[2].1, &cfg).unwrap_err();
    assert!(matches!(err, CkptError::BadVersion { .. }), "{err}");

    // Nothing intact is left: the driver reports a typed failure...
    let err = try_resume_coupled(&cfg, 2.0).unwrap_err();
    assert!(matches!(err, CoupledError::Ckpt(_)), "{err}");

    // ...and repairing the manifest makes the oldest snapshot resumable
    // again: the fall-back chain ends in a working restart.
    std::fs::write(&manifest2, &good_manifest).unwrap();
    let resumed = try_resume_coupled(&cfg, 2.0).unwrap();
    assert_eq!(resumed.mean_sst_series.len(), 8);
    assert!(resumed.final_sst.all_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn emergency_checkpoint_on_failure_is_resumable() {
    // With `on_error` set and a cadence too sparse for any periodic
    // snapshot, the only restart point is the emergency checkpoint
    // taken while the run aborts. It is marked as such (its SST is
    // stale, so it is off the failure-free trajectory) but must resume
    // into a complete, finite run.
    let dir = scratch("emergency");
    let mut crashing = ckpt_tiny(36, &dir, 100);
    crashing.ckpt.on_error = true;
    crashing.runtime.sst_retry_timeout_secs = 0.3;
    crashing.runtime.sst_retry_backoff_secs = 0.02;
    crashing.runtime.sst_retry_max = 2;
    crashing.runtime.fault_plan = Some(kill_tag_after(78, TAG_SST, 3));
    let err = try_run_coupled(&crashing, 2.0).unwrap_err();
    assert!(matches!(err, CoupledError::SstExchange { .. }), "{err}");

    let recover = ckpt_tiny(36, &dir, 100);
    let store = CheckpointStore::open(dir.as_path()).unwrap();
    let snap = load_latest(&store, &recover).unwrap();
    assert!(snap.emergency, "the only snapshot is the emergency one");
    assert_eq!(snap.interval, 4); // three SSTs carried intervals 0..=3

    let resumed = try_resume_coupled(&recover, 2.0).unwrap();
    assert_eq!(resumed.mean_sst_series.len(), 8);
    assert!(resumed.final_sst.all_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_on_a_different_rank_count_is_functional() {
    // Shards are stitched into a global snapshot and re-decomposed, so
    // a job checkpointed on 2 atmosphere ranks restarts on 3. Reduction
    // order changes with the decomposition, so this resume is
    // *functional* rather than bit-identical: the run completes and
    // stays physically close to the single-decomposition trajectory.
    let dir = scratch("ranks");
    let cfg2 = ckpt_tiny(37, &dir, 4);
    try_run_coupled(&cfg2, 1.0).unwrap();

    let mut cfg3 = ckpt_tiny(37, &dir, 4);
    cfg3.n_atm_ranks = 3;
    let resumed = try_resume_coupled(&cfg3, 2.0).unwrap();
    assert_eq!(resumed.mean_sst_series.len(), 8);
    assert!(resumed.final_sst.all_finite());

    let straight = try_run_coupled(&FoamConfig::tiny(37), 2.0).unwrap();
    let d = (resumed.mean_sst_series[7] - straight.mean_sst_series[7]).abs();
    assert!(d < 0.1, "rank-count change drifted the mean SST by {d} °C");
    let _ = std::fs::remove_dir_all(&dir);
}
