//! Integration tests of the telemetry layer against the full coupled
//! model: the report's structure, its non-interference guarantee
//! (enabling telemetry changes no simulated field bit-for-bit), and the
//! configuration plumbing around it.

use std::path::PathBuf;

use foam::{
    run_coupled, try_run_coupled, CkptConfig, ConfigError, CoupledError, FoamConfig,
    TelemetryConfig,
};
use foam_telemetry::{json, SCHEMA};

/// A fresh scratch directory under the system temp dir (the build has
/// no `tempfile` crate); any debris from a previous run is removed.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foam-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn coupled_run_produces_a_structurally_sound_report() {
    let mut cfg = FoamConfig::tiny(11);
    cfg.telemetry.enabled = true;
    let out = run_coupled(&cfg, 0.5);
    let report = out.telemetry.expect("telemetry was enabled");

    assert!(report.model_speedup > 0.0);
    assert_eq!(report.ranks.len(), cfg.n_ranks());
    // Every instrumented subsystem shows up under its Figure-2 category.
    for phase in [
        "atmosphere",
        "atmosphere/dynamics",
        "atmosphere/dynamics/spectral",
        "atmosphere/physics",
        "coupler",
        "coupler/fluxes",
        "coupler/rivers",
        "ocean",
        "ocean/baroclinic",
        "ocean/barotropic",
        "ocean/polar_filter",
    ] {
        let agg = report
            .phase(phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(agg.seconds_sane(), "phase {phase} has insane timing");
        assert!(agg.calls > 0, "phase {phase} never called");
    }
    // Timers are inclusive, so children can never out-sum their parent.
    assert!(report.tree_consistent(1e-6));
    // The counters the instrumentation maintains alongside the timers.
    assert!(report.counters["ocean.barotropic_subcycles"] > 0);
    let hits = report
        .counters
        .get("atm.radiation.cache_hits")
        .copied()
        .unwrap_or(0);
    let misses = report.counters["atm.radiation.cache_misses"];
    assert!(misses > 0, "radiation must refresh at least once");
    assert!(hits > 0, "radiation cache never hit over half a day");
    // Comm statistics are folded in per protocol tag.
    assert!(report.counters["comm.forcing.msgs_sent"] > 0);
    assert!(report.counters["comm.sst.bytes_sent"] > 0);
    // The atmosphere ranks did atmosphere work, the ocean rank ocean work.
    for r in &report.ranks[..cfg.n_atm_ranks] {
        assert!(r.phases.contains_key("atmosphere"), "rank {}", r.rank);
        assert!(r.busy_seconds > 0.0);
        assert!(r.busy_seconds <= r.wall_seconds + 1e-6);
    }
    let ocean = &report.ranks[cfg.n_atm_ranks];
    assert!(ocean.phases.contains_key("ocean"));
    let imb = report.load_imbalance().expect("all ranks were busy");
    assert!(imb.min <= imb.mean && imb.mean <= imb.max);
    assert!(imb.ratio() >= 1.0);
}

/// `PhaseAgg` sanity used above: non-negative, finite, min ≤ mean ≤ max.
trait SecondsSane {
    fn seconds_sane(&self) -> bool;
}

impl SecondsSane for foam_telemetry::PhaseAgg {
    fn seconds_sane(&self) -> bool {
        self.sum.is_finite()
            && self.sum >= 0.0
            && self.min <= self.mean + 1e-12
            && self.mean <= self.max + 1e-12
    }
}

#[test]
fn telemetry_is_bit_for_bit_invisible_to_the_model() {
    let run = |telemetry: bool| {
        let mut cfg = FoamConfig::tiny(23);
        cfg.telemetry.enabled = telemetry;
        run_coupled(&cfg, 0.5)
    };
    let plain = run(false);
    let instrumented = run(true);
    assert!(plain.telemetry.is_none());
    assert!(instrumented.telemetry.is_some());
    // The simulated trajectory must be identical to the last bit.
    assert_eq!(
        plain.final_sst.as_slice(),
        instrumented.final_sst.as_slice(),
        "telemetry changed the simulated SST field"
    );
    assert_eq!(plain.mean_sst_series, instrumented.mean_sst_series);
}

#[test]
fn report_file_is_written_and_parses_against_the_schema() {
    let dir = scratch("report");
    let path = dir.join("telemetry.json");
    let mut cfg = FoamConfig::tiny(31);
    cfg.telemetry = TelemetryConfig::to_file(&path);
    // Checkpointing on, so the checkpoint phase is exercised too.
    cfg.ckpt = CkptConfig::every(dir.join("ckpt"), 1);
    let out = run_coupled(&cfg, 0.25);
    assert!(out.telemetry.is_some());

    let text = std::fs::read_to_string(&path).expect("report file must exist");
    let doc = json::parse(&text).expect("report must be valid JSON");
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
    let speedup = doc
        .get("model_speedup")
        .and_then(|v| v.as_f64())
        .expect("model_speedup present");
    assert!(speedup > 0.0);
    let phases = doc.get("phases").expect("phases present");
    assert!(phases.get("atmosphere").is_some());
    assert!(phases.get("checkpoint").is_some(), "checkpointing was on");
    assert!(doc
        .get("load_imbalance")
        .unwrap()
        .get("max_over_mean")
        .is_some());
    assert_eq!(
        doc.get("n_ranks").and_then(|v| v.as_f64()),
        Some(cfg.n_ranks() as f64)
    );
    // Checkpoint byte accounting rode along in the counters.
    let counters = doc.get("counters").unwrap();
    assert!(
        counters
            .get("ckpt.bytes_written")
            .and_then(|v| v.as_f64())
            .unwrap()
            > 0.0
    );
    assert!(
        counters
            .get("ckpt.shards_written")
            .and_then(|v| v.as_f64())
            .unwrap()
            > 0.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_report_path_is_a_typed_config_error() {
    let mut cfg = FoamConfig::tiny(41);
    cfg.telemetry = TelemetryConfig::to_file("/nonexistent-dir-foam-telemetry/report.json");
    let err = try_run_coupled(&cfg, 0.25).unwrap_err();
    assert!(
        matches!(
            err,
            CoupledError::Config(ConfigError::UnwritablePath {
                what: "telemetry.path",
                ..
            })
        ),
        "expected a typed unwritable-path error, got {err}"
    );
}

#[test]
fn disabled_telemetry_reports_nothing() {
    let cfg = FoamConfig::tiny(51);
    let out = run_coupled(&cfg, 0.25);
    assert!(out.telemetry.is_none());
}
