//! Property-based tests of the physics invariants: moist enthalpy and
//! water conservation must hold for *arbitrary* (physical) columns, and
//! the land hydrology must never create or destroy water.

use foam_grid::constants::L_VAP;
use foam_land::hydrology::{Bucket, RHO_WATER};
use foam_physics::column::saturation_humidity;
use foam_physics::convection::{compute_cape, convect, ConvectionParams};
use foam_physics::AtmColumn;
use proptest::prelude::*;

/// Strategy: a physically plausible 12-level column — surface
/// temperature in [250, 310] K, lapse exponent in [0.12, 0.24], relative
/// humidity profile in [0.2, 1.05].
fn column_strategy() -> impl Strategy<Value = AtmColumn> {
    (
        250.0f64..310.0,
        0.12f64..0.24,
        prop::collection::vec(0.2f64..1.05, 12),
    )
        .prop_map(|(t_sfc, lapse, rh)| {
            let mut c = AtmColumn::isothermal(12, 2000.0, t_sfc);
            for k in 0..12 {
                c.t[k] = t_sfc * (c.p[k] / 1.0e5).powf(lapse);
                c.q[k] = rh[k] * saturation_humidity(c.t[k], c.p[k]);
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn convection_conserves_enthalpy_and_water(col in column_strategy(), dt in 300.0f64..7200.0) {
        let mut c = col;
        let col_t_min = c.t.iter().cloned().fold(f64::INFINITY, f64::min);
        let col_t_max = c.t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let h0 = c.moist_enthalpy();
        let w0 = c.precipitable_water();
        let out = convect(&mut c, dt, &ConvectionParams::default());
        let h1 = c.moist_enthalpy();
        let w1 = c.precipitable_water();
        // Water: column loss equals surface precipitation.
        prop_assert!(
            (w0 - w1 - out.total_precip()).abs() < 1e-8 * w0.max(1e-6),
            "water: {w0} → {w1}, precip {}", out.total_precip()
        );
        // Moist enthalpy: conserved up to the precip's sensible heat
        // (liquid water leaves at ~column temperature; the latent part
        // is already booked). Tolerance scales with the precip amount.
        let tol = 1e-6 * h0 + out.total_precip() * 4200.0 * 320.0;
        prop_assert!((h1 - h0).abs() < tol, "enthalpy drift {} (precip {})", h1 - h0, out.total_precip());
        // Output stays physical *relative to the input range* (the
        // strategy can generate very cold stratospheres; convection must
        // not push beyond it by more than the available latent heating).
        prop_assert!(c.t.iter().all(|t| t.is_finite()));
        let t_in_min = col_t_min - 1.0;
        let t_in_max = col_t_max + 50.0;
        prop_assert!(
            c.t.iter().all(|t| (t_in_min..t_in_max).contains(t)),
            "T left [{t_in_min}, {t_in_max}]: {:?}", c.t
        );
        prop_assert!(c.q.iter().all(|q| (0.0..0.06).contains(q)));
        prop_assert!(out.total_precip() >= 0.0);
    }

    #[test]
    fn convection_reduces_or_keeps_cape(col in column_strategy()) {
        let mut c = col;
        let cape0 = compute_cape(&c);
        convect(&mut c, 3600.0, &ConvectionParams::default());
        let cape1 = compute_cape(&c);
        // Convection must never *create* instability (small tolerance
        // for the shallow-mixing moisture rearrangement).
        prop_assert!(cape1 <= cape0 + 50.0, "CAPE {cape0} → {cape1}");
    }

    #[test]
    fn bucket_never_goes_negative_or_above_capacity(
        steps in prop::collection::vec((0.0f64..3.0e-3, 0.0f64..2.0e-4, any::<bool>(), 255.0f64..300.0), 1..200)
    ) {
        let mut b = Bucket::default();
        for (p, e, snowing, t) in steps {
            b.step(p, e, snowing, t, 1800.0);
            prop_assert!(b.soil_water >= -1e-12);
            prop_assert!(b.soil_water <= foam_land::hydrology::BUCKET_CAPACITY + 1e-12);
            prop_assert!(b.snow >= -1e-12);
            prop_assert!(b.snow <= foam_land::hydrology::SNOW_CAP + 1e-12);
            prop_assert!((0.0..=1.0).contains(&b.wetness()));
        }
    }

    #[test]
    fn bucket_budget_closes_for_any_forcing(
        steps in prop::collection::vec((0.0f64..2.0e-3, -5.0e-5f64..2.0e-4, any::<bool>()), 1..100)
    ) {
        let mut b = Bucket::default();
        let dt = 3600.0;
        let mut injected = 0.0;
        let mut removed = 0.0;
        for (p, e, snowing) in steps {
            let before = b.soil_water + b.snow;
            let out = b.step(p, e, snowing, 275.0, dt);
            let after = b.soil_water + b.snow;
            // Evaporation actually taken (may be capped by the stores).
            let evap_taken = before + p * dt / RHO_WATER - out.runoff - after;
            injected += p * dt / RHO_WATER;
            removed += out.runoff + evap_taken;
            prop_assert!(
                (injected - removed - (b.soil_water + b.snow)).abs() < 1e-9,
                "budget residual"
            );
        }
    }

    #[test]
    fn bulk_fluxes_satisfy_bowen_consistency(
        wind in 0.5f64..25.0,
        dt_sea_air in -5.0f64..5.0,
        t_air in 260.0f64..305.0,
    ) {
        use foam_physics::surface::{bulk_fluxes_ocean, BulkInput};
        let t_sfc = t_air + dt_sea_air;
        let inp = BulkInput {
            u: wind, v: 0.0,
            t_air,
            q_air: 0.7 * saturation_humidity(t_air, 1.0e5),
            t_sfc,
            q_sfc_sat: saturation_humidity(t_sfc, 1.0e5),
            wetness: 1.0,
            z_ref: 70.0,
        };
        let f = bulk_fluxes_ocean(&inp);
        // Latent = L · evaporation, always.
        prop_assert!((f.latent - L_VAP * f.evaporation).abs() < 1e-9 * f.latent.abs().max(1.0));
        // Sensible heat has the sign of the sea−air contrast.
        if dt_sea_air.abs() > 0.2 {
            prop_assert_eq!(f.sensible > 0.0, dt_sea_air > 0.0);
        }
        // Drag stays positive and bounded; strongly stable boundary
        // layers legitimately shut the exchange down to near zero.
        prop_assert!(f.c_exchange > 0.0 && f.c_exchange < 1.0e-2);
        if dt_sea_air > 0.5 {
            prop_assert!(f.c_exchange > 1.0e-4, "unstable drag too small");
        }
        prop_assert!(f.stress >= 0.0);
    }
}
