//! The ensemble orchestration contract, end to end:
//!
//! * a member killed mid-run by the fault injector is retried from its
//!   checkpoint and produces output **bit-identical** to the same
//!   member run without the fault;
//! * the aggregate `foam-ensemble/1` report is **byte-identical** for
//!   any worker count and any member submission order;
//! * members that exhaust their retry budget are marked `failed` in
//!   the report without failing the ensemble.

use std::path::PathBuf;

use foam::FoamConfig;
use foam_ensemble::{
    kill_sst_after, run_ensemble, EnsembleError, EnsembleSpec, MemberOutput, RetryPolicy,
};

/// A fresh scratch directory under the system temp dir (the build has
/// no `tempfile` crate); any debris from a previous run is removed.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foam-ensemble-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_member_bit_equal(a: &MemberOutput, b: &MemberOutput, what: &str) {
    assert_eq!(
        a.mean_sst_series.len(),
        b.mean_sst_series.len(),
        "{what}: series length"
    );
    for (k, (x, y)) in a.mean_sst_series.iter().zip(&b.mean_sst_series).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: series entry {k} differs ({x} vs {y})"
        );
    }
    for (k, (x, y)) in a
        .final_sst
        .as_slice()
        .iter()
        .zip(b.final_sst.as_slice())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: final SST cell {k} differs ({x} vs {y})"
        );
    }
    assert_eq!(
        a.ice_fraction.to_bits(),
        b.ice_fraction.to_bits(),
        "{what}: ice fraction"
    );
}

/// The acceptance scenario: one member of a two-member ensemble loses
/// its SST exchange mid-run, is resumed from its per-member checkpoint
/// store, and its output matches the unfaulted ensemble bit-for-bit.
#[test]
fn faulted_member_recovers_bit_identically() {
    let days = 2.0; // 8 coupling intervals, checkpoints at 2, 4, 6, 8
    let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(77), days, 2);
    spec.workers = 2;
    spec.output_dir = Some(scratch("recovery"));
    spec.ckpt_interval = 2;
    // Member 1: SST exchange dies after 5 delivered intervals — past
    // the interval-4 checkpoint, before the end of the run.
    spec.members[1].fault_plan = Some(kill_sst_after(77, 5));

    let faulted = run_ensemble(&spec).unwrap();
    assert_eq!(faulted.report.n_ok, 2, "both members must complete");
    let rec = &faulted.members[1];
    assert!(
        rec.retries > 0,
        "the faulted member must have been retried (retries = {})",
        rec.retries
    );
    assert_eq!(faulted.report.members[1].retries, rec.retries);
    assert_eq!(faulted.report.members[1].status, "ok");
    assert_eq!(faulted.members[0].retries, 0, "healthy member, no retries");

    // The same ensemble with no fault plan is the reference.
    let mut clean_spec = spec.clone();
    clean_spec.members[1].fault_plan = None;
    clean_spec.output_dir = Some(scratch("recovery-ref"));
    let clean = run_ensemble(&clean_spec).unwrap();

    for id in 0..2 {
        assert_member_bit_equal(
            faulted.members[id].output().unwrap(),
            clean.members[id].output().unwrap(),
            &format!("member {id}"),
        );
    }
    // Byte-level check of the whole aggregate: beyond the retry counts,
    // the fault may only show in the recovered member's telemetry
    // digests (its phase calls describe the resumed segment, not the
    // full run — the failed attempt's telemetry dies with it). All
    // *science* values must be untouched.
    let mut normalized = faulted.report.clone();
    normalized.total_retries = 0;
    for m in &mut normalized.members {
        m.retries = 0;
    }
    normalized.members[1].phase_calls = clean.report.members[1].phase_calls.clone();
    normalized.members[1].counters = clean.report.members[1].counters.clone();
    assert_eq!(
        normalized.to_json().to_string_pretty(),
        clean.report.to_json().to_string_pretty(),
        "recovery must leave every science value in the report untouched"
    );
}

/// The determinism half of the contract: worker count and member
/// submission order are invisible in the aggregate report, byte for
/// byte.
#[test]
fn report_is_byte_identical_across_worker_counts_and_orders() {
    let mk_spec = || {
        let mut s = EnsembleSpec::seed_sweep(FoamConfig::tiny(5), 0.5, 3);
        s.output_dir = None; // pure in-memory members
        s
    };

    let reference = {
        let mut s = mk_spec();
        s.workers = 1;
        run_ensemble(&s).unwrap()
    };
    let reference_json = reference.report.to_json().to_string_pretty();
    assert_eq!(reference.report.n_ok, 3);
    assert!(reference_json.contains("\"schema\": \"foam-ensemble/1\""));

    for workers in [2, 8] {
        let mut s = mk_spec();
        s.workers = workers;
        let out = run_ensemble(&s).unwrap();
        assert_eq!(
            out.report.to_json().to_string_pretty(),
            reference_json,
            "report changed under workers = {workers}"
        );
    }

    // Reversed submission order: the scheduler sees the members in a
    // different order, the report must not.
    let mut s = mk_spec();
    s.workers = 2;
    s.members.reverse();
    let out = run_ensemble(&s).unwrap();
    assert_eq!(
        out.report.to_json().to_string_pretty(),
        reference_json,
        "report changed under reversed submission order"
    );

    // Cross-member telemetry is merged and carries every rank.
    let merged = reference.merged_telemetry.expect("telemetry is forced on");
    assert_eq!(merged.ranks.len(), FoamConfig::tiny(5).n_ranks());
}

/// A member whose retry budget cannot absorb the fault is marked
/// `failed` in the report; the ensemble completes and the statistics
/// come from the surviving members only.
#[test]
fn exhausted_member_is_marked_failed_without_failing_the_ensemble() {
    let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(9), 0.5, 2);
    spec.workers = 2;
    spec.retry = RetryPolicy {
        max_retries: 0,
        ..Default::default()
    };
    // Fail fast: with retries disabled there is nothing to recover, so
    // shrink the exchange's own retry protocol too.
    spec.base.runtime.sst_retry_timeout_secs = 0.05;
    spec.base.runtime.sst_retry_backoff_secs = 0.01;
    spec.members[0].fault_plan = Some(kill_sst_after(9, 1));

    let out = run_ensemble(&spec).unwrap();
    assert_eq!(out.report.n_ok, 1);
    assert_eq!(out.report.n_failed, 1);
    assert_eq!(out.report.members[0].status, "failed");
    assert!(out.report.members[0].error.is_some());
    assert!(out.members[0].result.is_err());

    // Statistics reduce over the one survivor: spread is exactly zero.
    assert_eq!(out.report.sst_mean_series.len(), 2);
    assert!(out.report.sst_spread_series.iter().all(|&s| s == 0.0));
    // A single survivor has no ensemble mean to compare patterns to.
    assert!(out.report.members[1].pattern_vs_ensemble_mean.is_none());

    let json = out.report.to_json().to_string_pretty();
    assert!(json.contains("\"n_failed\": 1"));
    assert!(json.contains("\"status\": \"failed\""));
}

/// Orchestration-level failures (as opposed to member failures) are
/// typed `EnsembleError`s, checked before any member starts.
#[test]
fn invalid_specs_are_rejected_up_front() {
    let spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(1), 1.0, 0);
    assert_eq!(run_ensemble(&spec).unwrap_err(), EnsembleError::NoMembers);

    let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(1), 1.0, 2);
    spec.base.dt_couple = f64::NAN;
    assert!(matches!(
        run_ensemble(&spec).unwrap_err(),
        EnsembleError::Member { id: 0, .. }
    ));
}
