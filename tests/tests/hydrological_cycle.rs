//! The closed hydrological cycle across crates: rain on land (physics)
//! → bucket → rivers (land) → mouths → ocean freshwater (coupler) — the
//! loop the paper closes "to avoid long-term ocean salinity drift".

use foam_coupler::{AtmSurfaceFields, Coupler};
use foam_grid::{AtmGrid, Field2, OceanGrid, World};
use foam_ocean::{OceanConfig, OceanModel};
use foam_physics::PhysicsConfig;

fn setup() -> (Coupler, Field2) {
    let world = World::earthlike();
    let atm_grid = AtmGrid::new(24, 16);
    let ocfg = OceanConfig::tiny();
    let ocn_grid = OceanGrid::mercator(ocfg.nx, ocfg.ny, ocfg.lat_max_deg);
    let sea_mask = OceanModel::effective_sea_mask(&ocfg, &world);
    let sst = Field2::from_fn(ocn_grid.nx, ocn_grid.ny, |i, j| {
        world
            .sst_climatology(ocn_grid.lons[i], ocn_grid.lats[j])
            .max(0.0)
    });
    (
        Coupler::new(
            atm_grid,
            ocn_grid,
            sea_mask,
            &world,
            PhysicsConfig::default(),
        ),
        sst,
    )
}

fn rainy_atmosphere(g: &AtmGrid) -> AtmSurfaceFields {
    AtmSurfaceFields {
        t_low: Field2::from_fn(g.nlon, g.nlat, |_i, j| 255.0 + 40.0 * g.lats[j].cos()),
        q_low: Field2::filled(g.nlon, g.nlat, 0.009),
        u_low: Field2::filled(g.nlon, g.nlat, 4.0),
        v_low: Field2::filled(g.nlon, g.nlat, 0.0),
        precip: Field2::filled(g.nlon, g.nlat, 2.0e-4), // ~17 mm/day
        sw_sfc: Field2::filled(g.nlon, g.nlat, 170.0),
        lw_down: Field2::filled(g.nlon, g.nlat, 330.0),
    }
}

#[test]
fn runoff_reaches_the_ocean_and_total_freshwater_is_bounded_by_rain() {
    let (c, sst) = setup();
    let mut st = c.init_state(&sst, |lat| 260.0 + 35.0 * lat.cos());
    // Pre-fill buckets so runoff starts immediately.
    for b in st.bucket.iter_mut() {
        b.soil_water = foam_land::hydrology::BUCKET_CAPACITY;
    }
    let atm = rainy_atmosphere(&c.atm_grid);
    let dt = 1800.0;
    // Spin long enough for rivers to deliver (weeks of simulated time).
    let mut delivered_to_ocean = 0.0; // kg
    for _day in 0..30 {
        for _ in 0..12 {
            c.step(&mut st, &atm, &sst, dt);
        }
        let f = c.take_ocean_forcing(&mut st);
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] {
                let area = c.ocn_grid.cell_area(ko % c.ocn_grid.nx, ko / c.ocn_grid.nx);
                // freshwater includes P − E over sea; isolate a lower
                // bound on total by just integrating (it must stay below
                // total water input).
                delivered_to_ocean += f.freshwater.as_slice()[ko] * area * 12.0 * dt;
            }
        }
    }
    assert!(
        delivered_to_ocean > 0.0,
        "no freshwater reached the ocean: {delivered_to_ocean}"
    );
    // Rivers must be active (water in transit).
    assert!(c.river.total_storage(&st.river) > 0.0);
    // Sanity bound: ocean freshwater gain cannot exceed all water
    // entering the system (rain over the whole planet).
    let total_rain: f64 = (0..c.atm_grid.len())
        .map(|ka| atm.precip.as_slice()[ka] * c.overlap.atm_cell_area(ka))
        .sum::<f64>()
        * 30.0
        * 12.0
        * dt;
    assert!(delivered_to_ocean < total_rain * 1.001);
}

#[test]
fn snow_accumulates_on_cold_land_and_reports_cover() {
    let (c, sst) = setup();
    let mut st = c.init_state(&sst, |_lat| 250.0); // frozen ground everywhere
    let mut atm = rainy_atmosphere(&c.atm_grid);
    atm.t_low.fill(258.0); // below freezing air
    atm.sw_sfc.fill(20.0); // polar-night-ish radiation
    atm.lw_down.fill(180.0);
    for _ in 0..48 {
        c.step(&mut st, &atm, &sst, 1800.0);
    }
    let snowy = (0..c.atm_grid.len())
        .filter(|&k| c.land[k] && st.bucket[k].snow > 1e-4)
        .count();
    let land_cells = c.land.iter().filter(|&&l| l).count();
    assert!(
        snowy * 2 > land_cells,
        "snow on {snowy} of {land_cells} land cells"
    );
    // Snow-covered wetness is 1 (paper: D_w = 1 for snow).
    for k in 0..c.atm_grid.len() {
        if c.land[k] && st.bucket[k].snow > 1e-4 {
            assert_eq!(st.bucket[k].wetness(), 1.0);
        }
    }
}

#[test]
fn soil_temperatures_respond_to_radiation() {
    let (c, sst) = setup();
    let mut st = c.init_state(&sst, |_| 280.0);
    let mut atm = rainy_atmosphere(&c.atm_grid);
    atm.precip.fill(0.0);
    atm.sw_sfc.fill(350.0); // strong sun
    atm.lw_down.fill(350.0);
    let k_land = (0..c.atm_grid.len())
        .find(|&k| c.land[k] && c.sea_frac[k] < 1e-6)
        .unwrap();
    let t0 = st.soil[k_land].skin();
    for _ in 0..24 {
        c.step(&mut st, &atm, &sst, 1800.0);
    }
    let t1 = st.soil[k_land].skin();
    assert!(
        t1 > t0 + 1.0,
        "soil should warm under strong sun: {t0} → {t1}"
    );
    assert!(t1 < 340.0, "soil runaway: {t1}");
}
