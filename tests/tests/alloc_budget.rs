//! The allocation budget of the hot loop, enforced (PERFORMANCE.md):
//! with [`CountingAlloc`] installed as this binary's global allocator,
//! a warmed-up atmosphere + coupler workspace step must make **zero**
//! heap allocations. This is the unit-level teeth behind the CI
//! century-smoke gate on `alloc.steady_allocs_per_year` — if a change
//! reintroduces per-step churn anywhere under `step_ws` /
//! `step_rows_ws` (spectral transforms, physics columns, tracer
//! advection, flux aggregation), this test names it long before the
//! bench notices.
//!
//! This file stays a single-test binary on purpose: the counters are
//! process-wide, so a sibling test allocating concurrently would make
//! the zero assertion racy.

use foam::{FoamConfig, World};
use foam_atm::{AtmForcing, AtmModel, AtmWorkspace};
use foam_coupler::{AtmSurfaceView, Coupler};
use foam_mpi::Universe;
use foam_ocean::OceanModel;
use foam_telemetry::alloc::{CountingAlloc, SteadyMeter};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn warmed_up_workspace_step_allocates_nothing() {
    let cfg = FoamConfig::tiny(7);
    Universe::run(1, move |comm| {
        let planet = World::earthlike();
        let model = AtmModel::new(cfg.atm.clone(), comm);
        let sea_mask = OceanModel::effective_sea_mask(&cfg.ocean, &planet);
        let ocn_grid =
            foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
        let coupler = Coupler::new(
            model.grid().clone(),
            ocn_grid,
            sea_mask,
            &planet,
            cfg.atm.physics,
        );
        let ocean = OceanModel::new(cfg.ocean.clone(), &planet);
        let sst = ocean.sst(&ocean.init_state(&planet));

        let mut state = model.init_state();
        let mut cstate = coupler.init_state(&sst, AtmModel::t_init);
        let mut export = model.initial_export(&state);
        let mut aws = AtmWorkspace::new(&model);
        let mut cws = coupler.workspace();
        let mut forcing = AtmForcing {
            fluxes: Vec::new(),
            t_sfc: Vec::new(),
            albedo: Vec::new(),
        };
        let mut full_runoff: Vec<f64> = Vec::new();
        let (j0, j1) = model.rows();
        let nlon = model.grid().nlon;
        let (ka0, ka1) = (j0 * nlon, j1 * nlon);

        let full_step = |state: &mut foam_atm::AtmState,
                         cstate: &mut foam_coupler::CouplerState,
                         export: &mut foam_atm::AtmExport,
                         aws: &mut AtmWorkspace,
                         cws: &mut foam_coupler::CouplerWorkspace,
                         forcing: &mut AtmForcing,
                         full_runoff: &mut Vec<f64>| {
            let view = AtmSurfaceView {
                t_low: &export.t_low,
                q_low: &export.q_low,
                u_low: &export.u_low,
                v_low: &export.v_low,
                precip: &export.precip,
                sw_sfc: &export.sw_sfc,
                lw_down: &export.lw_down,
            };
            coupler.step_rows_ws(cstate, view, &sst, cfg.atm.dt, ka0, ka1, ka0, cws);
            // Mirrors the driver: the (allgathered) global runoff lives
            // in its own reused buffer.
            full_runoff.clear();
            full_runoff.extend_from_slice(&cws.runoff[ka0..ka1]);
            coupler.route_rivers_ws(cstate, full_runoff, cfg.atm.dt, cws);
            forcing.fluxes.clear();
            forcing.fluxes.extend_from_slice(&cws.out.fluxes[ka0..ka1]);
            forcing.t_sfc.clear();
            forcing.t_sfc.extend_from_slice(&cws.out.t_sfc[ka0..ka1]);
            forcing.albedo.clear();
            forcing.albedo.extend_from_slice(&cws.out.albedo[ka0..ka1]);
            model.step_ws(state, comm, forcing, aws, export);
        };

        // Warm up: first steps may still grow buffers to their final
        // capacity (e.g. the forcing vectors, physics scratch).
        for _ in 0..3 {
            full_step(
                &mut state,
                &mut cstate,
                &mut export,
                &mut aws,
                &mut cws,
                &mut forcing,
                &mut full_runoff,
            );
        }

        // Steady state: the zero-churn rule, enforced literally.
        let meter = SteadyMeter::begin();
        for _ in 0..5 {
            full_step(
                &mut state,
                &mut cstate,
                &mut export,
                &mut aws,
                &mut cws,
                &mut forcing,
                &mut full_runoff,
            );
        }
        let d = meter.so_far();
        assert_eq!(
            d.allocations, 0,
            "steady-state workspace steps allocated {} times ({} bytes) — \
             the zero-churn rule regressed (see PERFORMANCE.md)",
            d.allocations, d.total_bytes
        );
    });
}
