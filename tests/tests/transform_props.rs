//! Property-based tests of the spectral transform machinery: the
//! analysis/synthesis pair must be exact (to rounding) for *any*
//! band-limited field, not just hand-picked ones.

use foam_spectral::{Complex, SpectralField, SphericalTransform, Truncation};
use proptest::prelude::*;

fn transform() -> SphericalTransform {
    SphericalTransform::new(foam_grid::AtmGrid::new(24, 16), Truncation::rhomboidal(5))
}

/// Strategy: random spectral coefficients in [-1, 1] (imaginary part of
/// m = 0 forced to zero, as required for a real field).
fn spec_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 36)
}

fn build_field(t: &SphericalTransform, coeffs: &[(f64, f64)]) -> SpectralField {
    let mut spec = SpectralField::zeros(t.trunc);
    for (idx, (m, n)) in t.trunc.pairs().enumerate() {
        let (re, im) = coeffs[idx];
        let im = if m == 0 { 0.0 } else { im };
        spec.set(m, n, Complex::new(re, im));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_identity_for_bandlimited_fields(coeffs in spec_strategy()) {
        let t = transform();
        let spec = build_field(&t, &coeffs);
        let grid = t.synthesize(&spec);
        let back = t.analyze(&grid);
        for (m, n) in t.trunc.pairs() {
            let d = back.get(m, n) - spec.get(m, n);
            prop_assert!(d.abs() < 1e-10, "({m},{n}): {d:?}");
        }
    }

    #[test]
    fn laplacian_and_inverse_cancel(coeffs in spec_strategy()) {
        let t = transform();
        let mut spec = build_field(&t, &coeffs);
        spec.set(0, 0, Complex::ZERO); // null space removed
        let round = spec.laplacian().inv_laplacian();
        for (m, n) in t.trunc.pairs() {
            let d = round.get(m, n) - spec.get(m, n);
            prop_assert!(d.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds(coeffs in spec_strategy()) {
        let t = transform();
        let spec = build_field(&t, &coeffs);
        let grid = t.synthesize(&spec);
        // Gaussian-quadrature mean square on the grid.
        let mut s = 0.0;
        for j in 0..t.grid.nlat {
            for i in 0..t.grid.nlon {
                s += t.grid.weights[j] * grid.get(i, j) * grid.get(i, j);
            }
        }
        let grid_ms = s / (2.0 * t.grid.nlon as f64);
        prop_assert!((grid_ms - spec.mean_square()).abs() < 1e-9 * (1.0 + grid_ms));
    }

    #[test]
    fn hyperdiffusion_is_a_contraction(coeffs in spec_strategy(), nu in 1e12f64..1e17, dt in 100.0f64..10_000.0) {
        let t = transform();
        let mut spec = build_field(&t, &coeffs);
        let before = spec.mean_square();
        spec.apply_hyperdiffusion(nu, dt);
        let after = spec.mean_square();
        prop_assert!(after <= before * (1.0 + 1e-12));
        // The (0,0) mode is untouched.
        prop_assert!((spec.get(0, 0).re - build_field(&t, &coeffs).get(0, 0).re).abs() < 1e-15);
    }
}

#[test]
fn fft_roundtrip_proptest_style_sweep() {
    // Deterministic sweep over lengths with pseudo-random signals; the
    // FFT must invert exactly for every smooth and prime length.
    use foam_spectral::fft::FftPlan;
    let mut seed = 99u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for n in [2usize, 3, 5, 7, 11, 13, 24, 30, 48, 60, 97, 128] {
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let y = plan.inverse(&plan.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9, "n = {n}");
        }
    }
}
