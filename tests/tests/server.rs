//! End-to-end tests of `foam-server`: the full submit → stream →
//! report lifecycle over real loopback HTTP, the single-flight and
//! content-cache contracts, and the crash-restart-resume guarantee
//! (kill the server mid-job, start a new one on the same root, get the
//! same report bits an uninterrupted run produces).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use foam_server::client::{get, post};
use foam_server::{Server, ServerConfig};
use foam_telemetry::json::{parse, Value};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "foam-server-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(root: &PathBuf) -> Server {
    let mut cfg = ServerConfig::new(root);
    cfg.workers = 2;
    Server::start(cfg, "127.0.0.1:0").expect("bind loopback")
}

fn json(body: &str) -> Value {
    parse(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing {key:?} in {v:?}"))
}

/// Poll a job until it reaches `done` (panicking on `failed`).
fn wait_done(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let state = json(&get(addr, &format!("/v1/jobs/{id}")).expect("poll").text());
        match field(&state, "state").as_str() {
            Some("done") => return state,
            Some("failed") => panic!("job {id} failed: {state:?}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

#[test]
fn submit_stream_report_end_to_end() {
    let root = scratch("e2e");
    let server = boot(&root);
    let addr = server.addr().to_string();

    assert_eq!(get(&addr, "/v1/healthz").unwrap().status, 200);

    // Submit a 1-day tiny run: 4 coupling intervals at 6 hours.
    let sub = post(
        &addr,
        "/v1/jobs",
        r#"{"preset":"tiny","seed":901,"days":1,"tenant":"ada"}"#,
    )
    .unwrap();
    assert_eq!(sub.status, 202, "{}", sub.text());
    let sv = json(&sub.text());
    let id = field(&sv, "id").as_str().expect("id").to_string();
    assert_eq!(id.len(), 16, "job id is the 16-hex content digest");
    assert_eq!(field(&sv, "cached"), &Value::Bool(false));

    // The progress stream: one NDJSON object per interval, strictly
    // increasing simulated days, then the final done event.
    let lines = get(&addr, &format!("/v1/jobs/{id}/progress"))
        .unwrap()
        .lines();
    assert_eq!(lines.len(), 5, "4 intervals + done event: {lines:?}");
    let mut last_day = 0.0;
    for line in &lines[..4] {
        let ev = json(line);
        let day = field(&ev, "day").as_f64().expect("day");
        assert!(day > last_day, "days must increase: {lines:?}");
        last_day = day;
        assert!(field(&ev, "mean_sst").as_f64().expect("sst").is_finite());
        assert_eq!(field(&ev, "n_intervals").as_f64(), Some(4.0));
    }
    let done = json(&lines[4]);
    assert_eq!(field(&done, "event").as_str(), Some("done"));
    assert_eq!(field(&done, "state").as_str(), Some("done"));

    // The report: deterministic schema, series matching the stream.
    let state = wait_done(&addr, &id);
    assert_eq!(field(&state, "executions").as_f64(), Some(1.0));
    let report = get(&addr, &format!("/v1/jobs/{id}/report")).unwrap();
    assert_eq!(report.status, 200);
    let rv = json(&report.text());
    assert_eq!(field(&rv, "schema").as_str(), Some("foam-server/1"));
    assert_eq!(field(&rv, "id").as_str(), Some(id.as_str()));
    let series = field(&rv, "mean_sst_series").as_array().expect("series");
    assert_eq!(series.len(), 4);
    assert_eq!(
        series[3].as_f64(),
        json(&lines[3]).get("mean_sst").and_then(Value::as_f64)
    );

    // Unknown endpoints and jobs answer typed errors, not hangs.
    assert_eq!(get(&addr, "/v1/jobs/ffffffffffffffff").unwrap().status, 404);
    assert_eq!(get(&addr, "/v1/nope").unwrap().status, 404);
    assert_eq!(
        post(&addr, "/v1/jobs", "{\"dayz\": 1}").unwrap().status,
        400
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_submissions_single_flight_and_cache_across_restart() {
    let root = scratch("dup");
    let server = boot(&root);
    let addr = server.addr().to_string();
    let spec = r#"{"preset":"tiny","seed":902,"days":1}"#;

    // N clients race the same content; everyone must land on one job.
    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let sub = post(&addr, "/v1/jobs", spec).expect("submit");
                    assert_eq!(sub.status, 202);
                    field(&json(&sub.text()), "id")
                        .as_str()
                        .expect("id")
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let id = ids[0].clone();
    assert!(ids.iter().all(|i| *i == id), "all submitters share one job");

    // Exactly one execution, every caller the same bytes.
    let state = wait_done(&addr, &id);
    assert_eq!(
        field(&state, "executions").as_f64(),
        Some(1.0),
        "single-flight must execute once: {state:?}"
    );
    let report = get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().body;
    for _ in 0..3 {
        assert_eq!(
            get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().body,
            report
        );
    }
    // A warm resubmission is a declared cache hit.
    let re = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    assert_eq!(field(&re, "cached"), &Value::Bool(true));
    server.shutdown();

    // Cold resubmit after restart: served from the on-disk cache with
    // zero executions — the model never runs again.
    let server = boot(&root);
    let addr = server.addr().to_string();
    let re = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    assert_eq!(field(&re, "cached"), &Value::Bool(true));
    assert_eq!(field(&re, "state").as_str(), Some("done"));
    assert_eq!(field(&re, "executions").as_f64(), Some(0.0));
    assert_eq!(
        get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().body,
        report,
        "cached report must be byte-identical across restarts"
    );
    // A cached job's progress stream is just the done event.
    let lines = get(&addr, &format!("/v1/jobs/{id}/progress"))
        .unwrap()
        .lines();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("\"event\": \"done\""));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killed_server_resumes_job_from_checkpoint_with_identical_report_bits() {
    let spec = r#"{"preset":"tiny","seed":903,"days":4,"ckpt_interval":2}"#;

    // Reference: the same content on an undisturbed server.
    let clean_root = scratch("resume-clean");
    let server = boot(&clean_root);
    let addr = server.addr().to_string();
    let sub = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    let id = field(&sub, "id").as_str().expect("id").to_string();
    wait_done(&addr, &id);
    let reference = get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().body;
    server.shutdown();
    let _ = std::fs::remove_dir_all(&clean_root);

    // Victim: same content, but the server "dies" mid-job — after at
    // least one committed checkpoint (interval 2 of 16), before the end.
    let root = scratch("resume");
    let server = boot(&root);
    let addr = server.addr().to_string();
    let sub = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    assert_eq!(
        field(&sub, "id").as_str(),
        Some(id.as_str()),
        "same content, same id"
    );
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let state = json(&get(&addr, &format!("/v1/jobs/{id}")).unwrap().text());
        let lines = field(&state, "progress_lines").as_f64().unwrap_or(0.0);
        if lines >= 3.0 {
            break; // the interval-2 snapshot is committed by now
        }
        assert!(
            field(&state, "state").as_str() != Some("done") && Instant::now() < deadline,
            "job finished before we could kill the server: {state:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown(); // cancels the running job; checkpoints stay on disk
    assert!(
        !root.join("cache").join(format!("{id}.json")).exists(),
        "the interrupted job must not have produced a report"
    );

    // Restart on the same root: the job is rediscovered from its
    // spec.json, resumed from its newest snapshot (not from scratch),
    // and converges to exactly the reference bits.
    let server = boot(&root);
    let addr = server.addr().to_string();
    let state = wait_done(&addr, &id);
    let resumed = field(&state, "resumed_from_interval")
        .as_f64()
        .expect("resumed job");
    assert!(
        resumed >= 2.0,
        "resume must start from a committed snapshot, got {resumed}"
    );
    assert_eq!(
        get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().body,
        reference,
        "a resumed job must converge to the same report bits"
    );
    // The completed job's checkpoint root is garbage-collected; the
    // cache entry replaces it.
    assert!(!root.join("jobs").join(format!("job-{id}")).exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancel_stops_a_running_job_and_keeps_it_resumable() {
    let root = scratch("cancel");
    let server = boot(&root);
    let addr = server.addr().to_string();
    // A long job we will never let finish.
    let sub = json(
        &post(
            &addr,
            "/v1/jobs",
            r#"{"preset":"tiny","seed":904,"days":30,"ckpt_interval":2}"#,
        )
        .unwrap()
        .text(),
    );
    let id = field(&sub, "id").as_str().expect("id").to_string();
    // Wait for it to actually run, then cancel.
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let state = json(&get(&addr, &format!("/v1/jobs/{id}")).unwrap().text());
        if field(&state, "progress_lines").as_f64().unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let cancel = post(&addr, &format!("/v1/jobs/{id}/cancel"), "").unwrap();
    assert_eq!(cancel.status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = json(&get(&addr, &format!("/v1/jobs/{id}")).unwrap().text());
        if field(&state, "state").as_str() == Some("failed") {
            assert_eq!(field(&state, "detail").as_str(), Some("cancelled"));
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // No report, but the checkpoints survive for a later resume.
    assert_eq!(
        get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().status,
        409
    );
    assert!(root.join("jobs").join(format!("job-{id}")).is_dir());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn ensemble_jobs_serve_the_deterministic_ensemble_report() {
    let root = scratch("ens");
    let server = boot(&root);
    let addr = server.addr().to_string();
    let spec = r#"{"kind":"ensemble","preset":"tiny","seed":905,"days":1,"members":2,"workers":2}"#;
    let sub = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    let id = field(&sub, "id").as_str().expect("id").to_string();
    wait_done(&addr, &id);
    let report = json(&get(&addr, &format!("/v1/jobs/{id}/report")).unwrap().text());
    assert_eq!(field(&report, "kind").as_str(), Some("ensemble"));
    let ens = field(&report, "ensemble");
    assert_eq!(field(ens, "schema").as_str(), Some(foam_ensemble::SCHEMA));
    assert_eq!(field(ens, "members").as_array().map(|m| m.len()), Some(2));
    // Same content resubmitted: cache hit, identical bytes.
    let re = json(&post(&addr, "/v1/jobs", spec).unwrap().text());
    assert_eq!(field(&re, "cached"), &Value::Bool(true));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
