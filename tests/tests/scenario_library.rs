//! The bundled experiment library, end to end: every scenario file
//! under `scenarios/` must parse, validate, and lower; the CO₂ ramp
//! must measurably warm the final mean SST relative to the control;
//! the reports of two library scenarios are pinned by golden files;
//! and a forced run interrupted mid-ramp must resume bit-identically
//! (the forcing is part of the snapshot contract, so resuming under
//! *different* forcings is a typed refusal).
//!
//! Regenerate the goldens after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p foam-tests --test scenario_library
//! ```

use std::path::{Path, PathBuf};

use foam::{try_resume_coupled, try_run_coupled, CkptConfig, CkptError, CoupledError};
use foam_scenario::{report, Scenario};
use proptest::prelude::*;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}"))
}

fn load(name: &str) -> Scenario {
    let path = scenarios_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Scenario::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foam-scenario-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn check_golden(name: &str, text: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        text, want,
        "report for {name} drifted from its golden; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn every_shipped_scenario_parses_validates_and_lowers() {
    let mut names = Vec::new();
    let mut digests = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let sc = Scenario::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Lowering must produce a validated config, and a validated
        // ensemble when a sweep is declared.
        let cfg = sc
            .config()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if sc.sweep.is_some() {
            let spec = sc.ensemble().unwrap().expect("sweep lowers to an ensemble");
            assert!(!spec.members.is_empty());
        }
        digests.push(sc.content_digest().unwrap());
        // File stem and scenario name agree (the library is browsable).
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        assert_eq!(sc.name, stem, "{}", path.display());
        names.push(stem);
        drop(cfg);
    }
    assert!(
        names.len() >= 6,
        "the library ships at least six scenarios, found {names:?}"
    );
    // Every scenario is distinct content: all digests unique.
    let mut unique = digests.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), digests.len(), "duplicate content digests");
}

#[test]
fn co2_ramp_warms_final_sst_vs_control_and_reports_match_goldens() {
    // Same seed, same preset, same horizon: the only difference is the
    // scenario's forcing content.
    let mut control = load("control.toml");
    let mut ramp = load("co2-ramp-1pct.toml");
    control.days = 4.0;
    ramp.days = 4.0;
    let ctl_out = try_run_coupled(&control.config().unwrap(), control.days).unwrap();
    let ramp_out = try_run_coupled(&ramp.config().unwrap(), ramp.days).unwrap();
    let ctl = ctl_out.final_mean_sst().unwrap();
    let rmp = ramp_out.final_mean_sst().unwrap();
    assert!(
        rmp > ctl + 1e-5,
        "rising CO₂ must measurably warm the final mean SST \
         (ramp {rmp:.10} vs control {ctl:.10})"
    );
    check_golden(
        "scenario_control.txt",
        &report::run_report(&control, &ctl_out),
    );
    check_golden(
        "scenario_co2_ramp.txt",
        &report::run_report(&ramp, &ramp_out),
    );
}

/// Run `days` of the ramp scenario straight, and interrupted at a
/// mid-ramp snapshot, and demand bit-identical output.
fn assert_resume_bit_identical(sc: &Scenario, dir: &Path) {
    let mut cfg = sc.config().unwrap();
    let straight = try_run_coupled(&cfg, sc.days).unwrap();

    cfg.ckpt = CkptConfig {
        dir: Some(dir.to_path_buf()),
        interval: 2,
        keep: 3,
        on_error: false,
        fault_plan: None,
    };
    // First leg stops mid-ramp (half the horizon), on a snapshot.
    let _part = try_run_coupled(&cfg, sc.days / 2.0).unwrap();
    let resumed = try_resume_coupled(&cfg, sc.days).unwrap();

    assert_eq!(
        resumed.mean_sst_series.len(),
        straight.mean_sst_series.len()
    );
    for (k, (a, b)) in resumed
        .mean_sst_series
        .iter()
        .zip(&straight.mean_sst_series)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "interval {k}: {a} vs {b}");
    }
    for (k, (a, b)) in resumed
        .final_sst
        .as_slice()
        .iter()
        .zip(straight.final_sst.as_slice())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "final SST cell {k}");
    }
}

proptest! {
    // Each case runs the real coupled model three times (straight,
    // first leg, resumed leg), so the case count stays small — the
    // property still sweeps the lowering paths: random ramp target and
    // shape, random solar constant, random aerosol pulse.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A scenario run interrupted at a mid-ramp snapshot and resumed
    /// reproduces the uninterrupted run bit-for-bit: the interpolated
    /// forcing trajectory after resume is identical because the series
    /// is static config (checkpoint-guarded), evaluated per simulated
    /// day.
    #[test]
    fn mid_ramp_resume_is_bit_identical(
        seed in 0u32..1000,
        to in 1.1f64..4.0,
        exponential in 0u32..2,
        solar in 0.97f64..1.03,
        peak in 0.05f64..0.5,
    ) {
        let shape = if exponential == 1 { "shape = exponential\n" } else { "" };
        let src = format!(
            "[scenario]\nname = \"t\"\nseed = {seed}\ndays = 2\n\
             [forcing.co2]\nkind = ramp\nfrom = 1.0\nto = {to}\nstart_day = 0\nend_day = 2\n{shape}\
             [forcing.solar]\nkind = constant\nvalue = {solar}\n\
             [forcing.aerosol]\nkind = pulse\npeak = {peak}\nonset_day = 0\n\
             rise_days = 1\ndecay_days = 1\n"
        );
        let sc = Scenario::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let dir = scratch(&format!("prop-{seed}-{exponential}"));
        assert_resume_bit_identical(&sc, &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resuming_under_different_forcings_is_a_typed_refusal() {
    let src = "[scenario]\nname = \"t\"\nseed = 9\ndays = 2\n\
               [forcing.co2]\nkind = ramp\nfrom = 1.0\nto = 1.5\nstart_day = 0\nend_day = 2\n";
    let sc = Scenario::parse(src).unwrap();
    let dir = scratch("mismatch");
    let mut cfg = sc.config().unwrap();
    cfg.ckpt = CkptConfig {
        dir: Some(dir.clone()),
        interval: 2,
        keep: 2,
        on_error: false,
        fault_plan: None,
    };
    let _ = try_run_coupled(&cfg, 1.0).unwrap();

    // Same geometry, different ramp: the snapshot must refuse.
    let other = Scenario::parse(&src.replace("to = 1.5", "to = 2.0")).unwrap();
    let mut cfg2 = other.config().unwrap();
    cfg2.ckpt = cfg.ckpt.clone();
    let err = try_resume_coupled(&cfg2, 2.0).unwrap_err();
    assert!(
        matches!(err, CoupledError::Ckpt(CkptError::ConfigMismatch(_))),
        "{err}"
    );

    // Different static solar scale: also refused.
    let mut cfg3 = cfg.clone();
    cfg3.atm.physics.rad.solar_scale = 1.05;
    let err = try_resume_coupled(&cfg3, 2.0).unwrap_err();
    assert!(
        matches!(err, CoupledError::Ckpt(CkptError::ConfigMismatch(_))),
        "{err}"
    );

    // The original configuration still resumes fine.
    assert!(try_resume_coupled(&cfg, 2.0).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
