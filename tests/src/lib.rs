//! `foam-tests` — cross-crate integration and property tests.
//!
//! This crate has no library code of its own: everything lives under
//! `tests/`, where each file exercises a seam that no single crate's
//! unit tests can reach — the full coupled system, checkpoint/restart
//! determinism, communication resilience under fault injection, the
//! hydrological cycle's conservation budget, and the telemetry
//! reduction's algebra. See ROADMAP.md for the tier the CI gates on.
