//! The river routing model (after Miller, Russell & Caliri, as used by
//! FOAM's coupler).
//!
//! Each land cell gets one of its eight neighbours as a flow direction;
//! flow out of a cell is F = V·u/d with a constant effective velocity
//! u = 0.35 m/s (the paper's verbatim constant) and d the downstream
//! distance. Coastal outflow becomes a freshwater point source (a river
//! mouth) for the ocean, closing the hydrological cycle.
//!
//! The original sets directions from observed topography, hand-tuned so
//! basin boundaries match; our synthetic planet instead derives them from
//! the breadth-first distance to the coast, which guarantees every land
//! cell drains to the sea with no interior sinks (the same *topological*
//! property the hand-tuning establishes).

use foam_grid::constants::EARTH_RADIUS;
use foam_grid::{AtmGrid, Field2};

/// Effective river flow velocity \[m/s\] (Miller et al., used verbatim in
/// the paper).
pub const FLOW_VELOCITY: f64 = 0.35;

/// Static routing structure on the atmosphere grid.
#[derive(Debug, Clone)]
pub struct RiverModel {
    nlon: usize,
    nlat: usize,
    /// `true` = land (rivers live on land cells).
    pub is_land: Vec<bool>,
    /// Downstream cell (flat index) for each land cell.
    pub downstream: Vec<Option<u32>>,
    /// Distance to the downstream cell \[m\].
    dist: Vec<f64>,
    /// Cell areas \[m²\].
    area: Vec<f64>,
}

/// River water volumes \[m³\] per cell.
#[derive(Debug, Clone)]
pub struct RiverState {
    pub volume: Vec<f64>,
}

impl foam_ckpt::Codec for RiverState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.volume.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(RiverState {
            volume: Vec::<f64>::decode(r)?,
        })
    }
}

impl RiverModel {
    /// Build routing from a land mask by steepest descent of the
    /// breadth-first coast distance (8-connected).
    pub fn build(grid: &AtmGrid, is_land: &[bool]) -> Self {
        let (nlon, nlat) = (grid.nlon, grid.nlat);
        assert_eq!(is_land.len(), nlon * nlat);
        // BFS distance to the nearest sea cell.
        let mut dist = vec![u32::MAX; nlon * nlat];
        let mut queue = std::collections::VecDeque::new();
        for (k, &land) in is_land.iter().enumerate() {
            if !land {
                dist[k] = 0;
                queue.push_back(k);
            }
        }
        let neighbours = |k: usize| -> Vec<usize> {
            let i = k % nlon;
            let j = k / nlon;
            let mut out = Vec::with_capacity(8);
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let jj = j as i64 + dj;
                    if jj < 0 || jj >= nlat as i64 {
                        continue;
                    }
                    let ii = (i as i64 + di).rem_euclid(nlon as i64);
                    out.push(jj as usize * nlon + ii as usize);
                }
            }
            out
        };
        while let Some(k) = queue.pop_front() {
            for n in neighbours(k) {
                if dist[n] == u32::MAX {
                    dist[n] = dist[k] + 1;
                    queue.push_back(n);
                }
            }
        }

        // Flow direction: the neighbour closest to the coast; among ties,
        // a deterministic hash of the cell index picks one so parallel
        // rivers on flat distance plateaus do not all merge.
        let mut downstream = vec![None; nlon * nlat];
        let mut ddist = vec![0.0; nlon * nlat];
        for k in 0..nlon * nlat {
            if !is_land[k] {
                continue;
            }
            let mut best: Option<usize> = None;
            let mut best_key = (u32::MAX, u64::MAX);
            for n in neighbours(k) {
                let tie = hash2(k as u64, n as u64);
                if (dist[n], tie) < best_key {
                    best_key = (dist[n], tie);
                    best = Some(n);
                }
            }
            let b = best.expect("land cell with no neighbours");
            downstream[k] = Some(b as u32);
            ddist[k] = cell_distance(grid, k, b);
        }

        let area = (0..nlon * nlat)
            .map(|k| grid.cell_area(k % nlon, k / nlon))
            .collect();
        RiverModel {
            nlon,
            nlat,
            is_land: is_land.to_vec(),
            downstream,
            dist: ddist,
            area,
        }
    }

    pub fn init_state(&self) -> RiverState {
        RiverState {
            volume: vec![0.0; self.nlon * self.nlat],
        }
    }

    /// Advance one step.
    ///
    /// `runoff` is the local runoff per land cell \[m of water over the
    /// step\]. Returns the freshwater delivered to each *sea* cell of the
    /// atmosphere grid \[kg m⁻² s⁻¹\] (the coupler regrids it to the
    /// ocean) — the river mouths of the paper.
    pub fn step(&self, state: &mut RiverState, runoff: &[f64], dt: f64) -> Field2 {
        let mut outflow = Vec::new();
        let mut mouths = Field2::zeros(self.nlon, self.nlat);
        self.step_into(state, runoff, dt, &mut outflow, &mut mouths);
        mouths
    }

    /// [`RiverModel::step`] with caller-owned scratch (`outflow`) and
    /// output (`mouths`, atmosphere shape) — allocation-free once the
    /// scratch has grown to grid size, and bit-identical to the
    /// allocating form: both buffers are reset to exactly the zeros a
    /// fresh allocation would hold before the update runs.
    ///
    /// ```
    /// use foam_grid::{AtmGrid, Field2, World};
    /// use foam_land::river::RiverModel;
    ///
    /// let grid = AtmGrid::new(8, 6);
    /// let land = World::earthlike().atm_land_mask(&grid);
    /// let river = RiverModel::build(&grid, &land);
    /// let runoff = vec![1.0e-4; grid.len()];
    ///
    /// let mut a = river.init_state();
    /// let mut b = a.clone();
    /// let fresh = river.step(&mut a, &runoff, 1800.0);
    /// let mut outflow = Vec::new();
    /// let mut mouths = Field2::filled(8, 6, -1.0); // stale contents
    /// river.step_into(&mut b, &runoff, 1800.0, &mut outflow, &mut mouths);
    /// assert_eq!(fresh.as_slice(), mouths.as_slice()); // bit-identical
    /// assert_eq!(a.volume, b.volume);
    /// ```
    pub fn step_into(
        &self,
        state: &mut RiverState,
        runoff: &[f64],
        dt: f64,
        outflow: &mut Vec<f64>,
        mouths: &mut Field2,
    ) {
        let _t = foam_telemetry::scope("rivers");
        let n = self.nlon * self.nlat;
        assert_eq!(runoff.len(), n);
        assert_eq!((mouths.nx(), mouths.ny()), (self.nlon, self.nlat));
        // Add local runoff volume.
        for k in 0..n {
            if self.is_land[k] && runoff[k] > 0.0 {
                state.volume[k] += runoff[k] * self.area[k];
            }
        }
        // F = V·u/d, capped so a cell cannot export more than it holds.
        outflow.clear();
        outflow.resize(n, 0.0);
        for k in 0..n {
            if self.is_land[k] {
                let f = state.volume[k] * FLOW_VELOCITY / self.dist[k].max(1.0);
                outflow[k] = (f * dt).min(state.volume[k]);
            }
        }
        mouths.fill(0.0);
        for k in 0..n {
            if !self.is_land[k] || outflow[k] == 0.0 {
                continue;
            }
            state.volume[k] -= outflow[k];
            let d = self.downstream[k].unwrap() as usize;
            if self.is_land[d] {
                state.volume[d] += outflow[k];
            } else {
                // River mouth: convert m³ over the step into kg m⁻² s⁻¹
                // on the receiving sea cell.
                let flux = outflow[k] * 1000.0 / (self.area[d] * dt);
                mouths[(d % self.nlon, d / self.nlon)] += flux;
            }
        }
    }

    /// Total river water in storage \[m³\].
    pub fn total_storage(&self, state: &RiverState) -> f64 {
        state.volume.iter().sum()
    }

    /// Number of hops from cell `k` to the sea (for tests/diagnostics);
    /// `None` if a cycle is detected.
    pub fn hops_to_sea(&self, mut k: usize) -> Option<usize> {
        let mut hops = 0;
        while self.is_land[k] {
            k = self.downstream[k]? as usize;
            hops += 1;
            if hops > self.nlon * self.nlat {
                return None;
            }
        }
        Some(hops)
    }
}

/// Great-circle distance between the centres of two atmosphere cells \[m\].
fn cell_distance(grid: &AtmGrid, a: usize, b: usize) -> f64 {
    let (ia, ja) = (a % grid.nlon, a / grid.nlon);
    let (ib, jb) = (b % grid.nlon, b / grid.nlon);
    let (lo1, la1) = (grid.lons[ia], grid.lats[ja]);
    let (lo2, la2) = (grid.lons[ib], grid.lats[jb]);
    let c = la1.sin() * la2.sin() + la1.cos() * la2.cos() * (lo1 - lo2).cos();
    EARTH_RADIUS * c.clamp(-1.0, 1.0).acos()
}

#[inline]
fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F);
    x ^= x >> 31;
    x = x.wrapping_mul(0xD6E8FEB86659FD93);
    x ^ (x >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::World;

    fn setup() -> (AtmGrid, RiverModel) {
        let grid = AtmGrid::new(24, 16);
        let world = World::earthlike();
        let mask = world.atm_land_mask(&grid);
        let model = RiverModel::build(&grid, &mask);
        (grid, model)
    }

    #[test]
    fn every_land_cell_drains_to_the_sea() {
        let (_g, model) = setup();
        for k in 0..model.is_land.len() {
            if model.is_land[k] {
                let hops = model.hops_to_sea(k);
                assert!(hops.is_some(), "cycle or sink at cell {k}");
                assert!(hops.unwrap() >= 1);
            }
        }
    }

    #[test]
    fn runoff_eventually_reaches_the_ocean_in_full() {
        let (grid, model) = setup();
        let mut state = model.init_state();
        let n = grid.len();
        // One burst of 1 cm runoff on every land cell.
        let runoff: Vec<f64> = (0..n)
            .map(|k| if model.is_land[k] { 0.01 } else { 0.0 })
            .collect();
        let zero = vec![0.0; n];
        let dt = 86_400.0;
        let injected: f64 = (0..n)
            .filter(|&k| model.is_land[k])
            .map(|k| 0.01 * grid.cell_area(k % grid.nlon, k / grid.nlon))
            .sum();
        let mut delivered = 0.0;
        let mouths = model.step(&mut state, &runoff, dt);
        delivered += mouth_volume(&grid, &mouths, dt);
        for _ in 0..2000 {
            let mouths = model.step(&mut state, &zero, dt);
            delivered += mouth_volume(&grid, &mouths, dt);
            if model.total_storage(&state) < 1e-6 * injected {
                break;
            }
        }
        assert!(
            (delivered / injected - 1.0).abs() < 1e-6,
            "delivered {delivered} of {injected} (left {})",
            model.total_storage(&state)
        );
    }

    fn mouth_volume(grid: &AtmGrid, mouths: &Field2, dt: f64) -> f64 {
        let mut v = 0.0;
        for j in 0..grid.nlat {
            for i in 0..grid.nlon {
                v += mouths.get(i, j) * grid.cell_area(i, j) * dt / 1000.0;
            }
        }
        v
    }

    #[test]
    fn water_in_transit_is_conserved_each_step() {
        let (grid, model) = setup();
        let mut state = model.init_state();
        let n = grid.len();
        let runoff: Vec<f64> = (0..n)
            .map(|k| if model.is_land[k] { 2.0e-4 } else { 0.0 })
            .collect();
        let dt = 21_600.0;
        for _ in 0..50 {
            let before = model.total_storage(&state);
            let injected: f64 = (0..n)
                .filter(|&k| model.is_land[k])
                .map(|k| 2.0e-4 * grid.cell_area(k % grid.nlon, k / grid.nlon))
                .sum();
            let mouths = model.step(&mut state, &runoff, dt);
            let after = model.total_storage(&state);
            let out = mouth_volume(&grid, &mouths, dt);
            let residual = before + injected - out - after;
            assert!(
                residual.abs() < 1e-6 * injected.max(1.0),
                "residual {residual}"
            );
        }
    }

    #[test]
    fn delay_is_finite_and_velocity_sized() {
        // A cell ~2000 km inland at 0.35 m/s should take weeks, not one
        // step and not forever: check the farthest cell's transit time.
        let (_grid, model) = setup();
        let max_hops = (0..model.is_land.len())
            .filter(|&k| model.is_land[k])
            .filter_map(|k| model.hops_to_sea(k))
            .max()
            .unwrap();
        assert!(max_hops >= 3, "continents should have interiors");
        assert!(max_hops < 40, "drainage paths unreasonably long");
    }

    #[test]
    fn mouths_are_coastal_sea_cells() {
        let (grid, model) = setup();
        let mut state = model.init_state();
        let n = grid.len();
        let runoff: Vec<f64> = (0..n)
            .map(|k| if model.is_land[k] { 0.01 } else { 0.0 })
            .collect();
        let zero = vec![0.0; n];
        let mut mouths_acc = Field2::zeros(grid.nlon, grid.nlat);
        let mouths = model.step(&mut state, &runoff, 86_400.0);
        mouths_acc.axpy(1.0, &mouths);
        for _ in 0..100 {
            let m = model.step(&mut state, &zero, 86_400.0);
            mouths_acc.axpy(1.0, &m);
        }
        let mut n_mouths = 0;
        for j in 0..grid.nlat {
            for i in 0..grid.nlon {
                if mouths_acc.get(i, j) > 0.0 {
                    let k = grid.idx(i, j);
                    assert!(!model.is_land[k], "mouth on land at ({i},{j})");
                    n_mouths += 1;
                }
            }
        }
        assert!(
            n_mouths > 5,
            "expected multiple river mouths, got {n_mouths}"
        );
    }
}
