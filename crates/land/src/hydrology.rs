//! The 15-cm bucket hydrology (Manabe 1969 / Budyko 1956 — the scheme
//! FOAM retains from CCM1/early CCM2).

use foam_grid::constants::L_FUS;

/// Bucket capacity \[m of liquid water\] — the paper's 15 cm, verbatim.
pub const BUCKET_CAPACITY: f64 = 0.15;
/// Snow deeper than this (liquid equivalent) is shed to the river model
/// "to mimic the near-equilibrium of the Greenland and Antarctic ice
/// sheets" \[m\] — the paper's 1 m, verbatim.
pub const SNOW_CAP: f64 = 1.0;
/// Soil moisture at which evaporation becomes unrestricted (fraction of
/// capacity); below it the wetness factor D_w falls linearly.
pub const FIELD_FRACTION: f64 = 0.75;
/// Density of water \[kg/m³\] for flux conversions.
pub const RHO_WATER: f64 = 1000.0;

/// One land cell's water stores.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bucket {
    /// Soil moisture \[m of liquid water\], 0 ..= capacity.
    pub soil_water: f64,
    /// Snow pack \[m liquid-water equivalent\].
    pub snow: f64,
}

impl foam_ckpt::Codec for Bucket {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.soil_water.encode(buf);
        self.snow.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(Bucket {
            soil_water: f64::decode(r)?,
            snow: f64::decode(r)?,
        })
    }
}

/// What one hydrology step produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct HydroOutput {
    /// Runoff sent to the river model \[m of water over the step\].
    pub runoff: f64,
    /// Snow melted \[m over the step\] (already added to the bucket).
    pub melt: f64,
    /// Latent heat consumed by the melt \[J/m²\] (cools the surface).
    pub melt_energy: f64,
    /// Whether snow covers the ground after the step.
    pub snow_covered: bool,
}

impl Bucket {
    /// Wetness factor D_w for the latent heat flux: 1 for snow-covered
    /// ground (and, in the coupler, for ocean/ice), else a linear ramp in
    /// soil moisture up to 75 % of capacity (standard bucket closure).
    pub fn wetness(&self) -> f64 {
        if self.snow > 1.0e-4 {
            1.0
        } else {
            (self.soil_water / (FIELD_FRACTION * BUCKET_CAPACITY)).clamp(0.0, 1.0)
        }
    }

    /// Advance one step.
    ///
    /// * `precip` — precipitation rate \[kg m⁻² s⁻¹\],
    /// * `evap` — evaporation rate \[kg m⁻² s⁻¹\] (removes snow first,
    ///   then soil water),
    /// * `snowing` — true when the paper's criterion holds (ground and
    ///   the two lowest atmosphere levels below freezing),
    /// * `skin_t` — surface temperature \[K\] (melts snow above 0 °C),
    /// * `dt` — step \[s\].
    pub fn step(
        &mut self,
        precip: f64,
        evap: f64,
        snowing: bool,
        skin_t: f64,
        dt: f64,
    ) -> HydroOutput {
        let mut out = HydroOutput::default();
        let p = precip.max(0.0) * dt / RHO_WATER; // m over the step
        let e = evap * dt / RHO_WATER;

        if snowing {
            self.snow += p;
        } else {
            self.soil_water += p;
        }

        // Evaporation: snow sublimates first, then soil dries.
        let mut e_rem = e;
        if e_rem > 0.0 {
            let from_snow = e_rem.min(self.snow);
            self.snow -= from_snow;
            e_rem -= from_snow;
            let from_soil = e_rem.min(self.soil_water);
            self.soil_water -= from_soil;
        } else {
            // Dew/frost deposit.
            self.soil_water -= e_rem; // e_rem negative
        }

        // Snow melt when the skin is above freezing: bounded by an energy
        // budget (all available melt happens at a capped rate so a single
        // warm step cannot flash a deep pack).
        if skin_t > 273.15 && self.snow > 0.0 {
            let melt_rate = 3.0e-7 * (skin_t - 273.15); // m/s per K
            let melt = (melt_rate * dt).min(self.snow);
            self.snow -= melt;
            self.soil_water += melt;
            out.melt = melt;
            out.melt_energy = melt * RHO_WATER * L_FUS;
        }

        // Bucket overflow → runoff.
        if self.soil_water > BUCKET_CAPACITY {
            out.runoff += self.soil_water - BUCKET_CAPACITY;
            self.soil_water = BUCKET_CAPACITY;
        }
        // Ice-sheet equilibrium: shed snow beyond 1 m to the rivers.
        if self.snow > SNOW_CAP {
            out.runoff += self.snow - SNOW_CAP;
            self.snow = SNOW_CAP;
        }
        out.snow_covered = self.snow > 1.0e-4;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rain_fills_bucket_then_runs_off() {
        let mut b = Bucket::default();
        // 10 mm/h of rain for 20 hours = 0.2 m > capacity.
        let mut total_runoff = 0.0;
        for _ in 0..20 {
            let out = b.step(10.0 / 3600.0, 0.0, false, 285.0, 3600.0);
            total_runoff += out.runoff;
        }
        assert!((b.soil_water - BUCKET_CAPACITY).abs() < 1e-12);
        assert!((total_runoff - 0.05).abs() < 1e-9, "runoff {total_runoff}");
    }

    #[test]
    fn wetness_ramp() {
        let mut b = Bucket::default();
        assert_eq!(b.wetness(), 0.0);
        b.soil_water = FIELD_FRACTION * BUCKET_CAPACITY / 2.0;
        assert!((b.wetness() - 0.5).abs() < 1e-12);
        b.soil_water = BUCKET_CAPACITY;
        assert_eq!(b.wetness(), 1.0);
        // Snow forces D_w = 1 (paper: snow covered surfaces have D_w = 1).
        let snowy = Bucket {
            soil_water: 0.0,
            snow: 0.05,
        };
        assert_eq!(snowy.wetness(), 1.0);
    }

    #[test]
    fn snowfall_accumulates_and_caps_at_one_meter() {
        let mut b = Bucket::default();
        let mut shed = 0.0;
        // Heavy snowfall, frozen ground.
        for _ in 0..2000 {
            let out = b.step(5.0 / 3600.0, 0.0, true, 260.0, 3600.0);
            shed += out.runoff;
        }
        assert!((b.snow - SNOW_CAP).abs() < 1e-9, "snow {}", b.snow);
        assert!(shed > 0.5, "excess snow must reach the rivers: {shed}");
    }

    #[test]
    fn melt_moves_snow_to_soil_and_costs_energy() {
        let mut b = Bucket {
            soil_water: 0.0,
            snow: 0.10,
        };
        let out = b.step(0.0, 0.0, false, 278.15, 86_400.0);
        assert!(out.melt > 0.0);
        assert!(b.snow < 0.10);
        assert!((b.soil_water - out.melt).abs() < 1e-12);
        assert!((out.melt_energy - out.melt * RHO_WATER * L_FUS).abs() < 1e-6);
    }

    #[test]
    fn evaporation_takes_snow_first() {
        let mut b = Bucket {
            soil_water: 0.05,
            snow: 0.001,
        };
        b.step(0.0, 1.0e-4, false, 270.0, 3600.0);
        // 1e-4 kg/m²/s · 3600 s = 0.36 mm; snow (1 mm) partially consumed.
        assert!(b.snow < 0.001);
        assert!((b.soil_water - 0.05).abs() < 1e-12);
    }

    #[test]
    fn water_is_conserved() {
        let mut b = Bucket::default();
        let mut in_total = 0.0;
        let mut out_total = 0.0;
        let dt = 1800.0;
        for step in 0..500 {
            let p = if step % 3 == 0 { 8.0e-4 } else { 0.0 };
            let e = 5.0e-5;
            let snowing = step % 7 == 0;
            let stored_before = b.soil_water + b.snow;
            let out = b.step(p, e, snowing, 280.0, dt);
            let stored_after = b.soil_water + b.snow;
            let actually_evap =
                (stored_before + p * dt / RHO_WATER - out.runoff - stored_after).max(0.0);
            in_total += p * dt / RHO_WATER;
            out_total += out.runoff + actually_evap;
        }
        let residual = in_total - out_total - (b.soil_water + b.snow);
        assert!(
            residual.abs() < 1e-9,
            "water budget residual {residual} (in {in_total}, out {out_total})"
        );
    }

    #[test]
    fn dew_deposits_water() {
        let mut b = Bucket::default();
        b.step(0.0, -2.0e-5, false, 280.0, 3600.0);
        assert!(b.soil_water > 0.0);
    }
}
