//! `foam-land` — the land-surface pieces owned by FOAM's coupler.
//!
//! In FOAM the coupler is "essentially a model of the land surface and
//! atmosphere-ocean interface". This crate supplies the land half:
//!
//! * [`soil`] — the 4-layer heat-diffusion soil model with per-type heat
//!   capacities, conductivities, roughness and albedo (5 soil classes
//!   derived from vegetation data in the original; our synthetic planet
//!   provides the same 5 classes). Sea ice is "treated as another soil
//!   type", so the ice column lives here too.
//! * [`hydrology`] — the 15-cm bucket model (after Manabe and Budyko):
//!   precipitation fills the bucket or the snow pack, the bucket level
//!   sets the wetness factor D_w used in the latent-heat flux, overflow
//!   becomes runoff, snow deeper than 1 m (liquid equivalent) is shed to
//!   the rivers to mimic ice-sheet equilibrium.
//! * [`river`] — the Miller et al. river-routing model: one flow
//!   direction per land cell, F = V·u/d with u = 0.35 m/s, mouths
//!   injecting fresh water into coastal ocean cells — closing the
//!   hydrological cycle, which the paper needs to avoid long-term ocean
//!   salinity drift.

pub mod hydrology;
pub mod river;
pub mod soil;

pub use hydrology::{Bucket, HydroOutput};
pub use river::{RiverModel, RiverState};
pub use soil::{ice_column, SoilColumn, SoilProperties};

/// FOAM divides the ice–atmosphere stress by 15 before passing it to the
/// ocean (paper §"The FOAM Coupler", verbatim constant).
pub const ICE_STRESS_FACTOR: f64 = 1.0 / 15.0;

/// Sea-ice formation is treated as a flux of 2 m of water out of the
/// ocean (paper, verbatim constant) \[m\].
pub const ICE_FORMATION_WATER: f64 = 2.0;
