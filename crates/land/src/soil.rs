//! The 4-layer soil heat-diffusion column (CCM2's land surface, used by
//! FOAM's coupler), with sea ice as a fifth "soil" configuration.

/// Thermal and radiative properties of a soil class.
#[derive(Debug, Clone, Copy)]
pub struct SoilProperties {
    /// Volumetric heat capacity \[J m⁻³ K⁻¹\].
    pub heat_capacity: f64,
    /// Thermal conductivity \[W m⁻¹ K⁻¹\].
    pub conductivity: f64,
    /// Shortwave albedo (effective single band; CCM2 carries two bands —
    /// visible and near-IR — whose mean this represents).
    pub albedo: f64,
    /// Roughness length \[m\].
    pub roughness: f64,
}

/// Properties for the five land classes (desert, grassland, forest,
/// tundra, land ice) in that order — mirrors
/// `foam_grid::world::SoilType`.
pub const SOIL_CLASSES: [SoilProperties; 5] = [
    // Desert
    SoilProperties {
        heat_capacity: 1.2e6,
        conductivity: 0.30,
        albedo: 0.33,
        roughness: 0.01,
    },
    // Grassland
    SoilProperties {
        heat_capacity: 2.0e6,
        conductivity: 0.80,
        albedo: 0.20,
        roughness: 0.05,
    },
    // Forest
    SoilProperties {
        heat_capacity: 2.5e6,
        conductivity: 1.00,
        albedo: 0.13,
        roughness: 1.0,
    },
    // Tundra
    SoilProperties {
        heat_capacity: 2.2e6,
        conductivity: 0.60,
        albedo: 0.25,
        roughness: 0.03,
    },
    // Land ice
    SoilProperties {
        heat_capacity: 1.9e6,
        conductivity: 2.2,
        albedo: 0.70,
        roughness: 5.0e-4,
    },
];

impl foam_ckpt::Codec for SoilProperties {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.heat_capacity.encode(buf);
        self.conductivity.encode(buf);
        self.albedo.encode(buf);
        self.roughness.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(SoilProperties {
            heat_capacity: f64::decode(r)?,
            conductivity: f64::decode(r)?,
            albedo: f64::decode(r)?,
            roughness: f64::decode(r)?,
        })
    }
}

/// Layer thicknesses \[m\], top to bottom.
pub const SOIL_DZ: [f64; 4] = [0.05, 0.20, 0.60, 2.00];

/// A 4-layer soil (or sea-ice) column.
#[derive(Debug, Clone, Copy)]
pub struct SoilColumn {
    /// Layer temperatures \[K\], index 0 at the surface.
    pub t: [f64; 4],
    pub props: SoilProperties,
}

impl foam_ckpt::Codec for SoilColumn {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.t.encode(buf);
        self.props.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(SoilColumn {
            t: <[f64; 4]>::decode(r)?,
            props: SoilProperties::decode(r)?,
        })
    }
}

impl SoilColumn {
    /// Start isothermal at `t0` \[K\].
    pub fn new(props: SoilProperties, t0: f64) -> Self {
        SoilColumn { t: [t0; 4], props }
    }

    /// Skin (radiating/flux) temperature \[K\].
    #[inline]
    pub fn skin(&self) -> f64 {
        self.t[0]
    }

    /// Advance by `dt` with a prescribed net heat flux *into* the surface
    /// \[W/m²\] and a zero-flux bottom boundary. Implicit (backward Euler)
    /// — unconditionally stable for the 30-minute coupler step.
    pub fn step(&mut self, net_flux: f64, dt: f64) {
        let n = 4;
        let cap = self.props.heat_capacity;
        let k = self.props.conductivity;
        // Interface conductances [W m⁻² K⁻¹].
        let mut g = [0.0; 3];
        for i in 0..3 {
            g[i] = k / (0.5 * (SOIL_DZ[i] + SOIL_DZ[i + 1]));
        }
        // Tridiagonal backward Euler: C dz dT/dt = flux divergence.
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        let mut c = [0.0; 4];
        let mut d = [0.0; 4];
        for i in 0..n {
            let cz = cap * SOIL_DZ[i];
            let gu = if i > 0 { g[i - 1] } else { 0.0 };
            let gd = if i < n - 1 { g[i] } else { 0.0 };
            b[i] = cz / dt + gu + gd;
            if i > 0 {
                a[i] = -gu;
            }
            if i < n - 1 {
                c[i] = -gd;
            }
            d[i] = cz / dt * self.t[i] + if i == 0 { net_flux } else { 0.0 };
        }
        // Thomas solve.
        let mut cp = [0.0; 4];
        let mut dp = [0.0; 4];
        cp[0] = c[0] / b[0];
        dp[0] = d[0] / b[0];
        for i in 1..n {
            let den = b[i] - a[i] * cp[i - 1];
            cp[i] = c[i] / den;
            dp[i] = (d[i] - a[i] * dp[i - 1]) / den;
        }
        self.t[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            self.t[i] = dp[i] - cp[i] * self.t[i + 1];
        }
    }

    /// Total heat content relative to 0 K \[J/m²\].
    pub fn heat_content(&self) -> f64 {
        (0..4)
            .map(|i| self.props.heat_capacity * SOIL_DZ[i] * self.t[i])
            .sum()
    }
}

/// A sea-ice column: FOAM treats ice as another soil type with prescribed
/// roughness and albedo; the ocean below clamps its base near freezing.
pub fn ice_column(t0: f64) -> SoilColumn {
    SoilColumn::new(
        SoilProperties {
            heat_capacity: 1.9e6,
            conductivity: 2.2,
            albedo: 0.60,
            roughness: 5.0e-4,
        },
        t0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heating_warms_top_first() {
        let mut col = SoilColumn::new(SOIL_CLASSES[1], 280.0);
        col.step(300.0, 1800.0);
        assert!(col.t[0] > 280.0);
        assert!(col.t[0] > col.t[1]);
        assert!(col.t[3] < 280.05, "deep layer responds too fast");
    }

    #[test]
    fn energy_balance_matches_flux_input() {
        let mut col = SoilColumn::new(SOIL_CLASSES[2], 285.0);
        let h0 = col.heat_content();
        let flux = 150.0;
        let dt = 1800.0;
        for _ in 0..10 {
            col.step(flux, dt);
        }
        let h1 = col.heat_content();
        let expected = flux * dt * 10.0;
        assert!(
            ((h1 - h0) / expected - 1.0).abs() < 1e-9,
            "gained {} vs input {}",
            h1 - h0,
            expected
        );
    }

    #[test]
    fn zero_flux_preserves_equilibrium() {
        let mut col = SoilColumn::new(SOIL_CLASSES[0], 290.0);
        col.step(0.0, 86_400.0);
        for t in col.t {
            assert!((t - 290.0).abs() < 1e-9);
        }
    }

    #[test]
    fn large_dt_is_stable() {
        let mut col = SoilColumn::new(SOIL_CLASSES[3], 260.0);
        col.step(-200.0, 86_400.0); // a full day of strong cooling
        assert!(col.t.iter().all(|t| t.is_finite() && *t > 200.0));
        // Monotone profile under steady cooling, bounded drop.
        assert!(col.t[0] < col.t[3]);
        assert!(col.t[0] > 260.0 - 60.0);
    }

    #[test]
    fn desert_skin_swings_more_than_forest() {
        let mut desert = SoilColumn::new(SOIL_CLASSES[0], 290.0);
        let mut forest = SoilColumn::new(SOIL_CLASSES[2], 290.0);
        desert.step(400.0, 1800.0);
        forest.step(400.0, 1800.0);
        assert!(
            desert.skin() > forest.skin(),
            "desert {} vs forest {}",
            desert.skin(),
            forest.skin()
        );
    }

    #[test]
    fn soil_classes_cover_expected_albedo_ordering() {
        // Ice brightest, forest darkest.
        let albedos: Vec<f64> = SOIL_CLASSES.iter().map(|p| p.albedo).collect();
        assert!(albedos[4] > albedos[0]); // ice > desert
        assert!(albedos[2] < albedos[1]); // forest < grassland
        let ice = ice_column(260.0);
        assert!(ice.props.albedo >= 0.5);
    }
}
