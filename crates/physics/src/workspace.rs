//! Pre-allocated scratch for the per-column physics hot path.
//!
//! The column physics runs in every grid column on every step; each of
//! its stages historically allocated its working vectors on entry
//! (heights, tridiagonal bands, radiation sweeps, …) — roughly a dozen
//! heap allocations per column per step, the single largest allocation
//! source after the spectral transform. [`PhysicsWorkspace`] owns all of
//! that scratch so the `_ws`/`_into` variants of the physics entry
//! points ([`crate::pbl::vertical_diffusion_ws`],
//! [`crate::convection::convect_ws`],
//! [`crate::radiation::full_radiation_into`],
//! [`crate::ColumnPhysics::step_with_fluxes_ws`]) run allocation-free
//! in steady state.
//!
//! Buffers are sized lazily with the crate-internal `fit` helper
//! (clear + resize): each call clears and resizes
//! to the column at hand, so one workspace serves columns of different
//! depths (the dynamics' physics columns and the coupler's reference
//! columns); capacity grows to the largest column seen and is then
//! reused forever. Every `_ws` variant is bit-identical to its
//! allocating original — the workspace only changes *where* the scratch
//! lives, never the arithmetic performed on it (see PERFORMANCE.md).

/// Reusable scratch buffers for one column-physics engine.
///
/// The workspace is plain data: create it once per rank (or per thread)
/// and thread it through the `_ws` entry points. Dropping it between
/// steps merely forfeits the reuse; no correctness depends on its
/// contents, which are overwritten on every call.
///
/// ```
/// use foam_physics::pbl::{vertical_diffusion, vertical_diffusion_ws};
/// use foam_physics::{AtmColumn, PhysicsWorkspace};
///
/// let mut ws = PhysicsWorkspace::new();
/// let mut a = AtmColumn::standard(10, 290.0);
/// let mut b = a.clone();
/// vertical_diffusion(&mut a, 1800.0, 60.0, 1200.0);
/// vertical_diffusion_ws(&mut b, 1800.0, 60.0, 1200.0, &mut ws);
/// // Bit-identical to the allocating path.
/// assert_eq!(a.t, b.t);
/// assert_eq!(a.q, b.q);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysicsWorkspace {
    // Vertical diffusion: geometry, couplings, θ/q work vectors.
    pub(crate) z: Vec<f64>,
    pub(crate) m: Vec<f64>,
    pub(crate) g: Vec<f64>,
    pub(crate) exner: Vec<f64>,
    pub(crate) theta: Vec<f64>,
    pub(crate) q: Vec<f64>,
    // Tridiagonal solve bands (rebuilt per solve from `g`/`m`).
    pub(crate) band_a: Vec<f64>,
    pub(crate) band_b: Vec<f64>,
    pub(crate) band_c: Vec<f64>,
    pub(crate) band_cp: Vec<f64>,
    pub(crate) band_dp: Vec<f64>,
    // Deep convection heating increments.
    pub(crate) dts: Vec<f64>,
    // Radiation sweeps: emissivity, Planck source, interface fluxes.
    pub(crate) eps: Vec<f64>,
    pub(crate) planck: Vec<f64>,
    pub(crate) down: Vec<f64>,
    pub(crate) up: Vec<f64>,
}

impl PhysicsWorkspace {
    /// An empty workspace; buffers grow on first use and are reused
    /// thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace with every buffer pre-reserved for columns of up to
    /// `nlev` levels, so even the event-driven stages (deep convection
    /// fills `dts` only when a column actually convects) never touch
    /// the allocator mid-run. Prefer this in hot loops that must hold
    /// the zero-churn rule from the very first step.
    ///
    /// ```
    /// use foam_physics::PhysicsWorkspace;
    ///
    /// let ws = PhysicsWorkspace::with_levels(8);
    /// // Same empty workspace as `new()`, just born at capacity.
    /// assert_eq!(format!("{ws:?}"), format!("{:?}", PhysicsWorkspace::new()));
    /// ```
    pub fn with_levels(nlev: usize) -> Self {
        let mut ws = Self::default();
        // Interface sweeps (`down`/`up`) span nlev + 1 boundaries; the
        // rest are per-layer. Reserving the max everywhere is simplest
        // and costs a few hundred bytes once.
        let cap = nlev + 1;
        for v in [
            &mut ws.z,
            &mut ws.m,
            &mut ws.g,
            &mut ws.exner,
            &mut ws.theta,
            &mut ws.q,
            &mut ws.band_a,
            &mut ws.band_b,
            &mut ws.band_c,
            &mut ws.band_cp,
            &mut ws.band_dp,
            &mut ws.dts,
            &mut ws.eps,
            &mut ws.planck,
            &mut ws.down,
            &mut ws.up,
        ] {
            v.reserve_exact(cap);
        }
        ws
    }
}

/// Clear `v` and refill it with `n` zeros, reusing capacity. In steady
/// state (capacity ≥ `n`) this touches no allocator.
pub(crate) fn fit(v: &mut Vec<f64>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}
