//! The per-column physics driver: the sequence CCM runs in every grid
//! column every time step, with the radiation cache refreshed twice per
//! simulated day.

#[cfg(test)]
use foam_grid::constants::L_VAP;
use foam_grid::constants::STEFAN_BOLTZMANN;

use crate::column::{saturation_humidity, AtmColumn};
use crate::convection::{convect_ws, ConvectionParams};
use crate::pbl::vertical_diffusion_ws;
use crate::radiation::{full_radiation_into, OrbitalState, RadCache, RadParams};
use crate::surface::{bulk_fluxes_fixed_z0, bulk_fluxes_ocean, roughness, BulkFluxes, BulkInput};
use crate::workspace::PhysicsWorkspace;

/// What kind of surface underlies a column (sets roughness and the flux
/// formula family; the coupler blends land/sea within a cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurfaceKind {
    /// Open ocean: CCM3 wind-dependent roughness.
    Ocean,
    /// Sea ice: fixed small roughness, wetness 1.
    SeaIce,
    /// Land with a given roughness length \[m\].
    Land { z0: f64 },
    /// Snow-covered land.
    Snow,
}

/// The surface as the atmosphere sees it for one column and step.
#[derive(Debug, Clone, Copy)]
pub struct SurfaceState {
    pub kind: SurfaceKind,
    /// Surface (skin/SST) temperature \[K\].
    pub t_sfc: f64,
    /// Shortwave albedo.
    pub albedo: f64,
    /// Wetness factor D_w ∈ \[0, 1\].
    pub wetness: f64,
}

impl SurfaceState {
    pub fn open_ocean(sst_k: f64) -> Self {
        SurfaceState {
            kind: SurfaceKind::Ocean,
            t_sfc: sst_k,
            albedo: 0.07,
            wetness: 1.0,
        }
    }
}

/// Which generation of CCM moist physics to emulate. The paper's §6:
/// initial FOAM runs with CCM2 physics represented the tropical Pacific
/// poorly; adopting the CCM3 moist physics (deep convection,
/// re-evaporating stratiform rain, wind-dependent ocean roughness)
/// "vastly improved" it. `Ccm3` is the production setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhysicsVintage {
    /// Hack-only convection, no precip evaporation, fixed ocean
    /// roughness.
    Ccm2,
    /// The upgraded moist physics FOAM adopted.
    #[default]
    Ccm3,
}

/// Physics configuration.
#[derive(Debug, Clone, Copy)]
pub struct PhysicsConfig {
    pub rad: RadParams,
    pub conv: ConvectionParams,
    /// Seconds between full radiation recomputations (paper: twice per
    /// simulated day → 43 200 s).
    pub rad_refresh: f64,
    /// Near-surface PBL diffusivity for unstable conditions \[m²/s\].
    pub k_pbl_unstable: f64,
    /// ... and for stable conditions.
    pub k_pbl_stable: f64,
    /// PBL depth scale \[m\].
    pub pbl_depth: f64,
    /// Reference height of the lowest model level \[m\].
    pub z_ref: f64,
    /// Use the full diurnal cycle (true) or daily-mean insolation.
    pub diurnal: bool,
    /// CCM2 or CCM3 moist physics (paper §6).
    pub vintage: PhysicsVintage,
    /// Axial tilt \[deg\] driving the seasonal cycle (23.45 = present
    /// day; paleo scenarios set Milankovitch values).
    pub obliquity_deg: f64,
}

impl PhysicsConfig {
    /// The CCM2-era configuration the paper started from.
    pub fn ccm2() -> Self {
        PhysicsConfig {
            conv: crate::convection::ConvectionParams::ccm2(),
            vintage: PhysicsVintage::Ccm2,
            ..Default::default()
        }
    }
}

impl Default for PhysicsConfig {
    fn default() -> Self {
        PhysicsConfig {
            rad: RadParams::default(),
            conv: ConvectionParams::default(),
            rad_refresh: 43_200.0,
            k_pbl_unstable: 60.0,
            k_pbl_stable: 5.0,
            pbl_depth: 1200.0,
            z_ref: 70.0,
            diurnal: true,
            vintage: PhysicsVintage::Ccm3,
            obliquity_deg: crate::radiation::OBLIQUITY_PRESENT_DEG,
        }
    }
}

/// Everything one physics step hands back to the dynamics/coupler.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhysicsTendencies {
    /// Turbulent fluxes at the surface (positive upward).
    pub fluxes: BulkFluxes,
    /// Precipitation reaching the surface over the step \[kg/m²\].
    pub precip: f64,
    /// Shortwave absorbed by the surface \[W/m²\].
    pub sw_sfc: f64,
    /// Downwelling longwave at the surface \[W/m²\].
    pub lw_down_sfc: f64,
    /// Net heat *into* the surface \[W/m²\]:
    /// SW + LW↓ − σT_s⁴ − SH − LH.
    pub net_sfc_heat: f64,
    /// Column cloud fraction (from the radiation cache).
    pub cloud: f64,
    /// Convective work units this step (load-imbalance driver).
    pub iterations: usize,
}

/// The stateless column-physics engine.
#[derive(Debug, Clone, Default)]
pub struct ColumnPhysics {
    pub cfg: PhysicsConfig,
}

impl ColumnPhysics {
    pub fn new(cfg: PhysicsConfig) -> Self {
        ColumnPhysics { cfg }
    }

    /// Whether a full radiation refresh is due at simulated time `t`
    /// given step `dt` (fires when a refresh boundary is crossed).
    /// (Callers must also refresh once before the first step; the
    /// schedule only reports boundary crossings.)
    pub fn radiation_due(&self, sim_t: f64, dt: f64) -> bool {
        let r = self.cfg.rad_refresh;
        (sim_t / r).floor() != ((sim_t + dt) / r).floor()
    }

    /// Compute the turbulent surface fluxes for a column over a given
    /// surface, without modifying the column — used by the coupler, which
    /// evaluates fluxes on the overlap grid with each side's own surface
    /// state (paper Fig. 1b).
    pub fn surface_fluxes(
        &self,
        col: &AtmColumn,
        sfc: &SurfaceState,
        wind: (f64, f64),
    ) -> BulkFluxes {
        let n = col.nlev();
        let inp = BulkInput {
            u: wind.0,
            v: wind.1,
            t_air: col.t[n - 1],
            q_air: col.q[n - 1],
            t_sfc: sfc.t_sfc,
            q_sfc_sat: saturation_humidity(sfc.t_sfc, 1.0e5),
            wetness: sfc.wetness,
            z_ref: self.cfg.z_ref,
        };
        match sfc.kind {
            SurfaceKind::Ocean => match self.cfg.vintage {
                PhysicsVintage::Ccm3 => bulk_fluxes_ocean(&inp),
                // CCM2: constant ocean roughness length instead of the
                // wind/stability-diagnosed one.
                PhysicsVintage::Ccm2 => bulk_fluxes_fixed_z0(&inp, 1.0e-4),
            },
            SurfaceKind::SeaIce => bulk_fluxes_fixed_z0(&inp, roughness::ICE),
            SurfaceKind::Snow => bulk_fluxes_fixed_z0(&inp, roughness::SNOW),
            SurfaceKind::Land { z0 } => bulk_fluxes_fixed_z0(&inp, z0),
        }
    }

    /// Advance one column by `dt` seconds.
    ///
    /// * `wind` — lowest-model-level wind (from the dynamics) \[m/s\],
    /// * `lon`, `lat` — column position \[rad\],
    /// * `cache` — radiation cache, refreshed when `refresh` is true.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &self,
        col: &mut AtmColumn,
        sfc: &SurfaceState,
        wind: (f64, f64),
        orb: OrbitalState,
        lon: f64,
        lat: f64,
        cache: &mut RadCache,
        refresh: bool,
        dt: f64,
    ) -> PhysicsTendencies {
        let fluxes = self.surface_fluxes(col, sfc, wind);
        self.step_with_fluxes(col, sfc, fluxes, orb, lon, lat, cache, refresh, dt)
    }

    /// Advance one column by `dt` seconds with surface fluxes supplied
    /// externally (computed by the coupler on the overlap grid).
    ///
    /// Allocating convenience wrapper over
    /// [`ColumnPhysics::step_with_fluxes_ws`]; hot loops should hold a
    /// [`PhysicsWorkspace`] and call that directly.
    #[allow(clippy::too_many_arguments)]
    pub fn step_with_fluxes(
        &self,
        col: &mut AtmColumn,
        sfc: &SurfaceState,
        fluxes: BulkFluxes,
        orb: OrbitalState,
        lon: f64,
        lat: f64,
        cache: &mut RadCache,
        refresh: bool,
        dt: f64,
    ) -> PhysicsTendencies {
        let mut ws = PhysicsWorkspace::new();
        self.step_with_fluxes_ws(col, sfc, fluxes, orb, lon, lat, cache, refresh, dt, &mut ws)
    }

    /// Allocation-free [`ColumnPhysics::step_with_fluxes`]: every stage
    /// (radiation refresh, PBL diffusion, convection) borrows its
    /// scratch from `ws`. Bit-identical to the allocating form.
    ///
    /// ```
    /// use foam_physics::{
    ///     AtmColumn, ColumnPhysics, OrbitalState, PhysicsWorkspace, RadCache, SurfaceState,
    /// };
    ///
    /// let e = ColumnPhysics::default();
    /// let sfc = SurfaceState::open_ocean(300.0);
    /// let orb = OrbitalState::at(81.0 * 86_400.0);
    /// let mut ws = PhysicsWorkspace::new();
    /// let (mut a, mut b) = (AtmColumn::standard(18, 299.0), AtmColumn::standard(18, 299.0));
    /// let (mut ca, mut cb) = (RadCache::empty(18), RadCache::empty(18));
    /// let f = e.surface_fluxes(&a, &sfc, (5.0, 0.0));
    /// let ta = e.step_with_fluxes(&mut a, &sfc, f, orb, 3.1, 0.1, &mut ca, true, 1800.0);
    /// let tb = e.step_with_fluxes_ws(&mut b, &sfc, f, orb, 3.1, 0.1, &mut cb, true, 1800.0, &mut ws);
    /// assert_eq!(a.t, b.t);
    /// assert_eq!(ta.precip, tb.precip);
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn step_with_fluxes_ws(
        &self,
        col: &mut AtmColumn,
        sfc: &SurfaceState,
        fluxes: BulkFluxes,
        orb: OrbitalState,
        lon: f64,
        lat: f64,
        cache: &mut RadCache,
        refresh: bool,
        dt: f64,
        ws: &mut PhysicsWorkspace,
    ) -> PhysicsTendencies {
        let n = col.nlev();

        // 1. Radiation: expensive refresh on schedule, cheap solar
        //    rescale otherwise.
        if refresh {
            full_radiation_into(col, sfc.t_sfc, sfc.albedo, &self.cfg.rad, ws, cache);
        }
        let cosz = if self.cfg.diurnal {
            orb.cos_zenith(lon, lat)
        } else {
            orb.daily_mean_cosz(lat)
        };
        for k in 0..n {
            col.t[k] += cache.heating(k, cosz) * dt;
        }

        // 2. Deposit the surface fluxes into the lowest layer.
        let m_low = col.layer_mass(n - 1);
        col.t[n - 1] += fluxes.sensible * dt / (foam_grid::constants::CP_DRY * m_low);
        col.q[n - 1] = (col.q[n - 1] + fluxes.evaporation * dt / m_low).max(0.0);

        // 3. Boundary-layer mixing, stronger when the surface heats the
        //    air from below.
        let k_pbl = if sfc.t_sfc > col.t[n - 1] {
            self.cfg.k_pbl_unstable
        } else {
            self.cfg.k_pbl_stable
        };
        vertical_diffusion_ws(col, dt, k_pbl, self.cfg.pbl_depth, ws);

        // 4. Convection + stratiform condensation.
        let conv = convect_ws(col, dt, &self.cfg.conv, ws);

        let net_sfc_heat = cache.sw_sfc(cosz) + cache.lw_down_sfc
            - STEFAN_BOLTZMANN * sfc.t_sfc.powi(4)
            - fluxes.sensible
            - fluxes.latent;

        PhysicsTendencies {
            fluxes,
            precip: conv.total_precip(),
            sw_sfc: cache.sw_sfc(cosz),
            lw_down_sfc: cache.lw_down_sfc,
            net_sfc_heat,
            cloud: cache.cloud,
            iterations: conv.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ColumnPhysics {
        ColumnPhysics::default()
    }

    fn noon_tropics() -> (OrbitalState, f64, f64) {
        (
            OrbitalState {
                day_of_year: 81.0,
                seconds_utc: 0.0,
                obliquity_deg: crate::radiation::OBLIQUITY_PRESENT_DEG,
            },
            std::f64::consts::PI, // lon at local noon
            0.1,                  // ~6°N
        )
    }

    #[test]
    fn radiation_refresh_schedule_fires_twice_daily() {
        let e = engine();
        let dt = 1800.0;
        let mut count = 0;
        let steps_per_day = 48;
        for s in 0..steps_per_day {
            if e.radiation_due(s as f64 * dt, dt) {
                count += 1;
            }
        }
        // Boundary crossings at 12 h and 24 h.
        assert_eq!(count, 2, "expected 2 refreshes/day, got {count}");
        assert!(!e.radiation_due(1800.0, 1800.0));
    }

    #[test]
    fn tropical_ocean_column_rains_and_stays_finite() {
        let e = engine();
        let mut col = AtmColumn::standard(18, 300.0);
        let sfc = SurfaceState::open_ocean(302.0);
        let (orb, lon, lat) = noon_tropics();
        let mut cache = RadCache::empty(18);
        let mut total_precip = 0.0;
        for step in 0..48 {
            let t = step as f64 * 1800.0;
            let refresh = e.radiation_due(t, 1800.0);
            let orb_t = OrbitalState {
                seconds_utc: t % 86_400.0,
                ..orb
            };
            let out = e.step(
                &mut col,
                &sfc,
                (6.0, 1.0),
                orb_t,
                lon,
                lat,
                &mut cache,
                refresh,
                1800.0,
            );
            total_precip += out.precip;
            assert!(col
                .t
                .iter()
                .all(|t| t.is_finite() && (150.0..360.0).contains(t)));
            assert!(col.q.iter().all(|q| (0.0..0.1).contains(q)));
        }
        // A warm pool column must rain over a day (mm/day scale).
        assert!(
            total_precip > 0.5,
            "tropical precip over one day = {total_precip} kg/m²"
        );
    }

    #[test]
    fn net_surface_heat_has_sane_magnitude_over_ocean() {
        let e = engine();
        let mut col = AtmColumn::standard(18, 295.0);
        let sfc = SurfaceState::open_ocean(295.0);
        let (orb, lon, lat) = noon_tropics();
        let mut cache = RadCache::empty(18);
        let out = e.step(
            &mut col,
            &sfc,
            (7.0, 0.0),
            orb,
            lon,
            lat,
            &mut cache,
            true,
            1800.0,
        );
        // At local noon the ocean gains heat; magnitude below solar const.
        assert!(out.net_sfc_heat > 0.0, "noon net heat {}", out.net_sfc_heat);
        assert!(out.net_sfc_heat < 1200.0);
        // At midnight (no SW) it loses heat.
        let midnight = OrbitalState {
            day_of_year: 81.0,
            seconds_utc: 43_200.0,
            obliquity_deg: crate::radiation::OBLIQUITY_PRESENT_DEG,
        };
        let out2 = e.step(
            &mut col,
            &sfc,
            (7.0, 0.0),
            midnight,
            lon,
            lat,
            &mut cache,
            false,
            1800.0,
        );
        assert!(
            out2.net_sfc_heat < 0.0,
            "night net heat {}",
            out2.net_sfc_heat
        );
    }

    #[test]
    fn work_counter_reflects_cloudy_vs_clear_imbalance() {
        let e = engine();
        let (orb, lon, _) = noon_tropics();
        let mut cache1 = RadCache::empty(18);
        let mut cache2 = RadCache::empty(18);
        // Warm, moist, unstable tropics vs cold stable high latitude.
        let mut tropics = AtmColumn::standard(18, 303.0);
        tropics.t[17] += 4.0;
        tropics.q[17] = saturation_humidity(tropics.t[17], 1.0e5) * 0.95;
        let mut polar = AtmColumn::standard(18, 260.0);
        let out_t = e.step(
            &mut tropics,
            &SurfaceState::open_ocean(305.0),
            (5.0, 0.0),
            orb,
            lon,
            0.05,
            &mut cache1,
            true,
            1800.0,
        );
        let out_p = e.step(
            &mut polar,
            &SurfaceState {
                kind: SurfaceKind::SeaIce,
                t_sfc: 255.0,
                albedo: 0.6,
                wetness: 1.0,
            },
            (5.0, 0.0),
            orb,
            lon,
            1.2,
            &mut cache2,
            true,
            1800.0,
        );
        assert!(
            out_t.iterations > out_p.iterations,
            "tropics {} vs polar {}",
            out_t.iterations,
            out_p.iterations
        );
    }

    #[test]
    fn evaporation_feeds_column_water_budget() {
        let e = engine();
        let mut col = AtmColumn::standard(18, 295.0);
        // Dry the column so nothing precipitates this step.
        for q in col.q.iter_mut() {
            *q *= 0.3;
        }
        let w0 = col.precipitable_water();
        let sfc = SurfaceState::open_ocean(299.0);
        let (orb, lon, lat) = noon_tropics();
        let mut cache = RadCache::empty(18);
        let out = e.step(
            &mut col,
            &sfc,
            (10.0, 0.0),
            orb,
            lon,
            lat,
            &mut cache,
            true,
            1800.0,
        );
        let w1 = col.precipitable_water();
        let gained = w1 - w0 + out.precip;
        let expected = out.fluxes.evaporation * 1800.0;
        assert!(
            (gained - expected).abs() < 0.05 * expected.abs().max(1e-6),
            "water budget: gained {gained} vs evap input {expected}"
        );
    }

    #[test]
    fn latent_flux_consistent_with_evaporation() {
        let f = BulkFluxes {
            evaporation: 3.0e-5,
            latent: 3.0e-5 * L_VAP,
            ..Default::default()
        };
        assert!((f.latent / f.evaporation - L_VAP).abs() < 1e-9);
    }
}

#[cfg(test)]
mod vintage_driver_tests {
    use super::*;

    #[test]
    fn ccm2_ocean_drag_ignores_wind_speed() {
        let phys2 = ColumnPhysics::new(PhysicsConfig::ccm2());
        let phys3 = ColumnPhysics::new(PhysicsConfig::default());
        let col = AtmColumn::standard(18, 295.0);
        let sfc = SurfaceState::open_ocean(296.0);
        let d2_lo = phys2.surface_fluxes(&col, &sfc, (3.0, 0.0)).c_exchange;
        let d2_hi = phys2.surface_fluxes(&col, &sfc, (20.0, 0.0)).c_exchange;
        let d3_lo = phys3.surface_fluxes(&col, &sfc, (3.0, 0.0)).c_exchange;
        let d3_hi = phys3.surface_fluxes(&col, &sfc, (20.0, 0.0)).c_exchange;
        // CCM3's Charnock roughness grows with wind much more than the
        // CCM2 constant-roughness stability effect alone.
        assert!(
            (d3_hi / d3_lo) > 1.15 * (d2_hi / d2_lo),
            "CCM3 ratio {} vs CCM2 ratio {}",
            d3_hi / d3_lo,
            d2_hi / d2_lo
        );
    }

    #[test]
    fn vintage_defaults_to_ccm3() {
        assert_eq!(PhysicsConfig::default().vintage, PhysicsVintage::Ccm3);
        assert_eq!(PhysicsConfig::ccm2().vintage, PhysicsVintage::Ccm2);
        assert!(!PhysicsConfig::ccm2().conv.deep_enabled);
    }
}
