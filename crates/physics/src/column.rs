//! The atmospheric column state and thermodynamic helpers.

use foam_grid::constants::{CP_DRY, GRAVITY, R_DRY};

/// One atmospheric column: pressure levels (top → bottom), temperature
/// and specific humidity. FOAM's atmosphere uses 18 levels.
#[derive(Debug, Clone)]
pub struct AtmColumn {
    /// Mid-layer pressures \[Pa\], increasing downward (k = 0 is the top).
    pub p: Vec<f64>,
    /// Layer pressure thicknesses \[Pa\].
    pub dp: Vec<f64>,
    /// Temperature \[K\].
    pub t: Vec<f64>,
    /// Specific humidity \[kg/kg\].
    pub q: Vec<f64>,
}

impl AtmColumn {
    /// An isothermal, moderately moist column on equally spaced pressure
    /// layers between `p_top` and 10⁵ Pa.
    pub fn isothermal(nlev: usize, p_top: f64, t0: f64) -> Self {
        let p_bot = 1.0e5;
        let d = (p_bot - p_top) / nlev as f64;
        let p: Vec<f64> = (0..nlev).map(|k| p_top + (k as f64 + 0.5) * d).collect();
        let q = p
            .iter()
            .map(|&pk| 0.5 * saturation_humidity(t0, pk))
            .collect();
        AtmColumn {
            p,
            dp: vec![d; nlev],
            t: vec![t0; nlev],
            q,
        }
    }

    /// A column with a realistic tropospheric lapse rate (6.5 K/km
    /// equivalent in pressure coordinates) and humidity decreasing with
    /// height; `t_sfc` in K.
    pub fn standard(nlev: usize, t_sfc: f64) -> Self {
        let mut c = Self::isothermal(nlev, 2000.0, t_sfc);
        for k in 0..nlev {
            // T ∝ (p/p0)^(Rd Γ / g ρ...) — use the dry-adiabatic-like
            // power law with exponent 0.19 (≈ 6.5 K/km).
            c.t[k] = t_sfc * (c.p[k] / 1.0e5).powf(0.19);
            let rh = 0.75 * (c.p[k] / 1.0e5).powf(1.5);
            c.q[k] = rh * saturation_humidity(c.t[k], c.p[k]);
        }
        c
    }

    #[inline]
    pub fn nlev(&self) -> usize {
        self.p.len()
    }

    /// Potential temperature of layer `k` referenced to 1000 hPa.
    #[inline]
    pub fn theta(&self, k: usize) -> f64 {
        self.t[k] * (1.0e5 / self.p[k]).powf(R_DRY / CP_DRY)
    }

    /// Layer mass per unit area \[kg/m²\]: Δp / g.
    #[inline]
    pub fn layer_mass(&self, k: usize) -> f64 {
        self.dp[k] / GRAVITY
    }

    /// Column-integrated water vapour \[kg/m²\].
    pub fn precipitable_water(&self) -> f64 {
        (0..self.nlev())
            .map(|k| self.q[k] * self.layer_mass(k))
            .sum()
    }

    /// Column moist enthalpy ∫(c_p T + L q) dm \[J/m²\].
    pub fn moist_enthalpy(&self) -> f64 {
        (0..self.nlev())
            .map(|k| {
                (CP_DRY * self.t[k] + foam_grid::constants::L_VAP * self.q[k]) * self.layer_mass(k)
            })
            .sum()
    }

    /// Relative humidity of layer `k`, clipped to \[0, 1.5\].
    #[inline]
    pub fn rel_humidity(&self, k: usize) -> f64 {
        (self.q[k] / saturation_humidity(self.t[k], self.p[k])).clamp(0.0, 1.5)
    }

    /// Approximate geopotential height of layer `k` above the surface
    /// \[m\] (hypsometric, layer-by-layer from the bottom).
    pub fn height(&self, k: usize) -> f64 {
        let n = self.nlev();
        let mut z = 0.0;
        let mut kk = n - 1;
        // Half-layer from the surface to the lowest mid-level.
        z += R_DRY * self.t[n - 1] / GRAVITY * (1.0e5 / self.p[n - 1]).ln();
        while kk > k {
            let tbar = 0.5 * (self.t[kk] + self.t[kk - 1]);
            z += R_DRY * tbar / GRAVITY * (self.p[kk] / self.p[kk - 1]).ln();
            kk -= 1;
        }
        z
    }
}

/// Saturation specific humidity over liquid water (Tetens / Murray form):
/// q_s = 0.622 e_s / p.
#[inline]
pub fn saturation_humidity(t: f64, p: f64) -> f64 {
    let tc = t - 273.15;
    let es = 610.78 * (17.27 * tc / (tc + 237.3)).exp();
    (0.622 * es / p.max(es * 1.01)).min(0.05)
}

/// Pseudo-adiabatic parcel ascent: the temperature a parcel with initial
/// state `(t0, q0, p0)` reaches at pressure `p`, warming dry-adiabatically
/// plus the latent heat of whatever vapour has condensed by that level.
/// An entrainment efficiency < 1 dilutes the release, as in simple
/// plume closures. Solved by damped fixed-point iteration.
pub fn moist_adiabat(t0: f64, q0: f64, p0: f64, p: f64) -> f64 {
    use foam_grid::constants::L_VAP;
    const ENTRAINMENT_EFF: f64 = 0.6;
    let kappa = R_DRY / CP_DRY;
    let t_dry = t0 * (p / p0).powf(kappa);
    let mut t = t_dry;
    for _ in 0..25 {
        let qs = saturation_humidity(t, p);
        let release = (q0 - qs).max(0.0);
        let t_new = t_dry + ENTRAINMENT_EFF * L_VAP / CP_DRY * release;
        if (t_new - t).abs() < 1e-6 {
            return t_new;
        }
        t = 0.5 * (t + t_new);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_column_is_plausible() {
        let c = AtmColumn::standard(18, 288.0);
        assert_eq!(c.nlev(), 18);
        // Temperature decreases with height (increases with k).
        for k in 1..18 {
            assert!(c.t[k] > c.t[k - 1], "lapse at {k}");
        }
        // Tropopause-ish top colder than 240 K, surface near 288 K.
        assert!(c.t[0] < 240.0);
        assert!((c.t[17] - 288.0).abs() < 3.0);
        // Water vapour concentrated near the surface.
        assert!(c.q[17] > 5.0 * c.q[5]);
        // Earth-like precipitable water (a few tens of kg/m²).
        let pw = c.precipitable_water();
        assert!((5.0..60.0).contains(&pw), "PW = {pw}");
    }

    #[test]
    fn theta_increases_with_height_for_stable_column() {
        let c = AtmColumn::standard(18, 288.0);
        for k in 1..18 {
            assert!(c.theta(k - 1) > c.theta(k), "theta inversion at {k}");
        }
    }

    #[test]
    fn saturation_humidity_behaviour() {
        // Roughly doubles every 10 K; ~14 g/kg at 293 K, 1000 hPa.
        let q20 = saturation_humidity(293.15, 1.0e5);
        assert!((0.013..0.017).contains(&q20), "q_sat(20C) = {q20}");
        let q30 = saturation_humidity(303.15, 1.0e5);
        assert!(q30 / q20 > 1.6 && q30 / q20 < 2.2);
        // Decreases with pressure at fixed T.
        assert!(saturation_humidity(293.15, 8.0e4) > q20);
    }

    #[test]
    fn heights_are_monotone_and_scale_like_atmosphere() {
        let c = AtmColumn::standard(18, 288.0);
        let mut prev = -1.0;
        for k in (0..18).rev() {
            let z = c.height(k);
            assert!(z > prev, "height not monotone at {k}");
            prev = z;
        }
        // Top layer around 25-45 km for p_top = 20 hPa.
        let zt = c.height(0);
        assert!((15_000.0..50_000.0).contains(&zt), "z_top = {zt}");
    }

    #[test]
    fn moist_adiabat_is_warmer_than_dry() {
        let t0 = 300.0;
        let p0 = 1.0e5f64;
        let p = 5.0e4;
        let kappa = R_DRY / CP_DRY;
        let t_dry = t0 * (p / p0).powf(kappa);
        let t_moist = moist_adiabat(t0, 0.015, p0, p);
        assert!(t_moist > t_dry);
        assert!(t_moist < t0);
    }

    #[test]
    fn dry_parcel_follows_dry_adiabat() {
        let t0 = 290.0;
        let kappa = R_DRY / CP_DRY;
        let t = moist_adiabat(t0, 0.0, 1.0e5, 6.0e4);
        assert!((t - t0 * (0.6f64).powf(kappa)).abs() < 1e-9);
    }

    #[test]
    fn precipitable_water_additivity() {
        let mut c = AtmColumn::isothermal(10, 2000.0, 280.0);
        let before = c.precipitable_water();
        c.q[9] += 0.001;
        let after = c.precipitable_water();
        assert!((after - before - 0.001 * c.layer_mass(9)).abs() < 1e-9);
    }
}
