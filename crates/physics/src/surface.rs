//! Bulk surface-flux formulas with stability-dependent coefficients.
//!
//! Over land FOAM uses CCM2's stability-dependent bulk transfer; over the
//! ocean it uses CCM3's forms where the roughness length is *diagnosed*
//! from wind speed and stability instead of held constant — the paper
//! calls this out explicitly. We implement Louis-type stability functions
//! and a Charnock relation for the ocean roughness, iterated to
//! convergence with the friction velocity.

use foam_grid::constants::{CP_DRY, GRAVITY, L_VAP, RHO_AIR, VON_KARMAN};

/// Turbulent surface fluxes (positive upward, i.e. surface → atmosphere).
#[derive(Debug, Clone, Copy, Default)]
pub struct BulkFluxes {
    /// Sensible heat \[W/m²\].
    pub sensible: f64,
    /// Latent heat \[W/m²\].
    pub latent: f64,
    /// Evaporation \[kg m⁻² s⁻¹\] (= latent / L).
    pub evaporation: f64,
    /// Wind stress magnitude \[N/m²\].
    pub stress: f64,
    /// Eastward and northward stress components \[N/m²\].
    pub tau_x: f64,
    pub tau_y: f64,
    /// Exchange coefficient actually used (diagnostic).
    pub c_exchange: f64,
}

/// Inputs to the bulk formulas.
#[derive(Debug, Clone, Copy)]
pub struct BulkInput {
    /// Lowest-model-level wind components \[m/s\].
    pub u: f64,
    pub v: f64,
    /// Lowest-level air temperature \[K\] and specific humidity.
    pub t_air: f64,
    pub q_air: f64,
    /// Surface temperature \[K\].
    pub t_sfc: f64,
    /// Saturation humidity at the surface temperature.
    pub q_sfc_sat: f64,
    /// Surface wetness factor D_w ∈ \[0, 1\] (1 over ocean/ice/snow; the
    /// soil-moisture bucket sets it over land — paper §"The FOAM Coupler").
    pub wetness: f64,
    /// Reference height of the lowest model level \[m\].
    pub z_ref: f64,
}

/// Louis (1979)-type stability modifier applied to the neutral
/// coefficient. `ri` is the bulk Richardson number.
fn stability_factor(ri: f64, cn: f64, z_over_z0: f64) -> f64 {
    if ri < 0.0 {
        // Unstable: enhancement.
        let c = 7.4 * cn * 9.4 * (z_over_z0).sqrt();
        1.0 - 9.4 * ri / (1.0 + c * (-ri).sqrt())
    } else {
        // Stable: suppression.
        let b = 1.0 + 4.7 * ri;
        1.0 / (b * b)
    }
}

/// Bulk fluxes over a surface with a *fixed* roughness length (land, ice,
/// snow).
pub fn bulk_fluxes_fixed_z0(inp: &BulkInput, z0: f64) -> BulkFluxes {
    let wind = (inp.u * inp.u + inp.v * inp.v).sqrt().max(0.5);
    let z_over_z0 = (inp.z_ref / z0).max(2.0);
    let cn = (VON_KARMAN / z_over_z0.ln()).powi(2);
    let theta_air = inp.t_air; // reference level is low; ignore Exner
    let ri = GRAVITY * inp.z_ref * (theta_air - inp.t_sfc)
        / (0.5 * (theta_air + inp.t_sfc) * wind * wind);
    let ri = ri.clamp(-10.0, 10.0);
    let c = cn * stability_factor(ri, cn, z_over_z0);
    finish(inp, wind, c)
}

/// Bulk fluxes over the open ocean with CCM3-style diagnosed roughness:
/// Charnock relation z0 = a u*²/g (+ smooth-flow term), iterated with the
/// stability-dependent drag.
pub fn bulk_fluxes_ocean(inp: &BulkInput) -> BulkFluxes {
    let wind = (inp.u * inp.u + inp.v * inp.v).sqrt().max(0.5);
    let mut z0 = 1.0e-4;
    let mut c = 0.0;
    for _ in 0..4 {
        let z_over_z0 = (inp.z_ref / z0).max(2.0);
        let cn = (VON_KARMAN / z_over_z0.ln()).powi(2);
        let ri = GRAVITY * inp.z_ref * (inp.t_air - inp.t_sfc)
            / (0.5 * (inp.t_air + inp.t_sfc) * wind * wind);
        let ri = ri.clamp(-10.0, 10.0);
        c = cn * stability_factor(ri, cn, z_over_z0);
        let ustar2 = c * wind * wind;
        // Charnock + smooth-flow viscous term.
        z0 = (0.0185 * ustar2 / GRAVITY + 1.5e-5 / ustar2.sqrt().max(1e-3)).clamp(1e-6, 0.05);
    }
    finish(inp, wind, c)
}

fn finish(inp: &BulkInput, wind: f64, c: f64) -> BulkFluxes {
    let sensible = RHO_AIR * CP_DRY * c * wind * (inp.t_sfc - inp.t_air);
    let evaporation = (RHO_AIR * c * wind * (inp.q_sfc_sat - inp.q_air) * inp.wetness).max(-1e-4);
    let latent = L_VAP * evaporation;
    let stress = RHO_AIR * c * wind * wind;
    let (tau_x, tau_y) = if wind > 0.0 {
        (RHO_AIR * c * wind * inp.u, RHO_AIR * c * wind * inp.v)
    } else {
        (0.0, 0.0)
    };
    BulkFluxes {
        sensible,
        latent,
        evaporation,
        stress,
        tau_x,
        tau_y,
        c_exchange: c,
    }
}

/// Standard roughness lengths by surface kind \[m\].
pub mod roughness {
    pub const FOREST: f64 = 1.0;
    pub const GRASSLAND: f64 = 0.05;
    pub const DESERT: f64 = 0.01;
    pub const TUNDRA: f64 = 0.03;
    pub const ICE: f64 = 5.0e-4;
    pub const SNOW: f64 = 1.0e-3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::saturation_humidity;

    fn ocean_input(wind: f64, dt_sea_air: f64) -> BulkInput {
        let t_air = 290.0;
        let t_sfc = t_air + dt_sea_air;
        BulkInput {
            u: wind,
            v: 0.0,
            t_air,
            q_air: 0.6 * saturation_humidity(t_air, 1.0e5),
            t_sfc,
            q_sfc_sat: saturation_humidity(t_sfc, 1.0e5),
            wetness: 1.0,
            z_ref: 70.0,
        }
    }

    #[test]
    fn warm_ocean_drives_upward_fluxes() {
        let f = bulk_fluxes_ocean(&ocean_input(8.0, 2.0));
        assert!(f.sensible > 0.0, "sensible {}", f.sensible);
        assert!(f.latent > 0.0);
        assert!(f.stress > 0.0 && f.tau_x > 0.0 && f.tau_y == 0.0);
        // Typical trade-wind magnitudes: tens of W/m² sensible, larger
        // latent.
        assert!(f.latent > f.sensible);
        assert!((5.0..2000.0).contains(&f.latent), "latent {}", f.latent);
    }

    #[test]
    fn stable_stratification_suppresses_exchange() {
        let unstable = bulk_fluxes_ocean(&ocean_input(8.0, 3.0));
        let stable = bulk_fluxes_ocean(&ocean_input(8.0, -3.0));
        assert!(
            stable.c_exchange < unstable.c_exchange,
            "stable {} should be < unstable {}",
            stable.c_exchange,
            unstable.c_exchange
        );
        // Cold surface → downward sensible heat.
        assert!(stable.sensible < 0.0);
    }

    #[test]
    fn ocean_drag_grows_with_wind_speed() {
        // The CCM3 point: roughness (hence drag) depends on wind.
        let low = bulk_fluxes_ocean(&ocean_input(3.0, 0.5));
        let high = bulk_fluxes_ocean(&ocean_input(20.0, 0.5));
        assert!(
            high.c_exchange > low.c_exchange,
            "Charnock: {} vs {}",
            high.c_exchange,
            low.c_exchange
        );
        // Neutral drag in the familiar 1–2 ×10⁻³ range at moderate wind.
        let mid = bulk_fluxes_ocean(&ocean_input(8.0, 0.0));
        assert!(
            (5.0e-4..4.0e-3).contains(&mid.c_exchange),
            "C_D = {}",
            mid.c_exchange
        );
    }

    #[test]
    fn rough_land_exchanges_more_than_smooth() {
        let inp = BulkInput {
            wetness: 0.5,
            ..ocean_input(6.0, 2.0)
        };
        let forest = bulk_fluxes_fixed_z0(&inp, roughness::FOREST);
        let desert = bulk_fluxes_fixed_z0(&inp, roughness::DESERT);
        assert!(forest.c_exchange > desert.c_exchange);
    }

    #[test]
    fn wetness_scales_evaporation_only() {
        let dry = BulkInput {
            wetness: 0.2,
            ..ocean_input(6.0, 2.0)
        };
        let wet = BulkInput {
            wetness: 1.0,
            ..ocean_input(6.0, 2.0)
        };
        let fd = bulk_fluxes_fixed_z0(&dry, 0.05);
        let fw = bulk_fluxes_fixed_z0(&wet, 0.05);
        assert!((fd.evaporation / fw.evaporation - 0.2).abs() < 1e-9);
        assert!((fd.sensible - fw.sensible).abs() < 1e-12);
    }

    #[test]
    fn stress_aligns_with_wind() {
        let inp = BulkInput {
            u: 3.0,
            v: -4.0,
            ..ocean_input(5.0, 1.0)
        };
        let f = bulk_fluxes_ocean(&inp);
        // tau ∝ (u, v): components have the wind's direction.
        assert!(f.tau_x > 0.0 && f.tau_y < 0.0);
        assert!((f.tau_y / f.tau_x - (-4.0 / 3.0)).abs() < 1e-9);
        assert!((f.stress - (f.tau_x * f.tau_x + f.tau_y * f.tau_y).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn calm_wind_floor_prevents_zero_exchange() {
        let f = bulk_fluxes_ocean(&ocean_input(0.0, 2.0));
        assert!(f.sensible > 0.0, "gustiness floor missing");
    }
}
