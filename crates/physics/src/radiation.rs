//! Gray two-stream radiation with a solar cycle.
//!
//! CCM's δ-Eddington shortwave and band-model longwave are replaced by a
//! gray (spectrally integrated) treatment that preserves what FOAM needs:
//! a realistic net surface energy balance driving the ocean, water-vapour
//! and cloud dependence, and — computationally — an *expensive full
//! calculation refreshed only twice per simulated day* with a cheap
//! per-step solar-geometry update in between (the long "radiation steps"
//! of the paper's Figure 2 come from exactly this cadence).

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::constants::{CP_DRY, SECONDS_PER_DAY, SOLAR_CONSTANT, STEFAN_BOLTZMANN};

use crate::column::AtmColumn;
use crate::workspace::{fit, PhysicsWorkspace};

/// Present-day axial tilt \[deg\] — the default obliquity; paleo
/// scenarios override it (Earth's tilt wanders 22.1°–24.5° over the
/// ~41 kyr Milankovitch cycle).
pub const OBLIQUITY_PRESENT_DEG: f64 = 23.45;

/// Orbital / solar geometry at a simulated instant.
#[derive(Debug, Clone, Copy)]
pub struct OrbitalState {
    /// Day of the (360-day) model year, fractional.
    pub day_of_year: f64,
    /// Seconds since local midnight at longitude 0.
    pub seconds_utc: f64,
    /// Axial tilt \[deg\] (declination amplitude).
    pub obliquity_deg: f64,
}

impl OrbitalState {
    /// Construct from absolute simulated seconds with the present-day
    /// obliquity.
    pub fn at(sim_seconds: f64) -> Self {
        Self::at_with(sim_seconds, OBLIQUITY_PRESENT_DEG)
    }

    /// Construct from absolute simulated seconds with an explicit
    /// obliquity \[deg\] (paleo configurations).
    pub fn at_with(sim_seconds: f64, obliquity_deg: f64) -> Self {
        let day = sim_seconds / SECONDS_PER_DAY;
        OrbitalState {
            day_of_year: day % foam_grid::constants::DAYS_PER_YEAR,
            seconds_utc: sim_seconds % SECONDS_PER_DAY,
            obliquity_deg,
        }
    }

    /// Solar declination \[rad\] (±obliquity sinusoid).
    pub fn declination(&self) -> f64 {
        let obliquity = self.obliquity_deg.to_radians();
        obliquity
            * (2.0 * std::f64::consts::PI * (self.day_of_year - 81.0)
                / foam_grid::constants::DAYS_PER_YEAR)
                .sin()
    }

    /// Cosine of the solar zenith angle at (lon, lat) \[rad\], clipped at 0.
    pub fn cos_zenith(&self, lon: f64, lat: f64) -> f64 {
        let delta = self.declination();
        let hour_angle = 2.0 * std::f64::consts::PI * self.seconds_utc / SECONDS_PER_DAY + lon
            - std::f64::consts::PI;
        (lat.sin() * delta.sin() + lat.cos() * delta.cos() * hour_angle.cos()).max(0.0)
    }

    /// Diurnally averaged insolation factor at latitude `lat` (mean of
    /// cos zenith over the day) — used by fast steps between full
    /// radiation calls when configured for daily-mean solar forcing.
    pub fn daily_mean_cosz(&self, lat: f64) -> f64 {
        let delta = self.declination();
        let cos_h0 = (-lat.tan() * delta.tan()).clamp(-1.0, 1.0);
        let h0 = cos_h0.acos();
        (h0 * lat.sin() * delta.sin() + lat.cos() * delta.cos() * h0.sin()) / std::f64::consts::PI
    }
}

/// Output of the expensive full radiation computation, valid until the
/// next refresh. Shortwave entries are stored per unit cos-zenith so the
/// cheap step can rescale them with current solar geometry.
#[derive(Debug, Clone)]
pub struct RadCache {
    /// Longwave heating rate per layer \[K/s\].
    pub lw_heating: Vec<f64>,
    /// Shortwave heating per layer per unit cosz \[K/s\].
    pub sw_heating_unit: Vec<f64>,
    /// Net shortwave absorbed at the surface per unit cosz \[W/m²\].
    pub sw_sfc_unit: f64,
    /// Downwelling longwave at the surface \[W/m²\].
    pub lw_down_sfc: f64,
    /// Outgoing longwave at the top \[W/m²\].
    pub olr: f64,
    /// Diagnosed column cloud fraction \[0, 1\].
    pub cloud: f64,
}

impl RadCache {
    /// A zero cache (used before the first full computation).
    pub fn empty(nlev: usize) -> Self {
        RadCache {
            lw_heating: vec![0.0; nlev],
            sw_heating_unit: vec![0.0; nlev],
            sw_sfc_unit: 0.0,
            lw_down_sfc: 0.0,
            olr: 0.0,
            cloud: 0.0,
        }
    }

    /// Current heating rate of layer `k` given cos-zenith `cosz`.
    #[inline]
    pub fn heating(&self, k: usize, cosz: f64) -> f64 {
        self.lw_heating[k] + cosz * self.sw_heating_unit[k]
    }

    /// Current shortwave absorbed by the surface \[W/m²\].
    #[inline]
    pub fn sw_sfc(&self, cosz: f64) -> f64 {
        cosz * self.sw_sfc_unit
    }
}

impl Codec for RadCache {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lw_heating.encode(buf);
        self.sw_heating_unit.encode(buf);
        self.sw_sfc_unit.encode(buf);
        self.lw_down_sfc.encode(buf);
        self.olr.encode(buf);
        self.cloud.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(RadCache {
            lw_heating: Vec::<f64>::decode(r)?,
            sw_heating_unit: Vec::<f64>::decode(r)?,
            sw_sfc_unit: f64::decode(r)?,
            lw_down_sfc: f64::decode(r)?,
            olr: f64::decode(r)?,
            cloud: f64::decode(r)?,
        })
    }
}

/// Gray-gas optical parameters (tuned to give Earth-like budgets).
#[derive(Debug, Clone, Copy)]
pub struct RadParams {
    /// Longwave mass absorption coefficient for water vapour \[m²/kg\].
    pub k_h2o: f64,
    /// Gray CO₂-equivalent optical depth per layer mass \[m²/kg\],
    /// multiplied by `co2_factor` (doubling experiments scale this).
    pub k_co2: f64,
    /// CO₂ scaling (1 = present-day equivalent).
    pub co2_factor: f64,
    /// Shortwave atmospheric absorption fraction per unit column water.
    pub sw_abs_per_pw: f64,
    /// Cloud shortwave albedo at full cover.
    pub cloud_albedo: f64,
    /// Cloud longwave emissivity boost at full cover.
    pub cloud_lw: f64,
    /// Multiplier on the solar constant (1 = nominal 1367 W/m²; solar
    /// sweep scenarios scale this).
    pub solar_scale: f64,
    /// Gray stratospheric aerosol optical depth attenuating the solar
    /// beam (0 = clean; volcanic pulse scenarios raise it).
    pub aerosol_od: f64,
}

impl Default for RadParams {
    fn default() -> Self {
        RadParams {
            k_h2o: 0.10,
            k_co2: 1.0e-4,
            co2_factor: 1.0,
            sw_abs_per_pw: 0.0035,
            cloud_albedo: 0.45,
            cloud_lw: 0.35,
            solar_scale: 1.0,
            aerosol_od: 0.0,
        }
    }
}

/// Diagnose a column cloud fraction from relative humidity (CCM-like RH
/// threshold closure).
pub fn diagnose_cloud(col: &AtmColumn) -> f64 {
    let mut c: f64 = 0.0;
    for k in 0..col.nlev() {
        let rh = col.rel_humidity(k);
        let ck = ((rh - 0.70) / 0.30).clamp(0.0, 1.0);
        c = c.max(ck * ck);
    }
    c
}

/// The expensive full radiation computation for one column.
///
/// `albedo_sfc` is the surface shortwave albedo; `t_sfc` the surface
/// temperature \[K\]. Returns a [`RadCache`] to be reused (rescaled by
/// solar geometry) until the next refresh.
pub fn full_radiation(col: &AtmColumn, t_sfc: f64, albedo_sfc: f64, p: &RadParams) -> RadCache {
    let mut cache = RadCache::empty(col.nlev());
    full_radiation_into(
        col,
        t_sfc,
        albedo_sfc,
        p,
        &mut PhysicsWorkspace::new(),
        &mut cache,
    );
    cache
}

/// Allocation-free [`full_radiation`]: overwrites `cache` in place,
/// borrowing the sweep buffers (emissivity, Planck source, interface
/// fluxes) from `ws`, so the twice-daily refresh stops churning the
/// heap. Bit-identical to the allocating form.
///
/// ```
/// use foam_physics::radiation::{full_radiation, full_radiation_into, RadParams};
/// use foam_physics::{AtmColumn, PhysicsWorkspace, RadCache};
///
/// let col = AtmColumn::standard(18, 288.0);
/// let p = RadParams::default();
/// let a = full_radiation(&col, 288.0, 0.1, &p);
/// let mut b = RadCache::empty(18);
/// full_radiation_into(&col, 288.0, 0.1, &p, &mut PhysicsWorkspace::new(), &mut b);
/// assert_eq!(a.lw_heating, b.lw_heating);
/// assert_eq!(a.olr, b.olr);
/// ```
pub fn full_radiation_into(
    col: &AtmColumn,
    t_sfc: f64,
    albedo_sfc: f64,
    p: &RadParams,
    ws: &mut PhysicsWorkspace,
    cache: &mut RadCache,
) {
    let n = col.nlev();
    let cloud = diagnose_cloud(col);
    let PhysicsWorkspace {
        eps,
        planck,
        down,
        up,
        ..
    } = ws;

    // --- Longwave: gray two-stream sweeps. --------------------------
    // Layer emissivity from water vapour + CO₂ (+ cloud boost).
    fit(eps, n);
    fit(planck, n);
    for k in 0..n {
        let mass = col.layer_mass(k);
        let tau = p.k_h2o * col.q[k] * mass + p.k_co2 * p.co2_factor * mass;
        let e = 1.0 - (-tau).exp();
        eps[k] = (e + p.cloud_lw * cloud * (1.0 - e)).min(1.0);
        planck[k] = STEFAN_BOLTZMANN * col.t[k].powi(4);
    }

    // Downward sweep: D_0 = 0 at TOA.
    fit(down, n + 1);
    for k in 0..n {
        down[k + 1] = down[k] * (1.0 - eps[k]) + eps[k] * planck[k];
    }
    // Upward sweep: U at the surface is σT_s⁴ (unit emissivity surface).
    fit(up, n + 1);
    up[n] = STEFAN_BOLTZMANN * t_sfc.powi(4);
    for k in (0..n).rev() {
        up[k] = up[k + 1] * (1.0 - eps[k]) + eps[k] * planck[k];
    }
    // Net upward flux at each interface; heating = -dF/dm / cp.
    let lw_heating = &mut cache.lw_heating;
    fit(lw_heating, n);
    for k in 0..n {
        let f_top = up[k] - down[k];
        let f_bot = up[k + 1] - down[k + 1];
        lw_heating[k] = (f_bot - f_top) / (CP_DRY * col.layer_mass(k));
    }

    // --- Shortwave (per unit cosz). ----------------------------------
    let pw = col.precipitable_water();
    let a_atm = (p.sw_abs_per_pw * pw + 0.05).min(0.35);
    let a_cloud = p.cloud_albedo * cloud;
    // Effective TOA beam: scaled solar constant through the gray
    // stratospheric aerosol layer (Beer–Lambert). At the defaults
    // (scale 1, depth 0) both factors are exactly 1.0, so unforced runs
    // keep their historical bit patterns.
    let toa = SOLAR_CONSTANT * p.solar_scale * (-p.aerosol_od).exp(); // per unit cosz
    let reaching_sfc = toa * (1.0 - a_cloud) * (1.0 - a_atm);
    let sw_sfc_unit = reaching_sfc * (1.0 - albedo_sfc);
    // Atmospheric absorption distributed ∝ layer water content.
    let absorbed = toa * (1.0 - a_cloud) * a_atm;
    let wsum: f64 = (0..n)
        .map(|k| col.q[k] * col.layer_mass(k))
        .sum::<f64>()
        .max(1e-9);
    let sw_heating_unit = &mut cache.sw_heating_unit;
    fit(sw_heating_unit, n);
    for k in 0..n {
        let frac = col.q[k] * col.layer_mass(k) / wsum;
        sw_heating_unit[k] = absorbed * frac / (CP_DRY * col.layer_mass(k));
    }

    cache.sw_sfc_unit = sw_sfc_unit;
    cache.lw_down_sfc = down[n];
    cache.olr = up[0];
    cache.cloud = cloud;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> AtmColumn {
        AtmColumn::standard(18, 288.0)
    }

    #[test]
    fn zenith_geometry() {
        // Equinox-ish day, local noon at lon 180°: sun overhead at equator.
        let o = OrbitalState {
            day_of_year: 81.0,
            seconds_utc: 0.0,
            obliquity_deg: OBLIQUITY_PRESENT_DEG,
        };
        let cz = o.cos_zenith(std::f64::consts::PI, 0.0);
        assert!(cz > 0.99, "noon equator equinox cosz = {cz}");
        // Midnight at lon 0 → dark.
        assert_eq!(o.cos_zenith(0.0, 0.0), 0.0);
        // Poles near equinox get grazing light.
        assert!(o.cos_zenith(std::f64::consts::PI, 1.5) < 0.15);
    }

    #[test]
    fn declination_cycles_with_season() {
        let solstice_n = OrbitalState {
            day_of_year: 171.0,
            seconds_utc: 0.0,
            obliquity_deg: OBLIQUITY_PRESENT_DEG,
        };
        assert!(solstice_n.declination() > 23.0f64.to_radians());
        let solstice_s = OrbitalState {
            day_of_year: 351.0,
            seconds_utc: 0.0,
            obliquity_deg: OBLIQUITY_PRESENT_DEG,
        };
        assert!(solstice_s.declination() < -23.0f64.to_radians());
    }

    #[test]
    fn daily_mean_cosz_polar_night_and_day() {
        let summer = OrbitalState {
            day_of_year: 171.0,
            seconds_utc: 0.0,
            obliquity_deg: OBLIQUITY_PRESENT_DEG,
        };
        // North pole in June: sun never sets; mean cosz ≈ sin δ > 0.35.
        assert!(summer.daily_mean_cosz(1.55) > 0.3);
        // South pole in June: polar night.
        assert!(summer.daily_mean_cosz(-1.55) < 1e-9);
    }

    #[test]
    fn olr_is_earthlike_and_less_than_surface_emission() {
        let c = col();
        let r = full_radiation(&c, 288.0, 0.1, &RadParams::default());
        let sfc = STEFAN_BOLTZMANN * 288.0f64.powi(4); // ≈ 390 W/m²
        assert!(r.olr < sfc, "greenhouse trapping absent");
        assert!(
            (150.0..320.0).contains(&r.olr),
            "OLR {} not Earth-like",
            r.olr
        );
        // Downwelling LW at surface is a large fraction of σT⁴.
        assert!(r.lw_down_sfc > 0.5 * sfc && r.lw_down_sfc < sfc);
    }

    #[test]
    fn lw_cools_troposphere() {
        let c = col();
        let r = full_radiation(&c, 288.0, 0.1, &RadParams::default());
        // Net longwave column effect is cooling, a few K/day total.
        let mean: f64 = r.lw_heating.iter().sum::<f64>() / 18.0;
        let per_day = mean * SECONDS_PER_DAY;
        assert!(per_day < 0.0, "LW should cool on average: {per_day} K/day");
        assert!(per_day > -6.0, "LW cooling too strong: {per_day} K/day");
    }

    #[test]
    fn co2_increase_warms_surface_forcing() {
        let c = col();
        let base = full_radiation(&c, 288.0, 0.1, &RadParams::default());
        let doubled = full_radiation(
            &c,
            288.0,
            0.1,
            &RadParams {
                co2_factor: 4.0,
                ..Default::default()
            },
        );
        assert!(
            doubled.olr < base.olr,
            "more CO₂ must reduce OLR at fixed T"
        );
        assert!(doubled.lw_down_sfc > base.lw_down_sfc);
    }

    #[test]
    fn sw_budget_closes() {
        let c = col();
        let p = RadParams::default();
        let r = full_radiation(&c, 288.0, 0.2, &p);
        let cosz = 0.8;
        let toa_in = SOLAR_CONSTANT * cosz;
        let sfc = r.sw_sfc(cosz);
        let atm_abs: f64 = (0..18)
            .map(|k| cosz * r.sw_heating_unit[k] * CP_DRY * c.layer_mass(k))
            .sum();
        // Absorbed (sfc + atm) ≤ incoming, and reflected = rest.
        let absorbed = sfc + atm_abs;
        assert!(absorbed < toa_in);
        let albedo = 1.0 - absorbed / toa_in;
        assert!(
            (0.1..0.6).contains(&albedo),
            "planetary albedo {albedo} implausible"
        );
    }

    #[test]
    fn moist_column_is_cloudier() {
        let dry = col();
        let mut wet = col();
        for k in 10..18 {
            wet.q[k] = crate::column::saturation_humidity(wet.t[k], wet.p[k]) * 0.97;
        }
        assert!(diagnose_cloud(&wet) > diagnose_cloud(&dry));
        assert!(diagnose_cloud(&wet) <= 1.0);
    }

    #[test]
    fn solar_scale_and_aerosol_modulate_the_beam() {
        let c = col();
        let base = full_radiation(&c, 288.0, 0.1, &RadParams::default());
        let bright = full_radiation(
            &c,
            288.0,
            0.1,
            &RadParams {
                solar_scale: 1.02,
                ..Default::default()
            },
        );
        // A 2 % brighter sun delivers exactly 2 % more surface SW.
        assert!((bright.sw_sfc_unit / base.sw_sfc_unit - 1.02).abs() < 1e-12);
        let hazy = full_radiation(
            &c,
            288.0,
            0.1,
            &RadParams {
                aerosol_od: 0.15,
                ..Default::default()
            },
        );
        // Beer–Lambert: OD 0.15 attenuates the beam by e^-0.15.
        assert!((hazy.sw_sfc_unit / base.sw_sfc_unit - (-0.15f64).exp()).abs() < 1e-12);
        // Longwave is untouched by either solar knob.
        assert_eq!(hazy.olr.to_bits(), base.olr.to_bits());
        assert_eq!(bright.lw_down_sfc.to_bits(), base.lw_down_sfc.to_bits());
    }

    #[test]
    fn defaults_preserve_unforced_bit_patterns() {
        let c = col();
        let p = RadParams::default();
        assert_eq!(p.solar_scale, 1.0);
        assert_eq!(p.aerosol_od, 0.0);
        let r = full_radiation(&c, 288.0, 0.1, &p);
        // ×1.0 and ×exp(-0.0)=×1.0 must be bit-exact no-ops.
        let toa = SOLAR_CONSTANT * p.solar_scale * (-p.aerosol_od).exp();
        assert_eq!(toa.to_bits(), SOLAR_CONSTANT.to_bits());
        assert!(r.sw_sfc_unit > 0.0);
    }

    #[test]
    fn lower_obliquity_flattens_the_seasonal_cycle() {
        let present = OrbitalState {
            day_of_year: 171.0,
            seconds_utc: 0.0,
            obliquity_deg: OBLIQUITY_PRESENT_DEG,
        };
        let paleo = OrbitalState {
            obliquity_deg: 22.1,
            ..present
        };
        assert!(paleo.declination() < present.declination());
        // Polar summer insolation drops with obliquity.
        assert!(paleo.daily_mean_cosz(1.4) < present.daily_mean_cosz(1.4));
        // `at` uses the present-day tilt.
        assert_eq!(OrbitalState::at(0.0).obliquity_deg, OBLIQUITY_PRESENT_DEG);
        assert_eq!(OrbitalState::at_with(0.0, 24.5).obliquity_deg, 24.5);
    }

    #[test]
    fn cache_scales_with_zenith() {
        let c = col();
        let r = full_radiation(&c, 288.0, 0.1, &RadParams::default());
        assert_eq!(r.sw_sfc(0.0), 0.0);
        let h_night = r.heating(17, 0.0);
        let h_day = r.heating(17, 1.0);
        assert!(h_day > h_night);
    }
}
