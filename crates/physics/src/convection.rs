//! Moist convection and stratiform condensation.
//!
//! FOAM started from CCM2's Hack mass-flux scheme and gained CCM3's
//! Zhang–McFarlane deep convection plus evaporation of stratiform
//! precipitation — the paper singles out this upgrade as what "vastly
//! improved its representation of the tropical Pacific". The schemes
//! here keep that division of labour:
//!
//! * a *dry/shallow adjustment* pass (Hack-like: local instability removed
//!   by mixing adjacent layers, iterated to convergence — iteration count
//!   varies with cloudiness and is the model's load-imbalance source),
//! * *deep convection* closed on CAPE (Zhang–McFarlane-like: relax the
//!   profile toward a moist adiabat over a fixed timescale, precipitating
//!   the implied moisture),
//! * *stratiform condensation* removing supersaturation, with
//!   re-evaporation of falling precipitation in dry layers below (the
//!   CCM3 addition).
//!
//! All tendencies conserve column moist enthalpy (c_p T + L q) and water
//! to rounding; tests enforce both.

use foam_grid::constants::{CP_DRY, L_VAP, R_DRY};

use crate::column::{moist_adiabat, saturation_humidity, AtmColumn};
use crate::workspace::{fit, PhysicsWorkspace};

/// Tunable parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConvectionParams {
    /// Enable the Zhang–McFarlane-style deep convection (a CCM3
    /// addition; CCM2 relied on the Hack scheme alone — the paper's §6
    /// traces its early tropical-Pacific problems to exactly this).
    pub deep_enabled: bool,
    /// CAPE needed to trigger deep convection \[J/kg\].
    pub cape_threshold: f64,
    /// Deep-convective adjustment timescale \[s\].
    pub tau_deep: f64,
    /// Maximum dry/shallow adjustment sweeps.
    pub max_iters: usize,
    /// Fraction of falling stratiform precip that may re-evaporate per
    /// subsaturated layer.
    pub evap_eff: f64,
}

impl ConvectionParams {
    /// The CCM2-era configuration: Hack mass-flux/adjustment only, no
    /// deep CAPE closure, no re-evaporation of falling precipitation.
    pub fn ccm2() -> Self {
        ConvectionParams {
            deep_enabled: false,
            evap_eff: 0.0,
            ..Default::default()
        }
    }
}

impl Default for ConvectionParams {
    fn default() -> Self {
        ConvectionParams {
            deep_enabled: true,
            cape_threshold: 70.0,
            tau_deep: 7200.0,
            max_iters: 20,
            evap_eff: 0.25,
        }
    }
}

/// What one convection call did to the column.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvectionResult {
    /// Deep convective precipitation \[kg/m²\] over the step.
    pub precip_deep: f64,
    /// Stratiform precipitation reaching the surface \[kg/m²\].
    pub precip_stratiform: f64,
    /// Total adjustment sweeps performed — the "work units" whose
    /// horizontal variation produces the load imbalance of Figure 2.
    pub iterations: usize,
}

impl ConvectionResult {
    pub fn total_precip(&self) -> f64 {
        self.precip_deep + self.precip_stratiform
    }
}

/// Remove dry static instability by mixing adjacent layers (conserving
/// c_p T mass-weighted enthalpy and water), sweeping until the column is
/// stable or `max_iters` is reached. Returns the number of sweeps.
pub fn dry_adjustment(col: &mut AtmColumn, max_iters: usize) -> usize {
    let n = col.nlev();
    for it in 0..max_iters {
        let mut changed = false;
        for k in 0..n - 1 {
            // k is above k+1. Instability: θ increases downward.
            let th_up = col.theta(k);
            let th_dn = col.theta(k + 1);
            if th_dn > th_up + 1e-6 {
                let m1 = col.layer_mass(k);
                let m2 = col.layer_mass(k + 1);
                // Mix to a common potential temperature, preserving
                // mass-weighted enthalpy via the Exner weights.
                let ex1 = (col.p[k] / 1.0e5f64).powf(R_DRY / CP_DRY);
                let ex2 = (col.p[k + 1] / 1.0e5f64).powf(R_DRY / CP_DRY);
                let th_mix = (m1 * ex1 * th_up + m2 * ex2 * th_dn) / (m1 * ex1 + m2 * ex2);
                col.t[k] = th_mix * ex1;
                col.t[k + 1] = th_mix * ex2;
                let q_mix = (m1 * col.q[k] + m2 * col.q[k + 1]) / (m1 + m2);
                col.q[k] = q_mix;
                col.q[k + 1] = q_mix;
                changed = true;
            }
        }
        if !changed {
            return it + 1;
        }
    }
    max_iters
}

/// Convective available potential energy of a parcel lifted
/// pseudo-adiabatically from the lowest layer \[J/kg\].
pub fn compute_cape(col: &AtmColumn) -> f64 {
    let n = col.nlev();
    let t0 = col.t[n - 1];
    let q0 = col.q[n - 1];
    let p0 = col.p[n - 1];
    let mut cape = 0.0;
    for k in (0..n - 1).rev() {
        let tp = moist_adiabat(t0, q0, p0, col.p[k]);
        let buoy = R_DRY * (tp - col.t[k]);
        if buoy > 0.0 {
            cape += buoy * (col.p[k + 1] / col.p[k]).ln();
        }
    }
    cape
}

/// Zhang–McFarlane-style deep convection: when CAPE exceeds the
/// threshold, relax the temperature profile toward the parcel moist
/// adiabat with timescale `tau_deep`, paying for the heating with column
/// moisture (the precipitated water). Conserves moist enthalpy exactly.
/// Returns (precip \[kg/m²\], sweeps used).
pub fn deep_convection(col: &mut AtmColumn, dt: f64, p: &ConvectionParams) -> (f64, usize) {
    deep_convection_ws(col, dt, p, &mut Vec::new())
}

/// Allocation-free [`deep_convection`]: the heating-increment scratch
/// vector is caller-provided (see [`PhysicsWorkspace`]). Bit-identical
/// to the allocating form.
pub fn deep_convection_ws(
    col: &mut AtmColumn,
    dt: f64,
    p: &ConvectionParams,
    dts: &mut Vec<f64>,
) -> (f64, usize) {
    if !p.deep_enabled {
        return (0.0, 0);
    }
    let cape = compute_cape(col);
    if cape < p.cape_threshold {
        return (0.0, 1);
    }
    let n = col.nlev();
    let t0 = col.t[n - 1];
    let q0 = col.q[n - 1];
    let p0 = col.p[n - 1];
    // Heating demanded by relaxation toward the moist adiabat.
    let mut heat = 0.0; // J/m²
    fit(dts, n);
    for k in 0..n - 1 {
        let t_ref = moist_adiabat(t0, q0, p0, col.p[k]);
        if t_ref > col.t[k] {
            let d = (t_ref - col.t[k]) * dt / p.tau_deep;
            dts[k] = d;
            heat += CP_DRY * d * col.layer_mass(k);
        }
    }
    // The latent supply: water available in the lower half of the column.
    let mut avail = 0.0;
    for k in n / 2..n {
        avail += 0.5 * col.q[k] * col.layer_mass(k);
    }
    let precip_needed = heat / L_VAP;
    let precip = precip_needed.min(avail);
    if precip <= 0.0 {
        return (0.0, 1);
    }
    let scale = precip / precip_needed;
    for k in 0..n - 1 {
        col.t[k] += dts[k] * scale;
    }
    // Remove the precipitated water from the lower half, ∝ q·m.
    let mut wsum = 0.0;
    for k in n / 2..n {
        wsum += col.q[k] * col.layer_mass(k);
    }
    for k in n / 2..n {
        let frac = col.q[k] * col.layer_mass(k) / wsum;
        col.q[k] -= precip * frac / col.layer_mass(k);
    }
    // Sweeps scale with how active the event was (mimics iterative mass
    // flux closure cost).
    let sweeps = 2 + (cape / p.cape_threshold).min(8.0) as usize;
    (precip, sweeps)
}

/// Hack-style shallow moistening: mix humidity upward through the lowest
/// three layers when the surface layer is nearly saturated.
pub fn shallow_convection(col: &mut AtmColumn) -> usize {
    let n = col.nlev();
    if n < 3 {
        return 0;
    }
    if col.rel_humidity(n - 1) < 0.85 {
        return 0;
    }
    let ks = [n - 3, n - 2, n - 1];
    let mtot: f64 = ks.iter().map(|&k| col.layer_mass(k)).sum();
    let qbar: f64 = ks
        .iter()
        .map(|&k| col.q[k] * col.layer_mass(k))
        .sum::<f64>()
        / mtot;
    for &k in &ks {
        // Partial mixing toward the triplet mean.
        col.q[k] += 0.5 * (qbar - col.q[k]);
    }
    1
}

/// Stratiform condensation with precipitation evaporation. Returns the
/// precipitation reaching the surface \[kg/m²\].
pub fn stratiform(col: &mut AtmColumn, p: &ConvectionParams) -> f64 {
    let n = col.nlev();
    let mut falling = 0.0; // kg/m² of liquid falling into the layer below
    for k in 0..n {
        let qs = saturation_humidity(col.t[k], col.p[k]);
        if col.q[k] > qs {
            // Condense the excess, with the latent-heat feedback factor
            // (condensation warms, raising q_sat).
            let tc = col.t[k] - 273.15;
            let dqs_dt = qs * 17.27 * 237.3 / ((tc + 237.3) * (tc + 237.3));
            let gamma = 1.0 + L_VAP / CP_DRY * dqs_dt;
            let dq = (col.q[k] - qs) / gamma;
            col.q[k] -= dq;
            col.t[k] += L_VAP / CP_DRY * dq;
            falling += dq * col.layer_mass(k);
        } else if falling > 0.0 {
            // Evaporate some of the falling precip into subsaturated air.
            let deficit = (qs - col.q[k]) * col.layer_mass(k);
            let evap = (p.evap_eff * falling).min(deficit).max(0.0);
            col.q[k] += evap / col.layer_mass(k);
            col.t[k] -= L_VAP / CP_DRY * evap / col.layer_mass(k);
            falling -= evap;
        }
    }
    falling
}

/// The full convection sequence for one step.
pub fn convect(col: &mut AtmColumn, dt: f64, p: &ConvectionParams) -> ConvectionResult {
    convect_ws(col, dt, p, &mut PhysicsWorkspace::new())
}

/// Allocation-free [`convect`]: deep-convection scratch is borrowed
/// from `ws` (the other stages were already allocation-free).
/// Bit-identical to the allocating form.
///
/// ```
/// use foam_physics::convection::{convect, convect_ws, ConvectionParams};
/// use foam_physics::{AtmColumn, PhysicsWorkspace};
///
/// let mut ws = PhysicsWorkspace::new();
/// let p = ConvectionParams::default();
/// let mut a = AtmColumn::standard(18, 302.0);
/// a.t[17] += 3.0; // make it convect
/// let mut b = a.clone();
/// let ra = convect(&mut a, 1800.0, &p);
/// let rb = convect_ws(&mut b, 1800.0, &p, &mut ws);
/// assert_eq!(a.t, b.t);
/// assert_eq!(ra.total_precip(), rb.total_precip());
/// ```
pub fn convect_ws(
    col: &mut AtmColumn,
    dt: f64,
    p: &ConvectionParams,
    ws: &mut PhysicsWorkspace,
) -> ConvectionResult {
    let it_dry = dry_adjustment(col, p.max_iters);
    let it_shallow = shallow_convection(col);
    let (precip_deep, it_deep) = deep_convection_ws(col, dt, p, &mut ws.dts);
    let precip_stratiform = stratiform(col, p);
    ConvectionResult {
        precip_deep,
        precip_stratiform,
        iterations: it_dry + it_shallow + it_deep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_col() -> AtmColumn {
        AtmColumn::standard(18, 288.0)
    }

    /// A column with essentially no CAPE: cold surface, dry boundary
    /// layer (a 6.5 K/km column with a moist warm boundary layer is
    /// genuinely conditionally unstable, so `stable_col` is not
    /// CAPE-free).
    fn cape_free_col() -> AtmColumn {
        let mut c = AtmColumn::standard(18, 265.0);
        for q in c.q.iter_mut() {
            *q *= 0.25;
        }
        c
    }

    fn unstable_col() -> AtmColumn {
        let mut c = AtmColumn::standard(18, 302.0);
        // Hot, very moist boundary layer under a cooler column.
        let n = c.nlev();
        c.t[n - 1] += 6.0;
        c.q[n - 1] = 0.9 * saturation_humidity(c.t[n - 1], c.p[n - 1]);
        c.q[n - 2] = 0.9 * saturation_humidity(c.t[n - 2], c.p[n - 2]);
        c
    }

    #[test]
    fn dry_adjustment_stabilizes_and_conserves() {
        let mut c = stable_col();
        let n = c.nlev();
        c.t[n - 1] += 10.0; // superadiabatic kick
        let h0 = c.moist_enthalpy();
        let w0 = c.precipitable_water();
        let iters = dry_adjustment(&mut c, 50);
        assert!(iters >= 2, "unstable column should need work");
        for k in 1..n {
            assert!(c.theta(k - 1) >= c.theta(k) - 1e-5, "still unstable at {k}");
        }
        assert!((c.moist_enthalpy() - h0).abs() < 1e-6 * h0);
        assert!((c.precipitable_water() - w0).abs() < 1e-12 * w0.max(1.0));
    }

    #[test]
    fn stable_column_needs_one_sweep() {
        let mut c = stable_col();
        assert_eq!(dry_adjustment(&mut c, 50), 1);
    }

    #[test]
    fn cape_discriminates_stability() {
        let quiet = compute_cape(&cape_free_col());
        assert!(quiet < 70.0, "cold dry column CAPE = {quiet}");
        let u = compute_cape(&unstable_col());
        assert!(u > 500.0, "tropical sounding CAPE = {u}");
        assert!(u > 10.0 * quiet.max(1.0));
    }

    #[test]
    fn deep_convection_rains_and_conserves_enthalpy() {
        let mut c = unstable_col();
        let h0 = c.moist_enthalpy();
        let w0 = c.precipitable_water();
        let (precip, sweeps) = deep_convection(&mut c, 1800.0, &ConvectionParams::default());
        assert!(precip > 0.0, "deep convection should precipitate");
        assert!(sweeps > 1);
        // Moist enthalpy conserved: heating paid by latent release.
        assert!(
            (c.moist_enthalpy() - h0).abs() < 1e-7 * h0,
            "enthalpy drift {}",
            (c.moist_enthalpy() - h0) / h0
        );
        // Water budget: column lost exactly the precip.
        assert!((w0 - c.precipitable_water() - precip).abs() < 1e-9 * w0);
        // CAPE reduced.
        assert!(compute_cape(&c) < compute_cape(&unstable_col()));
    }

    #[test]
    fn deep_convection_skips_stable_columns() {
        let mut c = cape_free_col();
        let before = c.clone();
        let (precip, _) = deep_convection(&mut c, 1800.0, &ConvectionParams::default());
        assert_eq!(precip, 0.0);
        assert_eq!(c.t, before.t);
    }

    #[test]
    fn stratiform_removes_supersaturation_and_closes_water() {
        let mut c = stable_col();
        let n = c.nlev();
        // Supersaturate a mid-level layer.
        c.q[8] = 1.3 * saturation_humidity(c.t[8], c.p[8]);
        let w0 = c.precipitable_water();
        let h0 = c.moist_enthalpy();
        let precip = stratiform(&mut c, &ConvectionParams::default());
        assert!(precip > 0.0);
        assert!(c.rel_humidity(8) <= 1.01);
        assert!((w0 - c.precipitable_water() - precip).abs() < 1e-9 * w0);
        assert!((c.moist_enthalpy() - h0).abs() < 1e-7 * h0);
        let _ = n;
    }

    #[test]
    fn precip_evaporation_moistens_dry_layers_below() {
        let mut c = stable_col();
        c.q[5] = 1.5 * saturation_humidity(c.t[5], c.p[5]);
        // Make the layer below very dry.
        c.q[6] *= 0.1;
        let q6_before = c.q[6];
        let _ = stratiform(&mut c, &ConvectionParams::default());
        assert!(c.q[6] > q6_before, "falling rain should re-evaporate");
    }

    #[test]
    fn convect_work_varies_with_instability() {
        let mut stable = stable_col();
        let mut unstable = unstable_col();
        let p = ConvectionParams::default();
        let r_stable = convect(&mut stable, 1800.0, &p);
        let r_unstable = convect(&mut unstable, 1800.0, &p);
        assert!(
            r_unstable.iterations > r_stable.iterations,
            "load imbalance source: {} vs {}",
            r_unstable.iterations,
            r_stable.iterations
        );
        assert!(r_unstable.total_precip() > 0.0);
    }
}

#[cfg(test)]
mod vintage_tests {
    use super::*;
    use crate::column::saturation_humidity;

    fn tropical_col() -> AtmColumn {
        let mut c = AtmColumn::standard(18, 302.0);
        let n = c.nlev();
        c.t[n - 1] += 6.0;
        c.q[n - 1] = 0.9 * saturation_humidity(c.t[n - 1], c.p[n - 1]);
        c.q[n - 2] = 0.9 * saturation_humidity(c.t[n - 2], c.p[n - 2]);
        c
    }

    #[test]
    fn ccm2_configuration_disables_deep_convection() {
        let mut c = tropical_col();
        let (precip, _) = deep_convection(&mut c, 1800.0, &ConvectionParams::ccm2());
        assert_eq!(precip, 0.0);
        let mut c2 = tropical_col();
        let (precip3, _) = deep_convection(&mut c2, 1800.0, &ConvectionParams::default());
        assert!(precip3 > 0.0, "CCM3 config must convect deeply");
    }

    #[test]
    fn ccm2_configuration_disables_precip_evaporation() {
        // Supersaturated layer above a dry one: with evap_eff = 0 all the
        // condensate reaches the surface.
        let p2 = ConvectionParams::ccm2();
        let p3 = ConvectionParams::default();
        let make = || {
            let mut c = AtmColumn::standard(18, 290.0);
            c.q[5] = 1.5 * saturation_humidity(c.t[5], c.p[5]);
            c.q[6] *= 0.1;
            c
        };
        let mut a = make();
        let rain2 = stratiform(&mut a, &p2);
        let mut b = make();
        let rain3 = stratiform(&mut b, &p3);
        assert!(rain2 > rain3, "CCM2 {rain2} should out-rain CCM3 {rain3}");
    }

    #[test]
    fn ccm2_and_ccm3_agree_when_stable_and_dry() {
        let make = || {
            let mut c = AtmColumn::standard(18, 265.0);
            for q in c.q.iter_mut() {
                *q *= 0.25;
            }
            c
        };
        let mut a = make();
        let ra = convect(&mut a, 1800.0, &ConvectionParams::ccm2());
        let mut b = make();
        let rb = convect(&mut b, 1800.0, &ConvectionParams::default());
        assert_eq!(ra.total_precip(), rb.total_precip());
        assert_eq!(a.t, b.t);
    }
}
