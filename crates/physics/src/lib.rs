//! `foam-physics` — CCM-style column physics.
//!
//! In CCM2/CCM3 (and therefore in FOAM's atmosphere) all "physics" —
//! radiation, moist convection, stratiform condensation, boundary-layer
//! mixing, surface fluxes — acts in vertical columns with *no* horizontal
//! data dependence. The paper leans on this: "the physics processes in
//! CCM2, which occur entirely in vertical columns, are represented
//! without any information exchange between processors."
//!
//! This crate reproduces that structure with simplified but physically
//! grounded parameterizations (see DESIGN.md §4 for the substitution
//! rationale):
//!
//! * [`radiation`] — gray two-stream longwave + solar shortwave with
//!   diurnal/seasonal cycle. The expensive full computation is cached and
//!   refreshed twice per simulated day, exactly the cadence that produces
//!   the long radiation time steps visible in the paper's Figure 2.
//! * [`convection`] — a Hack-style shallow/dry adjustment pass plus a
//!   Zhang–McFarlane-style deep CAPE-relaxation scheme (the CCM3 physics
//!   whose adoption the paper credits with fixing the tropical Pacific),
//!   and stratiform condensation with precipitation evaporation.
//! * [`surface`] — stability-dependent bulk transfer coefficients, with
//!   the CCM3 wind-speed-dependent ocean roughness.
//! * [`pbl`] — implicit vertical diffusion for the boundary layer.
//! * [`forcing`] — piecewise-linear scenario forcings (CO₂ / solar /
//!   aerosol time series) folded into an effective [`PhysicsConfig`]
//!   once per simulated day.
//! * [`ColumnPhysics`] — the per-column driver combining all of the
//!   above; it also reports a *work counter* (adjustment iterations), the
//!   source of the cloud-driven load imbalance the paper observes.
//! * [`PhysicsWorkspace`] — pre-allocated scratch making the whole
//!   per-column sequence allocation-free via the `_ws`/`_into` method
//!   variants (see PERFORMANCE.md for the zero-churn rule).

pub mod column;
pub mod convection;
pub mod forcing;
pub mod pbl;
pub mod radiation;
pub mod surface;
pub mod workspace;

mod driver;

pub use column::AtmColumn;
pub use driver::{
    ColumnPhysics, PhysicsConfig, PhysicsTendencies, PhysicsVintage, SurfaceKind, SurfaceState,
};
pub use forcing::{DailyForcing, ForcingSeries, Forcings};
pub use radiation::{OrbitalState, RadCache};
pub use surface::BulkFluxes;
pub use workspace::PhysicsWorkspace;
