//! Boundary-layer vertical diffusion (implicit).
//!
//! CCM2's PBL scheme (modified per Vogelzang & Holtslag in FOAM) is
//! represented by implicit vertical diffusion of potential temperature
//! and humidity with a surface-stability-dependent diffusivity decaying
//! with height. The implicit (backward Euler) tridiagonal solve is
//! unconditionally stable, as in the original.

use crate::column::AtmColumn;
use crate::workspace::{fit, PhysicsWorkspace};
use foam_grid::constants::{CP_DRY, R_DRY};

/// Apply one implicit vertical-diffusion step to θ and q.
///
/// `k_sfc` is the near-surface diffusivity \[m²/s\]; the profile decays as
/// exp(−z/`h_scale`).
///
/// Allocating convenience wrapper over [`vertical_diffusion_ws`]; hot
/// loops should hold a [`PhysicsWorkspace`] and call that directly.
pub fn vertical_diffusion(col: &mut AtmColumn, dt: f64, k_sfc: f64, h_scale: f64) {
    vertical_diffusion_ws(col, dt, k_sfc, h_scale, &mut PhysicsWorkspace::new());
}

/// Allocation-free [`vertical_diffusion`]: all working vectors are
/// borrowed from `ws`. Bit-identical to the allocating form.
///
/// ```
/// use foam_physics::pbl::{vertical_diffusion, vertical_diffusion_ws};
/// use foam_physics::{AtmColumn, PhysicsWorkspace};
///
/// let mut ws = PhysicsWorkspace::new();
/// let mut a = AtmColumn::standard(18, 288.0);
/// let mut b = a.clone();
/// vertical_diffusion(&mut a, 1800.0, 50.0, 1000.0);
/// vertical_diffusion_ws(&mut b, 1800.0, 50.0, 1000.0, &mut ws);
/// assert_eq!(a.t, b.t);
/// assert_eq!(a.q, b.q);
/// ```
pub fn vertical_diffusion_ws(
    col: &mut AtmColumn,
    dt: f64,
    k_sfc: f64,
    h_scale: f64,
    ws: &mut PhysicsWorkspace,
) {
    let n = col.nlev();
    if n < 2 || k_sfc <= 0.0 {
        return;
    }
    let PhysicsWorkspace {
        z,
        m,
        g,
        exner,
        theta,
        q,
        band_a,
        band_b,
        band_c,
        band_cp,
        band_dp,
        ..
    } = ws;

    // Geometry: heights of layer centres.
    fit(z, n);
    fit(m, n);
    for k in 0..n {
        z[k] = col.height(k);
        m[k] = col.layer_mass(k);
    }

    // Interface diffusive couplings g_k between layer k and k+1:
    // flux = rho K (X_k − X_{k+1}) / Δz  (positive downward when the
    // upper layer is richer). Express the update implicitly.
    fit(g, n - 1);
    for k in 0..n - 1 {
        let z_int = 0.5 * (z[k] + z[k + 1]);
        let kk = k_sfc * (-z_int / h_scale).exp();
        let dz = (z[k] - z[k + 1]).max(1.0);
        // Air density at the interface from the ideal gas law.
        let p_int = 0.5 * (col.p[k] + col.p[k + 1]);
        let t_int = 0.5 * (col.t[k] + col.t[k + 1]);
        let rho = p_int / (R_DRY * t_int);
        g[k] = rho * kk / dz; // kg m⁻² s⁻¹ per unit ΔX
    }

    // Convert T to θ, diffuse θ and q, convert back.
    fit(exner, n);
    fit(theta, n);
    for k in 0..n {
        exner[k] = (col.p[k] / 1.0e5f64).powf(R_DRY / CP_DRY);
        theta[k] = col.t[k] / exner[k];
    }
    solve_tridiag_diffusion(theta, g, m, dt, band_a, band_b, band_c, band_cp, band_dp);
    q.clear();
    q.extend_from_slice(&col.q);
    solve_tridiag_diffusion(q, g, m, dt, band_a, band_b, band_c, band_cp, band_dp);
    for k in 0..n {
        col.t[k] = theta[k] * exner[k];
        col.q[k] = q[k].max(0.0);
    }
}

/// Backward-Euler diffusion solve: (I − dt A) X^{n+1} = X^n where A is
/// the conservative flux-divergence operator built from couplings `g`.
/// The five band/sweep buffers are caller-provided scratch, fully
/// rebuilt here.
#[allow(clippy::too_many_arguments)]
fn solve_tridiag_diffusion(
    x: &mut [f64],
    g: &[f64],
    m: &[f64],
    dt: f64,
    a: &mut Vec<f64>,
    b: &mut Vec<f64>,
    c: &mut Vec<f64>,
    cp: &mut Vec<f64>,
    dp: &mut Vec<f64>,
) {
    let n = x.len();
    fit(a, n); // sub-diagonal
    fit(b, n); // diagonal
    fit(c, n); // super-diagonal
    for k in 0..n {
        let up = if k > 0 { g[k - 1] } else { 0.0 };
        let dn = if k < n - 1 { g[k] } else { 0.0 };
        b[k] = 1.0 + dt * (up + dn) / m[k];
        if k > 0 {
            a[k] = -dt * up / m[k];
        }
        if k < n - 1 {
            c[k] = -dt * dn / m[k];
        }
    }
    // Thomas algorithm.
    fit(cp, n);
    fit(dp, n);
    cp[0] = c[0] / b[0];
    dp[0] = x[0] / b[0];
    for k in 1..n {
        let denom = b[k] - a[k] * cp[k - 1];
        cp[k] = c[k] / denom;
        dp[k] = (x[k] - a[k] * dp[k - 1]) / denom;
    }
    x[n - 1] = dp[n - 1];
    for k in (0..n - 1).rev() {
        x[k] = dp[k] - cp[k] * x[k + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_conserves_mass_weighted_quantities() {
        let mut col = AtmColumn::standard(18, 288.0);
        col.q[17] *= 3.0; // moisten the surface layer
        let w0 = col.precipitable_water();
        vertical_diffusion(&mut col, 1800.0, 50.0, 1000.0);
        let w1 = col.precipitable_water();
        assert!(
            (w1 - w0).abs() < 1e-9 * w0,
            "water not conserved: {w0} → {w1}"
        );
    }

    #[test]
    fn diffusion_smooths_surface_moisture_spike() {
        let mut col = AtmColumn::standard(18, 288.0);
        let q_above_before = col.q[16];
        col.q[17] *= 3.0;
        let q_sfc_before = col.q[17];
        vertical_diffusion(&mut col, 3600.0, 100.0, 1500.0);
        assert!(col.q[17] < q_sfc_before, "spike should decay");
        assert!(col.q[16] > q_above_before, "moisture should move up");
    }

    #[test]
    fn diffusion_of_uniform_theta_is_identity() {
        let mut col = AtmColumn::isothermal(10, 2000.0, 280.0);
        // Make θ uniform (T follows Exner), q uniform.
        let n = col.nlev();
        for k in 0..n {
            let ex = (col.p[k] / 1.0e5f64).powf(R_DRY / CP_DRY);
            col.t[k] = 300.0 * ex;
            col.q[k] = 0.004;
        }
        let before = col.clone();
        vertical_diffusion(&mut col, 3600.0, 80.0, 1200.0);
        for k in 0..n {
            assert!((col.t[k] - before.t[k]).abs() < 1e-9);
            assert!((col.q[k] - before.q[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn large_dt_remains_stable() {
        let mut col = AtmColumn::standard(18, 300.0);
        col.t[17] += 15.0;
        vertical_diffusion(&mut col, 86_400.0, 500.0, 2000.0);
        assert!(col
            .t
            .iter()
            .all(|t| t.is_finite() && *t > 150.0 && *t < 350.0));
        assert!(col.q.iter().all(|q| *q >= 0.0));
    }

    #[test]
    fn zero_diffusivity_is_a_noop() {
        let mut col = AtmColumn::standard(18, 288.0);
        let before = col.clone();
        vertical_diffusion(&mut col, 1800.0, 0.0, 1000.0);
        assert_eq!(col.t, before.t);
    }
}
