//! Time-varying radiative forcings: piecewise-linear series in simulated
//! days, threaded into the column physics once per simulated day.
//!
//! Scenario experiments (CO₂ ramps, volcanic aerosol pulses, solar
//! sweeps) perturb what today are compile-time-ish constants in
//! [`RadParams`](crate::radiation::RadParams). A [`Forcings`] bundle
//! carries one [`ForcingSeries`] per channel; the atmosphere evaluates it
//! at `floor(sim_t / SECONDS_PER_DAY)` — i.e. the forcing is *constant
//! within each simulated day* — and folds it into an effective
//! [`crate::PhysicsConfig`] by value. Because the
//! evaluation is a pure function of the integer simulated day and the
//! static series, checkpoint/resume reproduces the forced run
//! bit-identically without any extra evolving state (the twice-daily
//! [`RadCache`](crate::RadCache) that holds the forcing's radiative
//! effect is already checkpointed).
//!
//! Channel semantics:
//!
//! * `co2` — **multiplier** on `RadParams::co2_factor` (1 = unforced);
//! * `solar` — **multiplier** on `RadParams::solar_scale` (1 = unforced);
//! * `aerosol` — **additive** gray stratospheric optical depth on
//!   `RadParams::aerosol_od` (0 = unforced).
//!
//! An empty series leaves its channel untouched, so
//! `Forcings::default()` is the identity and legacy configurations are
//! unaffected bit-for-bit.

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::constants::SECONDS_PER_DAY;

use crate::driver::PhysicsConfig;

/// A piecewise-linear time series over simulated days.
///
/// Breakpoints are `(day, value)` pairs sorted by strictly increasing
/// day; between breakpoints the value is linearly interpolated, beyond
/// either end it is held constant (so a ramp that ends stays at its
/// final level). An empty series has no opinion — [`ForcingSeries::value_at`]
/// returns `None` and the channel's identity applies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForcingSeries {
    points: Vec<(f64, f64)>,
}

impl ForcingSeries {
    /// An empty (identity) series.
    pub fn none() -> Self {
        ForcingSeries::default()
    }

    /// A series pinned at one value for all time.
    pub fn constant(value: f64) -> Self {
        ForcingSeries {
            points: vec![(0.0, value)],
        }
    }

    /// Build from `(day, value)` breakpoints. Returns `None` unless all
    /// entries are finite and days strictly increase.
    pub fn from_points(points: Vec<(f64, f64)>) -> Option<Self> {
        if points.iter().any(|(d, v)| !d.is_finite() || !v.is_finite()) {
            return None;
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        Some(ForcingSeries { points })
    }

    /// The breakpoints, sorted by day.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Piecewise-linear value at `day`; `None` when the series is empty.
    pub fn value_at(&self, day: f64) -> Option<f64> {
        let pts = &self.points;
        let (first, last) = (*pts.first()?, *pts.last()?);
        if day <= first.0 {
            return Some(first.1);
        }
        if day >= last.0 {
            return Some(last.1);
        }
        // `partition_point` finds the first breakpoint past `day`; the
        // guards above ensure 1 <= i < len.
        let i = pts.partition_point(|p| p.0 <= day);
        let (d0, v0) = pts[i - 1];
        let (d1, v1) = pts[i];
        Some(v0 + (v1 - v0) * ((day - d0) / (d1 - d0)))
    }
}

impl Codec for ForcingSeries {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.points.len().encode(buf);
        for (d, v) in &self.points {
            d.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let n = usize::decode(r)?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            let d = f64::decode(r)?;
            let v = f64::decode(r)?;
            points.push((d, v));
        }
        Ok(ForcingSeries { points })
    }
}

/// The per-channel forcing values in effect on one simulated day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyForcing {
    /// Multiplier on `RadParams::co2_factor`.
    pub co2_mult: f64,
    /// Multiplier on `RadParams::solar_scale`.
    pub solar_mult: f64,
    /// Additive gray aerosol optical depth.
    pub aerosol_od: f64,
}

impl Default for DailyForcing {
    fn default() -> Self {
        DailyForcing {
            co2_mult: 1.0,
            solar_mult: 1.0,
            aerosol_od: 0.0,
        }
    }
}

/// The scenario forcing bundle carried by a run configuration.
///
/// `Forcings::default()` (all channels empty) is the identity: the
/// atmosphere skips the per-day application entirely, so unforced runs
/// stay bit-identical to builds that predate this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Forcings {
    /// Multiplier series on CO₂ (`co2_factor`).
    pub co2: ForcingSeries,
    /// Multiplier series on the solar constant (`solar_scale`).
    pub solar: ForcingSeries,
    /// Additive gray stratospheric aerosol optical depth.
    pub aerosol: ForcingSeries,
}

impl Forcings {
    /// True when every channel is empty (identity forcing).
    pub fn is_empty(&self) -> bool {
        self.co2.is_empty() && self.solar.is_empty() && self.aerosol.is_empty()
    }

    /// The integer simulated day a given simulated time falls in —
    /// the forcing evaluation point (constant within each day, so the
    /// effective physics is a pure function of static config + day and
    /// resume is bit-identical for free).
    pub fn day_of(sim_seconds: f64) -> f64 {
        (sim_seconds / SECONDS_PER_DAY).floor()
    }

    /// Channel values in effect on `day`.
    pub fn at_day(&self, day: f64) -> DailyForcing {
        DailyForcing {
            co2_mult: self.co2.value_at(day).unwrap_or(1.0),
            solar_mult: self.solar.value_at(day).unwrap_or(1.0),
            aerosol_od: self.aerosol.value_at(day).unwrap_or(0.0),
        }
    }

    /// Fold the forcing for `day` into an effective physics
    /// configuration. `PhysicsConfig` is `Copy`, so this is
    /// allocation-free and safe to do per step in the hot loop.
    pub fn apply(&self, base: PhysicsConfig, day: f64) -> PhysicsConfig {
        let f = self.at_day(day);
        let mut cfg = base;
        cfg.rad.co2_factor *= f.co2_mult;
        cfg.rad.solar_scale *= f.solar_mult;
        cfg.rad.aerosol_od += f.aerosol_od;
        cfg
    }
}

impl Codec for Forcings {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.co2.encode(buf);
        self.solar.encode(buf);
        self.aerosol.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(Forcings {
            co2: ForcingSeries::decode(r)?,
            solar: ForcingSeries::decode(r)?,
            aerosol: ForcingSeries::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_identity() {
        let f = Forcings::default();
        assert!(f.is_empty());
        let d = f.at_day(100.0);
        assert_eq!(d, DailyForcing::default());
        let base = PhysicsConfig::default();
        let forced = f.apply(base, 100.0);
        // Identity application must preserve exact bits.
        assert_eq!(
            forced.rad.co2_factor.to_bits(),
            base.rad.co2_factor.to_bits()
        );
        assert_eq!(
            forced.rad.solar_scale.to_bits(),
            base.rad.solar_scale.to_bits()
        );
        assert_eq!(
            forced.rad.aerosol_od.to_bits(),
            base.rad.aerosol_od.to_bits()
        );
    }

    #[test]
    fn interpolation_and_extrapolation() {
        let s = ForcingSeries::from_points(vec![(0.0, 1.0), (100.0, 2.0)]).unwrap();
        assert_eq!(s.value_at(-5.0), Some(1.0));
        assert_eq!(s.value_at(0.0), Some(1.0));
        assert_eq!(s.value_at(50.0), Some(1.5));
        assert_eq!(s.value_at(100.0), Some(2.0));
        assert_eq!(s.value_at(250.0), Some(2.0));
    }

    #[test]
    fn from_points_rejects_unsorted_and_nonfinite() {
        assert!(ForcingSeries::from_points(vec![(1.0, 0.5), (1.0, 0.6)]).is_none());
        assert!(ForcingSeries::from_points(vec![(2.0, 0.5), (1.0, 0.6)]).is_none());
        assert!(ForcingSeries::from_points(vec![(0.0, f64::NAN)]).is_none());
        assert!(ForcingSeries::from_points(vec![(f64::INFINITY, 1.0)]).is_none());
        assert!(ForcingSeries::from_points(vec![]).is_some());
    }

    #[test]
    fn day_of_floors_to_simulated_day() {
        assert_eq!(Forcings::day_of(0.0), 0.0);
        assert_eq!(Forcings::day_of(86_399.0), 0.0);
        assert_eq!(Forcings::day_of(86_400.0), 1.0);
        assert_eq!(Forcings::day_of(2.5 * 86_400.0), 2.0);
    }

    #[test]
    fn apply_folds_all_three_channels() {
        let f = Forcings {
            co2: ForcingSeries::constant(2.0),
            solar: ForcingSeries::constant(1.01),
            aerosol: ForcingSeries::from_points(vec![(0.0, 0.0), (10.0, 0.2)]).unwrap(),
        };
        let base = PhysicsConfig::default();
        let eff = f.apply(base, 5.0);
        assert_eq!(eff.rad.co2_factor, base.rad.co2_factor * 2.0);
        assert_eq!(eff.rad.solar_scale, base.rad.solar_scale * 1.01);
        assert!((eff.rad.aerosol_od - 0.1).abs() < 1e-12);
    }

    #[test]
    fn codec_round_trips() {
        let f = Forcings {
            co2: ForcingSeries::from_points(vec![(0.0, 1.0), (70.0 * 360.0, 2.0)]).unwrap(),
            solar: ForcingSeries::none(),
            aerosol: ForcingSeries::constant(0.15),
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let back = Forcings::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back, f);
    }
}
