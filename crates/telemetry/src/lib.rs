//! `foam-telemetry` — built-in performance telemetry for FOAM-RS.
//!
//! The paper's headline claim is *throughput*: "model speedup" =
//! simulated time / wall-clock time (6,000× real time on the 1997 SP).
//! Sustaining that kind of number over years of development requires the
//! model to *measure itself*: always-on phase timing and throughput
//! accounting, the discipline ESiWACE-style performance engineering
//! starts from. This crate is that layer:
//!
//! * **hierarchical phase timers** — RAII [`scope`] guards record
//!   inclusive wall-clock time under `/`-joined paths
//!   (`atmosphere/dynamics/spectral`), mirroring the paper's Figure 2
//!   categories (dynamics, physics, spectral transform, coupler,
//!   barotropic subcycle);
//! * **monotonic counters** — [`count`] accumulates named event counts
//!   (radiation cache hits/misses, barotropic subcycles, retries,
//!   checkpoint bytes, messages/bytes per tag);
//! * a per-rank [`TelemetryRegistry`] installed thread-local on each
//!   rank (ranks are threads in `foam-mpi`), harvested at rank exit and
//!   reduced across ranks into a [`TelemetryReport`]: model speedup,
//!   per-phase min/mean/max across ranks, load imbalance — serialized as
//!   JSON ([`json`]) into `BENCH_model_speedup.json`-style artifacts;
//! * **negligible cost when disabled** — with no registry installed,
//!   [`scope`] and [`count`] are a thread-local `Option` check and
//!   return; instrumented code never branches on configuration itself.
//!
//! Telemetry observes wall-clock time only — it never touches model
//! state, so enabling it cannot change a simulated field (the coupled
//! integration tests assert bit-for-bit equality with telemetry on and
//! off).
//!
//! # Example
//!
//! ```
//! use foam_telemetry as telemetry;
//!
//! telemetry::install(telemetry::TelemetryRegistry::new(0));
//! {
//!     let _run = telemetry::scope("ocean");
//!     {
//!         let _sub = telemetry::scope("barotropic");
//!         telemetry::count("ocean.subcycles", 30);
//!     } // "ocean/barotropic" recorded here
//! } // "ocean" recorded here
//! let reg = telemetry::harvest().unwrap();
//! assert_eq!(reg.counters()["ocean.subcycles"], 30);
//! assert!(reg.phases()["ocean"].seconds >= reg.phases()["ocean/barotropic"].seconds);
//!
//! // With nothing installed, instrumentation is a no-op:
//! let _s = telemetry::scope("ocean");
//! telemetry::count("ocean.subcycles", 1);
//! assert!(telemetry::harvest().is_none());
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;

pub mod alloc;
pub mod json;
mod registry;
mod report;

pub use alloc::{AllocDelta, AllocRate, AllocStats, CountingAlloc, SteadyMeter};
pub use registry::{PhaseStat, TelemetryRegistry};
pub use report::{Imbalance, PhaseAgg, RankReport, TelemetryReport, SCHEMA};

thread_local! {
    static CURRENT: RefCell<Option<TelemetryRegistry>> = const { RefCell::new(None) };
}

/// Install `reg` as this thread's (rank's) active registry. Subsequent
/// [`scope`] and [`count`] calls on this thread record into it until
/// [`harvest`] removes it. Installing over an existing registry replaces
/// it (the old one is dropped).
pub fn install(reg: TelemetryRegistry) {
    CURRENT.with(|c| *c.borrow_mut() = Some(reg));
}

/// Whether a registry is installed on this thread.
pub fn installed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Remove and return this thread's registry, closing any scopes still
/// open and stamping its wall-clock span. Returns `None` when telemetry
/// was never installed (the disabled path).
pub fn harvest() -> Option<TelemetryRegistry> {
    CURRENT.with(|c| c.borrow_mut().take()).map(|mut r| {
        r.finish();
        r
    })
}

/// Run `f` with mutable access to the installed registry, if any.
pub fn with<R>(f: impl FnOnce(&mut TelemetryRegistry) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Add `n` to the named monotonic counter (no-op when disabled).
pub fn count(counter: &str, n: u64) {
    CURRENT.with(|c| {
        if let Some(reg) = c.borrow_mut().as_mut() {
            reg.add(counter, n);
        }
    });
}

/// Open a phase scope; the returned guard records the elapsed time when
/// dropped. Scopes nest: a scope opened while another is open records
/// under `parent/child`. When no registry is installed the guard is
/// inert. The guard is `!Send` — it must drop on the thread that opened
/// it.
#[must_use = "the scope is timed until this guard is dropped"]
pub fn scope(name: &'static str) -> Scope {
    let depth = CURRENT.with(|c| c.borrow_mut().as_mut().map(|reg| reg.open(name)));
    Scope {
        depth,
        _not_send: PhantomData,
    }
}

/// RAII guard for a phase scope opened with [`scope`].
pub struct Scope {
    /// Stack depth to restore on drop; `None` when telemetry is off.
    depth: Option<usize>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(depth) = self.depth {
            CURRENT.with(|c| {
                if let Some(reg) = c.borrow_mut().as_mut() {
                    reg.close_to(depth);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Thread-local state: run each test in its own thread so they cannot
    // see each other's registry.
    fn isolated(f: impl FnOnce() + Send + 'static) {
        std::thread::spawn(f).join().unwrap();
    }

    #[test]
    fn scopes_record_into_installed_registry() {
        isolated(|| {
            install(TelemetryRegistry::new(2));
            {
                let _a = scope("atmosphere");
                let _b = scope("physics");
                count("columns", 100);
            }
            count("columns", 20);
            let reg = harvest().unwrap();
            assert_eq!(reg.rank(), 2);
            assert_eq!(reg.counters()["columns"], 120);
            assert!(reg.phases().contains_key("atmosphere"));
            assert!(reg.phases().contains_key("atmosphere/physics"));
            assert!(reg.wall_seconds() > 0.0);
        });
    }

    #[test]
    fn disabled_thread_records_nothing() {
        isolated(|| {
            assert!(!installed());
            let g = scope("x");
            count("y", 1);
            drop(g);
            assert!(harvest().is_none());
        });
    }

    #[test]
    fn harvest_closes_open_scopes() {
        isolated(|| {
            install(TelemetryRegistry::new(0));
            let _leak = scope("left-open");
            let reg = harvest().unwrap();
            assert_eq!(reg.phases()["left-open"].calls, 1);
            // The guard's later drop must not panic or record anywhere.
        });
    }

    #[test]
    fn reinstall_replaces_the_registry() {
        isolated(|| {
            install(TelemetryRegistry::new(0));
            count("a", 1);
            install(TelemetryRegistry::new(1));
            count("b", 1);
            let reg = harvest().unwrap();
            assert_eq!(reg.rank(), 1);
            assert!(!reg.counters().contains_key("a"));
            assert_eq!(reg.counters()["b"], 1);
        });
    }
}
