//! Cross-rank reduction of per-rank registries into the run-level
//! report: the model-speedup metric, the per-phase wall-clock
//! breakdown, and load-imbalance statistics.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::Value;
use crate::registry::{PhaseStat, TelemetryRegistry};

/// Schema identifier written into every report.
pub const SCHEMA: &str = "foam-telemetry/1";

/// Cross-rank aggregate of one phase path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseAgg {
    /// Total seconds across all ranks that entered the phase.
    pub sum: f64,
    /// Minimum / mean / maximum seconds over the ranks that entered it.
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    /// Total entries across ranks.
    pub calls: u64,
    /// Ranks that entered the phase at least once.
    pub ranks: usize,
}

impl PhaseAgg {
    /// `max/mean` over participating ranks — 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }
}

/// Load-imbalance summary over per-rank busy time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
}

impl Imbalance {
    /// `max/mean` — 1.0 is perfect balance.
    pub fn ratio(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }
}

/// One rank's slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    pub rank: usize,
    /// Wall-clock span of the rank.
    pub wall_seconds: f64,
    /// Seconds inside top-level phases (the load-imbalance quantity).
    pub busy_seconds: f64,
    pub phases: BTreeMap<String, PhaseStat>,
    pub counters: BTreeMap<String, u64>,
}

impl RankReport {
    /// Fold another run's slice of the *same rank* into this one:
    /// wall/busy seconds add, phase stats and counters sum. This is the
    /// per-rank half of the cross-run report merge
    /// ([`TelemetryReport::merged`]); like the in-registry merge it is
    /// commutative and associative.
    pub fn merge(&mut self, other: &RankReport) {
        debug_assert_eq!(self.rank, other.rank, "merging different ranks");
        self.wall_seconds += other.wall_seconds;
        self.busy_seconds += other.busy_seconds;
        for (path, stat) in &other.phases {
            self.phases
                .entry(path.clone())
                .or_insert(PhaseStat {
                    calls: 0,
                    seconds: 0.0,
                })
                .merge(stat);
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += *n;
        }
    }

    /// Total seconds on this rank of every phase whose *leaf* name is
    /// `leaf`, wherever it sits in the tree (the per-rank analogue of
    /// [`TelemetryReport::rollup`]).
    pub fn leaf_seconds(&self, leaf: &str) -> f64 {
        // Fold from +0.0: an empty `Sum<f64>` is -0.0, which would
        // format as "-0.000" in reports.
        self.phases
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .fold(0.0, |acc, (_, s)| acc + s.seconds)
    }
}

/// The run-level telemetry report: what [`crate::TelemetryRegistry`]
/// instances from every rank reduce into at the end of a coupled run.
///
/// ```
/// use foam_telemetry::{TelemetryRegistry, TelemetryReport};
///
/// let mut r0 = TelemetryRegistry::new(0);
/// r0.record_phase("atmosphere", 2.0);
/// r0.record_phase("atmosphere/physics", 1.5);
/// let mut r1 = TelemetryRegistry::new(1);
/// r1.record_phase("ocean", 1.0);
/// // One simulated day integrated in two wall-clock seconds:
/// let report = TelemetryReport::from_ranks(86_400.0, 2.0, vec![r1, r0]);
/// assert_eq!(report.model_speedup, 43_200.0);
/// assert_eq!(report.ranks[0].rank, 0); // sorted by rank, input order irrelevant
/// assert!(report.phase("atmosphere/physics").is_some());
/// assert!(report.tree_consistent(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Simulated span covered by this run \[s\].
    pub sim_seconds: f64,
    /// Wall-clock span of the integration \[s\].
    pub wall_seconds: f64,
    /// The paper's headline metric: simulated time / wall-clock time
    /// (equivalently, simulated days per wall-clock day).
    pub model_speedup: f64,
    /// Per-rank slices, sorted by rank.
    pub ranks: Vec<RankReport>,
    /// Cross-rank aggregates keyed by `/`-joined phase path.
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Counters summed across ranks.
    pub counters: BTreeMap<String, u64>,
    /// Extra report sections supplied by higher layers (e.g. the run
    /// supervisor's recovery section), keyed by section name. Rendered
    /// verbatim into the JSON document; deterministic content is the
    /// supplier's contract (BTreeMap ordering keeps the keys stable).
    pub extra: BTreeMap<String, Value>,
}

impl TelemetryReport {
    /// Reduce per-rank registries into the run-level report. The input
    /// order is irrelevant: ranks are sorted and all aggregation is
    /// commutative, so any permutation produces an identical report.
    pub fn from_ranks(
        sim_seconds: f64,
        wall_seconds: f64,
        regs: Vec<TelemetryRegistry>,
    ) -> TelemetryReport {
        let mut ranks: Vec<RankReport> = regs
            .into_iter()
            .map(|r| RankReport {
                rank: r.rank(),
                wall_seconds: r.wall_seconds(),
                busy_seconds: r.busy_seconds(),
                phases: r.phases().clone(),
                counters: r.counters().clone(),
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        let (phases, counters) = Self::aggregate(&ranks);
        let wall = wall_seconds.max(1e-9);
        TelemetryReport {
            sim_seconds,
            wall_seconds,
            model_speedup: sim_seconds / wall,
            ranks,
            phases,
            counters,
            extra: BTreeMap::new(),
        }
    }

    /// Cross-rank aggregation of per-rank slices (shared by the initial
    /// reduction and the cross-run merge).
    #[allow(clippy::type_complexity)]
    fn aggregate(ranks: &[RankReport]) -> (BTreeMap<String, PhaseAgg>, BTreeMap<String, u64>) {
        let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for r in ranks {
            for (path, stat) in &r.phases {
                let agg = phases.entry(path.clone()).or_insert(PhaseAgg {
                    sum: 0.0,
                    min: f64::INFINITY,
                    mean: 0.0,
                    max: 0.0,
                    calls: 0,
                    ranks: 0,
                });
                agg.sum += stat.seconds;
                agg.min = agg.min.min(stat.seconds);
                agg.max = agg.max.max(stat.seconds);
                agg.calls += stat.calls;
                agg.ranks += 1;
            }
            for (name, n) in &r.counters {
                *counters.entry(name.clone()).or_insert(0) += *n;
            }
        }
        for agg in phases.values_mut() {
            agg.mean = agg.sum / agg.ranks.max(1) as f64;
        }
        (phases, counters)
    }

    /// Fold another *run's* report into this one — the cross-run half
    /// of ensemble aggregation. Same-rank slices merge
    /// ([`RankReport::merge`]), simulated and wall-clock spans add (the
    /// merged wall clock is the sequential-equivalent cost: what the
    /// member runs would cost back-to-back on one machine), and the
    /// cross-rank aggregates are recomputed. Absorbing a set of reports
    /// in any order yields the same merged report.
    pub fn absorb(&mut self, other: &TelemetryReport) {
        self.sim_seconds += other.sim_seconds;
        self.wall_seconds += other.wall_seconds;
        for theirs in &other.ranks {
            match self.ranks.iter_mut().find(|r| r.rank == theirs.rank) {
                Some(mine) => mine.merge(theirs),
                None => self.ranks.push(theirs.clone()),
            }
        }
        self.ranks.sort_by_key(|r| r.rank);
        let (phases, counters) = Self::aggregate(&self.ranks);
        self.phases = phases;
        self.counters = counters;
        self.model_speedup = self.sim_seconds / self.wall_seconds.max(1e-9);
        // Extra sections are carried over where this report has none of
        // its own; an existing section wins (it describes *this* run).
        for (k, v) in &other.extra {
            self.extra.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }

    /// Merge the reports of several runs (ensemble members) into one
    /// cumulative report; `None` when the iterator is empty.
    ///
    /// ```
    /// use foam_telemetry::{TelemetryRegistry, TelemetryReport};
    ///
    /// let mut r = TelemetryRegistry::new(0);
    /// r.record_phase("ocean", 1.0);
    /// let a = TelemetryReport::from_ranks(10.0, 1.0, vec![r.clone()]);
    /// let b = TelemetryReport::from_ranks(30.0, 1.0, vec![r]);
    /// let m = TelemetryReport::merged([&a, &b]).unwrap();
    /// assert_eq!(m.sim_seconds, 40.0);
    /// assert_eq!(m.phase("ocean").unwrap().sum, 2.0);
    /// ```
    pub fn merged<'a>(
        reports: impl IntoIterator<Item = &'a TelemetryReport>,
    ) -> Option<TelemetryReport> {
        let mut iter = reports.into_iter();
        let mut out = iter.next()?.clone();
        for r in iter {
            out.absorb(r);
        }
        Some(out)
    }

    /// The aggregate for one phase path.
    pub fn phase(&self, path: &str) -> Option<&PhaseAgg> {
        self.phases.get(path)
    }

    /// Total seconds (across ranks) of every phase whose *leaf* name is
    /// `leaf` — e.g. `rollup("spectral")` sums spectral-transform time
    /// wherever in the tree it was entered from.
    pub fn rollup(&self, leaf: &str) -> f64 {
        // Fold from +0.0 so an unmatched leaf reports 0.0, not the
        // empty sum's -0.0.
        self.phases
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .fold(0.0, |acc, (_, agg)| acc + agg.sum)
    }

    /// Min/mean/max of per-rank busy time — the paper's load-imbalance
    /// view of Figure 2. `None` when no rank recorded any phase.
    pub fn load_imbalance(&self) -> Option<Imbalance> {
        let busy: Vec<f64> = self
            .ranks
            .iter()
            .map(|r| r.busy_seconds)
            .filter(|&b| b > 0.0)
            .collect();
        if busy.is_empty() {
            return None;
        }
        let sum: f64 = busy.iter().sum();
        Some(Imbalance {
            min: busy.iter().cloned().fold(f64::INFINITY, f64::min),
            mean: sum / busy.len() as f64,
            max: busy.iter().cloned().fold(0.0, f64::max),
        })
    }

    /// The busiest rank's busy time — the projected parallel wall clock
    /// on a machine with one core per rank (the Figure-2 accounting the
    /// scaling table reports alongside measured wall time).
    pub fn projected_wall_seconds(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.busy_seconds)
            .fold(0.0, f64::max)
    }

    /// Model speedup under the projected parallel wall clock.
    pub fn projected_speedup(&self) -> f64 {
        self.sim_seconds / self.projected_wall_seconds().max(1e-9)
    }

    /// Check the timing tree: on every rank, the children of each phase
    /// must not sum to more than the parent plus `tol` seconds (timers
    /// are inclusive, so children ≤ parent by construction — a violation
    /// means scopes were mispaired).
    pub fn tree_consistent(&self, tol: f64) -> bool {
        for r in &self.ranks {
            for (path, stat) in &r.phases {
                let prefix = format!("{path}/");
                let child_sum: f64 = r
                    .phases
                    .iter()
                    .filter(|(p, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains('/'))
                    .map(|(_, s)| s.seconds)
                    .sum();
                if child_sum > stat.seconds + tol {
                    return false;
                }
            }
        }
        true
    }

    /// Render the report as a JSON document (see DESIGN.md §9 for the
    /// schema).
    pub fn to_json(&self) -> Value {
        let phases = Value::Object(
            self.phases
                .iter()
                .map(|(path, a)| {
                    (
                        path.clone(),
                        Value::object([
                            ("sum_s".to_string(), a.sum.into()),
                            ("min_s".to_string(), a.min.into()),
                            ("mean_s".to_string(), a.mean.into()),
                            ("max_s".to_string(), a.max.into()),
                            ("imbalance".to_string(), a.imbalance().into()),
                            ("calls".to_string(), a.calls.into()),
                            ("ranks".to_string(), a.ranks.into()),
                        ]),
                    )
                })
                .collect(),
        );
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        let ranks = Value::Array(
            self.ranks
                .iter()
                .map(|r| {
                    Value::object([
                        ("rank".to_string(), r.rank.into()),
                        ("wall_s".to_string(), r.wall_seconds.into()),
                        ("busy_s".to_string(), r.busy_seconds.into()),
                        (
                            "phases".to_string(),
                            Value::Object(
                                r.phases
                                    .iter()
                                    .map(|(p, s)| {
                                        (
                                            p.clone(),
                                            Value::object([
                                                ("s".to_string(), s.seconds.into()),
                                                ("calls".to_string(), s.calls.into()),
                                            ]),
                                        )
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "counters".to_string(),
                            Value::Object(
                                r.counters
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let imbalance = match self.load_imbalance() {
            Some(i) => Value::object([
                ("min_s".to_string(), i.min.into()),
                ("mean_s".to_string(), i.mean.into()),
                ("max_s".to_string(), i.max.into()),
                ("max_over_mean".to_string(), i.ratio().into()),
            ]),
            None => Value::Null,
        };
        let mut fields = vec![
            ("schema".to_string(), Value::from(SCHEMA)),
            ("sim_seconds".to_string(), self.sim_seconds.into()),
            ("wall_seconds".to_string(), self.wall_seconds.into()),
            ("model_speedup".to_string(), self.model_speedup.into()),
            (
                "sim_days_per_wall_day".to_string(),
                self.model_speedup.into(),
            ),
            ("n_ranks".to_string(), self.ranks.len().into()),
            ("load_imbalance".to_string(), imbalance),
            ("phases".to_string(), phases),
            ("counters".to_string(), counters),
            ("ranks".to_string(), ranks),
        ];
        // Extra sections last, in BTreeMap (sorted-key) order; absent
        // entirely when no layer added one, keeping plain reports
        // unchanged.
        for (k, v) in &self.extra {
            fields.push((k.clone(), v.clone()));
        }
        Value::object(fields)
    }

    /// Write the report as pretty-printed JSON at `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(rank: usize, phases: &[(&str, f64)], counters: &[(&str, u64)]) -> TelemetryRegistry {
        let mut r = TelemetryRegistry::new(rank);
        for (p, s) in phases {
            r.record_phase(p, *s);
        }
        for (c, n) in counters {
            r.add(c, *n);
        }
        r.set_wall_seconds(phases.iter().map(|(_, s)| *s).sum());
        r
    }

    #[test]
    fn reduction_is_input_order_independent() {
        let a = reg(0, &[("atm", 2.0), ("atm/phys", 1.0)], &[("n", 1)]);
        let b = reg(1, &[("atm", 3.0)], &[("n", 2)]);
        let c = reg(2, &[("ocean", 1.0)], &[]);
        let r1 = TelemetryReport::from_ranks(1.0, 1.0, vec![a.clone(), b.clone(), c.clone()]);
        let r2 = TelemetryReport::from_ranks(1.0, 1.0, vec![c, a, b]);
        assert_eq!(r1, r2);
        assert_eq!(
            r1.to_json().to_string_pretty(),
            r2.to_json().to_string_pretty()
        );
    }

    #[test]
    fn aggregates_and_imbalance() {
        let a = reg(0, &[("atm", 2.0)], &[]);
        let b = reg(1, &[("atm", 4.0)], &[]);
        let r = TelemetryReport::from_ranks(86_400.0, 4.0, vec![a, b]);
        let agg = r.phase("atm").unwrap();
        assert_eq!(agg.sum, 6.0);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 4.0);
        assert_eq!(agg.mean, 3.0);
        assert!((agg.imbalance() - 4.0 / 3.0).abs() < 1e-12);
        let imb = r.load_imbalance().unwrap();
        assert_eq!((imb.min, imb.mean, imb.max), (2.0, 3.0, 4.0));
        assert_eq!(r.model_speedup, 86_400.0 / 4.0);
        assert_eq!(r.projected_wall_seconds(), 4.0);
    }

    #[test]
    fn rollup_sums_by_leaf_name() {
        let a = reg(
            0,
            &[
                ("atm/dyn/spectral", 1.0),
                ("atm/tracer/spectral", 0.5),
                ("spectral", 0.25),
            ],
            &[],
        );
        let r = TelemetryReport::from_ranks(1.0, 1.0, vec![a]);
        assert!((r.rollup("spectral") - 1.75).abs() < 1e-12);
        assert_eq!(r.rollup("nothing"), 0.0);
        assert!((r.ranks[0].leaf_seconds("spectral") - 1.75).abs() < 1e-12);
    }

    #[test]
    fn tree_consistency_detects_mispaired_scopes() {
        let good = reg(0, &[("a", 2.0), ("a/b", 1.0), ("a/c", 0.5)], &[]);
        assert!(TelemetryReport::from_ranks(1.0, 1.0, vec![good]).tree_consistent(1e-9));
        let bad = reg(0, &[("a", 1.0), ("a/b", 2.0)], &[]);
        assert!(!TelemetryReport::from_ranks(1.0, 1.0, vec![bad]).tree_consistent(1e-9));
    }

    #[test]
    fn cross_run_merge_sums_and_is_order_independent() {
        let a = TelemetryReport::from_ranks(
            10.0,
            2.0,
            vec![
                reg(0, &[("atm", 1.0)], &[("msgs", 3)]),
                reg(1, &[("ocean", 2.0)], &[]),
            ],
        );
        let b = TelemetryReport::from_ranks(
            30.0,
            1.0,
            vec![reg(0, &[("atm", 0.5), ("ckpt", 0.25)], &[("msgs", 1)])],
        );
        let c = TelemetryReport::from_ranks(5.0, 0.5, vec![reg(2, &[("ocean", 4.0)], &[])]);
        let ab_c = {
            let mut m = TelemetryReport::merged([&a, &b]).unwrap();
            m.absorb(&c);
            m
        };
        let c_b_a = TelemetryReport::merged([&c, &b, &a]).unwrap();
        assert_eq!(ab_c, c_b_a);
        assert_eq!(ab_c.sim_seconds, 45.0);
        assert_eq!(ab_c.wall_seconds, 3.5);
        assert_eq!(ab_c.phase("atm").unwrap().sum, 1.5);
        assert_eq!(ab_c.phase("ocean").unwrap().sum, 6.0);
        assert_eq!(ab_c.counters["msgs"], 4);
        assert_eq!(ab_c.ranks.len(), 3);
        assert!(TelemetryReport::merged(std::iter::empty()).is_none());
    }

    #[test]
    fn json_report_carries_the_headline_fields() {
        let a = reg(0, &[("atm", 1.0)], &[("msgs", 7)]);
        let r = TelemetryReport::from_ranks(86_400.0, 2.0, vec![a]);
        let v = r.to_json();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        assert_eq!(
            v.get("model_speedup").and_then(|x| x.as_f64()),
            Some(43_200.0)
        );
        assert!(v.get("phases").unwrap().get("atm").is_some());
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("msgs")
                .and_then(|x| x.as_f64()),
            Some(7.0)
        );
        // Emitted JSON must parse back with our own parser.
        let text = v.to_string_pretty();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("n_ranks").and_then(|x| x.as_f64()), Some(1.0));
    }
}
