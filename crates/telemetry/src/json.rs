//! A minimal JSON value, writer, and parser.
//!
//! The build environment is fully offline (no serde), so the telemetry
//! report carries its own JSON layer: enough to *emit* the
//! `BENCH_model_speedup.json` artifact deterministically (object keys
//! ride on `BTreeMap`, so rendering is stable) and to *parse* it back in
//! tests and CI checks. Numbers are `f64`; monotonic counters stay exact
//! up to 2^53, far beyond anything a run can accumulate.
//!
//! ```
//! use foam_telemetry::json::{parse, Value};
//!
//! let v = parse(r#"{"speedup": 1200.5, "phases": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("speedup").and_then(Value::as_f64), Some(1200.5));
//! assert_eq!(v.get("phases").unwrap().as_array().unwrap().len(), 2);
//! let round = parse(&v.to_string()).unwrap();
//! assert_eq!(round, v);
//! ```

use std::collections::BTreeMap;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Keys are ordered (`BTreeMap`), so serialization is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Render with two-space indentation (a stable, diff-friendly form
    /// for the `BENCH_*.json` artifacts).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => out.push_str(&fmt_number(*x)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Value::Object(map) => {
                let entries: Vec<(&String, &Value)> = map.iter().collect();
                write_seq(out, indent, '{', '}', entries.len(), |out, i, ind| {
                    let (k, v) = entries[i];
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, ind);
                });
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None);
        f.write_str(&s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Number(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Number(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        match indent {
            Some(level) => {
                out.push('\n');
                out.push_str(&"  ".repeat(level + 1));
                item(out, i, Some(level + 1));
            }
            None => item(out, i, None),
        }
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/Infinity; they serialize as `null` and the counters
/// and timers never produce them. Integral values print without a
/// fractional part so counters read naturally.
fn fmt_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        let s = format!("{x}");
        // `{}` on f64 always includes enough digits to round-trip.
        s
    }
}

/// A parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub expected: &'static str,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Trailing content after the top-level value is
/// an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            expected: "end of input",
            offset: pos,
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError {
            expected: lit,
            offset: *pos,
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => eat(b, pos, "null").map(|_| Value::Null),
        Some(b't') => eat(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => eat(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(ParseError {
                            expected: "',' or ']'",
                            offset: *pos,
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                eat(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => {
                        return Err(ParseError {
                            expected: "',' or '}'",
                            offset: *pos,
                        })
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(ParseError {
            expected: "a JSON value",
            offset: *pos,
        }),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            expected: "'\"'",
            offset: *pos,
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            expected: "4 hex digits",
                            offset: *pos,
                        })?;
                        let s = std::str::from_utf8(hex).map_err(|_| ParseError {
                            expected: "4 hex digits",
                            offset: *pos,
                        })?;
                        let code = u32::from_str_radix(s, 16).map_err(|_| ParseError {
                            expected: "4 hex digits",
                            offset: *pos,
                        })?;
                        // Surrogate pairs are not needed by our own output;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            expected: "an escape character",
                            offset: *pos,
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(s)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .ok_or(ParseError {
                        expected: "valid UTF-8",
                        offset: *pos,
                    })?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => {
                return Err(ParseError {
                    expected: "closing '\"'",
                    offset: *pos,
                })
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or(ParseError {
            expected: "a number",
            offset: start,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::object([
            ("a".to_string(), Value::from(1.5)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::from("x\n\"y")]),
            ),
            ("c".to_string(), Value::object([])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text:?}");
        }
    }

    #[test]
    fn counters_print_as_integers() {
        assert_eq!(Value::from(12u64).to_string(), "12");
        assert_eq!(Value::from(0.25).to_string(), "0.25");
        // Round-trip precision of an awkward float.
        let x = 0.1 + 0.2;
        let back = parse(&Value::from(x).to_string()).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let a = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(a.to_string(), r#"{"a": 2, "z": 1}"#);
    }
}
