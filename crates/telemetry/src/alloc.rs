//! Process-wide heap accounting: a [`GlobalAlloc`] wrapper that counts
//! live and peak heap bytes.
//!
//! Container-grade RSS measurement is not portable (and `/proc` parsing
//! races the allocator); what the century bench actually needs is a
//! *proxy* that moves with the statistics memory — live heap bytes and
//! their high-water mark. [`CountingAlloc`] wraps the system allocator
//! and maintains both in relaxed atomics, costing two `fetch_add`s per
//! allocation. Opt in per binary:
//!
//! ```ignore
//! use foam_telemetry::alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! fn main() {
//!     let before = CountingAlloc::stats();
//!     // ... run ...
//!     let after = CountingAlloc::stats();
//!     println!("peak heap {} bytes", after.peak_bytes - before.live_bytes);
//! }
//! ```
//!
//! The counters are global to the process (allocations from every
//! thread land in them), so in the SPMD driver they bound the *whole
//! job's* footprint — exactly the quantity a century run must keep flat
//! in the number of simulated months.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process's heap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start (or the last
    /// [`CountingAlloc::reset_peak`]).
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub total_bytes: u64,
    /// Cumulative allocation calls.
    pub allocations: u64,
}

impl AllocStats {
    /// Allocation activity between `earlier` and `self` — the
    /// cumulative counters only, since the instantaneous ones
    /// (`live_bytes`, `peak_bytes`) have no meaningful difference.
    /// Saturating, so a mismatched pair reads zero instead of wrapping.
    ///
    /// ```
    /// use foam_telemetry::alloc::AllocStats;
    ///
    /// let before = AllocStats { live_bytes: 0, peak_bytes: 0, total_bytes: 1_000, allocations: 10 };
    /// let after = AllocStats { live_bytes: 0, peak_bytes: 0, total_bytes: 1_640, allocations: 17 };
    /// let d = after.since(&before);
    /// assert_eq!(d.allocations, 7);
    /// assert_eq!(d.total_bytes, 640);
    /// assert_eq!(before.since(&after), Default::default()); // saturates
    /// ```
    pub fn since(&self, earlier: &AllocStats) -> AllocDelta {
        AllocDelta {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            total_bytes: self.total_bytes.saturating_sub(earlier.total_bytes),
        }
    }
}

/// Allocation activity over a window: the difference of two
/// [`AllocStats`] snapshots (see [`AllocStats::since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Allocation calls made inside the window.
    pub allocations: u64,
    /// Bytes requested inside the window.
    pub total_bytes: u64,
}

impl AllocDelta {
    /// Normalize the window to a rate — e.g. allocations per simulated
    /// year when `units` is the simulated years the window covered.
    /// Returns zero counts for a non-positive `units` rather than an
    /// infinity that would poison a JSON report.
    ///
    /// ```
    /// use foam_telemetry::alloc::AllocDelta;
    ///
    /// let d = AllocDelta { allocations: 990, total_bytes: 4_950 };
    /// let per_year = d.per(99.0);
    /// assert_eq!(per_year.allocations, 10.0);
    /// assert_eq!(per_year.total_bytes, 50.0);
    /// assert_eq!(d.per(0.0).allocations, 0.0);
    /// ```
    pub fn per(&self, units: f64) -> AllocRate {
        if units > 0.0 {
            AllocRate {
                allocations: self.allocations as f64 / units,
                total_bytes: self.total_bytes as f64 / units,
            }
        } else {
            AllocRate {
                allocations: 0.0,
                total_bytes: 0.0,
            }
        }
    }
}

/// An [`AllocDelta`] normalized per unit (simulated year, step, ...).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AllocRate {
    /// Allocation calls per unit.
    pub allocations: f64,
    /// Bytes requested per unit.
    pub total_bytes: f64,
}

/// A scoped steady-state allocation measurement: snapshot the counters
/// when the warm-up ends ([`SteadyMeter::begin`]), then read the
/// activity of the steady window ([`SteadyMeter::so_far`]). The century
/// bench begins one at the end of the first simulated year and divides
/// by the remaining years to report `steady_allocs_per_year`, the
/// number the CI regression gate watches (see PERFORMANCE.md).
///
/// ```
/// use foam_telemetry::alloc::SteadyMeter;
///
/// let meter = SteadyMeter::begin();
/// let warm = Vec::from([0u8; 64]); // churn (only counted if the
///                                  // counting allocator is installed)
/// let d = meter.so_far();
/// assert!(d.allocations <= 1_000); // bounded either way
/// drop(warm);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SteadyMeter {
    start: AllocStats,
}

impl SteadyMeter {
    /// Open the measurement window at the current counters.
    pub fn begin() -> Self {
        SteadyMeter {
            start: CountingAlloc::stats(),
        }
    }

    /// Allocation activity since [`SteadyMeter::begin`].
    pub fn so_far(&self) -> AllocDelta {
        CountingAlloc::stats().since(&self.start)
    }
}

/// The counting wrapper around the system allocator. Install it with
/// `#[global_allocator]` in binaries that report memory, then read
/// [`CountingAlloc::stats`].
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator value for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }

    /// Current heap accounting. Meaningful only in processes where
    /// `CountingAlloc` *is* the global allocator; elsewhere every field
    /// reads zero.
    pub fn stats() -> AllocStats {
        AllocStats {
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_bytes: PEAK.load(Ordering::Relaxed),
            total_bytes: TOTAL.load(Ordering::Relaxed),
            allocations: COUNT.load(Ordering::Relaxed),
        }
    }

    /// Reset the peak to the current live size — call at the start of
    /// the phase whose high-water mark is being measured.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

fn on_alloc(size: u64) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(size, Ordering::Relaxed);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System` for memory; the bookkeeping is
// lock-free atomics and cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new > old {
                on_alloc(new - old);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator globally, so the
    // counters only move when we drive them directly.
    #[test]
    fn bookkeeping_tracks_live_and_peak() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = CountingAlloc::stats();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let mid = CountingAlloc::stats();
            assert_eq!(mid.live_bytes, before.live_bytes + 1024);
            assert!(mid.peak_bytes >= mid.live_bytes);
            assert_eq!(mid.allocations, before.allocations + 1);
            a.dealloc(p, layout);
        }
        let after = CountingAlloc::stats();
        assert_eq!(after.live_bytes, before.live_bytes);
        assert_eq!(after.total_bytes, before.total_bytes + 1024);
        // The peak survives the free until explicitly reset.
        assert!(after.peak_bytes >= before.live_bytes + 1024);
        CountingAlloc::reset_peak();
        assert_eq!(CountingAlloc::stats().peak_bytes, after.live_bytes);
    }

    #[test]
    fn steady_window_sees_activity_inside_it() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let meter = SteadyMeter::begin();
        unsafe {
            let p = a.alloc(layout);
            a.dealloc(p, layout);
        }
        // Sibling tests drive the same process-wide counters
        // concurrently, so the window is a lower bound here.
        let d = meter.so_far();
        assert!(d.allocations >= 1);
        assert!(d.total_bytes >= 64);
        let rate = AllocDelta {
            allocations: 9,
            total_bytes: 900,
        }
        .per(3.0);
        assert_eq!(rate.allocations, 3.0);
        assert_eq!(rate.total_bytes, 300.0);
    }

    #[test]
    fn realloc_moves_live_by_the_difference() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            let live0 = CountingAlloc::stats().live_bytes;
            let p2 = a.realloc(p, layout, 512);
            assert_eq!(CountingAlloc::stats().live_bytes, live0 + 256);
            let grown = Layout::from_size_align(512, 8).unwrap();
            let p3 = a.realloc(p2, grown, 128);
            assert_eq!(CountingAlloc::stats().live_bytes, live0 - 128);
            a.dealloc(p3, Layout::from_size_align(128, 8).unwrap());
        }
    }
}
