//! Process-wide heap accounting: a [`GlobalAlloc`] wrapper that counts
//! live and peak heap bytes.
//!
//! Container-grade RSS measurement is not portable (and `/proc` parsing
//! races the allocator); what the century bench actually needs is a
//! *proxy* that moves with the statistics memory — live heap bytes and
//! their high-water mark. [`CountingAlloc`] wraps the system allocator
//! and maintains both in relaxed atomics, costing two `fetch_add`s per
//! allocation. Opt in per binary:
//!
//! ```ignore
//! use foam_telemetry::alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! fn main() {
//!     let before = CountingAlloc::stats();
//!     // ... run ...
//!     let after = CountingAlloc::stats();
//!     println!("peak heap {} bytes", after.peak_bytes - before.live_bytes);
//! }
//! ```
//!
//! The counters are global to the process (allocations from every
//! thread land in them), so in the SPMD driver they bound the *whole
//! job's* footprint — exactly the quantity a century run must keep flat
//! in the number of simulated months.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process's heap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start (or the last
    /// [`CountingAlloc::reset_peak`]).
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub total_bytes: u64,
    /// Cumulative allocation calls.
    pub allocations: u64,
}

/// The counting wrapper around the system allocator. Install it with
/// `#[global_allocator]` in binaries that report memory, then read
/// [`CountingAlloc::stats`].
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator value for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }

    /// Current heap accounting. Meaningful only in processes where
    /// `CountingAlloc` *is* the global allocator; elsewhere every field
    /// reads zero.
    pub fn stats() -> AllocStats {
        AllocStats {
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_bytes: PEAK.load(Ordering::Relaxed),
            total_bytes: TOTAL.load(Ordering::Relaxed),
            allocations: COUNT.load(Ordering::Relaxed),
        }
    }

    /// Reset the peak to the current live size — call at the start of
    /// the phase whose high-water mark is being measured.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

fn on_alloc(size: u64) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(size, Ordering::Relaxed);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System` for memory; the bookkeeping is
// lock-free atomics and cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new > old {
                on_alloc(new - old);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator globally, so the
    // counters only move when we drive them directly.
    #[test]
    fn bookkeeping_tracks_live_and_peak() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = CountingAlloc::stats();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let mid = CountingAlloc::stats();
            assert_eq!(mid.live_bytes, before.live_bytes + 1024);
            assert!(mid.peak_bytes >= mid.live_bytes);
            assert_eq!(mid.allocations, before.allocations + 1);
            a.dealloc(p, layout);
        }
        let after = CountingAlloc::stats();
        assert_eq!(after.live_bytes, before.live_bytes);
        assert_eq!(after.total_bytes, before.total_bytes + 1024);
        // The peak survives the free until explicitly reset.
        assert!(after.peak_bytes >= before.live_bytes + 1024);
        CountingAlloc::reset_peak();
        assert_eq!(CountingAlloc::stats().peak_bytes, after.live_bytes);
    }

    #[test]
    fn realloc_moves_live_by_the_difference() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            let live0 = CountingAlloc::stats().live_bytes;
            let p2 = a.realloc(p, layout, 512);
            assert_eq!(CountingAlloc::stats().live_bytes, live0 + 256);
            let grown = Layout::from_size_align(512, 8).unwrap();
            let p3 = a.realloc(p2, grown, 128);
            assert_eq!(CountingAlloc::stats().live_bytes, live0 - 128);
            a.dealloc(p3, Layout::from_size_align(128, 8).unwrap());
        }
    }
}
