//! The per-rank registry: hierarchical phase timers and monotonic
//! counters.
//!
//! One [`TelemetryRegistry`] lives on each rank (thread) of a run. Phase
//! timers form a tree: opening a scope while another is open records the
//! child under the path `parent/child`, so a report can both show the
//! tree and assert that children never account for more time than their
//! parent. Counters are flat, named, and monotonic — merge just adds.

use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated time of one phase path on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall-clock seconds inside the phase (children included —
    /// this is *inclusive* time, like the paper's Figure 2 bars).
    pub seconds: f64,
}

impl PhaseStat {
    /// Fold another accumulation of the same phase into this one.
    pub fn merge(&mut self, other: &PhaseStat) {
        self.calls += other.calls;
        self.seconds += other.seconds;
    }
}

/// Per-rank telemetry state: phase timers keyed by `a/b/c` path,
/// monotonic counters keyed by name, and the stack of currently open
/// scopes.
///
/// ```
/// use foam_telemetry::TelemetryRegistry;
///
/// let mut reg = TelemetryRegistry::new(0);
/// let d = reg.open("ocean");
/// reg.open("barotropic");
/// reg.add("ocean.subcycles", 30);
/// reg.close_to(d); // closes barotropic, then ocean
/// assert!(reg.phases().contains_key("ocean/barotropic"));
/// assert_eq!(reg.counters()["ocean.subcycles"], 30);
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryRegistry {
    rank: usize,
    epoch: Instant,
    /// Wall-clock span of the rank, stamped by [`TelemetryRegistry::finish`].
    wall_seconds: f64,
    phases: BTreeMap<String, PhaseStat>,
    counters: BTreeMap<String, u64>,
    /// Open scopes: (name, start). The full path of the innermost scope
    /// is the names joined with `/`.
    stack: Vec<(&'static str, Instant)>,
}

impl TelemetryRegistry {
    pub fn new(rank: usize) -> Self {
        TelemetryRegistry {
            rank,
            epoch: Instant::now(),
            wall_seconds: 0.0,
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            stack: Vec::new(),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Wall-clock span covered by this registry (0 until
    /// [`TelemetryRegistry::finish`] stamps it).
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// Phase accumulations keyed by `/`-joined path.
    pub fn phases(&self) -> &BTreeMap<String, PhaseStat> {
        &self.phases
    }

    /// Monotonic counters keyed by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Open a phase scope nested inside whatever is currently open.
    /// Returns the stack depth *before* the open — pass it to
    /// [`TelemetryRegistry::close_to`] to close this scope (and any
    /// children still open, so a scope abandoned early cannot corrupt
    /// its siblings).
    pub fn open(&mut self, name: &'static str) -> usize {
        let depth = self.stack.len();
        self.stack.push((name, Instant::now()));
        depth
    }

    /// Close scopes until the stack is `depth` deep again, recording
    /// each closed scope under its full path. Out-of-order guard drops
    /// therefore close the whole abandoned subtree; a stale depth (≥
    /// current stack) is a no-op.
    pub fn close_to(&mut self, depth: usize) {
        while self.stack.len() > depth {
            let (_, start) = *self.stack.last().expect("stack is non-empty");
            let path = self
                .stack
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join("/");
            let seconds = start.elapsed().as_secs_f64();
            self.stack.pop();
            let stat = self.phases.entry(path).or_default();
            stat.calls += 1;
            stat.seconds += seconds;
        }
    }

    /// Add `n` to the named monotonic counter.
    pub fn add(&mut self, counter: &str, n: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += n;
    }

    /// Record a phase observation directly (tests and offline tooling;
    /// the live path goes through [`TelemetryRegistry::open`] /
    /// [`TelemetryRegistry::close_to`]).
    pub fn record_phase(&mut self, path: &str, seconds: f64) {
        let stat = self.phases.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.seconds += seconds;
    }

    /// Set the rank's wall-clock span explicitly (tests and offline
    /// tooling).
    pub fn set_wall_seconds(&mut self, seconds: f64) {
        self.wall_seconds = seconds;
    }

    /// Close any dangling scopes and stamp the rank's wall-clock span.
    /// Called when the rank finishes; harvesting does it for you.
    pub fn finish(&mut self) {
        self.close_to(0);
        self.wall_seconds = self.epoch.elapsed().as_secs_f64();
    }

    /// Fold another registry *of the same rank* (e.g. a resumed segment)
    /// into this one: counters and phase times add, the wall span adds.
    /// Cross-*rank* aggregation lives in
    /// [`crate::TelemetryReport::from_ranks`], which keeps ranks apart.
    pub fn merge(&mut self, other: &TelemetryRegistry) {
        for (path, stat) in &other.phases {
            self.phases.entry(path.clone()).or_default().merge(stat);
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += *n;
        }
        self.wall_seconds += other.wall_seconds;
    }

    /// Seconds spent in top-level phases (paths with no `/`) — the
    /// rank's "busy" time, the quantity whose spread across ranks is the
    /// load imbalance.
    pub fn busy_seconds(&self) -> f64 {
        // Fold from +0.0: an empty `Sum<f64>` is -0.0, which would leak
        // a "-0" into reports from a rank that recorded no phases.
        self.phases
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .fold(0.0, |acc, (_, s)| acc + s.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_record_paths() {
        let mut r = TelemetryRegistry::new(3);
        let d0 = r.open("atmosphere");
        let d1 = r.open("dynamics");
        let d2 = r.open("spectral");
        r.close_to(d2);
        r.close_to(d1);
        r.close_to(d0);
        let paths: Vec<&String> = r.phases().keys().collect();
        assert_eq!(
            paths,
            vec![
                "atmosphere",
                "atmosphere/dynamics",
                "atmosphere/dynamics/spectral"
            ]
        );
        // Inclusive timing: the parent covers its children.
        assert!(r.phases()["atmosphere"].seconds >= r.phases()["atmosphere/dynamics"].seconds);
        assert!(
            r.phases()["atmosphere/dynamics"].seconds
                >= r.phases()["atmosphere/dynamics/spectral"].seconds
        );
        assert_eq!(r.rank(), 3);
    }

    #[test]
    fn repeated_scopes_accumulate_calls() {
        let mut r = TelemetryRegistry::new(0);
        for _ in 0..5 {
            let d = r.open("physics");
            r.close_to(d);
        }
        assert_eq!(r.phases()["physics"].calls, 5);
    }

    #[test]
    fn overlapping_close_shuts_the_subtree() {
        // Closing a parent with children still open must close the
        // children too (out-of-order guard drops).
        let mut r = TelemetryRegistry::new(0);
        let d_outer = r.open("outer");
        r.open("inner");
        r.close_to(d_outer); // never closed "inner" explicitly
        assert!(r.phases().contains_key("outer"));
        assert!(r.phases().contains_key("outer/inner"));
        assert_eq!(r.phases()["outer/inner"].calls, 1);
        // A stale depth is a no-op, not a panic.
        r.close_to(7);
        assert_eq!(r.phases().len(), 2);
    }

    #[test]
    fn finish_closes_dangling_scopes_and_stamps_wall() {
        let mut r = TelemetryRegistry::new(1);
        r.open("left-open");
        r.finish();
        assert!(r.phases().contains_key("left-open"));
        assert!(r.wall_seconds() > 0.0);
    }

    #[test]
    fn merge_adds_counters_and_phases() {
        let mut a = TelemetryRegistry::new(0);
        a.record_phase("x", 1.0);
        a.add("n", 2);
        let mut b = TelemetryRegistry::new(0);
        b.record_phase("x", 0.5);
        b.record_phase("y", 0.25);
        b.add("n", 3);
        b.add("m", 1);
        a.merge(&b);
        assert_eq!(a.phases()["x"].seconds, 1.5);
        assert_eq!(a.phases()["x"].calls, 2);
        assert_eq!(a.phases()["y"].calls, 1);
        assert_eq!(a.counters()["n"], 5);
        assert_eq!(a.counters()["m"], 1);
    }

    #[test]
    fn busy_counts_only_top_level_phases() {
        let mut r = TelemetryRegistry::new(0);
        r.record_phase("a", 2.0);
        r.record_phase("a/b", 1.5);
        r.record_phase("c", 1.0);
        assert_eq!(r.busy_seconds(), 3.0);
    }
}
