//! `foam-grid` — grids, geometry and the overlap decomposition.
//!
//! FOAM represents the globe on two grids: the atmosphere's Gaussian
//! spectral-transform grid (R15: 48 × 40) and the ocean's 128 × 128
//! Mercator grid. A third decomposition — the *overlap grid*, the
//! intersection of the two — carries the air–sea fluxes (paper Fig. 1):
//! exchanges are computed per overlap cell and area-averaged back to each
//! parent grid, so both sides see a consistent, conservative flux without
//! interpolating state to a common grid.
//!
//! This crate provides:
//! * [`gauss`] — Gaussian latitudes/weights (quadrature for the spectral
//!   transform and exact cell areas for conservation),
//! * [`AtmGrid`] and [`OceanGrid`] — the two lat–lon product grids,
//! * [`world`] — the synthetic planet (continents, topography, basins)
//!   standing in for observed geography (see DESIGN.md §4),
//! * [`OverlapGrid`] — intersection cells with conservative averaging in
//!   both directions plus a deliberately non-conservative nearest-neighbour
//!   scheme used as the ablation baseline (experiment A2),
//! * [`Field2`] — a dense 2-D field storage type used across the model.

pub mod constants;
mod field;
pub mod gauss;
mod grids;
mod overlap;
pub mod world;

pub use field::Field2;
pub use grids::{AtmGrid, OceanGrid, VerticalGrid};
pub use overlap::{NearestNeighbour, OverlapGrid};
pub use world::{Basin, World};
