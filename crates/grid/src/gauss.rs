//! Gauss–Legendre quadrature: the latitudes of the spectral-transform
//! grid and the exact quadrature weights used both for the Legendre
//! transform and for conservative cell areas.

/// Gaussian nodes and weights on μ = sin(latitude) ∈ (−1, 1).
#[derive(Debug, Clone)]
pub struct GaussQuadrature {
    /// Nodes μ_j, ascending (south → north).
    pub nodes: Vec<f64>,
    /// Weights w_j, ∑ w_j = 2.
    pub weights: Vec<f64>,
}

/// Compute the `n`-point Gauss–Legendre rule by Newton iteration on the
/// roots of P_n(μ), with the standard asymptotic initial guess.
pub fn gauss_legendre(n: usize) -> GaussQuadrature {
    assert!(n >= 1);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for k in 0..m {
        // Initial guess (Abramowitz & Stegun 25.4.38), root k+1 from the top.
        let mut x = (std::f64::consts::PI * (k as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (p, d) = legendre_pn(n, x);
            dp = d;
            let dx = p / d;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        // x is the (k+1)-th root from the top (northernmost); store
        // ascending.
        nodes[n - 1 - k] = x;
        weights[n - 1 - k] = w;
        nodes[k] = -x;
        weights[k] = w;
    }
    if n % 2 == 1 {
        // Middle node is exactly 0.
        nodes[n / 2] = 0.0;
        let (_, d) = legendre_pn(n, 0.0);
        weights[n / 2] = 2.0 / (d * d);
    }
    GaussQuadrature { nodes, weights }
}

/// Evaluate (P_n(x), P_n'(x)) by the three-term recurrence.
pub fn legendre_pn(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0;
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p1 = x;
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // Derivative from the standard identity.
    let d = if (1.0 - x * x).abs() < 1e-300 {
        0.0
    } else {
        n as f64 * (x * p1 - p0) / (x * x - 1.0)
    };
    (p1, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1, 2, 3, 8, 40, 64] {
            let q = gauss_legendre(n);
            let s: f64 = q.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: sum={s}");
        }
    }

    #[test]
    fn nodes_are_roots_and_sorted() {
        let n = 40;
        let q = gauss_legendre(n);
        for w in q.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &x in &q.nodes {
            let (p, _) = legendre_pn(n, x);
            assert!(p.abs() < 1e-12, "P_{n}({x}) = {p}");
        }
    }

    #[test]
    fn quadrature_is_exact_for_low_degree_polynomials() {
        // n-point Gauss rule integrates degree <= 2n-1 exactly.
        let q = gauss_legendre(5);
        // ∫_{-1}^{1} x^k dμ = 0 (odd), 2/(k+1) (even)
        for k in 0..=9usize {
            let approx: f64 = q
                .nodes
                .iter()
                .zip(&q.weights)
                .map(|(&x, &w)| w * x.powi(k as i32))
                .sum();
            let exact = if k % 2 == 1 {
                0.0
            } else {
                2.0 / (k as f64 + 1.0)
            };
            assert!((approx - exact).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn matches_known_two_point_rule() {
        let q = gauss_legendre(2);
        let r = 1.0 / 3.0f64.sqrt();
        assert!((q.nodes[0] + r).abs() < 1e-14);
        assert!((q.nodes[1] - r).abs() < 1e-14);
        assert!((q.weights[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn symmetric_about_equator() {
        let q = gauss_legendre(40);
        for j in 0..20 {
            assert!((q.nodes[j] + q.nodes[39 - j]).abs() < 1e-13);
            assert!((q.weights[j] - q.weights[39 - j]).abs() < 1e-13);
        }
    }
}
