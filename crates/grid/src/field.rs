//! Dense 2-D field storage, row-major with `j` (latitude row) as the slow
//! index. The workhorse container for grid-point fields everywhere in
//! FOAM-RS.

use std::ops::{Index, IndexMut};

use foam_ckpt::{ByteReader, CkptError, Codec};

/// A dense `ny × nx` field of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Field2 {
    /// A field of zeros.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Field2 {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// A field filled with `v`.
    pub fn filled(nx: usize, ny: usize, v: f64) -> Self {
        Field2 {
            nx,
            ny,
            data: vec![v; nx * ny],
        }
    }

    /// Build from a function of `(i, j)`.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                data.push(f(i, j));
            }
        }
        Field2 { nx, ny, data }
    }

    /// Wrap an existing buffer (length must be `nx * ny`).
    pub fn from_vec(nx: usize, ny: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nx * ny, "Field2 buffer length mismatch");
        Field2 { nx, ny, data }
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        j * self.nx + i
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Zonal neighbour with periodic wraparound in `i`.
    #[inline]
    pub fn get_wrap(&self, i: isize, j: usize) -> f64 {
        let n = self.nx as isize;
        let iw = ((i % n) + n) % n;
        self.get(iw as usize, j)
    }

    /// Row `j` as a slice.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        &self.data[j * self.nx..(j + 1) * self.nx]
    }

    /// Row `j` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nx..(j + 1) * self.nx]
    }

    /// Whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self += a * other`, elementwise.
    pub fn axpy(&mut self, a: f64, other: &Field2) {
        assert_eq!(self.data.len(), other.data.len());
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += a * y;
        }
    }

    /// Elementwise scale.
    pub fn scale(&mut self, a: f64) {
        for x in &mut self.data {
            *x *= a;
        }
    }

    /// Maximum absolute value (0 for an empty field).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Unweighted mean of all entries.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// True if every entry is finite — the standard integrity check after
    /// a model step.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Codec for Field2 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nx.encode(buf);
        self.ny.encode(buf);
        self.data.encode(buf);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let nx = usize::decode(r)?;
        let ny = usize::decode(r)?;
        let data = Vec::<f64>::decode(r)?;
        if data.len()
            != nx
                .checked_mul(ny)
                .ok_or_else(|| CkptError::Corrupt(format!("Field2 dims {nx}x{ny} overflow")))?
        {
            return Err(CkptError::Corrupt(format!(
                "Field2 buffer length {} does not match dims {nx}x{ny}",
                data.len()
            )));
        }
        Ok(Field2 { nx, ny, data })
    }
}

impl Index<(usize, usize)> for Field2 {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.nx + i]
    }
}

impl IndexMut<(usize, usize)> for Field2 {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.nx + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_row_major() {
        let f = Field2::from_fn(3, 2, |i, j| (10 * j + i) as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(f.get(2, 1), 12.0);
        assert_eq!(f[(1, 0)], 1.0);
    }

    #[test]
    fn wraparound_indexing() {
        let f = Field2::from_fn(4, 1, |i, _| i as f64);
        assert_eq!(f.get_wrap(-1, 0), 3.0);
        assert_eq!(f.get_wrap(4, 0), 0.0);
        assert_eq!(f.get_wrap(-5, 0), 3.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Field2::filled(2, 2, 1.0);
        let b = Field2::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-15));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-15));
    }

    #[test]
    fn stats_helpers() {
        let f = Field2::from_vec(2, 2, vec![1.0, -3.0, 2.0, 0.0]);
        assert_eq!(f.max_abs(), 3.0);
        assert_eq!(f.mean(), 0.0);
        assert!(f.all_finite());
        let g = Field2::from_vec(1, 2, vec![f64::NAN, 1.0]);
        assert!(!g.all_finite());
    }

    #[test]
    fn rows_are_views() {
        let mut f = Field2::zeros(3, 2);
        f.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(f.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(f.get(0, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_length() {
        let _ = Field2::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let f = Field2::from_vec(3, 2, vec![1.5, -0.0, f64::NAN, 2e-308, 4.0, -7.25]);
        let g = Field2::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f.nx(), g.nx());
        assert_eq!(f.ny(), g.ny());
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_rejects_dim_length_mismatch() {
        let mut buf = Vec::new();
        5usize.encode(&mut buf); // nx
        5usize.encode(&mut buf); // ny
        vec![0.0f64; 4].encode(&mut buf); // wrong: 25 expected
        let err = Field2::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)));
    }
}
