//! Physical constants shared across FOAM-RS components.
//!
//! Values follow the CCM2/CCM3 technical notes where the paper inherits
//! them; everything is SI.

/// Earth radius \[m\].
pub const EARTH_RADIUS: f64 = 6.371e6;
/// Earth rotation rate \[s⁻¹\].
pub const OMEGA: f64 = 7.292e-5;
/// Gravitational acceleration \[m s⁻²\].
pub const GRAVITY: f64 = 9.80616;
/// Dry-air gas constant \[J kg⁻¹ K⁻¹\].
pub const R_DRY: f64 = 287.04;
/// Dry-air specific heat at constant pressure \[J kg⁻¹ K⁻¹\].
pub const CP_DRY: f64 = 1004.64;
/// Latent heat of vaporization \[J kg⁻¹\].
pub const L_VAP: f64 = 2.501e6;
/// Latent heat of fusion \[J kg⁻¹\].
pub const L_FUS: f64 = 3.336e5;
/// Stefan–Boltzmann constant \[W m⁻² K⁻⁴\].
pub const STEFAN_BOLTZMANN: f64 = 5.67e-8;
/// Solar constant \[W m⁻²\].
pub const SOLAR_CONSTANT: f64 = 1367.0;
/// Reference sea-water density \[kg m⁻³\].
pub const RHO_SEAWATER: f64 = 1025.0;
/// Sea-water specific heat \[J kg⁻¹ K⁻¹\].
pub const CP_SEAWATER: f64 = 3990.0;
/// Reference air density at the surface \[kg m⁻³\].
pub const RHO_AIR: f64 = 1.2;
/// Freezing point of sea water; FOAM clamps SST here under ice \[°C\].
pub const SEAWATER_FREEZE_C: f64 = -1.92;
/// Reference salinity \[psu\].
pub const S_REF: f64 = 34.7;
/// Von Kármán constant.
pub const VON_KARMAN: f64 = 0.4;
/// Simulated seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Simulated days per (idealized 360-day) model year, the common GCM
/// calendar choice for climatological bookkeeping.
pub const DAYS_PER_YEAR: f64 = 360.0;
/// Days per model month (12 equal months of the 360-day calendar).
pub const DAYS_PER_MONTH: f64 = 30.0;

/// Degrees → radians.
#[inline]
pub fn deg2rad(d: f64) -> f64 {
    d * std::f64::consts::PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad2deg(r: f64) -> f64 {
    r * 180.0 / std::f64::consts::PI
}

/// Coriolis parameter f = 2Ω sin φ at latitude `lat` (radians).
#[inline]
pub fn coriolis(lat: f64) -> f64 {
    2.0 * OMEGA * lat.sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for d in [-90.0, -12.5, 0.0, 45.0, 180.0] {
            assert!((rad2deg(deg2rad(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn coriolis_signs_and_magnitude() {
        assert!(coriolis(deg2rad(45.0)) > 0.0);
        assert!(coriolis(deg2rad(-45.0)) < 0.0);
        assert!((coriolis(deg2rad(90.0)) - 2.0 * OMEGA).abs() < 1e-12);
        assert_eq!(coriolis(0.0), 0.0);
    }
}
