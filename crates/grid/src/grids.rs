//! The two horizontal grids of FOAM (atmosphere Gaussian, ocean Mercator)
//! and the vertical coordinates of both components.

use crate::constants::{deg2rad, EARTH_RADIUS};
use crate::gauss::{gauss_legendre, GaussQuadrature};

/// The atmosphere's Gaussian transform grid. FOAM's default is the R15
/// grid: 48 longitudes × 40 Gaussian latitudes (≈ 7.5° × 4.5°).
#[derive(Debug, Clone)]
pub struct AtmGrid {
    pub nlon: usize,
    pub nlat: usize,
    /// Latitudes in radians, ascending (south → north): asin of the
    /// Gaussian nodes.
    pub lats: Vec<f64>,
    /// μ = sin(latitude) Gaussian nodes, ascending.
    pub mu: Vec<f64>,
    /// Gaussian quadrature weights (∑ = 2).
    pub weights: Vec<f64>,
    /// Cell edges in μ, length `nlat + 1`, from −1 to +1; edge widths are
    /// exactly the Gaussian weights, making cell areas quadrature-exact.
    pub mu_edges: Vec<f64>,
    /// Longitudes in radians: λ_i = 2πi / nlon (grid point at 0).
    pub lons: Vec<f64>,
}

impl AtmGrid {
    /// Build an `nlon × nlat` Gaussian grid.
    pub fn new(nlon: usize, nlat: usize) -> Self {
        let GaussQuadrature { nodes, weights } = gauss_legendre(nlat);
        let lats: Vec<f64> = nodes.iter().map(|&m| m.asin()).collect();
        let mut mu_edges = Vec::with_capacity(nlat + 1);
        mu_edges.push(-1.0);
        let mut acc = -1.0;
        for &w in &weights {
            acc += w;
            mu_edges.push(acc);
        }
        // Guard against rounding: the top edge is exactly +1.
        *mu_edges.last_mut().unwrap() = 1.0;
        let dlon = 2.0 * std::f64::consts::PI / nlon as f64;
        let lons = (0..nlon).map(|i| i as f64 * dlon).collect();
        AtmGrid {
            nlon,
            nlat,
            lats,
            mu: nodes,
            weights,
            mu_edges,
            lons,
        }
    }

    /// The paper's default resolution: the R15 grid, 48 × 40.
    pub fn r15() -> Self {
        Self::new(48, 40)
    }

    /// Longitude spacing \[rad\].
    #[inline]
    pub fn dlon(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.nlon as f64
    }

    /// Exact area of cell `(i, j)` \[m²\]: R² Δλ w_j.
    #[inline]
    pub fn cell_area(&self, _i: usize, j: usize) -> f64 {
        EARTH_RADIUS * EARTH_RADIUS * self.dlon() * self.weights[j]
    }

    /// Longitude extent of cell `i` as `(west, east)` \[rad\], centred on
    /// the grid point; `west` may be negative for `i = 0`.
    #[inline]
    pub fn lon_bounds(&self, i: usize) -> (f64, f64) {
        let d = self.dlon();
        (self.lons[i] - 0.5 * d, self.lons[i] + 0.5 * d)
    }

    /// μ extent of latitude row `j` as `(south, north)`.
    #[inline]
    pub fn mu_bounds(&self, j: usize) -> (f64, f64) {
        (self.mu_edges[j], self.mu_edges[j + 1])
    }

    /// Flattened index of cell `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        j * self.nlon + i
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.nlon * self.nlat
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Area-weighted global mean of a flattened field.
    pub fn global_mean(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.len());
        let mut num = 0.0;
        let mut den = 0.0;
        for j in 0..self.nlat {
            let a = self.cell_area(0, j);
            for i in 0..self.nlon {
                num += a * f[self.idx(i, j)];
                den += a;
            }
        }
        num / den
    }
}

/// The ocean's Mercator grid: `nx × ny` points, conformal (locally square
/// cells), covering latitudes up to ±`lat_max`. FOAM's default is
/// 128 × 128 (≈ 1.4° × 2.8° near the equator).
#[derive(Debug, Clone)]
pub struct OceanGrid {
    pub nx: usize,
    pub ny: usize,
    /// Row-centre latitudes \[rad\], ascending.
    pub lats: Vec<f64>,
    /// Row-edge latitudes \[rad\], length `ny + 1`.
    pub lat_edges: Vec<f64>,
    /// Longitude centres \[rad\]: (i + ½) Δλ — staggered half a cell from
    /// the atmosphere grid, as in the original model.
    pub lons: Vec<f64>,
    /// Grid spacing in x per row \[m\]: R Δλ cos φ_j.
    pub dx: Vec<f64>,
    /// Grid spacing in y per row \[m\] (edge-to-edge distance).
    pub dy: Vec<f64>,
}

impl OceanGrid {
    /// Build a Mercator grid reaching ±`lat_max_deg`.
    pub fn mercator(nx: usize, ny: usize, lat_max_deg: f64) -> Self {
        let lat_max = deg2rad(lat_max_deg);
        let y_max = mercator_y(lat_max);
        let dy_merc = 2.0 * y_max / ny as f64;
        let lat_edges: Vec<f64> = (0..=ny)
            .map(|j| inverse_mercator_y(-y_max + j as f64 * dy_merc))
            .collect();
        let lats: Vec<f64> = (0..ny)
            .map(|j| inverse_mercator_y(-y_max + (j as f64 + 0.5) * dy_merc))
            .collect();
        let dlon = 2.0 * std::f64::consts::PI / nx as f64;
        let lons: Vec<f64> = (0..nx).map(|i| (i as f64 + 0.5) * dlon).collect();
        let dx: Vec<f64> = lats
            .iter()
            .map(|&p| EARTH_RADIUS * dlon * p.cos())
            .collect();
        let dy: Vec<f64> = (0..ny)
            .map(|j| EARTH_RADIUS * (lat_edges[j + 1] - lat_edges[j]))
            .collect();
        OceanGrid {
            nx,
            ny,
            lats,
            lat_edges,
            lons,
            dx,
            dy,
        }
    }

    /// The paper's default: 128 × 128 to ±72°.
    pub fn foam_default() -> Self {
        Self::mercator(128, 128, 72.0)
    }

    #[inline]
    pub fn dlon(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.nx as f64
    }

    /// Exact spherical area of cell `(i, j)` \[m²\].
    #[inline]
    pub fn cell_area(&self, _i: usize, j: usize) -> f64 {
        EARTH_RADIUS
            * EARTH_RADIUS
            * self.dlon()
            * (self.lat_edges[j + 1].sin() - self.lat_edges[j].sin())
    }

    /// Longitude extent of column `i` as `(west, east)` \[rad\].
    #[inline]
    pub fn lon_bounds(&self, i: usize) -> (f64, f64) {
        let d = self.dlon();
        (i as f64 * d, (i as f64 + 1.0) * d)
    }

    /// μ extent of row `j` as `(south, north)`.
    #[inline]
    pub fn mu_bounds(&self, j: usize) -> (f64, f64) {
        (self.lat_edges[j].sin(), self.lat_edges[j + 1].sin())
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        j * self.nx + i
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Area-weighted mean of `f` over cells where `mask` is true.
    pub fn masked_mean(&self, f: &[f64], mask: &[bool]) -> f64 {
        assert_eq!(f.len(), self.len());
        assert_eq!(mask.len(), self.len());
        let mut num = 0.0;
        let mut den = 0.0;
        for j in 0..self.ny {
            let a = self.cell_area(0, j);
            for i in 0..self.nx {
                let k = self.idx(i, j);
                if mask[k] {
                    num += a * f[k];
                    den += a;
                }
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

/// Mercator northing y(φ) = ln tan(π/4 + φ/2).
#[inline]
pub fn mercator_y(lat: f64) -> f64 {
    (std::f64::consts::FRAC_PI_4 + 0.5 * lat).tan().ln()
}

/// Inverse Mercator: φ(y) = 2 atan(eʸ) − π/2.
#[inline]
pub fn inverse_mercator_y(y: f64) -> f64 {
    2.0 * y.exp().atan() - std::f64::consts::FRAC_PI_2
}

/// A vertical coordinate: interfaces, layer centres and thicknesses.
/// Used for the ocean's 16 stretched z-levels (finest near the surface,
/// where coupling happens) and for the atmosphere's pressure levels.
#[derive(Debug, Clone)]
pub struct VerticalGrid {
    /// Interface positions, length `n + 1`. Ocean: depth \[m\], 0 at the
    /// surface, increasing downward. Atmosphere: pressure \[Pa\],
    /// increasing downward.
    pub interfaces: Vec<f64>,
    /// Layer centres, length `n`.
    pub centers: Vec<f64>,
    /// Layer thicknesses, length `n`.
    pub thickness: Vec<f64>,
}

impl VerticalGrid {
    /// Stretched ocean levels: thickness grows geometrically by `ratio`
    /// per layer, scaled so the column depth is `depth`. The paper's run
    /// uses 16 layers with resolution maximized near the surface.
    pub fn ocean_stretched(nz: usize, depth: f64, ratio: f64) -> Self {
        assert!(nz >= 1 && depth > 0.0 && ratio >= 1.0);
        let raw: Vec<f64> = (0..nz).map(|k| ratio.powi(k as i32)).collect();
        let total: f64 = raw.iter().sum();
        let thickness: Vec<f64> = raw.iter().map(|r| r * depth / total).collect();
        Self::from_thickness(thickness)
    }

    /// FOAM's default ocean column: 16 layers over 5000 m, top layer
    /// ≈ 25 m.
    pub fn foam_ocean() -> Self {
        Self::ocean_stretched(16, 5000.0, 1.29)
    }

    /// Equally spaced pressure layers from the model top (`p_top` \[Pa\])
    /// to the surface (100 kPa).
    pub fn atm_pressure(nl: usize, p_top: f64) -> Self {
        assert!(nl >= 1);
        let p_bot = 1.0e5;
        let d = (p_bot - p_top) / nl as f64;
        let thickness = vec![d; nl];
        let mut v = Self::from_thickness(thickness);
        for x in v.interfaces.iter_mut() {
            *x += p_top;
        }
        for x in v.centers.iter_mut() {
            *x += p_top;
        }
        v
    }

    /// Build from explicit thicknesses.
    pub fn from_thickness(thickness: Vec<f64>) -> Self {
        let n = thickness.len();
        let mut interfaces = Vec::with_capacity(n + 1);
        interfaces.push(0.0);
        let mut acc = 0.0;
        for &t in &thickness {
            acc += t;
            interfaces.push(acc);
        }
        let centers = (0..n)
            .map(|k| 0.5 * (interfaces[k] + interfaces[k + 1]))
            .collect();
        VerticalGrid {
            interfaces,
            centers,
            thickness,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.thickness.len()
    }

    /// Total column extent.
    #[inline]
    pub fn depth(&self) -> f64 {
        *self.interfaces.last().unwrap() - self.interfaces[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::rad2deg;

    #[test]
    fn atm_grid_total_area_is_sphere() {
        let g = AtmGrid::r15();
        let total: f64 = (0..g.nlat).map(|j| g.cell_area(0, j) * g.nlon as f64).sum();
        let sphere = 4.0 * std::f64::consts::PI * EARTH_RADIUS * EARTH_RADIUS;
        assert!((total / sphere - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r15_grid_matches_paper_spacing() {
        let g = AtmGrid::r15();
        assert_eq!(g.nlon, 48);
        assert_eq!(g.nlat, 40);
        // ~7.5 degrees of longitude
        assert!((rad2deg(g.dlon()) - 7.5).abs() < 1e-12);
        // ~4.5 degrees of latitude on average
        let dlat = rad2deg(g.lats[20] - g.lats[19]);
        assert!((dlat - 4.5).abs() < 0.5, "dlat = {dlat}");
    }

    #[test]
    fn atm_mu_edges_bracket_nodes() {
        let g = AtmGrid::new(16, 12);
        for j in 0..g.nlat {
            assert!(g.mu_edges[j] < g.mu[j] && g.mu[j] < g.mu_edges[j + 1]);
        }
        assert_eq!(g.mu_edges[0], -1.0);
        assert_eq!(*g.mu_edges.last().unwrap(), 1.0);
    }

    #[test]
    fn atm_global_mean_of_constant_is_constant() {
        let g = AtmGrid::new(8, 6);
        let f = vec![3.25; g.len()];
        assert!((g.global_mean(&f) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn mercator_roundtrip() {
        for d in [-70.0, -10.0, 0.0, 33.0, 71.9] {
            let lat = deg2rad(d);
            assert!((inverse_mercator_y(mercator_y(lat)) - lat).abs() < 1e-12);
        }
    }

    #[test]
    fn ocean_grid_shape_and_extent() {
        let g = OceanGrid::foam_default();
        assert_eq!(g.nx, 128);
        assert_eq!(g.ny, 128);
        assert!((rad2deg(g.lat_edges[0]) + 72.0).abs() < 1e-9);
        assert!((rad2deg(*g.lat_edges.last().unwrap()) - 72.0).abs() < 1e-9);
        // Mercator spacing: the dx/dy aspect ratio is the same on every
        // row (the paper's grid is ~1.4° lat × 2.8° lon, aspect ≈ 2).
        let aspect_eq = g.dx[g.ny / 2] / g.dy[g.ny / 2];
        assert!((1.4..2.2).contains(&aspect_eq), "aspect {aspect_eq}");
        for j in 1..g.ny - 1 {
            assert!(
                (g.dx[j] / g.dy[j] / aspect_eq - 1.0).abs() < 0.01,
                "row {j} breaks conformal aspect"
            );
        }
        // Near-equator latitude spacing ≈ 1.4–1.7°.
        let dlat_eq = rad2deg(g.lats[g.ny / 2] - g.lats[g.ny / 2 - 1]);
        assert!((1.3..1.8).contains(&dlat_eq), "dlat {dlat_eq}");
        // ~2.8 degrees of longitude
        assert!((rad2deg(g.dlon()) - 2.8125).abs() < 1e-9);
    }

    #[test]
    fn ocean_rows_ascend_and_areas_positive() {
        let g = OceanGrid::mercator(32, 24, 65.0);
        for w in g.lats.windows(2) {
            assert!(w[0] < w[1]);
        }
        for j in 0..g.ny {
            assert!(g.cell_area(0, j) > 0.0);
            assert!(g.lat_edges[j] < g.lats[j] && g.lats[j] < g.lat_edges[j + 1]);
        }
    }

    #[test]
    fn ocean_total_area_matches_band() {
        let g = OceanGrid::mercator(64, 48, 70.0);
        let total: f64 = (0..g.ny).map(|j| g.cell_area(0, j) * g.nx as f64).sum();
        let band = 4.0 * std::f64::consts::PI * EARTH_RADIUS * EARTH_RADIUS * deg2rad(70.0).sin();
        assert!((total / band - 1.0).abs() < 1e-10);
    }

    #[test]
    fn masked_mean_ignores_land() {
        let g = OceanGrid::mercator(4, 4, 60.0);
        let mut f = vec![5.0; g.len()];
        let mut mask = vec![true; g.len()];
        f[3] = 1000.0;
        mask[3] = false;
        assert!((g.masked_mean(&f, &mask) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stretched_ocean_levels() {
        let v = VerticalGrid::foam_ocean();
        assert_eq!(v.n(), 16);
        assert!((v.depth() - 5000.0).abs() < 1e-9);
        // Monotone increasing thickness with depth.
        for w in v.thickness.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Fine surface resolution (paper: resolution maximized near top).
        assert!(v.thickness[0] < 30.0, "top layer {} m", v.thickness[0]);
    }

    #[test]
    fn atm_pressure_levels() {
        let v = VerticalGrid::atm_pressure(18, 2000.0);
        assert_eq!(v.n(), 18);
        assert!((v.interfaces[0] - 2000.0).abs() < 1e-9);
        assert!((v.interfaces[18] - 1.0e5).abs() < 1e-6);
        for k in 0..18 {
            assert!(v.centers[k] > v.interfaces[k] && v.centers[k] < v.interfaces[k + 1]);
        }
    }
}
