//! The overlap grid (paper Figure 1): the intersection of the atmosphere
//! and ocean grids, on which air–sea exchanges are computed and then
//! area-averaged back to each parent grid.
//!
//! Both grids are latitude–longitude products, so the intersection
//! factorizes into 1-D longitude overlaps (periodic) × 1-D latitude
//! overlaps (in μ = sin φ, where Gaussian-weight cell edges make areas
//! exact). The resulting scheme conserves any flux integral to rounding:
//! ∑ A_k F_k is by construction identical whether accumulated to the
//! atmosphere cells or to the ocean cells.

use crate::field::Field2;
use crate::grids::{AtmGrid, OceanGrid};

/// Conservative overlap decomposition between an [`AtmGrid`] and the sea
/// cells of an [`OceanGrid`].
#[derive(Debug, Clone)]
pub struct OverlapGrid {
    atm_nx: usize,
    atm_ny: usize,
    ocn_nx: usize,
    ocn_ny: usize,
    /// Per atmosphere cell: list of (ocean flat index, overlap area m²).
    atm_entries: Vec<Vec<(u32, f64)>>,
    /// Per ocean cell: list of (atm flat index, overlap area m²).
    ocn_entries: Vec<Vec<(u32, f64)>>,
    /// Sea overlap area of each atmosphere cell divided by its full area.
    sea_frac_atm: Vec<f64>,
    /// Full area of each atmosphere cell.
    atm_area: Vec<f64>,
    n_pairs: usize,
}

impl OverlapGrid {
    /// Build the decomposition. `sea_mask` is the ocean-grid mask
    /// (`true` = sea); land ocean cells generate no overlap entries.
    pub fn build(atm: &AtmGrid, ocn: &OceanGrid, sea_mask: &[bool]) -> Self {
        assert_eq!(sea_mask.len(), ocn.len());
        let two_pi = 2.0 * std::f64::consts::PI;
        let r2 = crate::constants::EARTH_RADIUS * crate::constants::EARTH_RADIUS;

        // 1-D longitude overlaps on the circle: lon_ov[ia] = [(io, dλ)].
        let mut lon_ov: Vec<Vec<(usize, f64)>> = vec![Vec::new(); atm.nlon];
        for ia in 0..atm.nlon {
            let (aw, ae) = atm.lon_bounds(ia);
            for io in 0..ocn.nx {
                let (ow, oe) = ocn.lon_bounds(io);
                let mut d = 0.0;
                for shift in [-two_pi, 0.0, two_pi] {
                    let lo = (aw).max(ow + shift);
                    let hi = (ae).min(oe + shift);
                    if hi > lo {
                        d += hi - lo;
                    }
                }
                if d > 1e-12 {
                    lon_ov[ia].push((io, d));
                }
            }
        }

        // 1-D latitude overlaps in μ: lat_ov[ja] = [(jo, dμ)].
        let mut lat_ov: Vec<Vec<(usize, f64)>> = vec![Vec::new(); atm.nlat];
        for ja in 0..atm.nlat {
            let (as_, an) = atm.mu_bounds(ja);
            for jo in 0..ocn.ny {
                let (os, on) = ocn.mu_bounds(jo);
                let lo = as_.max(os);
                let hi = an.min(on);
                if hi > lo + 1e-14 {
                    lat_ov[ja].push((jo, hi - lo));
                }
            }
        }

        let mut atm_entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); atm.len()];
        let mut ocn_entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); ocn.len()];
        let mut n_pairs = 0;
        for ja in 0..atm.nlat {
            for ia in 0..atm.nlon {
                let ka = atm.idx(ia, ja);
                for &(jo, dmu) in &lat_ov[ja] {
                    for &(io, dlam) in &lon_ov[ia] {
                        let ko = ocn.idx(io, jo);
                        if !sea_mask[ko] {
                            continue;
                        }
                        let area = r2 * dlam * dmu;
                        atm_entries[ka].push((ko as u32, area));
                        ocn_entries[ko].push((ka as u32, area));
                        n_pairs += 1;
                    }
                }
            }
        }

        let atm_area: Vec<f64> = (0..atm.len())
            .map(|k| atm.cell_area(k % atm.nlon, k / atm.nlon))
            .collect();
        let sea_frac_atm: Vec<f64> = (0..atm.len())
            .map(|k| {
                let s: f64 = atm_entries[k].iter().map(|&(_, a)| a).sum();
                (s / atm_area[k]).min(1.0)
            })
            .collect();

        OverlapGrid {
            atm_nx: atm.nlon,
            atm_ny: atm.nlat,
            ocn_nx: ocn.nx,
            ocn_ny: ocn.ny,
            atm_entries,
            ocn_entries,
            sea_frac_atm,
            atm_area,
            n_pairs,
        }
    }

    /// Number of overlap cells (pairs).
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Sea fraction of each atmosphere cell, as a field.
    pub fn sea_fraction_atm(&self) -> Field2 {
        Field2::from_vec(self.atm_nx, self.atm_ny, self.sea_frac_atm.clone())
    }

    /// Area-average an ocean field onto the atmosphere grid (sea part
    /// only). Cells with no sea overlap get 0; use
    /// [`OverlapGrid::sea_fraction_atm`] to blend with land values.
    pub fn ocean_to_atm(&self, f: &Field2) -> Field2 {
        assert_eq!((f.nx(), f.ny()), (self.ocn_nx, self.ocn_ny));
        let fo = f.as_slice();
        let mut out = Field2::zeros(self.atm_nx, self.atm_ny);
        let o = out.as_mut_slice();
        for (ka, entries) in self.atm_entries.iter().enumerate() {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(ko, a) in entries {
                num += a * fo[ko as usize];
                den += a;
            }
            if den > 0.0 {
                o[ka] = num / den;
            }
        }
        out
    }

    /// Area-average an atmosphere field onto the ocean grid (sea cells;
    /// land ocean cells get 0).
    pub fn atm_to_ocean(&self, f: &Field2) -> Field2 {
        let mut out = Field2::zeros(self.ocn_nx, self.ocn_ny);
        self.atm_to_ocean_into(f, &mut out);
        out
    }

    /// [`OverlapGrid::atm_to_ocean`] into a caller-owned output field
    /// (ocean shape), allocation-free and bit-identical: `out` is fully
    /// overwritten, zeros included, exactly as a fresh field would be.
    ///
    /// ```
    /// use foam_grid::{AtmGrid, Field2, OceanGrid, OverlapGrid};
    ///
    /// let atm = AtmGrid::new(8, 6);
    /// let ocn = OceanGrid::mercator(8, 6, 60.0);
    /// let sea = vec![true; ocn.len()];
    /// let ov = OverlapGrid::build(&atm, &ocn, &sea);
    /// let f = Field2::filled(8, 6, 2.5);
    ///
    /// let fresh = ov.atm_to_ocean(&f);
    /// let mut reused = Field2::filled(8, 6, -1.0); // stale contents
    /// ov.atm_to_ocean_into(&f, &mut reused);
    /// assert_eq!(fresh.as_slice(), reused.as_slice()); // bit-identical
    /// ```
    pub fn atm_to_ocean_into(&self, f: &Field2, out: &mut Field2) {
        assert_eq!((f.nx(), f.ny()), (self.atm_nx, self.atm_ny));
        assert_eq!((out.nx(), out.ny()), (self.ocn_nx, self.ocn_ny));
        let fa = f.as_slice();
        let o = out.as_mut_slice();
        for (ko, entries) in self.ocn_entries.iter().enumerate() {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(ka, a) in entries {
                num += a * fa[ka as usize];
                den += a;
            }
            o[ko] = if den > 0.0 { num / den } else { 0.0 };
        }
    }

    /// Evaluate a flux on every overlap cell (as a function of the two
    /// parent flat indices) and area-average it to both grids at once —
    /// the core coupler operation of Figure 1(b). Returns
    /// `(atm_sea_average, ocean_average)`; the two fields carry the same
    /// global integral over their respective sea areas by construction.
    pub fn compute_on_overlap(
        &self,
        mut flux: impl FnMut(usize, usize) -> f64,
    ) -> (Field2, Field2) {
        let mut atm_num = vec![0.0; self.atm_nx * self.atm_ny];
        let mut atm_den = vec![0.0; atm_num.len()];
        let mut ocn_num = vec![0.0; self.ocn_nx * self.ocn_ny];
        let mut ocn_den = vec![0.0; ocn_num.len()];
        for (ko, entries) in self.ocn_entries.iter().enumerate() {
            for &(ka, a) in entries {
                let f = flux(ka as usize, ko);
                atm_num[ka as usize] += a * f;
                atm_den[ka as usize] += a;
                ocn_num[ko] += a * f;
                ocn_den[ko] += a;
            }
        }
        let atm = Field2::from_vec(
            self.atm_nx,
            self.atm_ny,
            atm_num
                .iter()
                .zip(&atm_den)
                .map(|(&n, &d)| if d > 0.0 { n / d } else { 0.0 })
                .collect(),
        );
        let ocn = Field2::from_vec(
            self.ocn_nx,
            self.ocn_ny,
            ocn_num
                .iter()
                .zip(&ocn_den)
                .map(|(&n, &d)| if d > 0.0 { n / d } else { 0.0 })
                .collect(),
        );
        (atm, ocn)
    }

    /// Global integral (flux × area) of an atmosphere-grid field over its
    /// sea overlap area \[unit·m²\].
    pub fn integral_atm_sea(&self, f: &Field2) -> f64 {
        let fa = f.as_slice();
        self.atm_entries
            .iter()
            .enumerate()
            .map(|(ka, es)| fa[ka] * es.iter().map(|&(_, a)| a).sum::<f64>())
            .sum()
    }

    /// Global integral of an ocean-grid field over the sea overlap area.
    pub fn integral_ocean(&self, f: &Field2) -> f64 {
        let fo = f.as_slice();
        self.ocn_entries
            .iter()
            .enumerate()
            .map(|(ko, es)| fo[ko] * es.iter().map(|&(_, a)| a).sum::<f64>())
            .sum()
    }

    /// Sea overlap area of atmosphere cell with flat index `ka` \[m²\].
    pub fn atm_sea_area(&self, ka: usize) -> f64 {
        self.sea_frac_atm[ka] * self.atm_area[ka]
    }

    /// Full area of atmosphere cell `ka` \[m²\].
    pub fn atm_cell_area(&self, ka: usize) -> f64 {
        self.atm_area[ka]
    }

    /// Visit every overlap cell as `(atm_flat, ocean_flat, area_m2)` —
    /// the coupler's main loop for evaluating fluxes on the overlap grid.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize, f64)) {
        for (ko, entries) in self.ocn_entries.iter().enumerate() {
            for &(ka, a) in entries {
                f(ka as usize, ko, a);
            }
        }
    }

    /// Visit the overlap cells of one atmosphere cell as
    /// `(ocean_flat, area_m2)`.
    pub fn for_each_pair_of_atm(&self, ka: usize, mut f: impl FnMut(usize, f64)) {
        for &(ko, a) in &self.atm_entries[ka] {
            f(ko as usize, a);
        }
    }
}

/// Naive nearest-neighbour regridding — the non-conservative strawman
/// used by ablation A2 to quantify what the overlap grid buys.
#[derive(Debug, Clone)]
pub struct NearestNeighbour {
    /// For each atm cell: nearest sea ocean cell, if any.
    atm_to_ocn: Vec<Option<u32>>,
    /// For each ocean sea cell: nearest atm cell.
    ocn_to_atm: Vec<Option<u32>>,
    atm_nx: usize,
    atm_ny: usize,
    ocn_nx: usize,
    ocn_ny: usize,
}

impl NearestNeighbour {
    pub fn build(atm: &AtmGrid, ocn: &OceanGrid, sea_mask: &[bool]) -> Self {
        let sea_pts: Vec<(usize, f64, f64)> = (0..ocn.len())
            .filter(|&k| sea_mask[k])
            .map(|k| (k, ocn.lons[k % ocn.nx], ocn.lats[k / ocn.nx]))
            .collect();
        let mut atm_to_ocn = vec![None; atm.len()];
        for ja in 0..atm.nlat {
            for ia in 0..atm.nlon {
                let (lo, la) = (atm.lons[ia], atm.lats[ja]);
                let best = sea_pts
                    .iter()
                    .map(|&(k, olo, ola)| (k, sphere_dist2(lo, la, olo, ola)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                atm_to_ocn[atm.idx(ia, ja)] = best.map(|(k, _)| k as u32);
            }
        }
        let mut ocn_to_atm = vec![None; ocn.len()];
        for jo in 0..ocn.ny {
            for io in 0..ocn.nx {
                let k = ocn.idx(io, jo);
                if !sea_mask[k] {
                    continue;
                }
                let (lo, la) = (ocn.lons[io], ocn.lats[jo]);
                let mut best = (0usize, f64::INFINITY);
                for ja in 0..atm.nlat {
                    for ia in 0..atm.nlon {
                        let d = sphere_dist2(lo, la, atm.lons[ia], atm.lats[ja]);
                        if d < best.1 {
                            best = (atm.idx(ia, ja), d);
                        }
                    }
                }
                ocn_to_atm[k] = Some(best.0 as u32);
            }
        }
        NearestNeighbour {
            atm_to_ocn,
            ocn_to_atm,
            atm_nx: atm.nlon,
            atm_ny: atm.nlat,
            ocn_nx: ocn.nx,
            ocn_ny: ocn.ny,
        }
    }

    /// Sample an ocean field at each atm cell's nearest sea point.
    pub fn ocean_to_atm(&self, f: &Field2) -> Field2 {
        assert_eq!((f.nx(), f.ny()), (self.ocn_nx, self.ocn_ny));
        let fo = f.as_slice();
        Field2::from_vec(
            self.atm_nx,
            self.atm_ny,
            self.atm_to_ocn
                .iter()
                .map(|o| o.map_or(0.0, |k| fo[k as usize]))
                .collect(),
        )
    }

    /// Sample an atmosphere field at each sea ocean cell's nearest atm
    /// point.
    pub fn atm_to_ocean(&self, f: &Field2) -> Field2 {
        assert_eq!((f.nx(), f.ny()), (self.atm_nx, self.atm_ny));
        let fa = f.as_slice();
        Field2::from_vec(
            self.ocn_nx,
            self.ocn_ny,
            self.ocn_to_atm
                .iter()
                .map(|o| o.map_or(0.0, |k| fa[k as usize]))
                .collect(),
        )
    }
}

/// Squared chord distance between two points on the unit sphere.
#[inline]
fn sphere_dist2(lon1: f64, lat1: f64, lon2: f64, lat2: f64) -> f64 {
    let (x1, y1, z1) = (lat1.cos() * lon1.cos(), lat1.cos() * lon1.sin(), lat1.sin());
    let (x2, y2, z2) = (lat2.cos() * lon2.cos(), lat2.cos() * lon2.sin(), lat2.sin());
    (x1 - x2).powi(2) + (y1 - y2).powi(2) + (z1 - z2).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn small_setup() -> (AtmGrid, OceanGrid, Vec<bool>) {
        let atm = AtmGrid::new(16, 12);
        let ocn = OceanGrid::mercator(32, 24, 70.0);
        let mask = World::earthlike().ocean_sea_mask(&ocn);
        (atm, ocn, mask)
    }

    #[test]
    fn all_sea_overlap_covers_ocean_band() {
        let atm = AtmGrid::new(16, 12);
        let ocn = OceanGrid::mercator(32, 24, 70.0);
        let mask = vec![true; ocn.len()];
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        // Total overlap area equals the ocean band area.
        let ones = Field2::filled(ocn.nx, ocn.ny, 1.0);
        let band: f64 = (0..ocn.ny)
            .map(|j| ocn.cell_area(0, j) * ocn.nx as f64)
            .sum();
        assert!((ov.integral_ocean(&ones) / band - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_field_maps_to_constant() {
        let (atm, ocn, mask) = small_setup();
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        let f = Field2::filled(ocn.nx, ocn.ny, 7.5);
        let on_atm = ov.ocean_to_atm(&f);
        for ka in 0..atm.len() {
            let v = on_atm.as_slice()[ka];
            let frac = ov.sea_fraction_atm().as_slice()[ka];
            if frac > 0.0 {
                assert!((v - 7.5).abs() < 1e-9, "cell {ka}: {v}");
            } else {
                assert_eq!(v, 0.0);
            }
        }
        let g = Field2::filled(atm.nlon, atm.nlat, -3.0);
        let on_ocn = ov.atm_to_ocean(&g);
        for (k, &sea) in mask.iter().enumerate() {
            if sea {
                assert!((on_ocn.as_slice()[k] + 3.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn overlap_flux_is_conservative_both_ways() {
        let (atm, ocn, mask) = small_setup();
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        // An arbitrary smooth "flux" of both indices.
        let (fa, fo) =
            ov.compute_on_overlap(|ka, ko| (ka as f64 * 0.01).sin() + (ko as f64 * 0.003).cos());
        let ia = ov.integral_atm_sea(&fa);
        let io = ov.integral_ocean(&fo);
        assert!(
            (ia - io).abs() <= 1e-9 * ia.abs().max(io.abs()).max(1.0),
            "atm integral {ia} vs ocean integral {io}"
        );
    }

    #[test]
    fn nearest_neighbour_is_not_conservative() {
        let (atm, ocn, mask) = small_setup();
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        let nn = NearestNeighbour::build(&atm, &ocn, &mask);
        // A sharply varying ocean field.
        let f = Field2::from_fn(ocn.nx, ocn.ny, |i, j| {
            ((i as f64) * 0.9).sin() * ((j as f64) * 0.7).cos()
        });
        let cons = ov.ocean_to_atm(&f);
        let naive = nn.ocean_to_atm(&f);
        let i_cons = ov.integral_atm_sea(&cons);
        let i_true = ov.integral_ocean(&f);
        let i_naive = ov.integral_atm_sea(&naive);
        // Conservative path preserves the integral; sampling does not.
        assert!((i_cons - i_true).abs() < 1e-6 * i_true.abs().max(1.0));
        assert!(
            (i_naive - i_true).abs() > 100.0 * (i_cons - i_true).abs(),
            "naive {i_naive} vs true {i_true} (cons err {})",
            (i_cons - i_true).abs()
        );
    }

    #[test]
    fn sea_fraction_in_range_and_sensible() {
        let (atm, ocn, mask) = small_setup();
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        let sf = ov.sea_fraction_atm();
        for &v in sf.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
        // Polar caps (outside Mercator coverage) must have zero sea.
        assert_eq!(sf.get(0, 0), 0.0);
        assert_eq!(sf.get(0, atm.nlat - 1), 0.0);
        // Somewhere in the mid-Pacific the cell should be all sea.
        let max = sf.as_slice().iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.99, "max sea fraction {max}");
    }

    #[test]
    fn land_ocean_cells_receive_nothing() {
        let (atm, ocn, mask) = small_setup();
        let ov = OverlapGrid::build(&atm, &ocn, &mask);
        let g = Field2::filled(atm.nlon, atm.nlat, 9.0);
        let on_ocn = ov.atm_to_ocean(&g);
        for (k, &sea) in mask.iter().enumerate() {
            if !sea {
                assert_eq!(on_ocn.as_slice()[k], 0.0);
            }
        }
    }
}
