//! The synthetic planet.
//!
//! The original FOAM uses observed geography: ETOPO-style topography
//! (hand-tuned to preserve basin topology at 128 × 128), Matthews
//! vegetation, and the Shea–Trenberth–Reynolds SST climatology as the
//! observational reference of Figure 3. None of those datasets can ship
//! here, so this module provides a deterministic, analytic "Earth-like"
//! planet with the properties the experiments actually rely on:
//!
//! * a ~30 % land fraction with continents that separate two
//!   northern-hemisphere ocean basins (an "Atlantic" and a "Pacific" —
//!   required by the Figure 4 two-basin variability analysis),
//! * a circumpolar southern ocean and a polar southern continent,
//! * coherent coastlines so the river model has basins draining to
//!   well-defined mouths,
//! * five soil types varying with latitude/geography (standing in for the
//!   Matthews vegetation classes),
//! * an analytic annual-mean SST climatology with the observed gross
//!   structure (warm pool, equatorial cold tongue, western boundary
//!   currents) standing in for the Shea et al. field in Figure 3(b).

use crate::constants::{deg2rad, rad2deg};
use crate::grids::{AtmGrid, OceanGrid};

/// Ocean basin classification used by the Figure 4 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basin {
    Atlantic,
    Pacific,
    Indian,
    Southern,
    Arctic,
    /// Not an ocean point.
    Land,
}

/// Soil types (stand-in for the 5 Matthews-derived classes of CCM2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoilType {
    Desert,
    Grassland,
    Forest,
    Tundra,
    LandIce,
}

/// The synthetic planet: pure functions of (longitude, latitude).
#[derive(Debug, Clone)]
pub struct World {
    /// Coastline wiggle amplitude in degrees (0 gives rectangular
    /// continents; the default adds mild irregularity).
    pub coast_wiggle_deg: f64,
}

impl Default for World {
    fn default() -> Self {
        World {
            coast_wiggle_deg: 2.5,
        }
    }
}

/// A latitude–longitude box with wiggled edges.
struct Box4 {
    w: f64,
    e: f64,
    s: f64,
    n: f64,
}

impl World {
    pub fn earthlike() -> Self {
        Self::default()
    }

    /// Is `(lon, lat)` (radians; lon in [0, 2π)) land?
    pub fn is_land(&self, lon: f64, lat: f64) -> bool {
        let lo = normalize_deg(rad2deg(lon));
        let la = rad2deg(lat);
        // Deterministic coastline irregularity.
        let w = self.coast_wiggle_deg;
        let dlat = w * ((3.0 * deg2rad(lo)).sin() + 0.6 * (7.0 * deg2rad(lo) + 1.3).sin());
        let dlon = w * ((2.0 * lat).sin() + 0.5 * (5.0 * lat + 0.7).cos());
        let lo_w = lo + dlon;
        let la_w = la + dlat;

        // Southern polar continent ("Antarctica"), leaving a circumpolar
        // channel open.
        if la < -67.0 + 0.5 * dlat {
            return true;
        }

        // Mediterranean-like notch carved out of the Eurafrican block.
        if in_box(
            &Box4 {
                w: 2.0,
                e: 38.0,
                s: 31.0,
                n: 38.0,
            },
            lo_w,
            la_w,
        ) {
            return false;
        }
        for b in continent_boxes() {
            if in_box(&b, lo_w, la_w) {
                return true;
            }
        }
        false
    }

    /// Rough analytic elevation \[m\] for land points (coast-distance
    /// scaling is done later by the river model; this provides interior
    /// ridges so basins are not flat).
    pub fn elevation(&self, lon: f64, lat: f64) -> f64 {
        if !self.is_land(lon, lat) {
            return 0.0;
        }
        let lo = rad2deg(lon);
        let la = rad2deg(lat);
        // A western-margin cordillera on the America-like continent and a
        // central Asian-like plateau.
        let cordillera = 2500.0 * gaussian(lo, 243.0, 8.0) * gaussian(la, 10.0, 45.0);
        let plateau = 3000.0 * gaussian(lo, 90.0, 18.0) * gaussian(la, 35.0, 10.0);
        let ice_dome = if la < -70.0 || (la > 62.0 && (300.0..340.0).contains(&lo)) {
            2000.0
        } else {
            0.0
        };
        300.0 + cordillera + plateau + ice_dome
    }

    /// Soil type classification for land points.
    pub fn soil_type(&self, lon: f64, lat: f64) -> SoilType {
        let la = rad2deg(lat);
        let lo = normalize_deg(rad2deg(lon));
        if la < -66.0 || (la > 60.0 && (300.0..340.0).contains(&lo)) {
            SoilType::LandIce
        } else if la.abs() > 58.0 {
            SoilType::Tundra
        } else if (15.0..35.0).contains(&la.abs()) && !(90.0..150.0).contains(&lo) {
            SoilType::Desert
        } else if la.abs() < 15.0 || (35.0..55.0).contains(&la.abs()) {
            SoilType::Forest
        } else {
            SoilType::Grassland
        }
    }

    /// Basin classification for ocean points (Figure 4 boxes).
    pub fn basin(&self, lon: f64, lat: f64) -> Basin {
        if self.is_land(lon, lat) {
            return Basin::Land;
        }
        let lo = normalize_deg(rad2deg(lon));
        let la = rad2deg(lat);
        if la < -35.0 {
            Basin::Southern
        } else if la > 66.0 {
            Basin::Arctic
        } else if (292.0..=352.0).contains(&lo) {
            Basin::Atlantic
        } else if (135.0..260.0).contains(&lo) {
            Basin::Pacific
        } else if (40.0..135.0).contains(&lo) && la < 28.0 {
            Basin::Indian
        } else if (260.0..292.0).contains(&lo) {
            // East Pacific strip between the date line block and America.
            Basin::Pacific
        } else {
            Basin::Atlantic
        }
    }

    /// Analytic annual-mean SST climatology \[°C\] — the "observations"
    /// of Figure 3(b). Gross structure: ~27.5 °C equatorial maximum
    /// decaying poleward as cos^2.5, a western-Pacific warm pool, an
    /// eastern-Pacific cold tongue, Gulf-Stream/Kuroshio warm tongues and
    /// a cold Southern Ocean.
    pub fn sst_climatology(&self, lon: f64, lat: f64) -> f64 {
        let lo = normalize_deg(rad2deg(lon));
        let la = rad2deg(lat);
        let base = -2.0 + 29.5 * lat.cos().abs().powf(2.5);
        let warm_pool = 2.0 * gaussian(lo, 140.0, 20.0) * gaussian(la, 5.0, 12.0);
        let cold_tongue = -3.0 * gaussian(lo, 255.0, 18.0) * gaussian(la, -2.0, 7.0);
        let gulf_stream = 3.0 * gaussian(lo, 300.0, 10.0) * gaussian(la, 40.0, 7.0);
        let kuroshio = 3.0 * gaussian(lo, 150.0, 10.0) * gaussian(la, 35.0, 7.0);
        let natl_drift = 2.0 * gaussian(lo, 340.0, 14.0) * gaussian(la, 55.0, 8.0);
        let southern = -1.5 * smoothstep((-40.0 - la) / 15.0);
        (base + warm_pool + cold_tongue + gulf_stream + kuroshio + natl_drift + southern)
            .max(crate::constants::SEAWATER_FREEZE_C)
    }

    /// Land mask on the ocean grid (`true` = sea).
    pub fn ocean_sea_mask(&self, g: &OceanGrid) -> Vec<bool> {
        let mut m = vec![false; g.len()];
        for j in 0..g.ny {
            for i in 0..g.nx {
                m[g.idx(i, j)] = !self.is_land(g.lons[i], g.lats[j]);
            }
        }
        m
    }

    /// Land mask on the atmosphere grid (`true` = land).
    pub fn atm_land_mask(&self, g: &AtmGrid) -> Vec<bool> {
        let mut m = vec![false; g.len()];
        for j in 0..g.nlat {
            for i in 0..g.nlon {
                m[g.idx(i, j)] = self.is_land(g.lons[i], g.lats[j]);
            }
        }
        m
    }

    /// Land fraction of the planet by area on the given atmosphere grid.
    pub fn land_fraction(&self, g: &AtmGrid) -> f64 {
        let mask = self.atm_land_mask(g);
        let f: Vec<f64> = mask.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        g.global_mean(&f)
    }
}

/// Continent inventory (degrees; boxes may wrap in longitude).
fn continent_boxes() -> Vec<Box4> {
    vec![
        // North-America-like
        Box4 {
            w: 235.0,
            e: 295.0,
            s: 15.0,
            n: 66.0,
        },
        // Central-America-like isthmus
        Box4 {
            w: 262.0,
            e: 285.0,
            s: 6.0,
            n: 18.0,
        },
        // South-America-like
        Box4 {
            w: 280.0,
            e: 325.0,
            s: -55.0,
            n: 10.0,
        },
        // Eurafrica-like (wraps through 0°)
        Box4 {
            w: 345.0,
            e: 410.0, // = 50°E
            s: -35.0,
            n: 62.0,
        },
        // Asia-like
        Box4 {
            w: 50.0,
            e: 135.0,
            s: 5.0,
            n: 66.0,
        },
        // Australia-like
        Box4 {
            w: 113.0,
            e: 154.0,
            s: -39.0,
            n: -11.0,
        },
        // Greenland-like
        Box4 {
            w: 300.0,
            e: 340.0,
            s: 62.0,
            n: 84.0,
        },
    ]
}

fn in_box(b: &Box4, lon: f64, lat: f64) -> bool {
    if lat < b.s || lat > b.n {
        return false;
    }
    let lo = normalize_deg(lon);
    // Handle boxes that wrap past 360°.
    if b.e > 360.0 {
        lo >= b.w || lo <= b.e - 360.0
    } else {
        lo >= b.w && lo <= b.e
    }
}

#[inline]
fn normalize_deg(mut d: f64) -> f64 {
    while d < 0.0 {
        d += 360.0;
    }
    while d >= 360.0 {
        d -= 360.0;
    }
    d
}

#[inline]
fn gaussian(x: f64, mu: f64, sigma: f64) -> f64 {
    // Periodic distance in longitude-like coordinates up to 360.
    let mut d = (x - mu).abs();
    if d > 180.0 {
        d = 360.0 - d;
    }
    (-0.5 * (d / sigma) * (d / sigma)).exp()
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> World {
        World::earthlike()
    }

    #[test]
    fn land_fraction_is_earthlike() {
        let g = AtmGrid::r15();
        let f = w().land_fraction(&g);
        assert!(
            (0.22..0.42).contains(&f),
            "land fraction {f} outside Earth-like band"
        );
    }

    #[test]
    fn two_separated_northern_basins_exist() {
        let world = w();
        // Mid-Atlantic and mid-Pacific at 40°N must be sea; the America-
        // like continent between them must be land.
        let lat = deg2rad(40.0);
        assert!(!world.is_land(deg2rad(320.0), lat), "Atlantic at 40N");
        assert!(!world.is_land(deg2rad(180.0), lat), "Pacific at 40N");
        assert!(world.is_land(deg2rad(265.0), lat), "America at 40N");
        assert_eq!(world.basin(deg2rad(320.0), lat), Basin::Atlantic);
        assert_eq!(world.basin(deg2rad(180.0), lat), Basin::Pacific);
    }

    #[test]
    fn circumpolar_channel_is_open() {
        let world = w();
        let lat = deg2rad(-60.0);
        let n_sea = (0..72)
            .filter(|k| !world.is_land(deg2rad(*k as f64 * 5.0), lat))
            .count();
        assert_eq!(n_sea, 72, "Drake-passage band must be fully open");
    }

    #[test]
    fn antarctica_is_land() {
        let world = w();
        for k in 0..12 {
            assert!(world.is_land(deg2rad(k as f64 * 30.0), deg2rad(-80.0)));
        }
    }

    #[test]
    fn sst_climatology_structure() {
        let world = w();
        let eq = world.sst_climatology(deg2rad(180.0), 0.0);
        let midlat = world.sst_climatology(deg2rad(180.0), deg2rad(45.0));
        let polar = world.sst_climatology(deg2rad(180.0), deg2rad(65.0));
        assert!(eq > 25.0 && eq < 31.0, "equatorial SST {eq}");
        assert!(midlat < eq && midlat > 5.0, "midlat SST {midlat}");
        assert!(polar < midlat, "polar SST {polar}");
        assert!(polar >= crate::constants::SEAWATER_FREEZE_C);
        // Warm pool warmer than cold tongue on the equator.
        let wp = world.sst_climatology(deg2rad(140.0), deg2rad(5.0));
        let ct = world.sst_climatology(deg2rad(255.0), deg2rad(-2.0));
        assert!(wp - ct > 2.0, "warm pool {wp} vs cold tongue {ct}");
    }

    #[test]
    fn soil_types_cover_all_classes() {
        let world = w();
        let g = AtmGrid::r15();
        let mut seen = [false; 5];
        for j in 0..g.nlat {
            for i in 0..g.nlon {
                if world.is_land(g.lons[i], g.lats[j]) {
                    let t = world.soil_type(g.lons[i], g.lats[j]);
                    seen[t as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "missing soil classes: {seen:?}");
    }

    #[test]
    fn elevation_positive_on_land_zero_on_sea() {
        let world = w();
        assert_eq!(world.elevation(deg2rad(180.0), 0.0), 0.0);
        assert!(world.elevation(deg2rad(90.0), deg2rad(35.0)) > 300.0);
    }

    #[test]
    fn masks_are_consistent_between_grids() {
        let world = w();
        let ag = AtmGrid::r15();
        let og = OceanGrid::foam_default();
        let am = world.atm_land_mask(&ag);
        let om = world.ocean_sea_mask(&og);
        // Compare land fraction measured on the two grids (within the
        // ocean grid's latitude band) — should broadly agree.
        let mut a_land = 0.0;
        let mut a_tot = 0.0;
        for j in 0..ag.nlat {
            if ag.lats[j].abs() < deg2rad(70.0) {
                for i in 0..ag.nlon {
                    a_tot += ag.cell_area(i, j);
                    if am[ag.idx(i, j)] {
                        a_land += ag.cell_area(i, j);
                    }
                }
            }
        }
        let mut o_land = 0.0;
        let mut o_tot = 0.0;
        for j in 0..og.ny {
            if og.lats[j].abs() < deg2rad(70.0) {
                for i in 0..og.nx {
                    o_tot += og.cell_area(i, j);
                    if !om[og.idx(i, j)] {
                        o_land += og.cell_area(i, j);
                    }
                }
            }
        }
        let fa = a_land / a_tot;
        let fo = o_land / o_tot;
        assert!(
            (fa - fo).abs() < 0.05,
            "atm land frac {fa} vs ocean land frac {fo}"
        );
    }
}

#[cfg(test)]
mod basin_tests {
    use super::*;
    use crate::constants::deg2rad;

    #[test]
    fn every_sea_point_gets_a_basin() {
        let world = World::earthlike();
        let g = crate::grids::OceanGrid::mercator(64, 48, 70.0);
        for j in 0..g.ny {
            for i in 0..g.nx {
                let b = world.basin(g.lons[i], g.lats[j]);
                if world.is_land(g.lons[i], g.lats[j]) {
                    assert_eq!(b, Basin::Land);
                } else {
                    assert_ne!(b, Basin::Land);
                }
            }
        }
    }

    #[test]
    fn indian_ocean_exists_and_sits_between_africa_and_australia() {
        let world = World::earthlike();
        let b = world.basin(deg2rad(75.0), deg2rad(-15.0));
        assert_eq!(b, Basin::Indian);
    }

    #[test]
    fn southern_ocean_ring() {
        let world = World::earthlike();
        for lon_deg in [0.0, 90.0, 180.0, 270.0] {
            assert_eq!(
                world.basin(deg2rad(lon_deg), deg2rad(-50.0)),
                Basin::Southern
            );
        }
    }

    #[test]
    fn northern_basins_have_comparable_sea_area() {
        // Figure 4's analysis boxes must both be well populated.
        let world = World::earthlike();
        let g = crate::grids::OceanGrid::mercator(128, 128, 72.0);
        let mut atl = 0.0;
        let mut pac = 0.0;
        for j in 0..g.ny {
            let latd = g.lats[j].to_degrees();
            if !(25.0..60.0).contains(&latd) {
                continue;
            }
            for i in 0..g.nx {
                match world.basin(g.lons[i], g.lats[j]) {
                    Basin::Atlantic => atl += g.cell_area(i, j),
                    Basin::Pacific => pac += g.cell_area(i, j),
                    _ => {}
                }
            }
        }
        assert!(atl > 0.0 && pac > 0.0);
        let ratio = pac / atl;
        assert!(
            (1.0..8.0).contains(&ratio),
            "Pacific/Atlantic box area ratio {ratio}"
        );
    }
}
