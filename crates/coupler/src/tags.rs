//! The message tags of the atmosphere↔ocean exchange protocol.
//!
//! All traffic crosses the *world* communicator between the atmosphere
//! root (world rank 0) and the ocean rank. Tags live here, next to the
//! coupler they belong to, so trace/stats tooling and the driver agree
//! on their meaning.
//!
//! A healthy exchange, by tag: the ocean opens with the sequence-0 SST,
//! then each coupling interval is one `TAG_FORCING` (root → ocean)
//! answered by one `TAG_SST` (ocean → root), with `TAG_SST_RETRY`
//! NACKs only when a deadline expires, `TAG_CKPT` requesting snapshot
//! shards, and a `TAG_DONE` handshake closing the run. Telemetry folds
//! the per-tag communication counters into the run report under these
//! names:
//!
//! ```
//! use foam_coupler::tags::{tag_name, TAG_FORCING, TAG_SST};
//!
//! assert_eq!(tag_name(TAG_FORCING), Some("forcing"));
//! assert_eq!(tag_name(TAG_SST), Some("sst"));
//! assert_eq!(tag_name(999), None); // not a protocol tag
//! // e.g. counter "comm.forcing.msgs_sent" in the telemetry report.
//! ```

/// Accumulated ocean forcing, atmosphere root → ocean. Payload:
/// `(usize, OceanForcing)` — the coupling-interval index, so a resent
/// duplicate is recognized and ignored.
pub const TAG_FORCING: u32 = 10;

/// Sea-surface temperature, ocean → atmosphere root. Payload:
/// `(usize, Field2)` — the sequence number counts completed ocean
/// integrations (0 = initial condition), letting the receiver ignore
/// stale retransmissions.
pub const TAG_SST: u32 = 11;

/// Retry request (NACK), atmosphere root → ocean, sent when an expected
/// SST misses its deadline. Payload: `usize` — the sequence number the
/// root is waiting for. The ocean answers by resending its latest SST.
pub const TAG_SST_RETRY: u32 = 12;

/// Shutdown handshake. The root sends `()` when it has everything it
/// needs (or is aborting); the ocean acknowledges with `()` on the same
/// tag and exits. The ack, ordered after any SST retransmissions, lets
/// the root drain duplicates so teardown comm-lint comes back clean.
pub const TAG_DONE: u32 = 13;

/// Checkpoint request, atmosphere root → ocean. Payload:
/// `(usize, String)` — the coupling-interval index the snapshot must
/// capture and the staging directory the ocean writes its shard into.
/// FIFO ordering behind the interval's forcing guarantees the ocean has
/// integrated through that interval when it sees the request. The ocean
/// acknowledges with `(usize, bool)` (interval, shard written) on the
/// same tag.
pub const TAG_CKPT: u32 = 14;

/// Human-readable name for a coupler protocol tag.
pub fn tag_name(tag: u32) -> Option<&'static str> {
    match tag {
        TAG_FORCING => Some("forcing"),
        TAG_SST => Some("sst"),
        TAG_SST_RETRY => Some("sst-retry"),
        TAG_DONE => Some("done"),
        TAG_CKPT => Some("ckpt"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct_and_named() {
        let tags = [TAG_FORCING, TAG_SST, TAG_SST_RETRY, TAG_DONE, TAG_CKPT];
        for (i, a) in tags.iter().enumerate() {
            assert!(tag_name(*a).is_some());
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(tag_name(99), None);
    }
}
