//! `foam-coupler` — the FOAM coupler.
//!
//! "The separately developed atmosphere and ocean models are integrated
//! into a functioning whole by a set of routines called the coupler. The
//! coupler is essentially a model of the land surface and
//! atmosphere-ocean interface." (paper §"The FOAM Coupler")
//!
//! Responsibilities implemented here, all on full grids (the SPMD
//! choreography — which ranks run this, co-located with the atmosphere —
//! lives in the `foam` crate):
//!
//! * **overlap-grid fluxes** (paper Fig. 1): latent/sensible heat and
//!   momentum are evaluated on each atmosphere×ocean intersection cell
//!   with the atmosphere side's low-level state and the ocean side's SST
//!   (CCM3 stability-dependent bulk formulas with diagnosed ocean
//!   roughness), then area-averaged back to both grids — conserving the
//!   exchange without interpolating state to a common grid;
//! * **land surface**: 4-layer soil diffusion per land cell (5 soil
//!   types), CCM2 bulk fluxes over land, snow albedo modification;
//! * **hydrology**: the 15-cm bucket, snowfall criterion (ground and
//!   lowest atmosphere below freezing), runoff to the **river model**,
//!   river mouths as freshwater point sources for the ocean — the closed
//!   hydrological cycle that prevents long-term ocean salinity drift;
//! * **sea ice**: treated as another soil type; SST clamped at −1.92 °C
//!   by the ocean, ice–atmosphere stress divided by 15 before reaching
//!   the ocean, formation booked as a 2-m freshwater withdrawal;
//! * **forcing accumulation**: the atmosphere runs on a 30-minute step
//!   and the ocean is called four times per day (6-h coupling), so
//!   fluxes are accumulated between ocean calls.

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::constants::{SEAWATER_FREEZE_C, STEFAN_BOLTZMANN};
use foam_grid::{AtmGrid, Field2, OceanGrid, OverlapGrid, World};
use foam_land::hydrology::Bucket;
use foam_land::river::{RiverModel, RiverState};
use foam_land::soil::{ice_column, SoilColumn, SOIL_CLASSES};
use foam_land::{ICE_FORMATION_WATER, ICE_STRESS_FACTOR};
use foam_ocean::OceanForcing;
use foam_physics::surface::BulkFluxes;
use foam_physics::{AtmColumn, ColumnPhysics, PhysicsConfig, SurfaceKind, SurfaceState};

pub mod tags;

/// Fields the atmosphere exposes to the coupler each step (full grid).
#[derive(Debug, Clone)]
pub struct AtmSurfaceFields {
    /// Lowest-level air temperature \[K\], humidity, winds \[m/s\].
    pub t_low: Field2,
    pub q_low: Field2,
    pub u_low: Field2,
    pub v_low: Field2,
    /// Precipitation rate \[kg m⁻² s⁻¹\].
    pub precip: Field2,
    /// Shortwave absorbed at the surface and downwelling longwave \[W/m²\].
    pub sw_sfc: Field2,
    pub lw_down: Field2,
}

/// Borrowed view of the atmosphere surface fields — what the coupler
/// actually reads. Lets callers hand the coupler their own buffers
/// (e.g. the atmosphere's reusable export) without cloning seven
/// fields per step (the zero-churn rule; see PERFORMANCE.md).
#[derive(Debug, Clone, Copy)]
pub struct AtmSurfaceView<'a> {
    /// Lowest-level air temperature \[K\], humidity, winds \[m/s\].
    pub t_low: &'a Field2,
    pub q_low: &'a Field2,
    pub u_low: &'a Field2,
    pub v_low: &'a Field2,
    /// Precipitation rate \[kg m⁻² s⁻¹\].
    pub precip: &'a Field2,
    /// Shortwave absorbed at the surface and downwelling longwave \[W/m²\].
    pub sw_sfc: &'a Field2,
    pub lw_down: &'a Field2,
}

impl AtmSurfaceFields {
    /// Borrow these fields as an [`AtmSurfaceView`].
    ///
    /// ```
    /// use foam_coupler::AtmSurfaceFields;
    /// use foam_grid::Field2;
    ///
    /// let f = Field2::filled(4, 3, 1.0);
    /// let atm = AtmSurfaceFields {
    ///     t_low: f.clone(), q_low: f.clone(), u_low: f.clone(), v_low: f.clone(),
    ///     precip: f.clone(), sw_sfc: f.clone(), lw_down: f,
    /// };
    /// let view = atm.view();
    /// assert_eq!(view.t_low.as_slice(), atm.t_low.as_slice());
    /// ```
    pub fn view(&self) -> AtmSurfaceView<'_> {
        AtmSurfaceView {
            t_low: &self.t_low,
            q_low: &self.q_low,
            u_low: &self.u_low,
            v_low: &self.v_low,
            precip: &self.precip,
            sw_sfc: &self.sw_sfc,
            lw_down: &self.lw_down,
        }
    }
}

/// What the coupler returns to the atmosphere (full grid, flattened).
#[derive(Debug, Clone)]
pub struct SurfaceForAtm {
    pub fluxes: Vec<BulkFluxes>,
    /// Effective radiating surface temperature \[K\].
    pub t_sfc: Vec<f64>,
    pub albedo: Vec<f64>,
}

/// Pre-allocated scratch and result buffers for
/// [`Coupler::step_rows_ws`], created once per run with
/// [`Coupler::workspace`] and reused every step. The pseudo-column
/// keeps its reference profile between calls (only the bottom level is
/// rewritten), and all accumulators are reset at the start of each
/// call, so a reused workspace is bit-identical to fresh allocation.
#[derive(Debug, Clone)]
pub struct CouplerWorkspace {
    /// Surface seen by the atmosphere, written by the last
    /// [`Coupler::step_rows_ws`] call (entries in its cell range).
    pub out: SurfaceForAtm,
    /// Local runoff \[m over the step\], full-length, entries filled in
    /// the last call's cell range.
    pub runoff: Vec<f64>,
    /// The reference pseudo-column; only its bottom level changes.
    col: AtmColumn,
    /// Per-atmosphere-cell sea-side accumulators.
    sea_flux: Vec<BulkFluxes>,
    sea_area: Vec<f64>,
    sea_tsfc: Vec<f64>,
    sea_albedo: Vec<f64>,
    /// River-routing scratch ([`Coupler::route_rivers_ws`]): per-cell
    /// outflow, atmosphere-grid mouths, their ocean-grid regridding.
    river_outflow: Vec<f64>,
    mouths_atm: Field2,
    mouths_ocn: Field2,
}

/// Mutable coupler state.
#[derive(Debug, Clone)]
pub struct CouplerState {
    /// Soil column per atmosphere cell (meaningful on land cells).
    pub soil: Vec<SoilColumn>,
    /// Water bucket per atmosphere cell (land).
    pub bucket: Vec<Bucket>,
    pub river: RiverState,
    /// Sea-ice presence per *ocean* cell.
    pub ice: Vec<bool>,
    /// Ice thermodynamic column per atmosphere cell (used where its sea
    /// overlap is icy).
    pub ice_col: Vec<SoilColumn>,
    /// Ocean forcing accumulated since the last ocean call — the
    /// *row-local* part (overlap fluxes of this rank's atmosphere rows;
    /// summed across ranks at exchange time when distributed).
    pub acc: OceanForcing,
    /// The *replicated* part (river mouths, ice formation water) — added
    /// once, identically, on every rank.
    pub acc_shared: OceanForcing,
    pub acc_seconds: f64,
    /// One-shot freshwater adjustments (ice formation/melt), ocean grid
    /// \[kg/m²\] to be applied at the next ocean call.
    pub fw_oneshot: Field2,
}

impl Codec for CouplerState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.soil.encode(buf);
        self.bucket.encode(buf);
        self.river.encode(buf);
        self.ice.encode(buf);
        self.ice_col.encode(buf);
        self.acc.encode(buf);
        self.acc_shared.encode(buf);
        self.acc_seconds.encode(buf);
        self.fw_oneshot.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(CouplerState {
            soil: Vec::<SoilColumn>::decode(r)?,
            bucket: Vec::<Bucket>::decode(r)?,
            river: RiverState::decode(r)?,
            ice: Vec::<bool>::decode(r)?,
            ice_col: Vec::<SoilColumn>::decode(r)?,
            acc: OceanForcing::decode(r)?,
            acc_shared: OceanForcing::decode(r)?,
            acc_seconds: f64::decode(r)?,
            fw_oneshot: Field2::decode(r)?,
        })
    }
}

/// The sequence-numbered state of the atmosphere↔ocean exchange on the
/// root rank: the last accepted SST with its sequence number, plus the
/// recent forcings kept for retransmission. Checkpointed so a restarted
/// run re-enters the retry protocol exactly where it left off.
#[derive(Debug, Clone)]
pub struct ExchangeBuffers {
    /// Sequence number of `sst` (completed ocean integrations).
    pub sst_seq: usize,
    /// Last accepted sea-surface temperature.
    pub sst: Field2,
    /// Recently sent `(interval, forcing)` pairs retained for resends.
    pub recent: Vec<(usize, OceanForcing)>,
}

impl Codec for ExchangeBuffers {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.sst_seq.encode(buf);
        self.sst.encode(buf);
        self.recent.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(ExchangeBuffers {
            sst_seq: usize::decode(r)?,
            sst: Field2::decode(r)?,
            recent: Vec::<(usize, OceanForcing)>::decode(r)?,
        })
    }
}

/// The coupler: static geometry + component models.
pub struct Coupler {
    pub atm_grid: AtmGrid,
    pub ocn_grid: OceanGrid,
    pub overlap: OverlapGrid,
    pub river: RiverModel,
    pub phys: ColumnPhysics,
    /// Land mask on the atmosphere grid.
    pub land: Vec<bool>,
    /// Soil class index per atmosphere cell.
    pub soil_type: Vec<usize>,
    /// Sea fraction per atmosphere cell.
    pub sea_frac: Vec<f64>,
    /// Ocean-grid sea mask.
    pub sea_mask: Vec<bool>,
    /// Total overlap area of each ocean cell \[m²\] (for normalizing
    /// partial flux sums when the coupler is distributed by rows).
    ocn_overlap_area: Vec<f64>,
    /// Reference column used to adapt bulk formulas (levels only).
    nlev_ref: usize,
}

impl Coupler {
    pub fn new(
        atm_grid: AtmGrid,
        ocn_grid: OceanGrid,
        sea_mask: Vec<bool>,
        world: &World,
        phys_cfg: PhysicsConfig,
    ) -> Self {
        let overlap = OverlapGrid::build(&atm_grid, &ocn_grid, &sea_mask);
        let land = world.atm_land_mask(&atm_grid);
        let river = RiverModel::build(&atm_grid, &land);
        let soil_type: Vec<usize> = (0..atm_grid.len())
            .map(|k| {
                let (i, j) = (k % atm_grid.nlon, k / atm_grid.nlon);
                world.soil_type(atm_grid.lons[i], atm_grid.lats[j]) as usize
            })
            .collect();
        let sea_frac = overlap.sea_fraction_atm().into_vec();
        let mut ocn_overlap_area = vec![0.0; ocn_grid.len()];
        overlap.for_each_pair(|_ka, ko, a| ocn_overlap_area[ko] += a);
        Coupler {
            atm_grid,
            ocn_grid,
            overlap,
            river,
            phys: ColumnPhysics::new(phys_cfg),
            land,
            soil_type,
            sea_frac,
            sea_mask,
            ocn_overlap_area,
            nlev_ref: 8,
        }
    }

    /// Initial coupler state, with soil temperatures set from the
    /// latitude profile and ice where the initial SST sits at the clamp.
    pub fn init_state(&self, sst: &Field2, t_init: impl Fn(f64) -> f64) -> CouplerState {
        let n = self.atm_grid.len();
        let soil = (0..n)
            .map(|k| {
                let j = k / self.atm_grid.nlon;
                SoilColumn::new(
                    SOIL_CLASSES[self.soil_type[k]],
                    t_init(self.atm_grid.lats[j]),
                )
            })
            .collect();
        let bucket = vec![
            Bucket {
                soil_water: 0.10,
                snow: 0.0,
            };
            n
        ];
        let ice = (0..self.ocn_grid.len())
            .map(|ko| self.sea_mask[ko] && sst.as_slice()[ko] <= SEAWATER_FREEZE_C + 0.01)
            .collect();
        let ice_col = (0..n).map(|_| ice_column(265.0)).collect();
        CouplerState {
            soil,
            bucket,
            river: self.river.init_state(),
            ice,
            ice_col,
            acc: OceanForcing::zeros(&self.ocn_grid),
            acc_shared: OceanForcing::zeros(&self.ocn_grid),
            acc_seconds: 0.0,
            fw_oneshot: Field2::zeros(self.ocn_grid.nx, self.ocn_grid.ny),
        }
    }

    /// A fresh scratch/result buffer set for [`Coupler::step_rows_ws`],
    /// sized for this coupler's grids.
    pub fn workspace(&self) -> CouplerWorkspace {
        let n = self.atm_grid.len();
        CouplerWorkspace {
            out: SurfaceForAtm {
                fluxes: vec![BulkFluxes::default(); n],
                t_sfc: vec![288.0; n],
                albedo: vec![0.07; n],
            },
            runoff: vec![0.0; n],
            col: AtmColumn::isothermal(self.nlev_ref, 2000.0, 280.0),
            sea_flux: vec![BulkFluxes::default(); n],
            sea_area: vec![0.0; n],
            sea_tsfc: vec![0.0; n],
            sea_albedo: vec![0.0; n],
            river_outflow: Vec::new(),
            mouths_atm: Field2::zeros(self.atm_grid.nlon, self.atm_grid.nlat),
            mouths_ocn: Field2::zeros(self.ocn_grid.nx, self.ocn_grid.ny),
        }
    }

    /// Load the lowest-level state at cell `ka` into the reference
    /// pseudo-column (the bulk formulas only read the bottom level;
    /// every other level keeps the constructor's profile). `off` is the
    /// flat index of `atm`'s first entry (0 for full-grid fields).
    fn pseudo_column_into(
        &self,
        atm: AtmSurfaceView<'_>,
        ka: usize,
        off: usize,
        col: &mut AtmColumn,
    ) {
        let n = col.nlev();
        col.t[n - 1] = atm.t_low.as_slice()[ka - off];
        col.q[n - 1] = atm.q_low.as_slice()[ka - off];
    }

    /// One coupler pass for one atmosphere step of length `dt` \[s\]:
    /// compute all surface exchanges, advance the land/ice state, and
    /// accumulate the ocean forcing. Returns the surface the atmosphere
    /// sees. (Serial convenience wrapper over [`Coupler::step_rows`] +
    /// [`Coupler::route_rivers`] covering the whole grid.)
    pub fn step(
        &self,
        st: &mut CouplerState,
        atm: &AtmSurfaceFields,
        sst: &Field2,
        dt: f64,
    ) -> SurfaceForAtm {
        let n = self.atm_grid.len();
        let (out, runoff) = self.step_rows(st, atm, sst, dt, 0, n, 0);
        self.route_rivers(st, &runoff, dt);
        out
    }

    /// The distributed coupler pass: process only atmosphere cells
    /// `ka0..ka1` (this rank's latitude rows, co-located with its
    /// atmosphere decomposition, as in the paper). `atm` may hold just
    /// the local rows, with `ka_offset` the flat index of its first
    /// entry. Returns the surface (full-length vectors, entries filled in
    /// the range) and the local runoff \[m over the step\] (full-length;
    /// allgather it and call [`Coupler::route_rivers`]).
    #[allow(clippy::too_many_arguments)]
    pub fn step_rows(
        &self,
        st: &mut CouplerState,
        atm: &AtmSurfaceFields,
        sst: &Field2,
        dt: f64,
        ka0: usize,
        ka1: usize,
        ka_offset: usize,
    ) -> (SurfaceForAtm, Vec<f64>) {
        let mut ws = self.workspace();
        self.step_rows_ws(st, atm.view(), sst, dt, ka0, ka1, ka_offset, &mut ws);
        (ws.out, ws.runoff)
    }

    /// Allocation-free [`Coupler::step_rows`]: reads the atmosphere
    /// surface through a borrowed [`AtmSurfaceView`] and leaves the
    /// results in `ws.out` / `ws.runoff`. Bit-identical to the
    /// allocating form (which is now a thin wrapper over this one).
    ///
    /// ```
    /// use foam_coupler::{AtmSurfaceFields, Coupler};
    /// use foam_grid::{AtmGrid, Field2, OceanGrid, World};
    /// use foam_physics::PhysicsConfig;
    ///
    /// let atm_grid = AtmGrid::new(8, 6);
    /// let ocn_grid = OceanGrid::mercator(8, 6, 60.0);
    /// let coupler = Coupler::new(
    ///     atm_grid.clone(),
    ///     ocn_grid.clone(),
    ///     vec![true; ocn_grid.len()],
    ///     &World::earthlike(),
    ///     PhysicsConfig::default(),
    /// );
    /// let sst = Field2::filled(8, 6, 15.0);
    /// let g = |v| Field2::filled(8, 6, v);
    /// let atm = AtmSurfaceFields {
    ///     t_low: g(285.0), q_low: g(0.008), u_low: g(5.0), v_low: g(0.0),
    ///     precip: g(1.0e-5), sw_sfc: g(200.0), lw_down: g(350.0),
    /// };
    /// let mut st_a = coupler.init_state(&sst, |_| 280.0);
    /// let mut st_b = st_a.clone();
    /// let n = atm_grid.len();
    ///
    /// // Allocating reference vs the reused-workspace path:
    /// let (out, runoff) = coupler.step_rows(&mut st_a, &atm, &sst, 1800.0, 0, n, 0);
    /// let mut ws = coupler.workspace();
    /// coupler.step_rows_ws(&mut st_b, atm.view(), &sst, 1800.0, 0, n, 0, &mut ws);
    /// assert_eq!(out.t_sfc, ws.out.t_sfc);   // bit-identical
    /// assert_eq!(runoff, ws.runoff);
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn step_rows_ws(
        &self,
        st: &mut CouplerState,
        atm: AtmSurfaceView<'_>,
        sst: &Field2,
        dt: f64,
        ka0: usize,
        ka1: usize,
        ka_offset: usize,
        ws: &mut CouplerWorkspace,
    ) {
        let _t = foam_telemetry::scope("fluxes");
        let n_atm = self.atm_grid.len();
        let at = |f: &Field2, ka: usize| f.as_slice()[ka - ka_offset];

        // ---------------- Overlap-grid air–sea fluxes. -----------------
        // Accumulate per-atm (sea-average) and per-ocean quantities.
        // Reset the reused buffers to the values a fresh allocation
        // would carry.
        let CouplerWorkspace {
            out,
            runoff,
            col,
            sea_flux,
            sea_area,
            sea_tsfc,
            sea_albedo,
            // River scratch is route_rivers_ws's, untouched here.
            ..
        } = ws;
        let sea_flux_atm = sea_flux;
        let sea_area_atm = sea_area;
        let sea_tsfc_atm = sea_tsfc;
        let sea_albedo_atm = sea_albedo;
        sea_flux_atm.fill(BulkFluxes::default());
        sea_area_atm.fill(0.0);
        sea_tsfc_atm.fill(0.0);
        sea_albedo_atm.fill(0.0);

        for ka in ka0..ka1 {
            self.pseudo_column_into(atm, ka, ka_offset, col);
            let col = &*col;
            let wind = (at(atm.u_low, ka), at(atm.v_low, ka));
            self.overlap.for_each_pair_of_atm(ka, |ko, area| {
                let icy = st.ice[ko];
                let sst_c = sst.as_slice()[ko];
                let (sfc, albedo) = if icy {
                    (
                        SurfaceState {
                            kind: SurfaceKind::SeaIce,
                            t_sfc: st.ice_col[ka].skin(),
                            albedo: st.ice_col[ka].props.albedo,
                            wetness: 1.0,
                        },
                        st.ice_col[ka].props.albedo,
                    )
                } else {
                    (SurfaceState::open_ocean(sst_c + 273.15), 0.07)
                };
                let f = self.phys.surface_fluxes(col, &sfc, wind);

                // Atmosphere side: area-weighted sea-average flux.
                let w = area;
                let sa = &mut sea_flux_atm[ka];
                sa.sensible += w * f.sensible;
                sa.latent += w * f.latent;
                sa.evaporation += w * f.evaporation;
                sa.tau_x += w * f.tau_x;
                sa.tau_y += w * f.tau_y;
                sa.stress += w * f.stress;
                sa.c_exchange += w * f.c_exchange;
                sea_area_atm[ka] += w;
                sea_tsfc_atm[ka] += w * sfc.t_sfc;
                sea_albedo_atm[ka] += w * albedo;

                // Ocean side: net heat and momentum into the water.
                let t_water_k = sst_c + 273.15;
                let (heat, taux, tauy, evap) = if icy {
                    // Conduction with the lowest ice layer; stress divided by
                    // 15 (paper, verbatim); no direct evaporation from water.
                    let g_ice = st.ice_col[ka].props.conductivity / foam_land::soil::SOIL_DZ[3];
                    let q_cond = g_ice * (st.ice_col[ka].t[3] - t_water_k);
                    (
                        q_cond,
                        f.tau_x * ICE_STRESS_FACTOR,
                        f.tau_y * ICE_STRESS_FACTOR,
                        0.0,
                    )
                } else {
                    let q = at(atm.sw_sfc, ka) + at(atm.lw_down, ka)
                        - STEFAN_BOLTZMANN * t_water_k.powi(4)
                        - f.sensible
                        - f.latent;
                    (q, f.tau_x, f.tau_y, f.evaporation)
                };
                // Accumulate directly into the local forcing, normalized by
                // the ocean cell's *total* overlap area so that partial sums
                // from different ranks add up to the correct average.
                let wn = dt * w / self.ocn_overlap_area[ko].max(1e-9);
                st.acc.tau_x.as_mut_slice()[ko] += wn * taux;
                st.acc.tau_y.as_mut_slice()[ko] += wn * tauy;
                st.acc.heat.as_mut_slice()[ko] += wn * heat;
                // P − E on the sea part; rivers are added by route_rivers.
                st.acc.freshwater.as_mut_slice()[ko] += wn * (at(atm.precip, ka) - evap);
            });
        }

        // ---------------- Land surface + hydrology. --------------------
        out.fluxes.fill(BulkFluxes::default());
        out.t_sfc.fill(288.0);
        out.albedo.fill(0.07);
        runoff.fill(0.0);
        let _ = n_atm;
        for ka in ka0..ka1 {
            let sea_a = sea_area_atm[ka];
            let cell_a = self.overlap.atm_cell_area(ka);
            let land_frac = (1.0 - sea_a / cell_a).clamp(0.0, 1.0);

            // Land-side fluxes and updates (also covers polar caps with
            // no ocean coverage, treated as land/ice surface).
            let mut land_flux = BulkFluxes::default();
            let mut land_t = 0.0;
            let mut land_albedo = 0.0;
            if land_frac > 1.0e-6 {
                self.pseudo_column_into(atm, ka, ka_offset, col);
                let wind = (at(atm.u_low, ka), at(atm.v_low, ka));
                let props = SOIL_CLASSES[self.soil_type[ka]];
                let snow_covered = st.bucket[ka].snow > 1.0e-4;
                let albedo = if snow_covered { 0.65 } else { props.albedo };
                let sfc = SurfaceState {
                    kind: if snow_covered {
                        SurfaceKind::Snow
                    } else {
                        SurfaceKind::Land {
                            z0: props.roughness,
                        }
                    },
                    t_sfc: st.soil[ka].skin(),
                    albedo,
                    wetness: st.bucket[ka].wetness(),
                };
                land_flux = self.phys.surface_fluxes(col, &sfc, wind);
                // Soil energy budget.
                let skin = st.soil[ka].skin();
                let net = at(atm.sw_sfc, ka) + at(atm.lw_down, ka)
                    - STEFAN_BOLTZMANN * skin.powi(4)
                    - land_flux.sensible
                    - land_flux.latent;
                // Hydrology first (melt energy cools the soil).
                let snowing = at(atm.t_low, ka) < 273.15 && skin < 273.15;
                let h = st.bucket[ka].step(
                    at(atm.precip, ka),
                    land_flux.evaporation,
                    snowing,
                    skin,
                    dt,
                );
                st.soil[ka].step(net - h.melt_energy / dt, dt);
                runoff[ka] = h.runoff;
                land_t = st.soil[ka].skin();
                land_albedo = albedo;
            }

            // Ice-column thermodynamics for icy sea parts of this cell.
            let icy_area: f64 = 0.0; // recomputed below if needed
            let _ = icy_area;
            if sea_a > 0.0 {
                // Advance the ice column with the cell's net surface
                // energy when any of its overlap is icy.
                let any_ice = {
                    let mut any = false;
                    self.overlap.for_each_pair_of_atm(ka, |ko, _a| {
                        any = any || st.ice[ko];
                    });
                    any
                };
                if any_ice {
                    let skin = st.ice_col[ka].skin();
                    let f = &sea_flux_atm[ka];
                    let net = at(atm.sw_sfc, ka) + at(atm.lw_down, ka)
                        - STEFAN_BOLTZMANN * skin.powi(4)
                        - f.sensible / sea_a.max(1.0)
                        - f.latent / sea_a.max(1.0);
                    st.ice_col[ka].step(net, dt);
                    // The base stays pinned near freezing by the ocean.
                    st.ice_col[ka].t[3] =
                        st.ice_col[ka].t[3].clamp(SEAWATER_FREEZE_C + 273.15 - 2.0, 273.15);
                }
            }

            // Blend land and sea for the atmosphere.
            let (sea_flux, sea_t, sea_alb) = if sea_a > 0.0 {
                let inv = 1.0 / sea_a;
                let f = &sea_flux_atm[ka];
                (
                    BulkFluxes {
                        sensible: f.sensible * inv,
                        latent: f.latent * inv,
                        evaporation: f.evaporation * inv,
                        stress: f.stress * inv,
                        tau_x: f.tau_x * inv,
                        tau_y: f.tau_y * inv,
                        c_exchange: f.c_exchange * inv,
                    },
                    sea_tsfc_atm[ka] * inv,
                    sea_albedo_atm[ka] * inv,
                )
            } else {
                (BulkFluxes::default(), 0.0, 0.0)
            };
            let lf = land_frac;
            let sf = 1.0 - lf;
            let blend = |a: f64, b: f64| lf * a + sf * b;
            out.fluxes[ka] = BulkFluxes {
                sensible: blend(land_flux.sensible, sea_flux.sensible),
                latent: blend(land_flux.latent, sea_flux.latent),
                evaporation: blend(land_flux.evaporation, sea_flux.evaporation),
                stress: blend(land_flux.stress, sea_flux.stress),
                tau_x: blend(land_flux.tau_x, sea_flux.tau_x),
                tau_y: blend(land_flux.tau_y, sea_flux.tau_y),
                c_exchange: blend(land_flux.c_exchange, sea_flux.c_exchange),
            };
            // Where there is no land, fall back to sea values and vice
            // versa.
            out.t_sfc[ka] = if lf >= 1.0 - 1e-9 {
                land_t
            } else if lf <= 1e-9 {
                sea_t
            } else {
                blend(land_t, sea_t)
            };
            out.albedo[ka] = if lf >= 1.0 - 1e-9 {
                land_albedo
            } else if lf <= 1e-9 {
                sea_alb
            } else {
                blend(land_albedo, sea_alb)
            };
        }

        st.acc_seconds += dt;
    }

    /// Route runoff through the river network and book the mouth inflow
    /// into the *shared* ocean-forcing accumulator. `runoff` must be the
    /// full-grid field (allgather the per-rank pieces first when
    /// distributed); every rank calls this with identical inputs so the
    /// replicated river state stays in lockstep.
    pub fn route_rivers(&self, st: &mut CouplerState, runoff: &[f64], dt: f64) {
        let mouths_atm = self.river.step(&mut st.river, runoff, dt);
        let mouths_ocn = self.overlap.atm_to_ocean(&mouths_atm);
        for ko in 0..self.ocn_grid.len() {
            if self.sea_mask[ko] {
                st.acc_shared.freshwater.as_mut_slice()[ko] += dt * mouths_ocn.as_slice()[ko];
            }
        }
    }

    /// [`Coupler::route_rivers`] against workspace scratch —
    /// bit-identical (the `_into` forms it calls reset their buffers to
    /// exactly the zeros fresh allocations would hold) and
    /// allocation-free in steady state.
    ///
    /// ```
    /// use foam_coupler::Coupler;
    /// use foam_grid::{AtmGrid, Field2, OceanGrid, World};
    /// use foam_physics::PhysicsConfig;
    ///
    /// let atm_grid = AtmGrid::new(8, 6);
    /// let ocn_grid = OceanGrid::mercator(8, 6, 60.0);
    /// let coupler = Coupler::new(
    ///     atm_grid.clone(),
    ///     ocn_grid.clone(),
    ///     vec![true; ocn_grid.len()],
    ///     &World::earthlike(),
    ///     PhysicsConfig::default(),
    /// );
    /// let sst = Field2::filled(8, 6, 15.0);
    /// let mut st_a = coupler.init_state(&sst, |_| 280.0);
    /// let mut st_b = st_a.clone();
    /// let runoff = vec![1.0e-4; atm_grid.len()];
    ///
    /// coupler.route_rivers(&mut st_a, &runoff, 1800.0);
    /// let mut ws = coupler.workspace();
    /// coupler.route_rivers_ws(&mut st_b, &runoff, 1800.0, &mut ws);
    /// // Bit-identical, including the shared freshwater accumulator:
    /// assert_eq!(st_a.river.volume, st_b.river.volume);
    /// assert_eq!(
    ///     st_a.acc_shared.freshwater.as_slice(),
    ///     st_b.acc_shared.freshwater.as_slice(),
    /// );
    /// ```
    pub fn route_rivers_ws(
        &self,
        st: &mut CouplerState,
        runoff: &[f64],
        dt: f64,
        ws: &mut CouplerWorkspace,
    ) {
        self.river.step_into(
            &mut st.river,
            runoff,
            dt,
            &mut ws.river_outflow,
            &mut ws.mouths_atm,
        );
        self.overlap
            .atm_to_ocean_into(&ws.mouths_atm, &mut ws.mouths_ocn);
        for ko in 0..self.ocn_grid.len() {
            if self.sea_mask[ko] {
                st.acc_shared.freshwater.as_mut_slice()[ko] += dt * ws.mouths_ocn.as_slice()[ko];
            }
        }
    }

    /// Hand the accumulated (time-averaged) forcing to the ocean and
    /// reset the accumulators — serial form (local + shared combined).
    pub fn take_ocean_forcing(&self, st: &mut CouplerState) -> OceanForcing {
        let (mut local, shared) = self.take_ocean_forcing_parts(st);
        local.tau_x.axpy(1.0, &shared.tau_x);
        local.tau_y.axpy(1.0, &shared.tau_y);
        local.heat.axpy(1.0, &shared.heat);
        local.freshwater.axpy(1.0, &shared.freshwater);
        local
    }

    /// Distributed form: returns `(local, shared)`, both time-averaged
    /// over the coupling interval and reset. Sum `local` across the
    /// atmosphere ranks (it holds only this rank's rows' contributions)
    /// and add `shared` (identical on every rank) once.
    pub fn take_ocean_forcing_parts(&self, st: &mut CouplerState) -> (OceanForcing, OceanForcing) {
        let secs = st.acc_seconds.max(1.0);
        st.acc_seconds = 0.0;
        let inv = 1.0 / secs;
        let mut local = std::mem::replace(&mut st.acc, OceanForcing::zeros(&self.ocn_grid));
        local.tau_x.scale(inv);
        local.tau_y.scale(inv);
        local.heat.scale(inv);
        local.freshwater.scale(inv);
        let mut shared = std::mem::replace(&mut st.acc_shared, OceanForcing::zeros(&self.ocn_grid));
        shared.tau_x.scale(inv);
        shared.tau_y.scale(inv);
        shared.heat.scale(inv);
        shared.freshwater.scale(inv);
        // One-shot ice formation/melt freshwater adjustments, spread over
        // the coupling interval (replicated → shared).
        for ko in 0..self.ocn_grid.len() {
            shared.freshwater.as_mut_slice()[ko] += st.fw_oneshot.as_slice()[ko] / secs;
            st.fw_oneshot.as_mut_slice()[ko] = 0.0;
        }
        (local, shared)
    }

    /// Refresh the ice distribution after an ocean call: ice forms where
    /// the SST sits at the clamp, melts where the water has warmed. Books
    /// the paper's 2-m freshwater exchange for formation/melt.
    pub fn update_ice(&self, st: &mut CouplerState, sst: &Field2) {
        for ko in 0..self.ocn_grid.len() {
            if !self.sea_mask[ko] {
                continue;
            }
            let frozen = sst.as_slice()[ko] <= SEAWATER_FREEZE_C + 1.0e-6;
            if frozen && !st.ice[ko] {
                st.ice[ko] = true;
                // Formation: 2 m of water leaves the ocean.
                st.fw_oneshot.as_mut_slice()[ko] -= ICE_FORMATION_WATER * 1000.0;
            } else if !frozen && st.ice[ko] && sst.as_slice()[ko] > SEAWATER_FREEZE_C + 0.5 {
                st.ice[ko] = false;
                // Melt: the water comes back.
                st.fw_oneshot.as_mut_slice()[ko] += ICE_FORMATION_WATER * 1000.0;
            }
        }
    }

    /// Ice fraction of the ocean's sea area (diagnostic).
    pub fn ice_fraction(&self, st: &CouplerState) -> f64 {
        let f: Vec<f64> = st.ice.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        self.ocn_grid.masked_mean(&f, &self.sea_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Coupler, Field2) {
        let world = World::earthlike();
        let atm_grid = AtmGrid::new(24, 16);
        let ocn_grid = OceanGrid::mercator(32, 24, 70.0);
        let sea_mask = world.ocean_sea_mask(&ocn_grid);
        // Initial SST from the climatology.
        let sst = Field2::from_fn(32, 24, |i, j| {
            if sea_mask[ocn_grid.idx(i, j)] {
                world.sst_climatology(ocn_grid.lons[i], ocn_grid.lats[j])
            } else {
                0.0
            }
        });
        let coupler = Coupler::new(
            atm_grid,
            ocn_grid,
            sea_mask,
            &world,
            PhysicsConfig::default(),
        );
        (coupler, sst)
    }

    fn atm_fields(g: &AtmGrid) -> AtmSurfaceFields {
        AtmSurfaceFields {
            t_low: Field2::from_fn(g.nlon, g.nlat, |_i, j| 250.0 + 45.0 * g.lats[j].cos()),
            q_low: Field2::filled(g.nlon, g.nlat, 0.008),
            u_low: Field2::filled(g.nlon, g.nlat, 5.0),
            v_low: Field2::filled(g.nlon, g.nlat, 1.0),
            precip: Field2::filled(g.nlon, g.nlat, 3.0e-5),
            sw_sfc: Field2::filled(g.nlon, g.nlat, 180.0),
            lw_down: Field2::filled(g.nlon, g.nlat, 330.0),
        }
    }

    #[test]
    fn step_produces_finite_surface_everywhere() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let atm = atm_fields(&c.atm_grid);
        let out = c.step(&mut st, &atm, &sst, 1800.0);
        for ka in 0..c.atm_grid.len() {
            assert!(
                out.t_sfc[ka].is_finite() && out.t_sfc[ka] > 150.0,
                "t_sfc[{ka}] = {}",
                out.t_sfc[ka]
            );
            assert!((0.0..=1.0).contains(&out.albedo[ka]));
            assert!(out.fluxes[ka].sensible.is_finite());
        }
    }

    #[test]
    fn ocean_forcing_accumulates_and_averages() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let atm = atm_fields(&c.atm_grid);
        for _ in 0..12 {
            c.step(&mut st, &atm, &sst, 1800.0);
        }
        assert!((st.acc_seconds - 21_600.0).abs() < 1e-9);
        let f = c.take_ocean_forcing(&mut st);
        assert_eq!(st.acc_seconds, 0.0);
        // Wind stress points with the wind over open water.
        let mut saw_sea = false;
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] && !st.ice[ko] && f.tau_x.as_slice()[ko] != 0.0 {
                assert!(f.tau_x.as_slice()[ko] > 0.0, "tau_x against the wind");
                saw_sea = true;
            }
        }
        assert!(saw_sea);
        // Taking again yields zeros.
        let f2 = c.take_ocean_forcing(&mut st);
        assert!(f2.heat.max_abs() == 0.0);
    }

    #[test]
    fn freshwater_into_ocean_is_positive_with_rain_and_rivers() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        // Saturate the buckets so rain becomes runoff feeding rivers.
        for b in st.bucket.iter_mut() {
            b.soil_water = foam_land::hydrology::BUCKET_CAPACITY;
        }
        let mut atm = atm_fields(&c.atm_grid);
        atm.precip.fill(3.0e-4); // heavy rain, little evap
        atm.q_low.fill(0.012);
        // Spin a few days so rivers start delivering.
        let mut f = OceanForcing::zeros(&c.ocn_grid);
        for _d in 0..6 {
            for _ in 0..12 {
                c.step(&mut st, &atm, &sst, 1800.0);
            }
            f = c.take_ocean_forcing(&mut st);
        }
        let mut total_fw = 0.0;
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] {
                total_fw += f.freshwater.as_slice()[ko]
                    * c.ocn_grid.cell_area(ko % c.ocn_grid.nx, ko / c.ocn_grid.nx);
            }
        }
        assert!(total_fw > 0.0, "net freshwater {total_fw} kg/s");
        // Rivers are flowing.
        assert!(c.river.total_storage(&st.river) > 0.0);
    }

    #[test]
    fn warm_sea_cools_heats_atmosphere_consistently() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let mut atm = atm_fields(&c.atm_grid);
        // Make air much colder than the tropical sea.
        atm.t_low.fill(280.0);
        let out = c.step(&mut st, &atm, &sst, 1800.0);
        // Find a fully-sea tropical cell: upward sensible heat.
        let g = &c.atm_grid;
        let mut checked = false;
        for j in 0..g.nlat {
            if g.lats[j].to_degrees().abs() < 15.0 {
                for i in 0..g.nlon {
                    let ka = g.idx(i, j);
                    if c.sea_frac[ka] > 0.999 {
                        assert!(out.fluxes[ka].sensible > 0.0);
                        assert!(out.fluxes[ka].latent > 0.0);
                        checked = true;
                    }
                }
            }
        }
        assert!(checked, "no all-sea tropical cell found");
    }

    #[test]
    fn ice_forms_at_clamp_and_books_freshwater() {
        let (c, mut sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        // Freeze a patch of open water.
        let mut target = None;
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] && !st.ice[ko] {
                target = Some(ko);
                break;
            }
        }
        let ko = target.expect("some open water");
        sst.as_mut_slice()[ko] = SEAWATER_FREEZE_C;
        c.update_ice(&mut st, &sst);
        assert!(st.ice[ko]);
        assert!(
            st.fw_oneshot.as_slice()[ko] < 0.0,
            "formation must remove water"
        );
        // Melt it again.
        sst.as_mut_slice()[ko] = 2.0;
        c.update_ice(&mut st, &sst);
        assert!(!st.ice[ko]);
        assert!(
            st.fw_oneshot.as_slice()[ko].abs() < 1e-9,
            "melt must return the water"
        );
    }

    #[test]
    fn ice_reduces_stress_reaching_ocean() {
        let (c, mut sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let atm = atm_fields(&c.atm_grid);
        // Pick an open-water cell; record stress, then freeze it.
        c.step(&mut st, &atm, &sst, 1800.0);
        let f_open = c.take_ocean_forcing(&mut st);
        // Freeze everything.
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] {
                sst.as_mut_slice()[ko] = SEAWATER_FREEZE_C;
            }
        }
        c.update_ice(&mut st, &sst);
        c.step(&mut st, &atm, &sst, 1800.0);
        let f_ice = c.take_ocean_forcing(&mut st);
        let mut checked = 0;
        for ko in 0..c.ocn_grid.len() {
            if c.sea_mask[ko] && f_open.tau_x.as_slice()[ko] > 1e-6 {
                let ratio = f_ice.tau_x.as_slice()[ko] / f_open.tau_x.as_slice()[ko];
                assert!(ratio < 0.2, "ice stress ratio {ratio} at {ko}");
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn snow_raises_albedo() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let atm = atm_fields(&c.atm_grid);
        // Find a land cell and give it snow.
        // A non-ice land cell (ice is already brighter than snow).
        let ka = (0..c.atm_grid.len())
            .find(|&k| c.land[k] && c.sea_frac[k] < 1e-6 && c.soil_type[k] != 4)
            .expect("an all-land, non-ice cell");
        let before = c.step(&mut st, &atm, &sst, 1800.0).albedo[ka];
        st.bucket[ka].snow = 0.2;
        let after = c.step(&mut st, &atm, &sst, 1800.0).albedo[ka];
        assert!(after > before + 0.2, "snow albedo: {before} -> {after}");
    }

    #[test]
    fn evaporation_and_latent_flux_consistent_in_blend() {
        let (c, sst) = setup();
        let mut st = c.init_state(&sst, |lat| 250.0 + 45.0 * lat.cos());
        let atm = atm_fields(&c.atm_grid);
        let out = c.step(&mut st, &atm, &sst, 1800.0);
        for ka in 0..c.atm_grid.len() {
            let f = &out.fluxes[ka];
            if f.evaporation.abs() > 1e-12 {
                let l = f.latent / f.evaporation;
                assert!((l / foam_grid::constants::L_VAP - 1.0).abs() < 1e-9);
            }
        }
    }
}
