//! A multi-tenant, priority + fair-share job queue.
//!
//! [`scheduler::execute`](crate::scheduler::execute) is a *static*
//! pool: the full job list is known up front, dealt once, and drained.
//! A long-lived service needs the dynamic generalization — jobs arrive
//! over time, from different tenants, with different priorities, and a
//! greedy FIFO would let one chatty tenant starve everyone else. The
//! [`FairShareQueue`] keeps the same worker-facing shape (a pool of OS
//! threads looping on "give me the next job") while making dispatch
//! **fair across tenants and prioritized within each**:
//!
//! 1. **Fair share across tenants.** A pop serves the tenant with the
//!    fewest jobs *currently running* (completions reported via
//!    [`FairShareQueue::complete`]). Among tied tenants, the one whose
//!    oldest pending job arrived first wins — which round-robins tied
//!    tenants instead of alphabetizing them.
//! 2. **Priority, then FIFO, within a tenant.** Higher
//!    [`priority`](FairShareQueue::submit) first; equal priorities in
//!    submission order.
//!
//! Selection is a pure function of queue state, so any replay of the
//! same submission/completion sequence dispatches identically; what
//! *varies* across runs is only which worker thread performs a pop,
//! which the service layer makes harmless the same way the ensemble
//! does — results keyed by job identity, never by worker or timing.
//!
//! Built on `std::sync::{Mutex, Condvar}`; [`FairShareQueue::pop`]
//! blocks workers when idle and [`FairShareQueue::close`] releases
//! them for shutdown.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// One queued job: dispatch metadata plus the payload.
#[derive(Debug)]
struct Entry<T> {
    priority: i32,
    seq: u64,
    job: T,
}

#[derive(Debug)]
struct State<T> {
    /// Pending jobs per tenant. `BTreeMap` so state dumps and tie
    /// scans are deterministically ordered.
    pending: BTreeMap<String, Vec<Entry<T>>>,
    /// Jobs handed to a worker and not yet [`complete`]d, per tenant.
    running: BTreeMap<String, usize>,
    /// Monotone submission counter (the FIFO axis).
    seq: u64,
    closed: bool,
}

/// A blocking multi-tenant job queue; see the module docs for the
/// dispatch policy.
///
/// ```
/// use foam_ensemble::FairShareQueue;
///
/// let q: FairShareQueue<&str> = FairShareQueue::new();
/// q.submit("alice", 0, "a-first");
/// q.submit("bob", 0, "b-first");
/// q.submit("alice", 5, "a-urgent");
/// // Alice's urgent job beats her earlier one; Bob interleaves fairly.
/// let (t, job) = q.pop().unwrap();
/// assert_eq!((t.as_str(), job), ("alice", "a-urgent"));
/// let (t, job) = q.pop().unwrap();
/// assert_eq!((t.as_str(), job), ("bob", "b-first"));
/// q.close();
/// ```
#[derive(Debug)]
pub struct FairShareQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Default for FairShareQueue<T> {
    fn default() -> Self {
        FairShareQueue::new()
    }
}

impl<T> FairShareQueue<T> {
    pub fn new() -> Self {
        FairShareQueue {
            state: Mutex::new(State {
                pending: BTreeMap::new(),
                running: BTreeMap::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue `job` for `tenant`. Higher `priority` dispatches first
    /// within the tenant; ties dispatch in submission order.
    /// Submissions to a closed queue are dropped (the service is
    /// shutting down; persistent job state lives on disk, not here).
    pub fn submit(&self, tenant: &str, priority: i32, job: T) {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if st.closed {
            return;
        }
        let seq = st.seq;
        st.seq += 1;
        st.pending
            .entry(tenant.to_string())
            .or_default()
            .push(Entry { priority, seq, job });
        drop(st);
        self.ready.notify_one();
    }

    /// Block until a job is available (or the queue closes), then
    /// dispatch the fair-share pick: `(tenant, job)`. The job counts
    /// against the tenant's running share until the caller reports
    /// [`complete`](FairShareQueue::complete). Returns `None` once the
    /// queue is closed — remaining pending jobs are abandoned to their
    /// durable representation.
    pub fn pop(&self) -> Option<(String, T)> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if st.closed {
                return None;
            }
            if let Some(tenant) = pick_tenant(&st) {
                let entries = st.pending.get_mut(&tenant).expect("picked tenant pending");
                // Best entry: highest priority, then earliest seq.
                let best = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (-e.priority, e.seq))
                    .map(|(i, _)| i)
                    .expect("picked tenant has entries");
                let entry = entries.swap_remove(best);
                if entries.is_empty() {
                    st.pending.remove(&tenant);
                }
                *st.running.entry(tenant.clone()).or_insert(0) += 1;
                return Some((tenant, entry.job));
            }
            st = self.ready.wait(st).expect("queue lock poisoned");
        }
    }

    /// Report that a job previously popped for `tenant` finished
    /// (successfully or not), releasing its share so the tenant
    /// competes fairly for the next slot.
    pub fn complete(&self, tenant: &str) {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if let Some(n) = st.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.running.remove(tenant);
            }
        }
        drop(st);
        // A freed share can make a previously over-quota tenant
        // eligible, so wake a waiter to re-evaluate.
        self.ready.notify_one();
    }

    /// Close the queue: blocked and future [`pop`](FairShareQueue::pop)
    /// calls return `None`, and new submissions are dropped.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs waiting for dispatch (excludes running jobs).
    pub fn len(&self) -> usize {
        let st = self.state.lock().expect("queue lock poisoned");
        st.pending.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The fair-share pick: among tenants with pending work, the fewest
/// running jobs; ties broken by whose oldest pending job arrived first.
fn pick_tenant<T>(st: &State<T>) -> Option<String> {
    st.pending
        .iter()
        .filter(|(_, entries)| !entries.is_empty())
        .min_by_key(|(tenant, entries)| {
            let running = st.running.get(*tenant).copied().unwrap_or(0);
            let oldest = entries.iter().map(|e| e.seq).min().unwrap_or(u64::MAX);
            (running, oldest)
        })
        .map(|(tenant, _)| tenant.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn priority_then_fifo_within_a_tenant() {
        let q: FairShareQueue<u32> = FairShareQueue::new();
        q.submit("t", 0, 1);
        q.submit("t", 0, 2);
        q.submit("t", 9, 3);
        q.submit("t", 9, 4);
        let order: Vec<u32> = (0..4).map(|_| q.pop().unwrap().1).collect();
        assert_eq!(order, vec![3, 4, 1, 2]);
    }

    #[test]
    fn fair_share_prefers_the_tenant_with_the_fewest_running_jobs() {
        let q: FairShareQueue<&str> = FairShareQueue::new();
        q.submit("a", 0, "a1");
        q.submit("a", 0, "a2");
        q.submit("b", 0, "b1");
        // Equal running shares: earliest pending wins → a1.
        assert_eq!(q.pop().unwrap(), ("a".to_string(), "a1"));
        // "a" now runs one job, so "b" is preferred despite arriving later.
        assert_eq!(q.pop().unwrap(), ("b".to_string(), "b1"));
        assert_eq!(q.pop().unwrap(), ("a".to_string(), "a2"));
    }

    #[test]
    fn completion_releases_a_tenants_share() {
        let q: FairShareQueue<&str> = FairShareQueue::new();
        q.submit("a", 0, "a1");
        assert_eq!(q.pop().unwrap().1, "a1");
        q.submit("a", 0, "a2");
        q.submit("b", 0, "b1");
        // With a1 still running, "b" goes first...
        assert_eq!(q.pop().unwrap().1, "b1");
        q.complete("a");
        q.complete("b");
        // ...and once both complete, "a" is eligible again.
        q.submit("b", 0, "b2");
        assert_eq!(q.pop().unwrap().1, "a2");
        assert_eq!(q.pop().unwrap().1, "b2");
    }

    #[test]
    fn pop_blocks_until_submit_and_close_releases_waiters() {
        let q: Arc<FairShareQueue<u8>> = Arc::new(FairShareQueue::new());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        q.submit("t", 0, 7);
        assert_eq!(popper.join().unwrap(), Some(("t".to_string(), 7)));

        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
        // Closed queue drops new submissions and keeps returning None.
        q.submit("t", 0, 8);
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_workers_drain_everything_exactly_once() {
        let q: Arc<FairShareQueue<usize>> = Arc::new(FairShareQueue::new());
        let n = 64;
        for i in 0..n {
            q.submit(if i % 3 == 0 { "a" } else { "b" }, (i % 5) as i32, i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((tenant, job)) = q.pop() {
                    got.push(job);
                    q.complete(&tenant);
                    if q.is_empty() {
                        q.close(); // release the other workers
                    }
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
