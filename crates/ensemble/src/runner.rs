//! Execution of an [`EnsembleSpec`]: the work-stealing pool, the
//! per-member retry loop, and the final reduction into an
//! [`EnsembleReport`].

use std::time::Instant;

use foam::supervisor::{supervise_run, SupervisorConfig};
use foam::{Backoff, CoupledError, CoupledOutput};
use foam_grid::Field2;
use foam_telemetry::TelemetryReport;

use crate::report::EnsembleReport;
use crate::scheduler;
use crate::spec::{EnsembleSpec, MemberSpec};
use crate::EnsembleError;

/// The deterministic science output of one completed member — the
/// subset of [`foam::CoupledOutput`] the ensemble keeps (plus the
/// member's wall-clock speedup and telemetry, which are *not* part of
/// the deterministic report).
#[derive(Debug, Clone)]
pub struct MemberOutput {
    /// Area-mean SST after each coupling interval \[°C\].
    pub mean_sst_series: Vec<f64>,
    /// SST field at the end of the run (ocean grid).
    pub final_sst: Field2,
    /// Sea-ice fraction of the ocean area at the end.
    pub ice_fraction: f64,
    /// Simulated span \[s\].
    pub sim_seconds: f64,
    /// The member's own model speedup (wall-clock; excluded from the
    /// deterministic report).
    pub model_speedup: f64,
    /// The member's telemetry report, when collection was enabled.
    pub telemetry: Option<TelemetryReport>,
}

impl From<CoupledOutput> for MemberOutput {
    fn from(out: CoupledOutput) -> Self {
        MemberOutput {
            mean_sst_series: out.mean_sst_series,
            final_sst: out.final_sst,
            ice_fraction: out.ice_fraction,
            sim_seconds: out.sim_seconds,
            model_speedup: out.model_speedup,
            telemetry: out.telemetry,
        }
    }
}

/// What happened to one member: its spec, how many times it was
/// retried, and either its output or the error that exhausted the
/// retry budget.
#[derive(Debug, Clone)]
pub struct MemberRecord {
    pub spec: MemberSpec,
    /// Retries consumed (0 = succeeded first try; a nonzero value with
    /// `result: Ok` means the member *recovered*).
    pub retries: u32,
    pub result: Result<MemberOutput, CoupledError>,
}

impl MemberRecord {
    /// Convenience view of a successful output.
    pub fn output(&self) -> Option<&MemberOutput> {
        self.result.as_ref().ok()
    }
}

/// Everything an ensemble run produced. `report` is the deterministic
/// part (byte-identical across worker counts and submission orders);
/// the rest carries wall-clock information.
#[derive(Debug)]
pub struct EnsembleOutput {
    /// Per-member records, sorted by member id.
    pub members: Vec<MemberRecord>,
    /// The deterministic `foam-ensemble/1` aggregate report.
    pub report: EnsembleReport,
    /// All successful members' telemetry merged into one cross-member
    /// report (wall-clock; `None` when no member carried telemetry).
    pub merged_telemetry: Option<TelemetryReport>,
    /// Wall-clock span of the whole ensemble \[s\].
    pub wall_seconds: f64,
}

/// Execute the ensemble: validate the spec, prepare the output
/// directory, run every member across the work-stealing pool (retrying
/// failures per the spec's [`crate::RetryPolicy`]), and reduce the
/// results into the deterministic aggregate report.
///
/// Member failures do not fail the ensemble — they are recorded on the
/// member's [`MemberRecord`] and marked `failed` in the report. Only an
/// unusable spec or output directory returns an [`EnsembleError`].
pub fn run_ensemble(spec: &EnsembleSpec) -> Result<EnsembleOutput, EnsembleError> {
    spec.validate()?;
    if let Some(dir) = &spec.output_dir {
        std::fs::create_dir_all(dir).map_err(|e| EnsembleError::OutputDir {
            path: dir.clone(),
            error: e.to_string(),
        })?;
    }

    let start = Instant::now();
    // Job index = position in the spec's member list (the submission
    // order); the scheduler's slot-indexed results make worker count
    // and completion order invisible downstream.
    let order: Vec<usize> = (0..spec.members.len()).collect();
    let results = scheduler::execute(&order, spec.members.len(), spec.workers, |i| {
        run_member(spec, &spec.members[i])
    });

    let mut members: Vec<MemberRecord> = results
        .into_iter()
        .map(|r| r.expect("scheduler filled every submitted slot"))
        .collect();
    // Aggregation walks members in id order — never completion order.
    members.sort_by_key(|r| r.spec.id);

    let report = EnsembleReport::build(spec, &members);
    let merged_telemetry = TelemetryReport::merged(
        members
            .iter()
            .filter_map(|r| r.output()?.telemetry.as_ref()),
    );

    Ok(EnsembleOutput {
        members,
        report,
        merged_telemetry,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Run one member under the run supervisor
/// ([`foam::supervisor::supervise_run`]) to completion or recovery
/// exhaustion.
///
/// The member always starts from a clean checkpoint store (stale
/// snapshots from a previous ensemble in the same directory must not
/// leak into this one). The spec's [`crate::RetryPolicy`] maps onto the
/// supervisor's budget: `max_retries` bounds the rollback-and-resume
/// attempts and the backoff knobs pace them. The supervisor classifies
/// each failure, disarms the injected fault class that fired (the
/// transient-fault model), rolls back to the member's newest committed
/// snapshot, and resumes — periodic snapshots lie on the failure-free
/// trajectory, so a recovered member's output is bit-identical to an
/// unfaulted member's.
fn run_member(spec: &EnsembleSpec, m: &MemberSpec) -> MemberRecord {
    let cfg = spec.member_config(m);
    if let Some(dir) = &cfg.ckpt.dir {
        // Ensemble-owned scratch: clear it so the supervisor's rollback
        // can only ever see snapshots from *this* member run.
        let _ = std::fs::remove_dir_all(dir);
    }

    let sup = SupervisorConfig {
        max_recoveries: spec.retry.max_retries,
        backoff: Backoff::capped(spec.retry.backoff_secs, spec.retry.backoff_max_secs),
    };
    match supervise_run(&cfg, spec.days, &sup) {
        Ok(out) => MemberRecord {
            spec: m.clone(),
            retries: out.recovery.rollbacks() as u32,
            result: Ok(MemberOutput::from(out.output)),
        },
        Err(e) => MemberRecord {
            spec: m.clone(),
            retries: e.recovery.rollbacks() as u32,
            result: Err(e.last_error),
        },
    }
}
