//! Deterministic work-stealing execution of independent jobs.
//!
//! The scheduler runs `n` independent jobs (ensemble members, here)
//! across a pool of OS worker threads. Jobs are dealt round-robin onto
//! per-worker deques in submission order; each worker pops from the
//! front of its own deque and, when empty, steals from the *back* of a
//! sibling's. Which worker executes which job — and in what order —
//! therefore depends on timing, but the *results* do not: every job's
//! output lands in the slot keyed by its job index, so
//! [`execute`] returns the same `Vec` for any worker count and any
//! interleaving. That slot-indexed result vector is the foundation of
//! the ensemble's byte-identical-report guarantee.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Run `f(job)` for every job index in `order` across `workers` OS
/// threads, returning results indexed by job id (`0..n_slots`).
///
/// * `order` — job indices in submission order (dealt round-robin onto
///   the worker deques). Indices must be unique and `< n_slots`.
/// * `n_slots` — length of the result vector; slots whose index never
///   appears in `order` stay `None`.
/// * `workers` — worker threads (clamped to at least 1; spawning more
///   workers than jobs is allowed, the extras find nothing to steal).
///
/// `f` runs on the worker threads, so it must be `Sync` (shared by
/// reference) and the results `Send`.
///
/// ```
/// let results = foam_ensemble::scheduler::execute(&[2, 0, 1], 3, 2, |job| job * 10);
/// assert_eq!(results, vec![Some(0), Some(10), Some(20)]);
/// ```
///
/// # Panics
///
/// Panics if a job index repeats or is out of range, or if a job
/// panics (the panic is propagated by `std::thread::scope`).
pub fn execute<T, F>(order: &[usize], n_slots: usize, workers: usize, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1);

    // Deal jobs round-robin onto the worker deques in submission
    // order. Worker w's own work is thus deterministic; only *stolen*
    // work depends on timing.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                order
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(workers)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    // Result slots, keyed by job index. Each slot is written at most
    // once (job indices are unique), so a Mutex per slot is contention
    // free; it exists to make the sharing safe, not to serialize.
    let slots: Vec<Mutex<Option<T>>> = (0..n_slots).map(|_| Mutex::new(None)).collect();
    let remaining = AtomicUsize::new(order.len());

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let remaining = &remaining;
            let f = &f;
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back) —
                    // scanning siblings from the next worker around.
                    // The own-deque guard must drop before stealing:
                    // holding it while locking a sibling's deque is a
                    // circular wait when two workers go idle at once.
                    let own = deques[w].lock().pop_front();
                    let job = own.or_else(|| {
                        (1..workers).find_map(|d| deques[(w + d) % workers].lock().pop_back())
                    });
                    match job {
                        Some(job) => {
                            let result = f(job);
                            let mut slot = slots[job].lock();
                            assert!(slot.is_none(), "job index {job} executed twice");
                            *slot = Some(result);
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                        // All deques empty. Jobs are never re-enqueued,
                        // so empty-everywhere means every job has been
                        // *claimed*; workers still finishing theirs
                        // write into their own slots, which this worker
                        // no longer touches. Safe to exit.
                        None => break,
                    }
                }
            });
        }
    });

    assert_eq!(
        remaining.load(Ordering::Acquire),
        0,
        "scheduler exited with unexecuted jobs"
    );
    slots.into_iter().map(|s| s.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_slot_indexed_for_any_worker_count() {
        let order: Vec<usize> = (0..17).rev().collect();
        let expect: Vec<Option<usize>> = (0..17).map(|i| Some(i * i)).collect();
        for workers in [1, 2, 3, 8, 32] {
            let got = execute(&order, 17, workers, |job| job * job);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn sparse_orders_leave_unsubmitted_slots_empty() {
        let got = execute(&[3, 1], 5, 2, |job| job);
        assert_eq!(got, vec![None, Some(1), None, Some(3), None]);
    }

    #[test]
    fn uneven_job_durations_still_fill_every_slot() {
        // Long and short jobs interleaved: stealing must redistribute.
        let order: Vec<usize> = (0..12).collect();
        let got = execute(&order, 12, 4, |job| {
            if job % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            job + 100
        });
        for (i, slot) in got.iter().enumerate() {
            assert_eq!(*slot, Some(i + 100));
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let got: Vec<Option<u8>> = execute(&[], 0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }
}
