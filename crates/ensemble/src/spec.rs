//! What an ensemble *is*: a base configuration plus per-member
//! perturbations, a worker pool size, a retry policy, and an optional
//! output directory for per-member checkpoint stores.

use std::path::PathBuf;

use foam::{CkptConfig, FoamConfig, TelemetryConfig};
use foam_ckpt::CheckpointStore;
use foam_mpi::FaultPlan;

use crate::EnsembleError;

/// Bounded-backoff retry policy for members that fail with a
/// retryable [`foam::CoupledError`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries per member before it is marked failed (`0` disables
    /// retries entirely).
    pub max_retries: u32,
    /// Base pause before the first retry \[s\]; doubles per attempt.
    pub backoff_secs: f64,
    /// Ceiling on the per-attempt backoff \[s\].
    pub backoff_max_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_secs: 0.05,
            backoff_max_secs: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): exponential from
    /// [`backoff_secs`](RetryPolicy::backoff_secs), capped. Delegates
    /// to the shared deterministic [`foam_mpi::Backoff`] schedule —
    /// the same one the driver's exchange retries and the run
    /// supervisor use.
    pub fn backoff_for(&self, retry: u32) -> std::time::Duration {
        foam_mpi::Backoff::capped(self.backoff_secs, self.backoff_max_secs).delay(retry)
    }
}

/// A scalar physics parameter a member (or a scenario sweep axis) sets
/// to an absolute value, overriding the base configuration.
///
/// Unlike [`MemberSpec::ocean_slowdown_scale`] these are *absolute*
/// settings, not multipliers: a solar-constant sweep says "member k
/// runs at scale 1.002", not "scale the base by x". That is what a
/// scenario's `[sweep]` section lowers to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamOverride {
    /// Solar-constant multiplier (`atm.physics.rad.solar_scale`).
    SolarScale(f64),
    /// CO₂ concentration factor (`atm.physics.rad.co2_factor`).
    Co2Factor(f64),
    /// Stratospheric aerosol optical depth (`atm.physics.rad.aerosol_od`).
    AerosolOd(f64),
    /// Axial tilt in degrees (`atm.physics.obliquity_deg`).
    ObliquityDeg(f64),
}

impl ParamOverride {
    /// Apply the override to `cfg` in place.
    pub fn apply(self, cfg: &mut FoamConfig) {
        match self {
            ParamOverride::SolarScale(v) => cfg.atm.physics.rad.solar_scale = v,
            ParamOverride::Co2Factor(v) => cfg.atm.physics.rad.co2_factor = v,
            ParamOverride::AerosolOd(v) => cfg.atm.physics.rad.aerosol_od = v,
            ParamOverride::ObliquityDeg(v) => cfg.atm.physics.obliquity_deg = v,
        }
    }

    /// The overridden value (for reports and range checks).
    pub fn value(self) -> f64 {
        match self {
            ParamOverride::SolarScale(v)
            | ParamOverride::Co2Factor(v)
            | ParamOverride::AerosolOd(v)
            | ParamOverride::ObliquityDeg(v) => v,
        }
    }

    /// The name of the knob (for reports and error messages).
    pub fn name(self) -> &'static str {
        match self {
            ParamOverride::SolarScale(_) => "solar_scale",
            ParamOverride::Co2Factor(_) => "co2_factor",
            ParamOverride::AerosolOd(_) => "aerosol_od",
            ParamOverride::ObliquityDeg(_) => "obliquity_deg",
        }
    }
}

/// One ensemble member: an id (keys its checkpoint root and its report
/// entry) plus the perturbations applied on top of the base config.
#[derive(Debug, Clone)]
pub struct MemberSpec {
    /// Unique member id (0-based by convention).
    pub id: usize,
    /// Seed for the atmosphere's initial-condition perturbation — the
    /// classic ensemble-generation knob.
    pub seed: u64,
    /// Multiplier on the ocean's slowdown factor (parameter
    /// perturbation; `1.0` leaves the base value).
    pub ocean_slowdown_scale: f64,
    /// Absolute parameter settings for this member (sweep axes).
    /// Applied in order after the multiplicative perturbations, so a
    /// later override of the same knob wins.
    pub overrides: Vec<ParamOverride>,
    /// Fault plan injected into *this member's* runtime (testing and
    /// recovery demos: kill one member mid-run and watch it resume).
    pub fault_plan: Option<FaultPlan>,
}

impl MemberSpec {
    /// A member that only perturbs the seed.
    pub fn new(id: usize, seed: u64) -> Self {
        MemberSpec {
            id,
            seed,
            ocean_slowdown_scale: 1.0,
            overrides: Vec::new(),
            fault_plan: None,
        }
    }
}

/// Full description of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleSpec {
    /// Configuration every member starts from.
    pub base: FoamConfig,
    /// Simulated days each member integrates.
    pub days: f64,
    /// The members (ids must be unique).
    pub members: Vec<MemberSpec>,
    /// OS worker threads executing members (each member itself runs an
    /// SPMD job of `base.n_ranks()` rank threads).
    pub workers: usize,
    /// Retry policy for members that fail with a retryable error.
    pub retry: RetryPolicy,
    /// Root directory for per-member checkpoint stores
    /// (`<dir>/member-0003/...`). `None` disables checkpointing; failed
    /// members are then retried from scratch instead of resumed.
    pub output_dir: Option<PathBuf>,
    /// Checkpoint cadence in coupling intervals (used only when
    /// `output_dir` is set).
    pub ckpt_interval: usize,
}

impl EnsembleSpec {
    /// The canonical perturbed-initial-condition ensemble: `n` members
    /// whose seeds are `base.atm.seed + id`, two workers, default retry
    /// policy, no checkpointing.
    pub fn seed_sweep(base: FoamConfig, days: f64, n: usize) -> Self {
        let seed0 = base.atm.seed;
        EnsembleSpec {
            base,
            days,
            members: (0..n)
                .map(|id| MemberSpec::new(id, seed0 + id as u64))
                .collect(),
            workers: 2,
            retry: RetryPolicy::default(),
            output_dir: None,
            ckpt_interval: 4,
        }
    }

    /// Check the spec before any member starts: members exist and have
    /// unique ids, the pool is non-empty, the day count and backoffs
    /// are sane, and every member's derived configuration validates.
    pub fn validate(&self) -> Result<(), EnsembleError> {
        if self.members.is_empty() {
            return Err(EnsembleError::NoMembers);
        }
        if self.workers == 0 {
            return Err(EnsembleError::NoWorkers);
        }
        if !(self.days > 0.0 && self.days.is_finite()) {
            return Err(EnsembleError::NonPositive {
                what: "days",
                value: self.days,
            });
        }
        if !(self.retry.backoff_secs >= 0.0 && self.retry.backoff_secs.is_finite()) {
            return Err(EnsembleError::NonPositive {
                what: "retry.backoff_secs",
                value: self.retry.backoff_secs,
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for m in &self.members {
            if !seen.insert(m.id) {
                return Err(EnsembleError::DuplicateMemberId(m.id));
            }
            if !(m.ocean_slowdown_scale > 0.0 && m.ocean_slowdown_scale.is_finite()) {
                return Err(EnsembleError::NonPositive {
                    what: "ocean_slowdown_scale",
                    value: m.ocean_slowdown_scale,
                });
            }
            self.member_config(m)
                .validate()
                .map_err(|e| EnsembleError::Member {
                    id: m.id,
                    error: e.into(),
                })?;
        }
        Ok(())
    }

    /// The full [`FoamConfig`] member `m` runs with: the base config
    /// with the member's perturbations applied, telemetry collection
    /// forced on (the ensemble aggregates it), and — when the ensemble
    /// has an output directory — a per-member checkpoint store with
    /// **periodic snapshots only**: emergency snapshots record a stale
    /// SST and lie off the failure-free trajectory, which would break
    /// the bit-identical-resume guarantee the report's determinism
    /// rests on.
    pub fn member_config(&self, m: &MemberSpec) -> FoamConfig {
        let mut cfg = self.base.clone();
        cfg.atm.seed = m.seed;
        cfg.ocean.slowdown *= m.ocean_slowdown_scale;
        for ov in &m.overrides {
            ov.apply(&mut cfg);
        }
        cfg.runtime.fault_plan = m.fault_plan.clone();
        cfg.telemetry = TelemetryConfig {
            enabled: true,
            // Per-member report paths would collide; the ensemble writes
            // one aggregate report instead.
            path: None,
        };
        cfg.ckpt = match &self.output_dir {
            Some(dir) => CkptConfig {
                dir: Some(CheckpointStore::member_root(dir, m.id)),
                interval: self.ckpt_interval,
                keep: 2,
                on_error: false,
                fault_plan: None,
            },
            None => CkptConfig::default(),
        };
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_sweep_perturbs_seeds_only() {
        let spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(7), 2.0, 3);
        assert_eq!(spec.members.len(), 3);
        assert_eq!(spec.members[2].seed, 9);
        let cfg = spec.member_config(&spec.members[2]);
        assert_eq!(cfg.atm.seed, 9);
        assert_eq!(cfg.ocean.slowdown, spec.base.ocean.slowdown);
        assert!(cfg.telemetry.collect());
        assert!(cfg.ckpt.dir.is_none());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn member_config_roots_checkpoints_per_member() {
        let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(1), 1.0, 2);
        spec.output_dir = Some(std::env::temp_dir().join("foam-ensemble-spec-test"));
        let c0 = spec.member_config(&spec.members[0]);
        let c1 = spec.member_config(&spec.members[1]);
        assert_ne!(c0.ckpt.dir, c1.ckpt.dir);
        assert!(c0.ckpt.dir.unwrap().ends_with("member-0000"));
        assert!(!c1.ckpt.on_error, "emergency snapshots must stay off");
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let base = FoamConfig::tiny(1);
        let mut spec = EnsembleSpec::seed_sweep(base.clone(), 1.0, 0);
        assert_eq!(spec.validate(), Err(EnsembleError::NoMembers));

        spec = EnsembleSpec::seed_sweep(base.clone(), 1.0, 2);
        spec.workers = 0;
        assert_eq!(spec.validate(), Err(EnsembleError::NoWorkers));

        spec = EnsembleSpec::seed_sweep(base.clone(), 0.0, 2);
        assert!(matches!(
            spec.validate(),
            Err(EnsembleError::NonPositive { what: "days", .. })
        ));

        spec = EnsembleSpec::seed_sweep(base.clone(), 1.0, 2);
        spec.members[1].id = 0;
        assert_eq!(spec.validate(), Err(EnsembleError::DuplicateMemberId(0)));

        spec = EnsembleSpec::seed_sweep(base.clone(), 1.0, 2);
        spec.members[0].ocean_slowdown_scale = -1.0;
        assert!(matches!(
            spec.validate(),
            Err(EnsembleError::NonPositive {
                what: "ocean_slowdown_scale",
                ..
            })
        ));

        // An invalid derived member config is caught up front, typed.
        spec = EnsembleSpec::seed_sweep(base, 1.0, 2);
        spec.base.atm.dt = 0.0;
        assert!(matches!(
            spec.validate(),
            Err(EnsembleError::Member { id: 0, .. })
        ));
    }

    #[test]
    fn overrides_set_absolute_values_and_are_validated() {
        let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(3), 1.0, 2);
        spec.members[1].overrides = vec![
            ParamOverride::SolarScale(1.01),
            ParamOverride::ObliquityDeg(24.5),
        ];
        let c0 = spec.member_config(&spec.members[0]);
        let c1 = spec.member_config(&spec.members[1]);
        assert_eq!(c0.atm.physics.rad.solar_scale, 1.0);
        assert_eq!(c1.atm.physics.rad.solar_scale, 1.01);
        assert_eq!(c1.atm.physics.obliquity_deg, 24.5);
        assert!(spec.validate().is_ok());

        // Out-of-envelope overrides are caught up front, typed per member.
        spec.members[1].overrides = vec![ParamOverride::SolarScale(3.0)];
        assert!(matches!(
            spec.validate(),
            Err(EnsembleError::Member { id: 1, .. })
        ));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_secs: 0.1,
            backoff_max_secs: 0.35,
        };
        assert_eq!(p.backoff_for(1).as_secs_f64(), 0.1);
        assert_eq!(p.backoff_for(2).as_secs_f64(), 0.2);
        assert_eq!(p.backoff_for(3).as_secs_f64(), 0.35, "capped");
        assert_eq!(p.backoff_for(60).as_secs_f64(), 0.35, "shift clamped");
    }
}
