//! The deterministic `foam-ensemble/1` aggregate report.
//!
//! Everything in this module is **byte-identical** across worker counts
//! and member submission orders. That property is engineered, not
//! accidental:
//!
//! * aggregation walks members in member-id order (the runner sorts);
//! * every value in the report is a pure function of member *science*
//!   output — wall-clock quantities (speedups, phase seconds) and
//!   timing-sensitive counters (`comm.*`, `coupler.sst_retries`, which
//!   move under spurious retry traffic) are excluded;
//! * serialization rides on `BTreeMap`-ordered
//!   [`foam_telemetry::json::Value`], whose `f64` formatting
//!   round-trips bits.

use std::collections::BTreeMap;
use std::path::Path;

use foam_grid::{OceanGrid, World};
use foam_ocean::OceanModel;
use foam_stats::{ensemble_mean, ensemble_mean_field, ensemble_spread, FieldStats};
use foam_telemetry::json::Value;

use crate::runner::MemberRecord;
use crate::spec::EnsembleSpec;

/// Schema identifier carried in the report's `schema` field.
pub const SCHEMA: &str = "foam-ensemble/1";

/// The deterministic per-member slice of the report.
#[derive(Debug, Clone)]
pub struct MemberDigest {
    pub id: usize,
    pub seed: u64,
    /// `"ok"` or `"failed"`.
    pub status: &'static str,
    /// Retries consumed (nonzero with status `"ok"` = recovered).
    pub retries: u32,
    /// Display form of the terminal error, for failed members.
    pub error: Option<String>,
    /// Area-mean SST after the last coupling interval \[°C\].
    pub final_mean_sst: Option<f64>,
    /// Time mean of the member's SST series \[°C\].
    pub series_mean: Option<f64>,
    /// Sea-ice fraction at the end of the run.
    pub ice_fraction: Option<f64>,
    /// Final-SST pattern statistics against the ensemble-mean final SST
    /// (area-weighted over sea points; needs ≥ 2 completed members).
    pub pattern_vs_ensemble_mean: Option<FieldStats>,
    /// Phase *call counts* from the member's telemetry (deterministic,
    /// unlike phase seconds). For a member that recovered after a
    /// fault, these describe the final (resumed) attempt — the failed
    /// attempt's telemetry dies with it.
    pub phase_calls: BTreeMap<String, u64>,
    /// Deterministic counters: algorithmic event counts, with the
    /// timing-sensitive `comm.*` family and `coupler.sst_retries`
    /// filtered out.
    pub counters: BTreeMap<String, u64>,
}

/// The full aggregate report.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    /// Simulated days per member.
    pub days: f64,
    /// Members completed / failed after retries.
    pub n_ok: usize,
    pub n_failed: usize,
    /// Total retries consumed across the ensemble.
    pub total_retries: u64,
    /// Ensemble mean of the members' SST series, per coupling interval.
    pub sst_mean_series: Vec<f64>,
    /// Ensemble spread (population σ) of the SST series.
    pub sst_spread_series: Vec<f64>,
    /// Per-member digests, in member-id order.
    pub members: Vec<MemberDigest>,
}

impl EnsembleReport {
    /// Reduce id-sorted member records into the report. Failed members
    /// are included (marked `"failed"`, with the error's display form)
    /// but excluded from the ensemble statistics.
    pub fn build(spec: &EnsembleSpec, members: &[MemberRecord]) -> EnsembleReport {
        debug_assert!(
            members.windows(2).all(|w| w[0].spec.id < w[1].spec.id),
            "records must arrive in member-id order"
        );
        let ok: Vec<&MemberRecord> = members.iter().filter(|r| r.result.is_ok()).collect();

        let series: Vec<Vec<f64>> = ok
            .iter()
            .filter_map(|r| Some(r.output()?.mean_sst_series.clone()))
            .collect();
        // The reductions only fail on zero members (excluded by the
        // branch) or mismatched lengths, which same-day members cannot
        // produce; an empty series is the graceful fallback either way.
        let (sst_mean_series, sst_spread_series) = if series.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            (
                ensemble_mean(&series).unwrap_or_default(),
                ensemble_spread(&series).unwrap_or_default(),
            )
        };

        // Final-SST pattern stats need a reference field and a second
        // member to differ from it.
        let mean_final: Option<Vec<f64>> = (ok.len() >= 2)
            .then(|| {
                let fields: Vec<&[f64]> = ok
                    .iter()
                    .filter_map(|r| Some(r.output()?.final_sst.as_slice()))
                    .collect();
                ensemble_mean_field(&fields).ok()
            })
            .flatten();
        let weights = mean_final.as_ref().map(|_| sea_weights(spec));

        let digests = members
            .iter()
            .map(|r| {
                let out = r.output();
                let pattern = match (out, &mean_final, &weights) {
                    (Some(o), Some(reference), Some(w)) => Some(foam_stats::pattern_stats(
                        o.final_sst.as_slice(),
                        reference,
                        w,
                    )),
                    _ => None,
                };
                MemberDigest {
                    id: r.spec.id,
                    seed: r.spec.seed,
                    status: if out.is_some() { "ok" } else { "failed" },
                    retries: r.retries,
                    error: r.result.as_ref().err().map(|e| e.to_string()),
                    final_mean_sst: out.and_then(|o| o.mean_sst_series.last().copied()),
                    series_mean: out.map(|o| {
                        o.mean_sst_series.iter().sum::<f64>() / o.mean_sst_series.len() as f64
                    }),
                    ice_fraction: out.map(|o| o.ice_fraction),
                    pattern_vs_ensemble_mean: pattern,
                    phase_calls: out
                        .and_then(|o| o.telemetry.as_ref())
                        .map(|t| t.phases.iter().map(|(k, p)| (k.clone(), p.calls)).collect())
                        .unwrap_or_default(),
                    counters: out
                        .and_then(|o| o.telemetry.as_ref())
                        .map(|t| {
                            t.counters
                                .iter()
                                .filter(|(k, _)| deterministic_counter(k))
                                .map(|(k, v)| (k.clone(), *v))
                                .collect()
                        })
                        .unwrap_or_default(),
                }
            })
            .collect();

        EnsembleReport {
            days: spec.days,
            n_ok: ok.len(),
            n_failed: members.len() - ok.len(),
            total_retries: members.iter().map(|r| u64::from(r.retries)).sum(),
            sst_mean_series,
            sst_spread_series,
            members: digests,
        }
    }

    /// Render the report as a `foam-ensemble/1` JSON document.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema".into(), Value::String(SCHEMA.into())),
            ("days".into(), Value::Number(self.days)),
            ("n_members".into(), (self.members.len() as u64).into()),
            ("n_ok".into(), (self.n_ok as u64).into()),
            ("n_failed".into(), (self.n_failed as u64).into()),
            ("total_retries".into(), self.total_retries.into()),
            (
                "sst_mean_series".into(),
                numbers(self.sst_mean_series.iter().copied()),
            ),
            (
                "sst_spread_series".into(),
                numbers(self.sst_spread_series.iter().copied()),
            ),
            (
                "members".into(),
                Value::Array(self.members.iter().map(member_json).collect()),
            ),
        ])
    }

    /// Write the pretty-rendered JSON document to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Whether a telemetry counter is a deterministic algorithmic count
/// (safe for the byte-identical report) rather than a timing artifact.
fn deterministic_counter(key: &str) -> bool {
    !key.starts_with("comm.") && key != "coupler.sst_retries"
}

/// Area weights over the base configuration's ocean grid: cell area on
/// sea points, zero on land — the same weighting the Figure 4 analysis
/// uses.
fn sea_weights(spec: &EnsembleSpec) -> Vec<f64> {
    let world = World::earthlike();
    let grid = OceanGrid::mercator(
        spec.base.ocean.nx,
        spec.base.ocean.ny,
        spec.base.ocean.lat_max_deg,
    );
    let mask = OceanModel::effective_sea_mask(&spec.base.ocean, &world);
    (0..grid.len())
        .map(|k| {
            if mask[k] {
                grid.cell_area(k % grid.nx, k / grid.nx) / 1.0e12
            } else {
                0.0
            }
        })
        .collect()
}

fn numbers(values: impl Iterator<Item = f64>) -> Value {
    Value::Array(values.map(Value::Number).collect())
}

fn opt_number(x: Option<f64>) -> Value {
    x.map(Value::Number).unwrap_or(Value::Null)
}

fn member_json(m: &MemberDigest) -> Value {
    let counts = |map: &BTreeMap<String, u64>| {
        Value::object(map.iter().map(|(k, v)| (k.clone(), (*v).into())))
    };
    Value::object([
        ("id".into(), (m.id as u64).into()),
        ("seed".into(), m.seed.into()),
        ("status".into(), Value::String(m.status.into())),
        ("retries".into(), u64::from(m.retries).into()),
        (
            "error".into(),
            m.error
                .as_ref()
                .map(|e| Value::String(e.clone()))
                .unwrap_or(Value::Null),
        ),
        ("final_mean_sst".into(), opt_number(m.final_mean_sst)),
        ("series_mean".into(), opt_number(m.series_mean)),
        ("ice_fraction".into(), opt_number(m.ice_fraction)),
        (
            "pattern_vs_ensemble_mean".into(),
            m.pattern_vs_ensemble_mean
                .as_ref()
                .map(|p| {
                    Value::object([
                        ("bias".into(), Value::Number(p.bias)),
                        ("rmse".into(), Value::Number(p.rmse)),
                        (
                            "pattern_correlation".into(),
                            Value::Number(p.pattern_correlation),
                        ),
                        ("max_abs_diff".into(), Value::Number(p.max_abs_diff)),
                    ])
                })
                .unwrap_or(Value::Null),
        ),
        ("phase_calls".into(), counts(&m.phase_calls)),
        ("counters".into(), counts(&m.counters)),
    ])
}
