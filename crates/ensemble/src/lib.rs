//! `foam-ensemble` — fault-tolerant orchestration of *ensembles* of
//! coupled FOAM runs.
//!
//! FOAM's reason for existing is throughput for century-to-millennium
//! climate-variability studies, and those studies are not one run: they
//! are ensembles of perturbed coupled simulations whose spread *is* the
//! science. This crate adds the missing layer above
//! [`foam::try_run_coupled`]: take an [`EnsembleSpec`] (a base
//! [`foam::FoamConfig`] plus per-member perturbations of seeds,
//! parameters, and fault plans), execute the members across a
//! work-stealing pool of OS workers, retry members that die with a
//! [`foam::CoupledError`] from their own checkpoint store, and reduce
//! everything into one deterministic `foam-ensemble/1` JSON report.
//!
//! # Guarantees
//!
//! * **Determinism / order-independence.** Member outputs depend only
//!   on the member's own configuration (each member is a seeded,
//!   single-trajectory coupled run), and the aggregation is performed
//!   in member-id order over the completed set — so the aggregate
//!   report is **byte-identical** for any worker count and any
//!   submission order. Wall-clock quantities (speedups, phase seconds)
//!   are deliberately kept *out* of the report; they live on
//!   [`EnsembleOutput`] and in the merged telemetry instead.
//! * **Fault tolerance.** A member that fails with a retryable
//!   [`foam::CoupledError`] is retried under a bounded exponential
//!   backoff ([`RetryPolicy`]); when the ensemble has an output
//!   directory, each member checkpoints periodically into its own
//!   store root ([`foam_ckpt::CheckpointStore::member_root`]) and the
//!   retry resumes via [`foam::try_resume_coupled`] — landing on the
//!   uninterrupted run's trajectory **bit-for-bit** (periodic
//!   snapshots only; emergency snapshots are off precisely because
//!   they lie off the failure-free trajectory).
//!
//! # Quickstart
//!
//! ```no_run
//! use foam::FoamConfig;
//! use foam_ensemble::{run_ensemble, EnsembleSpec};
//!
//! // Four members, seeds 42..46, two workers, half a simulated year.
//! let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(42), 180.0, 4);
//! spec.workers = 2;
//! let out = run_ensemble(&spec).unwrap();
//! println!("{}", out.report.to_json().to_string_pretty());
//! ```

pub mod queue;
mod report;
mod runner;
pub mod scheduler;
mod spec;

pub use queue::FairShareQueue;
pub use report::{EnsembleReport, MemberDigest, SCHEMA};
pub use runner::{run_ensemble, EnsembleOutput, MemberOutput, MemberRecord};
pub use spec::{EnsembleSpec, MemberSpec, ParamOverride, RetryPolicy};

// Re-export the driver/config vocabulary an ensemble user needs, so
// `foam_ensemble` works as a single front door.
pub use foam::{CkptConfig, ConfigError, CoupledError, FoamConfig, RuntimeConfig, TelemetryConfig};
pub use foam_mpi::{FaultAction, FaultPlan, FaultRule};

use std::path::PathBuf;

/// A fault plan that lets the first `hits` SST exchanges through
/// untouched and silently drops every later one — including the retry
/// protocol's retransmissions, so the member eventually aborts with a
/// [`CoupledError`]. This is the standard way to "kill" one ensemble
/// member mid-run and demonstrate checkpoint-based recovery
/// (`examples/ensemble.rs --fault-plan`).
pub fn kill_sst_after(seed: u64, hits: u64) -> FaultPlan {
    let sst = Some(foam_coupler::tags::TAG_SST);
    FaultPlan::new(seed)
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: sst,
            action: FaultAction::Delay(0.0),
            max_hits: Some(hits),
            probability: 1.0,
        })
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: sst,
            action: FaultAction::Drop,
            max_hits: None,
            probability: 1.0,
        })
}

/// Typed failure of ensemble orchestration — the spec was unusable or
/// the output directory could not be prepared. Individual member
/// failures do *not* surface here: they are part of the result
/// ([`MemberRecord`]) and the report marks them `failed`.
#[derive(Debug, Clone, PartialEq)]
pub enum EnsembleError {
    /// The spec lists no members.
    NoMembers,
    /// The spec asks for a zero-worker pool.
    NoWorkers,
    /// Two members share an id (ids key checkpoint roots and report
    /// entries, so they must be unique).
    DuplicateMemberId(usize),
    /// A quantity that must be strictly positive was not.
    NonPositive { what: &'static str, value: f64 },
    /// A member's derived configuration failed validation.
    Member { id: usize, error: CoupledError },
    /// The ensemble output directory could not be created.
    OutputDir { path: PathBuf, error: String },
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::NoMembers => write!(f, "the ensemble spec lists no members"),
            EnsembleError::NoWorkers => write!(f, "the ensemble spec asks for zero workers"),
            EnsembleError::DuplicateMemberId(id) => {
                write!(f, "duplicate member id {id} in the ensemble spec")
            }
            EnsembleError::NonPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            EnsembleError::Member { id, error } => {
                write!(f, "member {id} has an invalid configuration: {error}")
            }
            EnsembleError::OutputDir { path, error } => {
                write!(
                    f,
                    "cannot create the ensemble output directory {}: {error}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for EnsembleError {}
