//! Cross-member ensemble statistics: the mean/spread summaries an
//! ensemble of perturbed coupled runs reduces its diagnostic series
//! into (the numbers the `foam-ensemble/1` report carries).
//!
//! Everything here is **order-independent by construction**: the
//! accumulation order over members is fixed by the slice order the
//! caller passes (member id order, in `foam-ensemble`), so the same set
//! of members always reduces to bit-identical statistics regardless of
//! which member *finished* first.

/// Per-time-step ensemble mean over members.
///
/// `series[m]` is member `m`'s diagnostic series; all members must have
/// the same length (they integrated the same number of coupling
/// intervals).
///
/// ```
/// use foam_stats::ensemble::ensemble_mean;
///
/// let m = ensemble_mean(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m, vec![2.0, 3.0]);
/// ```
pub fn ensemble_mean(series: &[Vec<f64>]) -> Vec<f64> {
    let n_m = series.len();
    assert!(n_m > 0, "ensemble mean of zero members");
    let n_t = series[0].len();
    let mut mean = vec![0.0; n_t];
    for s in series {
        assert_eq!(s.len(), n_t, "members must share a series length");
        for (acc, v) in mean.iter_mut().zip(s) {
            *acc += v;
        }
    }
    for acc in mean.iter_mut() {
        *acc /= n_m as f64;
    }
    mean
}

/// Per-time-step ensemble spread (population standard deviation across
/// members). A one-member ensemble has zero spread everywhere.
///
/// ```
/// use foam_stats::ensemble::ensemble_spread;
///
/// let s = ensemble_spread(&[vec![1.0, 0.0], vec![3.0, 0.0]]);
/// assert_eq!(s, vec![1.0, 0.0]);
/// ```
pub fn ensemble_spread(series: &[Vec<f64>]) -> Vec<f64> {
    let n_m = series.len();
    assert!(n_m > 0, "ensemble spread of zero members");
    let mean = ensemble_mean(series);
    let n_t = mean.len();
    let mut var = vec![0.0; n_t];
    for s in series {
        for ((acc, v), m) in var.iter_mut().zip(s).zip(&mean) {
            let d = v - m;
            *acc += d * d;
        }
    }
    var.into_iter().map(|v| (v / n_m as f64).sqrt()).collect()
}

/// Element-wise ensemble mean over member *fields* (flattened grids) —
/// the reference field the per-member pattern statistics compare
/// against.
pub fn ensemble_mean_field(fields: &[&[f64]]) -> Vec<f64> {
    let n_m = fields.len();
    assert!(n_m > 0, "ensemble mean of zero fields");
    let n_s = fields[0].len();
    let mut mean = vec![0.0; n_s];
    for f in fields {
        assert_eq!(f.len(), n_s, "members must share a grid");
        for (acc, v) in mean.iter_mut().zip(f.iter()) {
            *acc += v;
        }
    }
    for acc in mean.iter_mut() {
        *acc /= n_m as f64;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_member_has_zero_spread_and_is_its_own_mean() {
        let s = vec![vec![1.5, -2.0, 0.25]];
        assert_eq!(ensemble_mean(&s), s[0]);
        assert_eq!(ensemble_spread(&s), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_and_spread_match_hand_computation() {
        let s = vec![vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 10.0]];
        assert_eq!(ensemble_mean(&s), vec![2.0, 10.0]);
        let spread = ensemble_spread(&s);
        assert!((spread[0] - (2.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert_eq!(spread[1], 0.0);
    }

    #[test]
    fn mean_field_averages_pointwise() {
        let a = [0.0, 4.0];
        let b = [2.0, 0.0];
        assert_eq!(ensemble_mean_field(&[&a, &b]), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "share a series length")]
    fn mismatched_lengths_are_rejected() {
        ensemble_mean(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
