//! Cross-member ensemble statistics: the mean/spread summaries an
//! ensemble of perturbed coupled runs reduces its diagnostic series
//! into (the numbers the `foam-ensemble/1` report carries).
//!
//! Everything here is **order-independent by construction**: the
//! accumulation order over members is fixed by the slice order the
//! caller passes (member id order, in `foam-ensemble`), so the same set
//! of members always reduces to bit-identical statistics regardless of
//! which member *finished* first.
//!
//! Degenerate inputs (zero members, mismatched series lengths) come
//! back as a typed [`StatsError`] instead of a panic — an orchestrator
//! that lost every member should report that failure, not abort while
//! reporting it. The batch reductions here hold all member series at
//! once; [`StreamEnsemble`] is the single-pass variant that folds one
//! member in at a time.

use crate::stream::{FieldMoments, StatsError};

/// Per-time-step ensemble mean over members.
///
/// `series[m]` is member `m`'s diagnostic series; all members must have
/// the same length (they integrated the same number of coupling
/// intervals) or a [`StatsError::LengthMismatch`] comes back.
///
/// ```
/// use foam_stats::ensemble::ensemble_mean;
///
/// let m = ensemble_mean(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m, vec![2.0, 3.0]);
/// assert!(ensemble_mean(&[]).is_err());
/// ```
pub fn ensemble_mean(series: &[Vec<f64>]) -> Result<Vec<f64>, StatsError> {
    let n_m = series.len();
    if n_m == 0 {
        return Err(StatsError::Empty {
            what: "ensemble mean",
        });
    }
    let n_t = series[0].len();
    let mut mean = vec![0.0; n_t];
    for s in series {
        if s.len() != n_t {
            return Err(StatsError::LengthMismatch {
                what: "ensemble member series",
                expected: n_t,
                got: s.len(),
            });
        }
        for (acc, v) in mean.iter_mut().zip(s) {
            *acc += v;
        }
    }
    for acc in mean.iter_mut() {
        *acc /= n_m as f64;
    }
    Ok(mean)
}

/// Per-time-step ensemble spread (population standard deviation across
/// members). A one-member ensemble has zero spread everywhere; a
/// zero-member one is a typed error.
///
/// ```
/// use foam_stats::ensemble::ensemble_spread;
///
/// let s = ensemble_spread(&[vec![1.0, 0.0], vec![3.0, 0.0]]).unwrap();
/// assert_eq!(s, vec![1.0, 0.0]);
/// ```
pub fn ensemble_spread(series: &[Vec<f64>]) -> Result<Vec<f64>, StatsError> {
    let n_m = series.len();
    if n_m == 0 {
        return Err(StatsError::Empty {
            what: "ensemble spread",
        });
    }
    let mean = ensemble_mean(series)?;
    let n_t = mean.len();
    let mut var = vec![0.0; n_t];
    for s in series {
        for ((acc, v), m) in var.iter_mut().zip(s).zip(&mean) {
            let d = v - m;
            *acc += d * d;
        }
    }
    Ok(var.into_iter().map(|v| (v / n_m as f64).sqrt()).collect())
}

/// Element-wise ensemble mean over member *fields* (flattened grids) —
/// the reference field the per-member pattern statistics compare
/// against.
///
/// ```
/// use foam_stats::ensemble::ensemble_mean_field;
///
/// let a = [0.0, 4.0];
/// let b = [2.0, 0.0];
/// assert_eq!(ensemble_mean_field(&[&a, &b]).unwrap(), vec![1.0, 2.0]);
/// ```
pub fn ensemble_mean_field(fields: &[&[f64]]) -> Result<Vec<f64>, StatsError> {
    let n_m = fields.len();
    if n_m == 0 {
        return Err(StatsError::Empty {
            what: "ensemble mean field",
        });
    }
    let n_s = fields[0].len();
    let mut mean = vec![0.0; n_s];
    for f in fields {
        if f.len() != n_s {
            return Err(StatsError::LengthMismatch {
                what: "ensemble member field",
                expected: n_s,
                got: f.len(),
            });
        }
        for (acc, v) in mean.iter_mut().zip(f.iter()) {
            *acc += v;
        }
    }
    for acc in mean.iter_mut() {
        *acc /= n_m as f64;
    }
    Ok(mean)
}

/// Streaming ensemble reduction: fold one member's series in at a time
/// and read the mean/spread at any point — the orchestrator never holds
/// more than one member's series plus `O(series length)` state.
///
/// The mean accumulates in arrival order exactly like [`ensemble_mean`]
/// accumulates in slice order, so feeding members in the same order is
/// **bit-identical** to the batch reduction; the spread uses Welford
/// updates and matches [`ensemble_spread`] to ~1e-10 relative.
///
/// ```
/// use foam_stats::ensemble::StreamEnsemble;
///
/// let mut e = StreamEnsemble::new(2);
/// e.push_member(&[1.0, 0.0]).unwrap();
/// e.push_member(&[3.0, 0.0]).unwrap();
/// assert_eq!(e.mean().unwrap(), vec![2.0, 0.0]);
/// assert_eq!(e.spread().unwrap(), vec![1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEnsemble {
    moments: FieldMoments,
}

impl StreamEnsemble {
    /// A reduction over series of length `n_t`.
    pub fn new(n_t: usize) -> Self {
        StreamEnsemble {
            moments: FieldMoments::new(n_t),
        }
    }

    /// Fold one member's series in; rejects a length mismatch.
    pub fn push_member(&mut self, series: &[f64]) -> Result<(), StatsError> {
        self.moments
            .push(series)
            .map_err(|_| StatsError::LengthMismatch {
                what: "ensemble member series",
                expected: self.moments.len(),
                got: series.len(),
            })
    }

    /// Members folded in so far.
    pub fn members(&self) -> u64 {
        self.moments.count()
    }

    /// Per-time-step ensemble mean; [`StatsError::Empty`] before the
    /// first member arrives.
    pub fn mean(&self) -> Result<Vec<f64>, StatsError> {
        if self.moments.is_empty() {
            return Err(StatsError::Empty {
                what: "ensemble mean",
            });
        }
        Ok(self.moments.mean_field())
    }

    /// Per-time-step ensemble spread (population standard deviation).
    pub fn spread(&self) -> Result<Vec<f64>, StatsError> {
        if self.moments.is_empty() {
            return Err(StatsError::Empty {
                what: "ensemble spread",
            });
        }
        Ok(self.moments.std_field())
    }

    /// Merge another partial reduction in (Chan's update) — for
    /// tree-shaped or resumed reductions.
    pub fn merge(&mut self, other: &StreamEnsemble) -> Result<(), StatsError> {
        self.moments.merge(&other.moments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_member_has_zero_spread_and_is_its_own_mean() {
        let s = vec![vec![1.5, -2.0, 0.25]];
        assert_eq!(ensemble_mean(&s).unwrap(), s[0]);
        assert_eq!(ensemble_spread(&s).unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_and_spread_match_hand_computation() {
        let s = vec![vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 10.0]];
        assert_eq!(ensemble_mean(&s).unwrap(), vec![2.0, 10.0]);
        let spread = ensemble_spread(&s).unwrap();
        assert!((spread[0] - (2.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert_eq!(spread[1], 0.0);
    }

    #[test]
    fn mean_field_averages_pointwise() {
        let a = [0.0, 4.0];
        let b = [2.0, 0.0];
        assert_eq!(ensemble_mean_field(&[&a, &b]).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn zero_members_are_a_typed_error() {
        assert_eq!(
            ensemble_mean(&[]).unwrap_err(),
            StatsError::Empty {
                what: "ensemble mean"
            }
        );
        assert_eq!(
            ensemble_spread(&[]).unwrap_err(),
            StatsError::Empty {
                what: "ensemble spread"
            }
        );
        assert_eq!(
            ensemble_mean_field(&[]).unwrap_err(),
            StatsError::Empty {
                what: "ensemble mean field"
            }
        );
        let e = StreamEnsemble::new(4);
        assert!(e.mean().is_err());
        assert!(e.spread().is_err());
    }

    #[test]
    fn mismatched_lengths_are_a_typed_error() {
        let err = ensemble_mean(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            StatsError::LengthMismatch {
                what: "ensemble member series",
                expected: 1,
                got: 2
            }
        );
        assert!(ensemble_spread(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let a = [0.0, 4.0];
        let b = [2.0];
        assert!(ensemble_mean_field(&[&a, &b]).is_err());
        let mut e = StreamEnsemble::new(2);
        e.push_member(&[0.0, 1.0]).unwrap();
        assert!(e.push_member(&[0.0]).is_err());
    }

    #[test]
    fn streaming_mean_is_bit_identical_spread_close() {
        let members: Vec<Vec<f64>> = (0..7)
            .map(|m| {
                (0..40)
                    .map(|t| (m as f64 * 1.3 + t as f64 * 0.21).sin() * 5.0)
                    .collect()
            })
            .collect();
        let batch_mean = ensemble_mean(&members).unwrap();
        let batch_spread = ensemble_spread(&members).unwrap();
        let mut e = StreamEnsemble::new(40);
        for m in &members {
            e.push_member(m).unwrap();
        }
        assert_eq!(e.members(), 7);
        let sm = e.mean().unwrap();
        let ss = e.spread().unwrap();
        for t in 0..40 {
            assert_eq!(sm[t].to_bits(), batch_mean[t].to_bits(), "t={t}");
            assert!((ss[t] - batch_spread[t]).abs() < 1e-10, "t={t}");
        }
    }
}
