//! Lanczos low-pass filtering — the "60 month low-pass" of Figure 4.

use foam_ckpt::{ByteReader, CkptError, Codec};
use std::collections::VecDeque;

/// Lanczos low-pass weights: cutoff `fc` in cycles per sample, `n_half`
/// weights each side (total `2 n_half + 1`), normalized to unit sum.
pub fn lanczos_weights(fc: f64, n_half: usize) -> Vec<f64> {
    let m = n_half as f64;
    let mut w: Vec<f64> = (-(n_half as isize)..=n_half as isize)
        .map(|k| {
            if k == 0 {
                2.0 * fc
            } else {
                let kf = k as f64;
                let sinc =
                    (2.0 * std::f64::consts::PI * fc * kf).sin() / (std::f64::consts::PI * kf);
                let sigma = (std::f64::consts::PI * kf / m).sin() / (std::f64::consts::PI * kf / m);
                sinc * sigma
            }
        })
        .collect();
    let s: f64 = w.iter().sum();
    for v in w.iter_mut() {
        *v /= s;
    }
    w
}

/// Apply a low-pass Lanczos filter with cutoff period `period` (in
/// samples; 60 for the paper's 60-month filter). Returns a series of the
/// same length; the `n_half` samples at each edge are computed with a
/// renormalized truncated kernel (no data invented).
pub fn lanczos_lowpass(x: &[f64], period: f64) -> Vec<f64> {
    let fc = 1.0 / period;
    // Standard choice: ~1.3 periods of weights each side.
    let n_half = (1.3 * period).ceil() as usize;
    let w = lanczos_weights(fc, n_half);
    let n = x.len();
    let mut out = vec![0.0; n];
    for t in 0..n {
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for (kidx, &wk) in w.iter().enumerate() {
            let k = kidx as isize - n_half as isize;
            let tt = t as isize + k;
            if tt >= 0 && (tt as usize) < n {
                acc += wk * x[tt as usize];
                wsum += wk;
            }
        }
        out[t] = if wsum.abs() > 1e-12 { acc / wsum } else { 0.0 };
    }
    out
}

/// One-sample-at-a-time variant of [`lanczos_lowpass`]: push samples as
/// they are produced, collect filtered values with a delay of
/// `n_half` samples, and drain the tail with [`finish`]. The
/// concatenation of everything [`push`] and [`finish`] return is
/// **bit-identical** to `lanczos_lowpass` on the full series (the tap
/// accumulation order is the same), while only `2·n_half + 1` samples
/// are ever buffered — `O(filter width)`, not `O(series length)`.
///
/// [`push`]: StreamingLanczos::push
/// [`finish`]: StreamingLanczos::finish
///
/// ```
/// use foam_stats::filter::{lanczos_lowpass, StreamingLanczos};
///
/// let x: Vec<f64> = (0..100).map(|t| (t as f64 * 0.4).sin()).collect();
/// let mut f = StreamingLanczos::new(12.0);
/// let mut out: Vec<f64> = x.iter().filter_map(|&v| f.push(v)).collect();
/// out.extend(f.finish());
/// let batch = lanczos_lowpass(&x, 12.0);
/// assert_eq!(out.len(), batch.len());
/// assert!(out.iter().zip(&batch).all(|(a, b)| a.to_bits() == b.to_bits()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingLanczos {
    period: f64,
    n_half: usize,
    weights: Vec<f64>,
    /// Sliding window of raw samples; `buf[0]` is sample `buf_start`.
    buf: VecDeque<f64>,
    buf_start: usize,
    pushed: usize,
    emitted: usize,
}

impl StreamingLanczos {
    /// A streaming low-pass filter with cutoff period `period` (in
    /// samples), using the same kernel as [`lanczos_lowpass`].
    pub fn new(period: f64) -> Self {
        let n_half = (1.3 * period).ceil() as usize;
        StreamingLanczos {
            period,
            n_half,
            weights: lanczos_weights(1.0 / period, n_half),
            buf: VecDeque::new(),
            buf_start: 0,
            pushed: 0,
            emitted: 0,
        }
    }

    /// The filter's group delay: output `t` emerges `n_half` pushes
    /// after input `t`.
    pub fn delay(&self) -> usize {
        self.n_half
    }

    /// Samples consumed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Filtered values produced so far (push-time and finish-time).
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Output value at index `t`, computed exactly like the batch loop:
    /// taps in ascending kernel order, edge taps clipped to `[0, n)`
    /// and the kernel renormalized.
    fn emit(&self, t: usize, n: usize) -> f64 {
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for (kidx, &wk) in self.weights.iter().enumerate() {
            let k = kidx as isize - self.n_half as isize;
            let tt = t as isize + k;
            if tt >= 0 && (tt as usize) < n {
                acc += wk * self.buf[tt as usize - self.buf_start];
                wsum += wk;
            }
        }
        if wsum.abs() > 1e-12 {
            acc / wsum
        } else {
            0.0
        }
    }

    /// Consume one sample; returns the next filtered value once the
    /// look-ahead window is full (`None` during the first `n_half`
    /// pushes).
    pub fn push(&mut self, x: f64) -> Option<f64> {
        self.buf.push_back(x);
        self.pushed += 1;
        // Output t needs inputs up to t + n_half, so t = pushed-1-n_half
        // is the newest emittable index. The right-edge clip never
        // engages here (every tap ≤ pushed-1 exists), matching the
        // batch loop's interior case.
        if self.pushed < self.n_half + 1 + self.emitted {
            return None;
        }
        let t = self.emitted;
        let y = self.emit(t, self.pushed);
        self.emitted += 1;
        // Output t+1 reaches back to t+1-n_half; older samples are done.
        while self.buf_start < self.emitted.saturating_sub(self.n_half) {
            self.buf.pop_front();
            self.buf_start += 1;
        }
        Some(y)
    }

    /// The end of the series: drain the remaining `≤ n_half` outputs,
    /// whose right edge uses the truncated renormalized kernel exactly
    /// like the batch filter. The filter is consumed.
    pub fn finish(self) -> Vec<f64> {
        (self.emitted..self.pushed)
            .map(|t| self.emit(t, self.pushed))
            .collect()
    }
}

impl Codec for StreamingLanczos {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.period.encode(buf);
        self.pushed.encode(buf);
        self.emitted.encode(buf);
        self.buf_start.encode(buf);
        let window: Vec<f64> = self.buf.iter().copied().collect();
        window.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let period = f64::decode(r)?;
        if !(period.is_finite() && period > 0.0) {
            return Err(CkptError::Corrupt(format!(
                "streaming filter period {period} is not positive"
            )));
        }
        let pushed = usize::decode(r)?;
        let emitted = usize::decode(r)?;
        let buf_start = usize::decode(r)?;
        let window = Vec::<f64>::decode(r)?;
        if buf_start + window.len() != pushed || emitted > pushed {
            return Err(CkptError::Corrupt(
                "streaming filter window is inconsistent with its counters".into(),
            ));
        }
        // The kernel is a pure function of the period; recomputing it is
        // deterministic, so the resumed filter is bit-identical.
        let mut f = StreamingLanczos::new(period);
        f.pushed = pushed;
        f.emitted = emitted;
        f.buf_start = buf_start;
        f.buf = window.into();
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::correlation;

    #[test]
    fn weights_sum_to_one_and_are_symmetric() {
        let w = lanczos_weights(1.0 / 60.0, 78);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let n = w.len();
        for k in 0..n / 2 {
            assert!((w[k] - w[n - 1 - k]).abs() < 1e-14);
        }
    }

    #[test]
    fn constant_passes_unchanged() {
        let x = vec![4.2; 400];
        let y = lanczos_lowpass(&x, 60.0);
        for v in y {
            assert!((v - 4.2).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_oscillation_is_removed_slow_retained() {
        let n = 600;
        let slow: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 200.0).sin())
            .collect();
        let x: Vec<f64> = (0..n)
            .map(|t| slow[t] + 0.8 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin())
            .collect();
        let y = lanczos_lowpass(&x, 60.0);
        // Interior comparison (edges use truncated kernels).
        let a = 100;
        let b = n - 100;
        let r = correlation(&y[a..b], &slow[a..b]);
        assert!(r > 0.99, "slow signal corrupted: r = {r}");
        // Residual fast variance strongly suppressed.
        let fast_res: f64 = (a..b)
            .map(|t| (y[t] - slow[t]) * (y[t] - slow[t]))
            .sum::<f64>()
            / (b - a) as f64;
        assert!(fast_res < 0.01, "fast variance remains: {fast_res}");
    }

    #[test]
    fn output_length_matches_input() {
        let x: Vec<f64> = (0..250).map(|t| (t as f64).cos()).collect();
        assert_eq!(lanczos_lowpass(&x, 60.0).len(), 250);
    }

    fn run_streaming(x: &[f64], period: f64) -> Vec<f64> {
        let mut f = StreamingLanczos::new(period);
        let mut out: Vec<f64> = x.iter().filter_map(|&v| f.push(v)).collect();
        out.extend(f.finish());
        out
    }

    #[test]
    fn streaming_matches_batch_bit_for_bit() {
        for n in [0usize, 1, 5, 40, 90, 333] {
            for period in [6.0, 12.0, 60.0] {
                let x: Vec<f64> = (0..n)
                    .map(|t| (t as f64 * 0.31).sin() + 0.2 * (t as f64 * 2.1).cos())
                    .collect();
                let batch = lanczos_lowpass(&x, period);
                let stream = run_streaming(&x, period);
                assert_eq!(stream.len(), batch.len(), "n={n} period={period}");
                for (t, (a, b)) in stream.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "n={n} period={period} t={t}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_codec_checkpoint_resume_is_bit_identical() {
        let x: Vec<f64> = (0..120).map(|t| (t as f64 * 0.17).sin()).collect();
        let period = 12.0;
        for split in [0usize, 3, 17, 60, 119, 120] {
            let mut f = StreamingLanczos::new(period);
            let mut out: Vec<f64> = x[..split].iter().filter_map(|&v| f.push(v)).collect();
            let bytes = f.to_bytes();
            let mut r = ByteReader::new(&bytes);
            let mut g = StreamingLanczos::decode(&mut r).unwrap();
            out.extend(x[split..].iter().filter_map(|&v| g.push(v)));
            out.extend(g.finish());
            let batch = lanczos_lowpass(&x, period);
            assert!(
                out.iter()
                    .zip(&batch)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "split at {split} diverged"
            );
        }
    }
}
