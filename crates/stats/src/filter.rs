//! Lanczos low-pass filtering — the "60 month low-pass" of Figure 4.

/// Lanczos low-pass weights: cutoff `fc` in cycles per sample, `n_half`
/// weights each side (total `2 n_half + 1`), normalized to unit sum.
pub fn lanczos_weights(fc: f64, n_half: usize) -> Vec<f64> {
    let m = n_half as f64;
    let mut w: Vec<f64> = (-(n_half as isize)..=n_half as isize)
        .map(|k| {
            if k == 0 {
                2.0 * fc
            } else {
                let kf = k as f64;
                let sinc =
                    (2.0 * std::f64::consts::PI * fc * kf).sin() / (std::f64::consts::PI * kf);
                let sigma = (std::f64::consts::PI * kf / m).sin() / (std::f64::consts::PI * kf / m);
                sinc * sigma
            }
        })
        .collect();
    let s: f64 = w.iter().sum();
    for v in w.iter_mut() {
        *v /= s;
    }
    w
}

/// Apply a low-pass Lanczos filter with cutoff period `period` (in
/// samples; 60 for the paper's 60-month filter). Returns a series of the
/// same length; the `n_half` samples at each edge are computed with a
/// renormalized truncated kernel (no data invented).
pub fn lanczos_lowpass(x: &[f64], period: f64) -> Vec<f64> {
    let fc = 1.0 / period;
    // Standard choice: ~1.3 periods of weights each side.
    let n_half = (1.3 * period).ceil() as usize;
    let w = lanczos_weights(fc, n_half);
    let n = x.len();
    let mut out = vec![0.0; n];
    for t in 0..n {
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for (kidx, &wk) in w.iter().enumerate() {
            let k = kidx as isize - n_half as isize;
            let tt = t as isize + k;
            if tt >= 0 && (tt as usize) < n {
                acc += wk * x[tt as usize];
                wsum += wk;
            }
        }
        out[t] = if wsum.abs() > 1e-12 { acc / wsum } else { 0.0 };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::correlation;

    #[test]
    fn weights_sum_to_one_and_are_symmetric() {
        let w = lanczos_weights(1.0 / 60.0, 78);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let n = w.len();
        for k in 0..n / 2 {
            assert!((w[k] - w[n - 1 - k]).abs() < 1e-14);
        }
    }

    #[test]
    fn constant_passes_unchanged() {
        let x = vec![4.2; 400];
        let y = lanczos_lowpass(&x, 60.0);
        for v in y {
            assert!((v - 4.2).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_oscillation_is_removed_slow_retained() {
        let n = 600;
        let slow: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 200.0).sin())
            .collect();
        let x: Vec<f64> = (0..n)
            .map(|t| slow[t] + 0.8 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin())
            .collect();
        let y = lanczos_lowpass(&x, 60.0);
        // Interior comparison (edges use truncated kernels).
        let a = 100;
        let b = n - 100;
        let r = correlation(&y[a..b], &slow[a..b]);
        assert!(r > 0.99, "slow signal corrupted: r = {r}");
        // Residual fast variance strongly suppressed.
        let fast_res: f64 = (a..b)
            .map(|t| (y[t] - slow[t]) * (y[t] - slow[t]))
            .sum::<f64>()
            / (b - a) as f64;
        assert!(fast_res < 0.01, "fast variance remains: {fast_res}");
    }

    #[test]
    fn output_length_matches_input() {
        let x: Vec<f64> = (0..250).map(|t| (t as f64).cos()).collect();
        assert_eq!(lanczos_lowpass(&x, 60.0).len(), 250);
    }
}
