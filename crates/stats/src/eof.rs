//! Empirical orthogonal functions (via the snapshot method) and VARIMAX
//! rotation — the machinery behind the paper's Figure 4.

use crate::linalg::symmetric_eigen;

/// An EOF decomposition of an anomaly dataset.
#[derive(Debug, Clone)]
pub struct Eof {
    /// `patterns[k]` is mode k in physical space (length `n_space`),
    /// scaled so that `x(t, s) ≈ Σ_k pcs[k][t] · patterns[k][s]`.
    pub patterns: Vec<Vec<f64>>,
    /// Principal-component series, unit variance.
    pub pcs: Vec<Vec<f64>>,
    /// Fraction of total (area-weighted) variance per mode.
    pub variance_fraction: Vec<f64>,
    /// Total area-weighted variance of the input.
    pub total_variance: f64,
}

/// EOF analysis of `data` (time-major: `data[t][s]`, anomalies) with
/// per-point area weights, keeping `k_keep` modes. Uses the snapshot
/// (temporal covariance) method, which only needs an `n_t × n_t`
/// eigenproblem — the standard trick when space outnumbers time.
pub fn eof_analysis(data: &[Vec<f64>], weights: &[f64], k_keep: usize) -> Eof {
    let n_t = data.len();
    assert!(n_t >= 2, "need at least two time samples");
    let n_s = data[0].len();
    assert_eq!(weights.len(), n_s);
    let sqrt_w: Vec<f64> = weights.iter().map(|w| w.max(0.0).sqrt()).collect();

    // Weighted snapshots X̃[t][s] = x · √w.
    let xt: Vec<Vec<f64>> = data
        .iter()
        .map(|row| {
            assert_eq!(row.len(), n_s);
            row.iter().zip(&sqrt_w).map(|(v, w)| v * w).collect()
        })
        .collect();

    // Gram matrix G = X̃ X̃ᵀ (n_t × n_t).
    let mut g = vec![0.0; n_t * n_t];
    for t1 in 0..n_t {
        for t2 in t1..n_t {
            let dot: f64 = xt[t1].iter().zip(&xt[t2]).map(|(a, b)| a * b).sum();
            g[t1 * n_t + t2] = dot;
            g[t2 * n_t + t1] = dot;
        }
    }
    let (lambda, u) = symmetric_eigen(&g, n_t);
    let total: f64 = lambda.iter().filter(|l| **l > 0.0).sum();
    let k_keep = k_keep.min(n_t);

    let mut patterns = Vec::with_capacity(k_keep);
    let mut pcs = Vec::with_capacity(k_keep);
    let mut varfrac = Vec::with_capacity(k_keep);
    for k in 0..k_keep {
        let lam = lambda[k].max(0.0);
        if lam <= 1e-12 * total.max(1e-300) {
            break;
        }
        // Spatial mode ẽ = X̃ᵀ u / √λ (unit norm in weighted space).
        let mut e = vec![0.0; n_s];
        for t in 0..n_t {
            let c = u[k][t];
            for (s, ev) in e.iter_mut().enumerate() {
                *ev += c * xt[t][s];
            }
        }
        let inv = 1.0 / lam.sqrt();
        for ev in e.iter_mut() {
            *ev *= inv;
        }
        // Physical pattern = ẽ √(λ/n_t) / √w ; PC = u √n_t (unit var).
        let amp = (lam / n_t as f64).sqrt();
        let pattern: Vec<f64> = e
            .iter()
            .zip(&sqrt_w)
            .map(|(ev, w)| if *w > 0.0 { ev * amp / w } else { 0.0 })
            .collect();
        let pc: Vec<f64> = u[k].iter().map(|v| v * (n_t as f64).sqrt()).collect();
        patterns.push(pattern);
        pcs.push(pc);
        varfrac.push(lam / total);
    }

    Eof {
        patterns,
        pcs,
        variance_fraction: varfrac,
        total_variance: total / n_t as f64,
    }
}

/// VARIMAX rotation of the leading `k` modes of `eof` (Kaiser
/// normalized), re-projecting the data to get rotated PCs. Rotated modes
/// are sorted by descending explained variance — the operation the paper
/// applies before plotting Figure 4.
pub fn varimax(data: &[Vec<f64>], weights: &[f64], eof: &Eof, k: usize) -> Eof {
    let k = k.min(eof.patterns.len());
    let n_s = weights.len();
    let n_t = data.len();
    let sqrt_w: Vec<f64> = weights.iter().map(|w| w.max(0.0).sqrt()).collect();

    // Loadings in weighted space: L[s][k].
    let mut l = vec![0.0; n_s * k];
    for kk in 0..k {
        for s in 0..n_s {
            l[s * k + kk] = eof.patterns[kk][s] * sqrt_w[s];
        }
    }
    // Kaiser normalization.
    let mut h = vec![0.0; n_s];
    for s in 0..n_s {
        let norm: f64 = (0..k).map(|kk| l[s * k + kk] * l[s * k + kk]).sum();
        h[s] = norm.sqrt();
        if h[s] > 1e-12 {
            for kk in 0..k {
                l[s * k + kk] /= h[s];
            }
        }
    }
    // Pairwise rotations.
    let nf = n_s as f64;
    for _sweep in 0..50 {
        let mut total_rotation = 0.0;
        for p in 0..k {
            for q in p + 1..k {
                let mut a = 0.0;
                let mut b = 0.0;
                let mut c = 0.0;
                let mut d = 0.0;
                for s in 0..n_s {
                    let x = l[s * k + p];
                    let y = l[s * k + q];
                    let u = x * x - y * y;
                    let v = 2.0 * x * y;
                    a += u;
                    b += v;
                    c += u * u - v * v;
                    d += 2.0 * u * v;
                }
                let num = d - 2.0 * a * b / nf;
                let den = c - (a * a - b * b) / nf;
                let theta = 0.25 * num.atan2(den);
                if theta.abs() < 1e-9 {
                    continue;
                }
                total_rotation += theta.abs();
                let (ct, st) = (theta.cos(), theta.sin());
                for s in 0..n_s {
                    let x = l[s * k + p];
                    let y = l[s * k + q];
                    l[s * k + p] = ct * x + st * y;
                    l[s * k + q] = -st * x + ct * y;
                }
            }
        }
        if total_rotation < 1e-8 {
            break;
        }
    }
    // Denormalize.
    for s in 0..n_s {
        if h[s] > 1e-12 {
            for kk in 0..k {
                l[s * k + kk] *= h[s];
            }
        }
    }

    // Rotated explained variance per factor = Σ_s L².
    let mut order: Vec<usize> = (0..k).collect();
    let colvar: Vec<f64> = (0..k)
        .map(|kk| (0..n_s).map(|s| l[s * k + kk] * l[s * k + kk]).sum())
        .collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: degenerate input (a
    // NaN anomaly leaking through the filter chain) makes a column
    // variance NaN, and sorting must not panic on it.
    order.sort_by(|&a, &b| colvar[b].total_cmp(&colvar[a]));

    let mut patterns = Vec::with_capacity(k);
    let mut varfrac = Vec::with_capacity(k);
    let mut pcs = Vec::with_capacity(k);
    for &kk in &order {
        let pattern: Vec<f64> = (0..n_s)
            .map(|s| {
                if sqrt_w[s] > 0.0 {
                    l[s * k + kk] / sqrt_w[s]
                } else {
                    0.0
                }
            })
            .collect();
        // PC by weighted projection onto the (unit) rotated direction.
        let norm: f64 = colvar[kk];
        let pc: Vec<f64> = (0..n_t)
            .map(|t| {
                let mut acc = 0.0;
                for s in 0..n_s {
                    acc += data[t][s] * weights[s].max(0.0) * pattern[s];
                }
                acc / norm.max(1e-300)
            })
            .collect();
        patterns.push(pattern);
        varfrac.push(colvar[kk] / eof.total_variance.max(1e-300));
        pcs.push(pc);
    }

    Eof {
        patterns,
        pcs,
        variance_fraction: varfrac,
        total_variance: eof.total_variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two orthogonal spatial patterns with well separated variances.
    fn synthetic(n_t: usize, n_s: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let p1: Vec<f64> = (0..n_s)
            .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n_s as f64).sin())
            .collect();
        let p2: Vec<f64> = (0..n_s)
            .map(|s| (4.0 * std::f64::consts::PI * s as f64 / n_s as f64).cos())
            .collect();
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                let a = 3.0 * (t as f64 * 0.37).sin();
                let b = 1.0 * (t as f64 * 0.11).cos();
                (0..n_s).map(|s| a * p1[s] + b * p2[s]).collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        (data, w, p1, p2)
    }

    fn abs_corr(a: &[f64], b: &[f64]) -> f64 {
        crate::series::correlation(a, b).abs()
    }

    #[test]
    fn recovers_dominant_pattern() {
        let (data, w, p1, _p2) = synthetic(80, 64);
        let eof = eof_analysis(&data, &w, 3);
        assert!(eof.variance_fraction[0] > 0.7);
        assert!(abs_corr(&eof.patterns[0], &p1) > 0.99);
        // Variance fractions are a partition.
        let s: f64 = eof.variance_fraction.iter().sum();
        assert!(s <= 1.0 + 1e-9);
        assert!(eof.variance_fraction[0] >= eof.variance_fraction[1]);
    }

    #[test]
    fn pcs_have_unit_variance_and_are_orthogonal() {
        let (data, w, _, _) = synthetic(100, 40);
        let eof = eof_analysis(&data, &w, 2);
        for pc in &eof.pcs {
            let var: f64 = pc.iter().map(|v| v * v).sum::<f64>() / pc.len() as f64;
            assert!((var - 1.0).abs() < 1e-9, "pc variance {var}");
        }
        let dot: f64 = eof.pcs[0]
            .iter()
            .zip(&eof.pcs[1])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / eof.pcs[0].len() as f64;
        assert!(dot.abs() < 1e-9);
    }

    #[test]
    fn reconstruction_from_two_modes_is_exact() {
        let (data, w, _, _) = synthetic(60, 32);
        let eof = eof_analysis(&data, &w, 2);
        for t in (0..60).step_by(13) {
            for s in (0..32).step_by(5) {
                let rec: f64 = (0..2).map(|k| eof.pcs[k][t] * eof.patterns[k][s]).sum();
                assert!(
                    (rec - data[t][s]).abs() < 1e-8,
                    "t={t} s={s}: {rec} vs {}",
                    data[t][s]
                );
            }
        }
    }

    #[test]
    fn zero_weight_points_are_excluded() {
        let (mut data, mut w, _, _) = synthetic(40, 20);
        // Poison a masked point; with w = 0 it must not affect anything.
        w[7] = 0.0;
        for row in data.iter_mut() {
            row[7] = 1.0e6;
        }
        let eof = eof_analysis(&data, &w, 1);
        assert_eq!(eof.patterns[0][7], 0.0);
        assert!(eof.variance_fraction[0] > 0.5);
    }

    #[test]
    fn varimax_survives_a_nan_variance() {
        // Regression: the explained-variance sort used
        // `partial_cmp(..).unwrap()`, so a single NaN loading (e.g. an
        // undefined anomaly upstream) made the whole rotation panic.
        // With `total_cmp` the rotation completes and the clean modes
        // still come out sorted ahead of the poisoned one.
        let (data, w, _, _) = synthetic(60, 32);
        let mut eof = eof_analysis(&data, &w, 2);
        eof.patterns[1][3] = f64::NAN;
        // The NaN spreads through the rotation (Kaiser normalization
        // couples the columns), so the *values* are garbage — what the
        // fix guarantees is that the analysis returns with the right
        // shape instead of aborting.
        let rot = varimax(&data, &w, &eof, 2);
        assert_eq!(rot.patterns.len(), 2);
        assert_eq!(rot.variance_fraction.len(), 2);
    }

    #[test]
    fn varimax_recovers_localized_structures() {
        // Two disjoint-support "basin" patterns with *similar* variances:
        // plain EOF mixes them; VARIMAX should separate.
        let n_s = 60;
        let n_t = 200;
        let sup1 = 5..20;
        let sup2 = 35..50;
        let p1: Vec<f64> = (0..n_s)
            .map(|s| if sup1.contains(&s) { 1.0 } else { 0.0 })
            .collect();
        let p2: Vec<f64> = (0..n_s)
            .map(|s| if sup2.contains(&s) { 1.0 } else { 0.0 })
            .collect();
        // Nearly equal amplitudes with slightly correlated drivers — the
        // degenerate case that mixes EOFs.
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                let a = (t as f64 * 0.13).sin() + 0.12 * (t as f64 * 0.05).cos();
                let b = 1.05 * (t as f64 * 0.131 + 1.0).sin();
                (0..n_s).map(|s| a * p1[s] + b * p2[s]).collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        let eof = eof_analysis(&data, &w, 2);
        let rot = varimax(&data, &w, &eof, 2);
        // Each rotated factor concentrates its energy on one support.
        for pattern in &rot.patterns[..2] {
            let e1: f64 = sup1.clone().map(|s| pattern[s] * pattern[s]).sum();
            let e2: f64 = sup2.clone().map(|s| pattern[s] * pattern[s]).sum();
            let (hi, lo) = if e1 > e2 { (e1, e2) } else { (e2, e1) };
            assert!(hi > 9.0 * lo, "rotated factor not simple: {e1} vs {e2}");
        }
        // Rotation preserves the total explained variance of the pair.
        let before: f64 = eof.variance_fraction[..2].iter().sum();
        let after: f64 = rot.variance_fraction[..2].iter().sum();
        assert!((before - after).abs() < 0.02, "{before} vs {after}");
    }

    #[test]
    fn varimax_pcs_track_their_drivers() {
        let n_s = 40;
        let n_t = 150;
        let p1: Vec<f64> = (0..n_s).map(|s| if s < 15 { 1.0 } else { 0.0 }).collect();
        let p2: Vec<f64> = (0..n_s).map(|s| if s >= 25 { 1.0 } else { 0.0 }).collect();
        let drv1: Vec<f64> = (0..n_t).map(|t| (t as f64 * 0.21).sin()).collect();
        let drv2: Vec<f64> = (0..n_t).map(|t| (t as f64 * 0.19 + 0.5).cos()).collect();
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                (0..n_s)
                    .map(|s| drv1[t] * p1[s] + drv2[t] * p2[s])
                    .collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        let eof = eof_analysis(&data, &w, 2);
        let rot = varimax(&data, &w, &eof, 2);
        // One rotated PC matches each driver (in some order, up to sign).
        let c11 = abs_corr(&rot.pcs[0], &drv1);
        let c12 = abs_corr(&rot.pcs[0], &drv2);
        let c21 = abs_corr(&rot.pcs[1], &drv1);
        let c22 = abs_corr(&rot.pcs[1], &drv2);
        let matched = (c11 > 0.95 && c22 > 0.95) || (c12 > 0.95 && c21 > 0.95);
        assert!(matched, "correlations {c11} {c12} {c21} {c22}");
    }
}
