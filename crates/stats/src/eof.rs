//! Empirical orthogonal functions (via the snapshot method) and VARIMAX
//! rotation — the machinery behind the paper's Figure 4.

use crate::linalg::symmetric_eigen;

/// An EOF decomposition of an anomaly dataset.
#[derive(Debug, Clone)]
pub struct Eof {
    /// `patterns[k]` is mode k in physical space (length `n_space`),
    /// scaled so that `x(t, s) ≈ Σ_k pcs[k][t] · patterns[k][s]`.
    pub patterns: Vec<Vec<f64>>,
    /// Principal-component series, unit variance.
    pub pcs: Vec<Vec<f64>>,
    /// Fraction of total (area-weighted) variance per mode.
    pub variance_fraction: Vec<f64>,
    /// Total area-weighted variance of the input.
    pub total_variance: f64,
}

/// EOF analysis of `data` (time-major: `data[t][s]`, anomalies) with
/// per-point area weights, keeping `k_keep` modes. Uses the snapshot
/// (temporal covariance) method, which only needs an `n_t × n_t`
/// eigenproblem — the standard trick when space outnumbers time.
pub fn eof_analysis(data: &[Vec<f64>], weights: &[f64], k_keep: usize) -> Eof {
    let n_t = data.len();
    assert!(n_t >= 2, "need at least two time samples");
    let n_s = data[0].len();
    assert_eq!(weights.len(), n_s);
    let sqrt_w: Vec<f64> = weights.iter().map(|w| w.max(0.0).sqrt()).collect();

    // Weighted snapshots X̃[t][s] = x · √w.
    let xt: Vec<Vec<f64>> = data
        .iter()
        .map(|row| {
            assert_eq!(row.len(), n_s);
            row.iter().zip(&sqrt_w).map(|(v, w)| v * w).collect()
        })
        .collect();

    // Gram matrix G = X̃ X̃ᵀ (n_t × n_t).
    let mut g = vec![0.0; n_t * n_t];
    for t1 in 0..n_t {
        for t2 in t1..n_t {
            let dot: f64 = xt[t1].iter().zip(&xt[t2]).map(|(a, b)| a * b).sum();
            g[t1 * n_t + t2] = dot;
            g[t2 * n_t + t1] = dot;
        }
    }
    let (lambda, u) = symmetric_eigen(&g, n_t);
    let total: f64 = lambda.iter().filter(|l| **l > 0.0).sum();
    let k_keep = k_keep.min(n_t);

    let mut patterns = Vec::with_capacity(k_keep);
    let mut pcs = Vec::with_capacity(k_keep);
    let mut varfrac = Vec::with_capacity(k_keep);
    for k in 0..k_keep {
        let lam = lambda[k].max(0.0);
        if lam <= 1e-12 * total.max(1e-300) {
            break;
        }
        // Spatial mode ẽ = X̃ᵀ u / √λ (unit norm in weighted space).
        let mut e = vec![0.0; n_s];
        for t in 0..n_t {
            let c = u[k][t];
            for (s, ev) in e.iter_mut().enumerate() {
                *ev += c * xt[t][s];
            }
        }
        let inv = 1.0 / lam.sqrt();
        for ev in e.iter_mut() {
            *ev *= inv;
        }
        // Physical pattern = ẽ √(λ/n_t) / √w ; PC = u √n_t (unit var).
        let amp = (lam / n_t as f64).sqrt();
        let pattern: Vec<f64> = e
            .iter()
            .zip(&sqrt_w)
            .map(|(ev, w)| if *w > 0.0 { ev * amp / w } else { 0.0 })
            .collect();
        let pc: Vec<f64> = u[k].iter().map(|v| v * (n_t as f64).sqrt()).collect();
        patterns.push(pattern);
        pcs.push(pc);
        varfrac.push(lam / total);
    }

    Eof {
        patterns,
        pcs,
        variance_fraction: varfrac,
        total_variance: total / n_t as f64,
    }
}

/// VARIMAX rotation of the leading `k` modes of `eof` (Kaiser
/// normalized), re-projecting the data to get rotated PCs. Rotated modes
/// are sorted by descending explained variance — the operation the paper
/// applies before plotting Figure 4.
pub fn varimax(data: &[Vec<f64>], weights: &[f64], eof: &Eof, k: usize) -> Eof {
    let k = k.min(eof.patterns.len());
    let n_t = data.len();
    let (l, colvar, order, sqrt_w) = varimax_rotated_loadings(weights, eof, k);
    let n_s = weights.len();

    let mut patterns = Vec::with_capacity(k);
    let mut varfrac = Vec::with_capacity(k);
    let mut pcs = Vec::with_capacity(k);
    for &kk in &order {
        let pattern: Vec<f64> = (0..n_s)
            .map(|s| {
                if sqrt_w[s] > 0.0 {
                    l[s * k + kk] / sqrt_w[s]
                } else {
                    0.0
                }
            })
            .collect();
        // PC by weighted projection onto the (unit) rotated direction.
        let norm: f64 = colvar[kk];
        let pc: Vec<f64> = (0..n_t)
            .map(|t| {
                let mut acc = 0.0;
                for s in 0..n_s {
                    acc += data[t][s] * weights[s].max(0.0) * pattern[s];
                }
                acc / norm.max(1e-300)
            })
            .collect();
        patterns.push(pattern);
        varfrac.push(colvar[kk] / eof.total_variance.max(1e-300));
        pcs.push(pc);
    }

    Eof {
        patterns,
        pcs,
        variance_fraction: varfrac,
        total_variance: eof.total_variance,
    }
}

/// The rotation core shared by the batch and streaming VARIMAX paths:
/// Kaiser-normalized pairwise rotations of the leading `k` loadings,
/// returning the rotated loading matrix `L[s·k + kk]`, the per-factor
/// explained variances, the descending-variance factor order, and the
/// `√w` used — everything except the PCs, which the two paths compute
/// differently (full-grid projection vs reduced-space projection).
fn varimax_rotated_loadings(
    weights: &[f64],
    eof: &Eof,
    k: usize,
) -> (Vec<f64>, Vec<f64>, Vec<usize>, Vec<f64>) {
    let n_s = weights.len();
    let sqrt_w: Vec<f64> = weights.iter().map(|w| w.max(0.0).sqrt()).collect();

    // Loadings in weighted space: L[s][k].
    let mut l = vec![0.0; n_s * k];
    for kk in 0..k {
        for s in 0..n_s {
            l[s * k + kk] = eof.patterns[kk][s] * sqrt_w[s];
        }
    }
    // Kaiser normalization.
    let mut h = vec![0.0; n_s];
    for s in 0..n_s {
        let norm: f64 = (0..k).map(|kk| l[s * k + kk] * l[s * k + kk]).sum();
        h[s] = norm.sqrt();
        if h[s] > 1e-12 {
            for kk in 0..k {
                l[s * k + kk] /= h[s];
            }
        }
    }
    // Pairwise rotations.
    let nf = n_s as f64;
    for _sweep in 0..50 {
        let mut total_rotation = 0.0;
        for p in 0..k {
            for q in p + 1..k {
                let mut a = 0.0;
                let mut b = 0.0;
                let mut c = 0.0;
                let mut d = 0.0;
                for s in 0..n_s {
                    let x = l[s * k + p];
                    let y = l[s * k + q];
                    let u = x * x - y * y;
                    let v = 2.0 * x * y;
                    a += u;
                    b += v;
                    c += u * u - v * v;
                    d += 2.0 * u * v;
                }
                let num = d - 2.0 * a * b / nf;
                let den = c - (a * a - b * b) / nf;
                let theta = 0.25 * num.atan2(den);
                if theta.abs() < 1e-9 {
                    continue;
                }
                total_rotation += theta.abs();
                let (ct, st) = (theta.cos(), theta.sin());
                for s in 0..n_s {
                    let x = l[s * k + p];
                    let y = l[s * k + q];
                    l[s * k + p] = ct * x + st * y;
                    l[s * k + q] = -st * x + ct * y;
                }
            }
        }
        if total_rotation < 1e-8 {
            break;
        }
    }
    // Denormalize.
    for s in 0..n_s {
        if h[s] > 1e-12 {
            for kk in 0..k {
                l[s * k + kk] *= h[s];
            }
        }
    }

    // Rotated explained variance per factor = Σ_s L².
    let mut order: Vec<usize> = (0..k).collect();
    let colvar: Vec<f64> = (0..k)
        .map(|kk| (0..n_s).map(|s| l[s * k + kk] * l[s * k + kk]).sum())
        .collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: degenerate input (a
    // NaN anomaly leaking through the filter chain) makes a column
    // variance NaN, and sorting must not panic on it.
    order.sort_by(|&a, &b| colvar[b].total_cmp(&colvar[a]));

    (l, colvar, order, sqrt_w)
}

/// Single-pass EOF analysis via an incremental rank-`r` subspace
/// sketch, the streaming counterpart of [`eof_analysis`].
///
/// Each pushed sample `x` (one monthly field, say) is area-weighted to
/// `y = x·√w` and split into its projection onto the current orthonormal
/// spatial basis `U` plus a residual; a significant residual direction
/// joins the basis until `r_max` directions are held, after which
/// further residual energy is *discarded* (and accounted in
/// [`discarded_fraction`]). Memory is `O(n_space · r_max)` for the basis
/// plus `O(n_time · r_max)` for the per-sample coefficients — never the
/// `O(n_space · n_time)` snapshot matrix the batch method stores.
///
/// For data whose true rank is `≤ r_max` the sketch is **exact**: the
/// spectrum of the coefficient Gram `CᵀC` (size `r × r`) equals the
/// non-zero spectrum of the batch snapshot Gram `X̃X̃ᵀ`, so
/// [`finish`] reproduces [`eof_analysis`] to rounding — the invariant
/// the property-test layer checks. For full-rank geophysical data the
/// result is the best rank-`r_max` approximation the greedy update
/// retains, with the lost energy reported, not hidden.
///
/// Because the time-axis operators of the Figure-4 pipeline (monthly
/// anomalies, detrending, Lanczos low-pass) are *linear and identical
/// per grid point*, applying them to the `r` coefficient columns at
/// [`analyze`] time equals applying them to every grid point's series —
/// that algebraic identity is what lets a century run regenerate
/// Figure 4 without ever materializing per-point histories.
///
/// [`discarded_fraction`]: StreamingEof::discarded_fraction
/// [`finish`]: StreamingEof::finish
/// [`analyze`]: StreamingEof::analyze
///
/// ```
/// use foam_stats::eof::{eof_analysis, StreamingEof};
///
/// // Rank-1 data: one spatial pattern, one driver.
/// let n_s = 20;
/// let pattern: Vec<f64> = (0..n_s).map(|s| (s as f64 * 0.3).sin()).collect();
/// let data: Vec<Vec<f64>> = (0..30)
///     .map(|t| pattern.iter().map(|p| p * (t as f64 * 0.7).cos()).collect())
///     .collect();
/// let w = vec![1.0; n_s];
///
/// let mut se = StreamingEof::new(&w, 4);
/// for row in &data {
///     se.push(row).unwrap();
/// }
/// let stream = se.finish(1);
/// let batch = eof_analysis(&data, &w, 1);
/// assert!((stream.variance_fraction[0] - batch.variance_fraction[0]).abs() < 1e-10);
/// assert_eq!(se.rank(), 1); // the sketch found exactly one direction
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingEof {
    weights: Vec<f64>,
    sqrt_w: Vec<f64>,
    r_max: usize,
    /// Residual significance threshold, relative to the sample norm.
    tol: f64,
    /// Orthonormal spatial basis in weighted space, `rank()` vectors of
    /// length `n_space`.
    basis: Vec<Vec<f64>>,
    /// Per-sample basis coefficients (row `t` has as many entries as
    /// the basis held when sample `t` arrived).
    coeffs: Vec<Vec<f64>>,
    /// Running Σ‖y‖² of every pushed (weighted) sample.
    total_energy: f64,
    /// Residual energy that no longer fit the basis.
    discarded_energy: f64,
}

impl StreamingEof {
    /// A sketch over `weights.len()` grid points holding at most
    /// `r_max` spatial directions.
    pub fn new(weights: &[f64], r_max: usize) -> Self {
        StreamingEof {
            weights: weights.to_vec(),
            sqrt_w: weights.iter().map(|w| w.max(0.0).sqrt()).collect(),
            r_max: r_max.max(1),
            tol: 1e-8,
            basis: Vec::new(),
            coeffs: Vec::new(),
            total_energy: 0.0,
            discarded_energy: 0.0,
        }
    }

    /// Samples consumed so far.
    pub fn samples(&self) -> usize {
        self.coeffs.len()
    }

    /// Spatial directions currently held (`≤ r_max`).
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// The area weights the sketch was built with.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fraction of the pushed (weighted) energy the basis could *not*
    /// represent — `0.0` means the sketch is exact.
    ///
    /// ```
    /// let se = foam_stats::eof::StreamingEof::new(&[1.0; 8], 4);
    /// assert_eq!(se.discarded_fraction(), 0.0);
    /// ```
    pub fn discarded_fraction(&self) -> f64 {
        if self.total_energy > 0.0 {
            self.discarded_energy / self.total_energy
        } else {
            0.0
        }
    }

    /// Consume one spatial sample (length `n_space`); rejects a length
    /// mismatch instead of panicking.
    pub fn push(&mut self, x: &[f64]) -> Result<(), crate::stream::StatsError> {
        if x.len() != self.sqrt_w.len() {
            return Err(crate::stream::StatsError::LengthMismatch {
                what: "streaming EOF sample",
                expected: self.sqrt_w.len(),
                got: x.len(),
            });
        }
        let y: Vec<f64> = x.iter().zip(&self.sqrt_w).map(|(v, w)| v * w).collect();
        let e0: f64 = y.iter().map(|v| v * v).sum();
        self.total_energy += e0;

        // Two Gram–Schmidt passes: the second projection removes the
        // rounding the first one leaves, keeping the basis orthonormal
        // over arbitrarily long streams.
        let mut c: Vec<f64> = Vec::with_capacity(self.basis.len() + 1);
        let mut resid = y;
        for _pass in 0..2 {
            for (i, b) in self.basis.iter().enumerate() {
                let dot: f64 = b.iter().zip(&resid).map(|(a, v)| a * v).sum();
                if _pass == 0 {
                    c.push(dot);
                } else {
                    c[i] += dot;
                }
                for (rv, bv) in resid.iter_mut().zip(b) {
                    *rv -= dot * bv;
                }
            }
        }
        let r2: f64 = resid.iter().map(|v| v * v).sum();
        let rn = r2.sqrt();
        if rn > self.tol * e0.sqrt() && rn > 0.0 {
            if self.basis.len() < self.r_max {
                for v in resid.iter_mut() {
                    *v /= rn;
                }
                self.basis.push(resid);
                c.push(rn);
            } else {
                self.discarded_energy += r2;
            }
        }
        self.coeffs.push(c);
        Ok(())
    }

    /// Finish the stream: EOF decomposition of everything pushed,
    /// keeping `k_keep` modes. Equivalent to [`eof_analysis`] on the
    /// full data for rank `≤ r_max` input.
    pub fn finish(&self, k_keep: usize) -> Eof {
        self.analyze(k_keep, |col| col).eof
    }

    /// Finish the stream after applying a **linear time-axis
    /// transform** (e.g. monthly anomalies → detrend → low-pass) to the
    /// data. `transform` receives one length-`samples()` series and
    /// must return one of the same length; it is applied to each of the
    /// `rank()` coefficient columns, which — by linearity — equals
    /// applying it to every grid point's series of the original data.
    /// Returns a [`StreamedAnalysis`] carrying the EOF plus the reduced
    /// basis, from which VARIMAX rotations and box-mean series can be
    /// computed without the full data matrix.
    ///
    /// # Panics
    /// If `transform` changes the series length.
    pub fn analyze(
        &self,
        k_keep: usize,
        transform: impl Fn(Vec<f64>) -> Vec<f64>,
    ) -> StreamedAnalysis {
        let r = self.basis.len();
        let n_t = self.coeffs.len();
        let empty = |total: f64| StreamedAnalysis {
            eof: Eof {
                patterns: Vec::new(),
                pcs: Vec::new(),
                variance_fraction: Vec::new(),
                total_variance: total,
            },
            weights: self.weights.clone(),
            sqrt_w: self.sqrt_w.clone(),
            basis: self.basis.clone(),
            coeffs: Vec::new(),
        };
        if r == 0 || n_t < 2 {
            return empty(0.0);
        }
        // Transform each coefficient column on the time axis (rows are
        // ragged — a sample pushed before direction j existed has
        // coefficient 0 on j).
        let mut cols: Vec<Vec<f64>> = Vec::with_capacity(r);
        for j in 0..r {
            let col: Vec<f64> = self
                .coeffs
                .iter()
                .map(|row| row.get(j).copied().unwrap_or(0.0))
                .collect();
            let col = transform(col);
            assert_eq!(
                col.len(),
                n_t,
                "time-axis transform must preserve the series length"
            );
            cols.push(col);
        }
        // Coefficient Gram S = CᵀC (r × r) — same non-zero spectrum as
        // the batch snapshot Gram CCᵀ (n_t × n_t).
        let mut s = vec![0.0; r * r];
        let mut trace = 0.0;
        for i in 0..r {
            for j in i..r {
                let dot: f64 = cols[i].iter().zip(&cols[j]).map(|(a, b)| a * b).sum();
                s[i * r + j] = dot;
                s[j * r + i] = dot;
                if i == j {
                    trace += dot;
                }
            }
        }
        let (lambda, v) = symmetric_eigen(&s, r);
        // The denominator of the variance fractions includes the energy
        // the sketch discarded: the transforms used here (anomaly
        // removal, detrending, low-pass) are contractions, so this
        // under-states rather than over-states each mode's share.
        let total = trace + self.discarded_energy;
        if total <= 0.0 {
            return empty(0.0);
        }
        let k_keep = k_keep.min(r);
        let n_s = self.sqrt_w.len();
        let mut patterns = Vec::with_capacity(k_keep);
        let mut pcs = Vec::with_capacity(k_keep);
        let mut varfrac = Vec::with_capacity(k_keep);
        let mut kept_coeffs: Vec<Vec<f64>> = vec![Vec::with_capacity(r); n_t];
        for (t, row) in kept_coeffs.iter_mut().enumerate() {
            row.extend((0..r).map(|j| cols[j][t]));
        }
        for k in 0..k_keep {
            let lam = lambda[k].max(0.0);
            if lam <= 1e-12 * total.max(1e-300) {
                break;
            }
            // Spatial mode: if S v = λ v then the weighted-space EOF is
            // ẽ = U v (see the batch method: ẽ = X̃ᵀ u / √λ = U v).
            let mut e = vec![0.0; n_s];
            for (j, b) in self.basis.iter().enumerate() {
                let cj = v[k][j];
                for (ev, bv) in e.iter_mut().zip(b) {
                    *ev += cj * bv;
                }
            }
            let amp = (lam / n_t as f64).sqrt();
            let pattern: Vec<f64> = e
                .iter()
                .zip(&self.sqrt_w)
                .map(|(ev, w)| if *w > 0.0 { ev * amp / w } else { 0.0 })
                .collect();
            // PC: u[t] = (C v)[t] / √λ, scaled by √n_t to unit variance.
            let scale = (n_t as f64).sqrt() / lam.sqrt();
            let pc: Vec<f64> = kept_coeffs
                .iter()
                .map(|row| row.iter().zip(&v[k]).map(|(a, b)| a * b).sum::<f64>() * scale)
                .collect();
            patterns.push(pattern);
            pcs.push(pc);
            varfrac.push(lam / total);
        }
        StreamedAnalysis {
            eof: Eof {
                patterns,
                pcs,
                variance_fraction: varfrac,
                total_variance: total / n_t as f64,
            },
            weights: self.weights.clone(),
            sqrt_w: self.sqrt_w.clone(),
            basis: self.basis.clone(),
            coeffs: kept_coeffs,
        }
    }
}

impl foam_ckpt::Codec for StreamingEof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.weights.encode(buf);
        self.sqrt_w.encode(buf);
        self.r_max.encode(buf);
        self.tol.encode(buf);
        self.basis.encode(buf);
        self.coeffs.encode(buf);
        self.total_energy.encode(buf);
        self.discarded_energy.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        let weights = Vec::<f64>::decode(r)?;
        let sqrt_w = Vec::<f64>::decode(r)?;
        let r_max = usize::decode(r)?;
        let tol = f64::decode(r)?;
        let basis = Vec::<Vec<f64>>::decode(r)?;
        let coeffs = Vec::<Vec<f64>>::decode(r)?;
        let total_energy = f64::decode(r)?;
        let discarded_energy = f64::decode(r)?;
        if sqrt_w.len() != weights.len()
            || basis.len() > r_max
            || basis.iter().any(|b| b.len() != weights.len())
            || coeffs.iter().any(|c| c.len() > basis.len())
        {
            return Err(foam_ckpt::CkptError::Corrupt(
                "streaming EOF state is internally inconsistent".into(),
            ));
        }
        Ok(StreamingEof {
            weights,
            sqrt_w,
            r_max,
            tol,
            basis,
            coeffs,
            total_energy,
            discarded_energy,
        })
    }
}

/// The result of [`StreamingEof::analyze`]: an [`Eof`] plus the reduced
/// spatial basis and (transformed) coefficient series, enough to rotate
/// and to project spatial profiles — everything Figure 4 needs —
/// without the `O(grid × months)` data matrix.
#[derive(Debug, Clone)]
pub struct StreamedAnalysis {
    /// The unrotated EOF decomposition.
    pub eof: Eof,
    weights: Vec<f64>,
    sqrt_w: Vec<f64>,
    basis: Vec<Vec<f64>>,
    /// Transformed coefficients, one length-`rank` row per sample.
    coeffs: Vec<Vec<f64>>,
}

impl StreamedAnalysis {
    /// VARIMAX rotation of the leading `k` modes — the same rotation as
    /// the batch [`varimax`] (the loading algebra never touches the
    /// data matrix), with the rotated PCs recovered by reduced-space
    /// projection instead of a full-grid sweep.
    ///
    /// ```
    /// use foam_stats::eof::StreamingEof;
    ///
    /// let w = vec![1.0; 12];
    /// let mut se = StreamingEof::new(&w, 3);
    /// for t in 0..40 {
    ///     let row: Vec<f64> = (0..12)
    ///         .map(|s| (t as f64 * 0.4).sin() * (s as f64 * 0.5).cos())
    ///         .collect();
    ///     se.push(&row).unwrap();
    /// }
    /// let analysis = se.analyze(2, |col| col);
    /// let rot = analysis.varimax(1);
    /// assert_eq!(rot.patterns.len(), 1);
    /// ```
    pub fn varimax(&self, k: usize) -> Eof {
        let k = k.min(self.eof.patterns.len());
        let (l, colvar, order, sqrt_w) = varimax_rotated_loadings(&self.weights, &self.eof, k);
        let n_s = self.weights.len();
        let mut patterns = Vec::with_capacity(k);
        let mut varfrac = Vec::with_capacity(k);
        let mut pcs = Vec::with_capacity(k);
        for &kk in &order {
            let pattern: Vec<f64> = (0..n_s)
                .map(|s| {
                    if sqrt_w[s] > 0.0 {
                        l[s * k + kk] / sqrt_w[s]
                    } else {
                        0.0
                    }
                })
                .collect();
            let norm: f64 = colvar[kk];
            // Σ_s x[t][s]·w_s·pattern_s reduces to a rank-space dot
            // product (x̃ = C Uᵀ), so each PC costs O(n_t·r + n_s·r).
            let weighted: Vec<f64> = (0..n_s)
                .map(|s| self.weights[s].max(0.0) * pattern[s])
                .collect();
            let pc: Vec<f64> = self
                .series(&weighted)
                .into_iter()
                .map(|v| v / norm.max(1e-300))
                .collect();
            patterns.push(pattern);
            varfrac.push(colvar[kk] / self.eof.total_variance.max(1e-300));
            pcs.push(pc);
        }
        Eof {
            patterns,
            pcs,
            variance_fraction: varfrac,
            total_variance: self.eof.total_variance,
        }
    }

    /// The time series `Σ_s profile[s] · x[t][s]` of a fixed spatial
    /// profile against the (transformed) data — box means, basin
    /// loadings — computed in the reduced space. A zero-weight point
    /// contributes nothing regardless of its profile value.
    ///
    /// # Panics
    /// If `profile.len()` differs from the grid size.
    pub fn series(&self, profile: &[f64]) -> Vec<f64> {
        assert_eq!(profile.len(), self.sqrt_w.len());
        // x[t][s] = x̃[t][s]/√w_s and x̃ = C Uᵀ, so the series is
        // C · (Uᵀ q) with q_s = profile_s/√w_s.
        let q: Vec<f64> = profile
            .iter()
            .zip(&self.sqrt_w)
            .map(|(p, w)| if *w > 0.0 { p / w } else { 0.0 })
            .collect();
        let proj: Vec<f64> = self
            .basis
            .iter()
            .map(|b| b.iter().zip(&q).map(|(a, v)| a * v).sum())
            .collect();
        self.coeffs
            .iter()
            .map(|row| row.iter().zip(&proj).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Samples in the analysis window.
    pub fn samples(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two orthogonal spatial patterns with well separated variances.
    fn synthetic(n_t: usize, n_s: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let p1: Vec<f64> = (0..n_s)
            .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n_s as f64).sin())
            .collect();
        let p2: Vec<f64> = (0..n_s)
            .map(|s| (4.0 * std::f64::consts::PI * s as f64 / n_s as f64).cos())
            .collect();
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                let a = 3.0 * (t as f64 * 0.37).sin();
                let b = 1.0 * (t as f64 * 0.11).cos();
                (0..n_s).map(|s| a * p1[s] + b * p2[s]).collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        (data, w, p1, p2)
    }

    fn abs_corr(a: &[f64], b: &[f64]) -> f64 {
        crate::series::correlation(a, b).abs()
    }

    #[test]
    fn recovers_dominant_pattern() {
        let (data, w, p1, _p2) = synthetic(80, 64);
        let eof = eof_analysis(&data, &w, 3);
        assert!(eof.variance_fraction[0] > 0.7);
        assert!(abs_corr(&eof.patterns[0], &p1) > 0.99);
        // Variance fractions are a partition.
        let s: f64 = eof.variance_fraction.iter().sum();
        assert!(s <= 1.0 + 1e-9);
        assert!(eof.variance_fraction[0] >= eof.variance_fraction[1]);
    }

    #[test]
    fn pcs_have_unit_variance_and_are_orthogonal() {
        let (data, w, _, _) = synthetic(100, 40);
        let eof = eof_analysis(&data, &w, 2);
        for pc in &eof.pcs {
            let var: f64 = pc.iter().map(|v| v * v).sum::<f64>() / pc.len() as f64;
            assert!((var - 1.0).abs() < 1e-9, "pc variance {var}");
        }
        let dot: f64 = eof.pcs[0]
            .iter()
            .zip(&eof.pcs[1])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / eof.pcs[0].len() as f64;
        assert!(dot.abs() < 1e-9);
    }

    #[test]
    fn reconstruction_from_two_modes_is_exact() {
        let (data, w, _, _) = synthetic(60, 32);
        let eof = eof_analysis(&data, &w, 2);
        for t in (0..60).step_by(13) {
            for s in (0..32).step_by(5) {
                let rec: f64 = (0..2).map(|k| eof.pcs[k][t] * eof.patterns[k][s]).sum();
                assert!(
                    (rec - data[t][s]).abs() < 1e-8,
                    "t={t} s={s}: {rec} vs {}",
                    data[t][s]
                );
            }
        }
    }

    #[test]
    fn zero_weight_points_are_excluded() {
        let (mut data, mut w, _, _) = synthetic(40, 20);
        // Poison a masked point; with w = 0 it must not affect anything.
        w[7] = 0.0;
        for row in data.iter_mut() {
            row[7] = 1.0e6;
        }
        let eof = eof_analysis(&data, &w, 1);
        assert_eq!(eof.patterns[0][7], 0.0);
        assert!(eof.variance_fraction[0] > 0.5);
    }

    #[test]
    fn varimax_survives_a_nan_variance() {
        // Regression: the explained-variance sort used
        // `partial_cmp(..).unwrap()`, so a single NaN loading (e.g. an
        // undefined anomaly upstream) made the whole rotation panic.
        // With `total_cmp` the rotation completes and the clean modes
        // still come out sorted ahead of the poisoned one.
        let (data, w, _, _) = synthetic(60, 32);
        let mut eof = eof_analysis(&data, &w, 2);
        eof.patterns[1][3] = f64::NAN;
        // The NaN spreads through the rotation (Kaiser normalization
        // couples the columns), so the *values* are garbage — what the
        // fix guarantees is that the analysis returns with the right
        // shape instead of aborting.
        let rot = varimax(&data, &w, &eof, 2);
        assert_eq!(rot.patterns.len(), 2);
        assert_eq!(rot.variance_fraction.len(), 2);
    }

    #[test]
    fn varimax_recovers_localized_structures() {
        // Two disjoint-support "basin" patterns with *similar* variances:
        // plain EOF mixes them; VARIMAX should separate.
        let n_s = 60;
        let n_t = 200;
        let sup1 = 5..20;
        let sup2 = 35..50;
        let p1: Vec<f64> = (0..n_s)
            .map(|s| if sup1.contains(&s) { 1.0 } else { 0.0 })
            .collect();
        let p2: Vec<f64> = (0..n_s)
            .map(|s| if sup2.contains(&s) { 1.0 } else { 0.0 })
            .collect();
        // Nearly equal amplitudes with slightly correlated drivers — the
        // degenerate case that mixes EOFs.
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                let a = (t as f64 * 0.13).sin() + 0.12 * (t as f64 * 0.05).cos();
                let b = 1.05 * (t as f64 * 0.131 + 1.0).sin();
                (0..n_s).map(|s| a * p1[s] + b * p2[s]).collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        let eof = eof_analysis(&data, &w, 2);
        let rot = varimax(&data, &w, &eof, 2);
        // Each rotated factor concentrates its energy on one support.
        for pattern in &rot.patterns[..2] {
            let e1: f64 = sup1.clone().map(|s| pattern[s] * pattern[s]).sum();
            let e2: f64 = sup2.clone().map(|s| pattern[s] * pattern[s]).sum();
            let (hi, lo) = if e1 > e2 { (e1, e2) } else { (e2, e1) };
            assert!(hi > 9.0 * lo, "rotated factor not simple: {e1} vs {e2}");
        }
        // Rotation preserves the total explained variance of the pair.
        let before: f64 = eof.variance_fraction[..2].iter().sum();
        let after: f64 = rot.variance_fraction[..2].iter().sum();
        assert!((before - after).abs() < 0.02, "{before} vs {after}");
    }

    #[test]
    fn varimax_pcs_track_their_drivers() {
        let n_s = 40;
        let n_t = 150;
        let p1: Vec<f64> = (0..n_s).map(|s| if s < 15 { 1.0 } else { 0.0 }).collect();
        let p2: Vec<f64> = (0..n_s).map(|s| if s >= 25 { 1.0 } else { 0.0 }).collect();
        let drv1: Vec<f64> = (0..n_t).map(|t| (t as f64 * 0.21).sin()).collect();
        let drv2: Vec<f64> = (0..n_t).map(|t| (t as f64 * 0.19 + 0.5).cos()).collect();
        let data: Vec<Vec<f64>> = (0..n_t)
            .map(|t| {
                (0..n_s)
                    .map(|s| drv1[t] * p1[s] + drv2[t] * p2[s])
                    .collect()
            })
            .collect();
        let w = vec![1.0; n_s];
        let eof = eof_analysis(&data, &w, 2);
        let rot = varimax(&data, &w, &eof, 2);
        // One rotated PC matches each driver (in some order, up to sign).
        let c11 = abs_corr(&rot.pcs[0], &drv1);
        let c12 = abs_corr(&rot.pcs[0], &drv2);
        let c21 = abs_corr(&rot.pcs[1], &drv1);
        let c22 = abs_corr(&rot.pcs[1], &drv2);
        let matched = (c11 > 0.95 && c22 > 0.95) || (c12 > 0.95 && c21 > 0.95);
        assert!(matched, "correlations {c11} {c12} {c21} {c22}");
    }

    #[test]
    fn streaming_eof_matches_batch_on_low_rank_data() {
        let (data, w, _, _) = synthetic(80, 64);
        let batch = eof_analysis(&data, &w, 2);
        let mut se = StreamingEof::new(&w, 6);
        for row in &data {
            se.push(row).unwrap();
        }
        assert_eq!(se.rank(), 2, "rank-2 data must yield a rank-2 sketch");
        assert_eq!(se.discarded_fraction(), 0.0);
        let stream = se.finish(2);
        assert_eq!(stream.patterns.len(), batch.patterns.len());
        for k in 0..2 {
            assert!(
                (stream.variance_fraction[k] - batch.variance_fraction[k]).abs() < 1e-10,
                "mode {k} variance fraction"
            );
            assert!(abs_corr(&stream.patterns[k], &batch.patterns[k]) > 1.0 - 1e-9);
            assert!(abs_corr(&stream.pcs[k], &batch.pcs[k]) > 1.0 - 1e-9);
        }
        assert!((stream.total_variance - batch.total_variance).abs() < 1e-9 * batch.total_variance);
    }

    #[test]
    fn streaming_varimax_matches_batch_varimax() {
        let (data, w, _, _) = synthetic(100, 48);
        let batch_eof = eof_analysis(&data, &w, 3);
        let batch_rot = varimax(&data, &w, &batch_eof, 2);
        let mut se = StreamingEof::new(&w, 5);
        for row in &data {
            se.push(row).unwrap();
        }
        let analysis = se.analyze(3, |col| col);
        let rot = analysis.varimax(2);
        assert_eq!(rot.patterns.len(), batch_rot.patterns.len());
        for k in 0..rot.patterns.len() {
            assert!(
                (rot.variance_fraction[k] - batch_rot.variance_fraction[k]).abs() < 1e-8,
                "rotated mode {k}: {} vs {}",
                rot.variance_fraction[k],
                batch_rot.variance_fraction[k]
            );
            assert!(abs_corr(&rot.patterns[k], &batch_rot.patterns[k]) > 1.0 - 1e-7);
            assert!(abs_corr(&rot.pcs[k], &batch_rot.pcs[k]) > 1.0 - 1e-7);
        }
    }

    #[test]
    fn streaming_time_transform_equals_per_point_transform() {
        // Applying a linear time operator to the coefficient columns
        // must equal applying it per grid point — here: detrending.
        let (data, w, _, _) = synthetic(60, 32);
        // Add a linear trend everywhere so the transform has work to do.
        let trended: Vec<Vec<f64>> = data
            .iter()
            .enumerate()
            .map(|(t, row)| row.iter().map(|v| v + 0.05 * t as f64).collect())
            .collect();
        let mut per_point = trended.clone();
        for s in 0..32 {
            let mut col: Vec<f64> = (0..60).map(|t| trended[t][s]).collect();
            crate::series::detrend(&mut col);
            for t in 0..60 {
                per_point[t][s] = col[t];
            }
        }
        let batch = eof_analysis(&per_point, &w, 2);
        let mut se = StreamingEof::new(&w, 8);
        for row in &trended {
            se.push(row).unwrap();
        }
        let stream = se
            .analyze(2, |mut col| {
                crate::series::detrend(&mut col);
                col
            })
            .eof;
        for k in 0..2 {
            assert!(
                (stream.variance_fraction[k] - batch.variance_fraction[k]).abs() < 1e-9,
                "mode {k}"
            );
            assert!(abs_corr(&stream.patterns[k], &batch.patterns[k]) > 1.0 - 1e-8);
        }
    }

    #[test]
    fn streaming_eof_codec_resume_is_identical() {
        use foam_ckpt::{ByteReader, Codec};
        let (data, w, _, _) = synthetic(50, 24);
        let mut whole = StreamingEof::new(&w, 4);
        for row in &data {
            whole.push(row).unwrap();
        }
        for split in [0usize, 1, 25, 49, 50] {
            let mut a = StreamingEof::new(&w, 4);
            for row in &data[..split] {
                a.push(row).unwrap();
            }
            let bytes = a.to_bytes();
            let mut r = ByteReader::new(&bytes);
            let mut b = StreamingEof::decode(&mut r).unwrap();
            for row in &data[split..] {
                b.push(row).unwrap();
            }
            assert_eq!(b, whole, "resume at {split} diverged");
        }
    }

    #[test]
    fn streaming_eof_discards_beyond_capacity_and_reports_it() {
        // Full-rank noise into a rank-2 sketch: energy must be dropped
        // *and* accounted for.
        let n_s = 16;
        let mut x = 1u64;
        let mut next = move || {
            // xorshift — deterministic, no external RNG.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) - 0.5
        };
        let w = vec![1.0; n_s];
        let mut se = StreamingEof::new(&w, 2);
        for _ in 0..30 {
            let row: Vec<f64> = (0..n_s).map(|_| next()).collect();
            se.push(&row).unwrap();
        }
        assert_eq!(se.rank(), 2);
        assert!(se.discarded_fraction() > 0.1, "{}", se.discarded_fraction());
        assert!(se.discarded_fraction() < 1.0);
        // Variance fractions stay a sub-partition of 1.
        let eof = se.finish(2);
        let s: f64 = eof.variance_fraction.iter().sum();
        assert!(s > 0.0 && s <= 1.0 + 1e-9);
    }

    #[test]
    fn streaming_eof_rejects_mismatched_sample() {
        let mut se = StreamingEof::new(&[1.0; 8], 2);
        assert!(se.push(&[0.0; 7]).is_err());
    }
}
