//! Streaming (single-pass) statistical estimators.
//!
//! Century-scale runs cannot afford the `O(grid × months)` history the
//! batch analyses in this crate consume: a 100-simulated-year run on
//! the paper's ocean grid would retain 1,200 monthly fields before a
//! single statistic is computed. The types here consume **one sample at
//! a time** and hold state of size `O(grid)` (plus `O(months × rank)`
//! for the EOF sketch coefficients), so the coupled driver can
//! regenerate the Figure 3/4 diagnostics from a stream.
//!
//! Equivalence with the batch implementations is part of the contract,
//! proven by the property-test layer (`tests/stream_stats_props.rs`):
//!
//! * running sums ([`OnlineMoments::mean`], [`FieldMoments::mean_field`])
//!   accumulate in the same order as the batch code, so sequential
//!   streaming is **bit-identical** to batch;
//! * variances use Welford's update, which matches the two-pass batch
//!   computation to ~1e-10 relative;
//! * [`OnlineMoments::merge`]/[`FieldMoments::merge`] (Chan's parallel
//!   update) support "split anywhere, merge, continue" for
//!   checkpoint/resume and ensemble reduction.
//!
//! All streaming state implements `foam_ckpt::Codec` with raw IEEE-754
//! bits, so a checkpointed stream resumes bit-identically.

use foam_ckpt::{ByteReader, CkptError, Codec};

/// Typed error of the statistics layer — the panic-free alternative to
/// `assert!` deep inside a reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A reduction over zero members/samples was requested.
    Empty { what: &'static str },
    /// Two series/fields that must have equal lengths do not.
    LengthMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty { what } => write!(f, "{what} over zero members"),
            StatsError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Online mean/variance of a scalar series (Welford's algorithm), plus
/// a running sum so the mean reproduces the batch `Σx / n` bit-for-bit.
///
/// ```
/// use foam_stats::stream::OnlineMoments;
///
/// let mut m = OnlineMoments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert_eq!(m.mean(), 2.5);
/// assert!((m.variance() - 1.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    sum: f64,
    mean_w: f64,
    m2: f64,
}

impl OnlineMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean_w;
        self.mean_w += delta / self.n as f64;
        self.m2 += delta * (x - self.mean_w);
    }

    /// Samples consumed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True until the first sample arrives.
    ///
    /// ```
    /// assert!(foam_stats::stream::OnlineMoments::new().is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Running sum Σx (the batch accumulation order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean as `Σx / n` — bit-identical to the batch
    /// `iter().sum::<f64>() / n`. `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Population variance (Welford `M2 / n`); `0.0` when fewer than two
    /// samples have arrived.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    ///
    /// ```
    /// use foam_stats::stream::OnlineMoments;
    ///
    /// let mut m = OnlineMoments::new();
    /// m.push(1.0);
    /// m.push(3.0);
    /// assert_eq!(m.std(), 1.0);
    /// ```
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Fold another accumulator in (Chan's parallel update) — the
    /// "split anywhere, merge, continue" primitive.
    ///
    /// ```
    /// use foam_stats::stream::OnlineMoments;
    ///
    /// let mut a = OnlineMoments::new();
    /// let mut b = OnlineMoments::new();
    /// a.push(1.0);
    /// b.push(3.0);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.mean(), 2.0);
    /// ```
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean_w - self.mean_w;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean_w += delta * other.n as f64 / n;
        self.sum += other.sum;
        self.n += other.n;
    }
}

impl Codec for OnlineMoments {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.n.encode(buf);
        self.sum.encode(buf);
        self.mean_w.encode(buf);
        self.m2.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(OnlineMoments {
            n: u64::decode(r)?,
            sum: f64::decode(r)?,
            mean_w: f64::decode(r)?,
            m2: f64::decode(r)?,
        })
    }
}

/// Per-element online mean/variance of a stream of equal-length vectors
/// — one [`OnlineMoments`] per grid point (stored struct-of-arrays), so
/// the memory footprint is `O(grid)` regardless of how many samples
/// flow through.
///
/// Used two ways: per-gridpoint moments of monthly SST fields over time
/// (the Figure-3 time mean), and per-timestep moments of diagnostic
/// series across ensemble members (the streaming mean/spread
/// reduction).
///
/// ```
/// use foam_stats::stream::FieldMoments;
///
/// let mut m = FieldMoments::new(2);
/// m.push(&[1.0, 10.0]).unwrap();
/// m.push(&[3.0, 10.0]).unwrap();
/// assert_eq!(m.mean_field(), vec![2.0, 10.0]);
/// assert_eq!(m.std_field(), vec![1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMoments {
    n: u64,
    sum: Vec<f64>,
    mean_w: Vec<f64>,
    m2: Vec<f64>,
}

impl FieldMoments {
    /// An empty accumulator for vectors of length `len`.
    pub fn new(len: usize) -> Self {
        FieldMoments {
            n: 0,
            sum: vec![0.0; len],
            mean_w: vec![0.0; len],
            m2: vec![0.0; len],
        }
    }

    /// Element count of the accumulated vectors.
    pub fn len(&self) -> usize {
        self.sum.len()
    }

    /// True until the first sample arrives.
    ///
    /// ```
    /// assert!(foam_stats::stream::FieldMoments::new(3).is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Samples consumed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Consume one sample vector; rejects a length mismatch instead of
    /// panicking.
    pub fn push(&mut self, x: &[f64]) -> Result<(), StatsError> {
        if x.len() != self.sum.len() {
            return Err(StatsError::LengthMismatch {
                what: "field moments sample",
                expected: self.sum.len(),
                got: x.len(),
            });
        }
        self.n += 1;
        let nf = self.n as f64;
        for (i, &v) in x.iter().enumerate() {
            self.sum[i] += v;
            let delta = v - self.mean_w[i];
            self.mean_w[i] += delta / nf;
            self.m2[i] += delta * (v - self.mean_w[i]);
        }
        Ok(())
    }

    /// Element-wise mean `Σx / n` — the batch accumulation order, so a
    /// sequential stream matches the batch mean bit-for-bit. All-`NaN`
    /// when empty.
    pub fn mean_field(&self) -> Vec<f64> {
        let nf = self.n as f64;
        self.sum.iter().map(|s| s / nf).collect()
    }

    /// Element-wise population variance.
    pub fn variance_field(&self) -> Vec<f64> {
        if self.n < 2 {
            return vec![0.0; self.m2.len()];
        }
        let nf = self.n as f64;
        self.m2.iter().map(|m| m / nf).collect()
    }

    /// Element-wise population standard deviation — the ensemble
    /// *spread* when the samples are member series.
    pub fn std_field(&self) -> Vec<f64> {
        self.variance_field().into_iter().map(f64::sqrt).collect()
    }

    /// Fold another accumulator in (element-wise Chan update); rejects a
    /// length mismatch.
    ///
    /// ```
    /// use foam_stats::stream::FieldMoments;
    ///
    /// let mut a = FieldMoments::new(1);
    /// let mut b = FieldMoments::new(1);
    /// a.push(&[1.0]).unwrap();
    /// b.push(&[3.0]).unwrap();
    /// a.merge(&b).unwrap();
    /// assert_eq!(a.mean_field(), vec![2.0]);
    /// ```
    pub fn merge(&mut self, other: &FieldMoments) -> Result<(), StatsError> {
        if other.len() != self.len() {
            return Err(StatsError::LengthMismatch {
                what: "field moments merge",
                expected: self.len(),
                got: other.len(),
            });
        }
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            *self = other.clone();
            return Ok(());
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        for i in 0..self.len() {
            let delta = other.mean_w[i] - self.mean_w[i];
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
            self.mean_w[i] += delta * nb / n;
            self.sum[i] += other.sum[i];
        }
        self.n += other.n;
        Ok(())
    }
}

impl Codec for FieldMoments {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.n.encode(buf);
        self.sum.encode(buf);
        self.mean_w.encode(buf);
        self.m2.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let n = u64::decode(r)?;
        let sum = Vec::<f64>::decode(r)?;
        let mean_w = Vec::<f64>::decode(r)?;
        let m2 = Vec::<f64>::decode(r)?;
        if mean_w.len() != sum.len() || m2.len() != sum.len() {
            return Err(CkptError::Corrupt(
                "field moments arrays disagree on length".into(),
            ));
        }
        Ok(FieldMoments { n, sum, mean_w, m2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_mean_is_bit_identical_to_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin() * 1e3).collect();
        let mut m = OnlineMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let batch = xs.iter().sum::<f64>() / xs.len() as f64;
        assert_eq!(m.mean().to_bits(), batch.to_bits());
    }

    #[test]
    fn welford_variance_matches_two_pass() {
        let xs: Vec<f64> = (0..500).map(|i| 20.0 + (i as f64 * 0.3).cos()).collect();
        let mut m = OnlineMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((m.variance() - var).abs() < 1e-10 * var.max(1.0));
    }

    #[test]
    fn merge_equals_sequential_to_tolerance() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64).sqrt() - 8.0).collect();
        let mut whole = OnlineMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        for split in [0, 1, 150, 299, 300] {
            let mut a = OnlineMoments::new();
            let mut b = OnlineMoments::new();
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-12);
            assert!((a.variance() - whole.variance()).abs() < 1e-10);
        }
    }

    #[test]
    fn field_moments_reject_mismatched_lengths() {
        let mut m = FieldMoments::new(3);
        let err = m.push(&[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            StatsError::LengthMismatch {
                what: "field moments sample",
                expected: 3,
                got: 2
            }
        );
        let other = FieldMoments::new(2);
        assert!(m.merge(&other).is_err());
    }

    #[test]
    fn codec_roundtrip_is_bit_exact() {
        let mut m = FieldMoments::new(4);
        m.push(&[1.0, -2.0, 3.5, 0.0]).unwrap();
        m.push(&[0.25, 2.0, -3.5, 1e-300]).unwrap();
        let bytes = m.to_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = FieldMoments::decode(&mut r).unwrap();
        assert_eq!(m, back);
    }
}
