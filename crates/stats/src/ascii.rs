//! ASCII map and series rendering — the terminal stand-in for the
//! paper's colour plates (Figures 3 and 4).

use foam_grid::Field2;

const RAMP: &[u8] = b" .:-=+*#%@";
const DIVERGING: &[u8] = b"#*+-. ,~oO"; // negative .. positive

/// Render a field as an ASCII map, north at the top. Cells where `mask`
/// is false print as `'L'` (land). Returns the map plus a value legend.
pub fn render_map(f: &Field2, mask: Option<&[bool]>, title: &str) -> String {
    let (nx, ny) = (f.nx(), f.ny());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for j in 0..ny {
        for i in 0..nx {
            if masked(mask, nx, i, j) {
                continue;
            }
            let v = f.get(i, j);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        hi = lo + 1.0;
    }
    let mut out = String::new();
    out.push_str(&format!("{title}  [{lo:.2} .. {hi:.2}]\n"));
    for j in (0..ny).rev() {
        for i in 0..nx {
            if masked(mask, nx, i, j) {
                out.push('L');
            } else {
                let v = (f.get(i, j) - lo) / (hi - lo);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "scale: '{}' = {:.2} … '{}' = {:.2}\n",
        RAMP[0] as char,
        lo,
        RAMP[RAMP.len() - 1] as char,
        hi
    ));
    out
}

/// Render a signed field with a diverging ramp centered on zero
/// (difference maps like Figure 3c).
pub fn render_diff_map(f: &Field2, mask: Option<&[bool]>, title: &str) -> String {
    let (nx, ny) = (f.nx(), f.ny());
    let mut amp = 0.0f64;
    for j in 0..ny {
        for i in 0..nx {
            if !masked(mask, nx, i, j) {
                amp = amp.max(f.get(i, j).abs());
            }
        }
    }
    if amp == 0.0 {
        amp = 1.0;
    }
    let mut out = String::new();
    out.push_str(&format!("{title}  [±{amp:.2}]\n"));
    for j in (0..ny).rev() {
        for i in 0..nx {
            if masked(mask, nx, i, j) {
                out.push('L');
            } else {
                let v = (f.get(i, j) / amp).clamp(-1.0, 1.0);
                let idx = (((v + 1.0) / 2.0 * (DIVERGING.len() - 1) as f64).round() as usize)
                    .min(DIVERGING.len() - 1);
                out.push(DIVERGING[idx] as char);
            }
        }
        out.push('\n');
    }
    out
}

/// A one-line sparkline for a time series (Figure 4b's temporal pattern).
pub fn sparkline(x: &[f64], width: usize) -> String {
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if x.is_empty() {
        return String::new();
    }
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    let n = x.len();
    (0..width.min(n))
        .map(|c| {
            // Average the bucket of samples mapping to this column.
            let a = c * n / width.min(n);
            let b = ((c + 1) * n / width.min(n)).max(a + 1);
            let v: f64 = x[a..b].iter().sum::<f64>() / (b - a) as f64;
            let idx = (((v - lo) / span) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

#[inline]
fn masked(mask: Option<&[bool]>, nx: usize, i: usize, j: usize) -> bool {
    mask.map(|m| !m[j * nx + i]).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_has_expected_shape_and_legend() {
        let f = Field2::from_fn(10, 4, |i, j| (i + j) as f64);
        let s = render_map(&f, None, "test");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 1 + 4 + 1);
        assert!(lines[0].starts_with("test"));
        assert_eq!(lines[1].len(), 10);
        // North (largest j → biggest values here) on top: last char of
        // top row is the ramp max.
        assert!(lines[1].ends_with('@'));
        assert!(lines[4].starts_with(' '));
    }

    #[test]
    fn land_mask_renders_as_l() {
        let f = Field2::filled(4, 2, 1.0);
        let mut mask = vec![true; 8];
        mask[0] = false; // (0, 0) = bottom-left
        let s = render_map(&f, Some(&mask), "m");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(&lines[2][0..1], "L");
    }

    #[test]
    fn diff_map_is_centered() {
        let f = Field2::from_fn(6, 2, |i, _| i as f64 - 2.5);
        let s = render_diff_map(&f, None, "d");
        assert!(s.contains('#') && s.contains('O'));
    }

    #[test]
    fn sparkline_tracks_shape() {
        let x: Vec<f64> = (0..64)
            .map(|t| (t as f64 * std::f64::consts::PI / 32.0).sin())
            .collect();
        let s = sparkline(&x, 32);
        assert_eq!(s.chars().count(), 32);
        let chars: Vec<char> = s.chars().collect();
        // Peak in the first half, trough in the second.
        assert!(chars[8] > chars[24]);
    }
}
