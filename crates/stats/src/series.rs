//! Time-series and field statistics: detrending, monthly anomalies,
//! correlations, and the bias/RMSE/pattern-correlation numbers quoted
//! alongside Figure 3.

/// Remove a least-squares linear trend in place.
pub fn detrend(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let nf = n as f64;
    let tbar = (nf - 1.0) / 2.0;
    let xbar = x.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &v) in x.iter().enumerate() {
        let dt = t as f64 - tbar;
        num += dt * (v - xbar);
        den += dt * dt;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    for (t, v) in x.iter_mut().enumerate() {
        *v -= xbar + slope * (t as f64 - tbar);
    }
}

/// Remove the mean seasonal cycle from a monthly series (period 12):
/// returns anomalies.
pub fn anomalies_monthly(x: &[f64]) -> Vec<f64> {
    let mut clim = [0.0; 12];
    let mut count = [0usize; 12];
    for (t, &v) in x.iter().enumerate() {
        clim[t % 12] += v;
        count[t % 12] += 1;
    }
    for m in 0..12 {
        if count[m] > 0 {
            clim[m] /= count[m] as f64;
        }
    }
    x.iter()
        .enumerate()
        .map(|(t, &v)| v - clim[t % 12])
        .collect()
}

/// Pearson correlation of two equal-length series.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// Field-vs-reference statistics (the numbers quoted with Figure 3).
#[derive(Debug, Clone, Copy)]
pub struct FieldStats {
    /// Area-weighted mean of model − reference.
    pub bias: f64,
    /// Area-weighted RMS of model − reference.
    pub rmse: f64,
    /// Area-weighted centered pattern correlation.
    pub pattern_correlation: f64,
    /// Largest absolute difference.
    pub max_abs_diff: f64,
}

/// Compute [`FieldStats`] over points where `weight > 0` (weights are
/// cell areas; land points get weight 0).
pub fn pattern_stats(model: &[f64], reference: &[f64], weight: &[f64]) -> FieldStats {
    assert_eq!(model.len(), reference.len());
    assert_eq!(model.len(), weight.len());
    let wsum: f64 = weight.iter().sum();
    assert!(wsum > 0.0, "no weighted points");
    let mean = |f: &[f64]| -> f64 { f.iter().zip(weight).map(|(v, w)| v * w).sum::<f64>() / wsum };
    let mm = mean(model);
    let mr = mean(reference);
    let mut bias = 0.0;
    let mut mse = 0.0;
    let mut cov = 0.0;
    let mut vm = 0.0;
    let mut vr = 0.0;
    let mut max_abs: f64 = 0.0;
    for ((&m, &r), &w) in model.iter().zip(reference).zip(weight) {
        let d = m - r;
        bias += w * d;
        mse += w * d * d;
        cov += w * (m - mm) * (r - mr);
        vm += w * (m - mm) * (m - mm);
        vr += w * (r - mr) * (r - mr);
        if w > 0.0 {
            max_abs = max_abs.max(d.abs());
        }
    }
    FieldStats {
        bias: bias / wsum,
        rmse: (mse / wsum).sqrt(),
        pattern_correlation: if vm > 0.0 && vr > 0.0 {
            cov / (vm * vr).sqrt()
        } else {
            0.0
        },
        max_abs_diff: max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detrend_removes_line() {
        let mut x: Vec<f64> = (0..50).map(|t| 3.0 + 0.5 * t as f64).collect();
        detrend(&mut x);
        assert!(x.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn detrend_preserves_oscillation() {
        let mut x: Vec<f64> = (0..240)
            .map(|t| 1.0 + 0.01 * t as f64 + (t as f64 * 0.7).sin())
            .collect();
        let pure: Vec<f64> = (0..240).map(|t| (t as f64 * 0.7).sin()).collect();
        detrend(&mut x);
        let r = correlation(&x, &pure);
        assert!(r > 0.99, "r = {r}");
    }

    #[test]
    fn monthly_anomalies_kill_seasonal_cycle() {
        let x: Vec<f64> = (0..120)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * (t % 12) as f64 / 12.0).sin())
            .collect();
        let a = anomalies_monthly(&x);
        assert!(a.iter().all(|v| v.abs() < 1e-10), "cycle survived");
    }

    #[test]
    fn monthly_anomalies_keep_interannual_signal() {
        // Seasonal cycle + slow multi-year oscillation.
        let slow: Vec<f64> = (0..360)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 100.0).sin())
            .collect();
        let x: Vec<f64> = (0..360)
            .map(|t| {
                20.0 + 8.0 * (2.0 * std::f64::consts::PI * (t % 12) as f64 / 12.0).cos() + slow[t]
            })
            .collect();
        let a = anomalies_monthly(&x);
        assert!(correlation(&a, &slow) > 0.95);
    }

    #[test]
    fn correlation_limits() {
        let a: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let b: Vec<f64> = (0..30).map(|t| 2.0 * t as f64 + 1.0).collect();
        let c: Vec<f64> = (0..30).map(|t| -(t as f64)).collect();
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_stats_identity_and_offset() {
        let m = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0, 1.0, 2.0, 0.0]; // last point masked
        let s = pattern_stats(&m, &m, &w);
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert!((s.pattern_correlation - 1.0).abs() < 1e-12);
        let shifted: Vec<f64> = m.iter().map(|v| v + 2.0).collect();
        let s2 = pattern_stats(&shifted, &m, &w);
        assert!((s2.bias - 2.0).abs() < 1e-12);
        assert!((s2.rmse - 2.0).abs() < 1e-12);
        assert!((s2.pattern_correlation - 1.0).abs() < 1e-12);
        assert!((s2.max_abs_diff - 2.0).abs() < 1e-12);
    }
}
