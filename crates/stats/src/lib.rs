//! `foam-stats` — the statistical analysis behind the paper's Figures 3
//! and 4.
//!
//! Figure 4 is "a pattern (obtained by VARIMAX rotation of empirical
//! orthogonal function decomposition) that accounts for fully 15 percent
//! of 60 month low-pass filtered variance in sea surface temperature".
//! Regenerating it needs: monthly climatology/anomalies, a Lanczos
//! low-pass filter, an EOF decomposition (via the snapshot method with a
//! Jacobi eigensolver — no external linear algebra), VARIMAX rotation,
//! and area weighting. Figure 3 needs field statistics (bias, RMSE,
//! pattern correlation) and map rendering; the ASCII map renderer here
//! is the terminal stand-in for the paper's colour plates.
//!
//! Every batch analysis has a **streaming** counterpart sized for
//! century runs — state `O(grid)`, one sample consumed at a time, and a
//! `foam_ckpt::Codec` implementation so a checkpointed stream resumes
//! bit-identically: [`stream::OnlineMoments`]/[`stream::FieldMoments`]
//! (Welford moments), [`filter::StreamingLanczos`] (bit-identical to the
//! batch filter), [`eof::StreamingEof`] (incremental rank-k subspace
//! sketch, exact on rank-≤-k data), and [`ensemble::StreamEnsemble`].
//! The equivalence with the batch path is proven by the property-test
//! suite in `tests/stream_stats_props.rs`.

pub mod ascii;
pub mod ensemble;
pub mod eof;
pub mod filter;
pub mod linalg;
pub mod series;
pub mod stream;

pub use ensemble::{ensemble_mean, ensemble_mean_field, ensemble_spread, StreamEnsemble};
pub use eof::{eof_analysis, varimax, Eof, StreamedAnalysis, StreamingEof};
pub use filter::{lanczos_lowpass, StreamingLanczos};
pub use series::{anomalies_monthly, correlation, detrend, pattern_stats, FieldStats};
pub use stream::{FieldMoments, OnlineMoments, StatsError};
