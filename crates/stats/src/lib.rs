//! `foam-stats` — the statistical analysis behind the paper's Figures 3
//! and 4.
//!
//! Figure 4 is "a pattern (obtained by VARIMAX rotation of empirical
//! orthogonal function decomposition) that accounts for fully 15 percent
//! of 60 month low-pass filtered variance in sea surface temperature".
//! Regenerating it needs: monthly climatology/anomalies, a Lanczos
//! low-pass filter, an EOF decomposition (via the snapshot method with a
//! Jacobi eigensolver — no external linear algebra), VARIMAX rotation,
//! and area weighting. Figure 3 needs field statistics (bias, RMSE,
//! pattern correlation) and map rendering; the ASCII map renderer here
//! is the terminal stand-in for the paper's colour plates.

pub mod ascii;
pub mod ensemble;
pub mod eof;
pub mod filter;
pub mod linalg;
pub mod series;

pub use ensemble::{ensemble_mean, ensemble_mean_field, ensemble_spread};
pub use eof::{eof_analysis, varimax, Eof};
pub use filter::lanczos_lowpass;
pub use series::{anomalies_monthly, correlation, detrend, pattern_stats, FieldStats};
