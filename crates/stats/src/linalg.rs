//! Dense symmetric eigensolver (cyclic Jacobi) — all the linear algebra
//! the EOF analysis needs, implemented here per the no-new-dependencies
//! policy (DESIGN.md §5).

/// Eigen-decomposition of a symmetric matrix (row-major `n × n`).
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvector `k` is `vectors[k]` (length `n`, unit norm).
pub fn symmetric_eigen(a: &[f64], n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(a.len(), n * n);
    let mut m = a.to_vec();
    // v = identity; accumulates rotations (columns are eigenvectors).
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        // Off-diagonal magnitude.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + frobenius(&m, n)) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate in v.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| {
            let val = m[k * n + k];
            let vec: Vec<f64> = (0..n).map(|i| v[i * n + k]).collect();
            (val, vec)
        })
        .collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: an eigenvalue can be
    // NaN when the input matrix carries one, and the sort must not
    // panic on it (NaN orders below every finite value descending).
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let vals = pairs.iter().map(|(v, _)| *v).collect();
    let vecs = pairs.into_iter().map(|(_, v)| v).collect();
    (vals, vecs)
}

fn frobenius(m: &[f64], n: usize) -> f64 {
    m.iter().take(n * n).map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let (vals, vecs) = symmetric_eigen(&a, 3);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] → eigenvalues 3 and 1.
        let (vals, vecs) = symmetric_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // First eigenvector ∝ (1, 1)/√2.
        assert!((vecs[0][0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn nan_eigenvalues_do_not_panic_the_sort() {
        // Regression: the descending sort used `partial_cmp(..).unwrap()`
        // and panicked the moment a NaN reached an eigenvalue. A NaN in
        // the input propagates to the diagonal; the decomposition must
        // come back (garbage values, but the right shape) instead of
        // aborting the whole analysis.
        let a = vec![f64::NAN, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let (vals, vecs) = symmetric_eigen(&a, 3);
        assert_eq!(vals.len(), 3);
        assert_eq!(vecs.len(), 3);
        // Finite eigenvalues still sort descending ahead of the NaN.
        let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
        for pair in finite.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // Random symmetric matrix from a deterministic generator.
        let n = 8;
        let mut seed = 123u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        let (vals, vecs) = symmetric_eigen(&a, n);
        // A v = λ v for each pair.
        for k in 0..n {
            for i in 0..n {
                let av: f64 = (0..n).map(|j| a[i * n + j] * vecs[k][j]).sum();
                assert!(
                    (av - vals[k] * vecs[k][i]).abs() < 1e-9,
                    "k={k} i={i}: {av} vs {}",
                    vals[k] * vecs[k][i]
                );
            }
        }
        // Orthonormal eigenvectors.
        for k1 in 0..n {
            for k2 in 0..n {
                let dot: f64 = (0..n).map(|i| vecs[k1][i] * vecs[k2][i]).sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10);
            }
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let sum_vals: f64 = vals.iter().sum();
        assert!((trace - sum_vals).abs() < 1e-10);
    }
}
