//! In-run streaming Figure-3/4 statistics.
//!
//! With [`crate::FoamConfig::stream`] set, the driver's root rank folds
//! every completed monthly-mean SST field into a [`DriverStream`] as the
//! run integrates. The stream holds per-point Welford moments (the
//! Figure-3 mean/variance climatology) and a rank-limited streaming EOF
//! sketch (the Figure-4 variability decomposition) — together `O(grid)`
//! state no matter how many centuries stream through, where the
//! `collect_monthly_sst` history grows `O(grid × months)`.
//!
//! The whole struct implements [`foam_ckpt::Codec`], rides in the root
//! checkpoint shard (section `driver/stream`), and resumes
//! bit-identically; snapshots from before this section existed restart
//! the stream from the resume point.
//!
//! The analysis replays the batch pipeline of `century_variability`
//! exactly — monthly anomalies → detrend → Lanczos low-pass → EOF →
//! VARIMAX — but applies the (linear) time-axis transforms to the
//! sketch's `eof_rank` coefficient columns instead of every grid point,
//! which by linearity yields the same decomposition on data of rank
//! ≤ `eof_rank` (property-tested in `tests/stream_stats_props.rs`).

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::OceanGrid;
use foam_stats::{
    anomalies_monthly, detrend, lanczos_lowpass, FieldMoments, StatsError, StreamedAnalysis,
    StreamingEof,
};

/// The Figure-4 area weighting: cell area (in 10⁶ km²) on sea points,
/// zero on land — the same weights the batch analyses build inline.
///
/// ```
/// use foam::{sea_area_weights, FoamConfig, OceanModel, World};
///
/// let cfg = FoamConfig::century(1);
/// let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
/// let mask = OceanModel::effective_sea_mask(&cfg.ocean, &World::earthlike());
/// let w = sea_area_weights(&grid, &mask);
/// assert_eq!(w.len(), grid.len());
/// assert!(w.iter().all(|&v| v >= 0.0));
/// ```
pub fn sea_area_weights(grid: &OceanGrid, mask: &[bool]) -> Vec<f64> {
    (0..grid.len())
        .map(|k| {
            if mask[k] {
                grid.cell_area(k % grid.nx, k / grid.nx) / 1.0e12
            } else {
                0.0
            }
        })
        .collect()
}

/// The low-pass cutoff the variability analysis uses for an
/// `n_months`-long stream: a quarter of the record, clamped to the
/// paper's 60 months (and to 6 for very short demo runs).
///
/// ```
/// assert_eq!(foam::stream::lowpass_period(1200), 60.0);
/// assert_eq!(foam::stream::lowpass_period(24), 6.0);
/// ```
pub fn lowpass_period(n_months: usize) -> f64 {
    (n_months as f64 / 4.0).clamp(6.0, 60.0)
}

/// Streaming per-month SST statistics accumulated inside the coupled
/// run: Welford moments per grid point plus a streaming EOF sketch,
/// consuming one monthly-mean field at a time.
///
/// ```
/// use foam::DriverStream;
///
/// let weights = vec![1.0, 1.0, 0.0, 1.0];
/// let mut ds = DriverStream::new(weights, 4);
/// ds.push_month(&[10.0, 11.0, 0.0, 9.0]).unwrap();
/// ds.push_month(&[12.0, 11.0, 0.0, 7.0]).unwrap();
/// assert_eq!(ds.months(), 2);
/// assert_eq!(ds.mean_field().unwrap()[0], 11.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriverStream {
    /// Per-point monthly mean/variance (the Figure-3 climatology).
    moments: FieldMoments,
    /// Rank-limited subspace sketch of the monthly fields (Figure 4).
    eof: StreamingEof,
}

impl DriverStream {
    /// A stream over `weights.len()` grid points keeping at most
    /// `eof_rank` spatial directions of variability.
    pub fn new(weights: Vec<f64>, eof_rank: usize) -> Self {
        DriverStream {
            moments: FieldMoments::new(weights.len()),
            eof: StreamingEof::new(&weights, eof_rank),
        }
    }

    /// Monthly fields consumed so far.
    pub fn months(&self) -> usize {
        self.eof.samples()
    }

    /// The area weights the stream was built with.
    pub fn weights(&self) -> &[f64] {
        self.eof.weights()
    }

    /// Fold one monthly-mean field in; rejects a grid-size mismatch.
    pub fn push_month(&mut self, field: &[f64]) -> Result<(), StatsError> {
        self.moments.push(field)?;
        self.eof.push(field)
    }

    /// Per-point time-mean SST — bit-identical to averaging the
    /// collected monthly history. `None` before the first month
    /// completes.
    pub fn mean_field(&self) -> Option<Vec<f64>> {
        (!self.moments.is_empty()).then(|| self.moments.mean_field())
    }

    /// Per-point population variance of monthly SST.
    pub fn variance_field(&self) -> Option<Vec<f64>> {
        (!self.moments.is_empty()).then(|| self.moments.variance_field())
    }

    /// Fraction of the (weighted) monthly variability the EOF sketch
    /// could not represent within its rank budget — `0.0` means the
    /// Figure-4 analysis below is exact.
    pub fn discarded_fraction(&self) -> f64 {
        self.eof.discarded_fraction()
    }

    /// The Figure-4 variability analysis of everything streamed so far:
    /// monthly anomalies, detrended, Lanczos low-passed at
    /// [`lowpass_period`], decomposed into `k_keep` EOF modes. Rotate
    /// the result with [`StreamedAnalysis::varimax`] and project basin
    /// boxes with [`StreamedAnalysis::series`]. `None` until two years
    /// of months have streamed (a shorter record has no annual cycle to
    /// remove).
    pub fn analyze_variability(&self, k_keep: usize) -> Option<StreamedAnalysis> {
        let n = self.months();
        if n < 24 {
            return None;
        }
        let lp = lowpass_period(n);
        Some(self.eof.analyze(k_keep, |col| {
            let mut a = anomalies_monthly(&col);
            detrend(&mut a);
            lanczos_lowpass(&a, lp)
        }))
    }
}

impl Codec for DriverStream {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.moments.encode(buf);
        self.eof.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let moments = FieldMoments::decode(r)?;
        let eof = StreamingEof::decode(r)?;
        if moments.len() != eof.weights().len() || moments.count() != eof.samples() as u64 {
            return Err(CkptError::Corrupt(
                "driver stream moments and EOF sketch disagree".into(),
            ));
        }
        Ok(DriverStream { moments, eof })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_ckpt::Codec;
    use foam_stats::{correlation, eof_analysis, varimax};

    /// A deterministic synthetic "monthly SST" field: annual cycle +
    /// trend + two low-rank variability patterns.
    fn synth_month(t: usize, n_s: usize) -> Vec<f64> {
        (0..n_s)
            .map(|s| {
                let annual = (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin();
                let p1 = (s as f64 * 0.7).sin();
                let p2 = (s as f64 * 1.3).cos();
                let slow = (t as f64 * 0.05).sin();
                let slow2 = (t as f64 * 0.11).cos();
                15.0 + 0.001 * t as f64 + annual * (1.0 + 0.1 * p1) + slow * p1 + slow2 * p2
            })
            .collect()
    }

    #[test]
    fn stream_matches_batch_pipeline_on_synthetic_months() {
        let n_s = 30;
        let n_t = 96;
        let weights: Vec<f64> = (0..n_s)
            .map(|s| {
                if s % 7 == 0 {
                    0.0
                } else {
                    1.0 + s as f64 * 0.01
                }
            })
            .collect();
        let months: Vec<Vec<f64>> = (0..n_t).map(|t| synth_month(t, n_s)).collect();

        let mut ds = DriverStream::new(weights.clone(), 8);
        for m in &months {
            ds.push_month(m).unwrap();
        }
        assert_eq!(ds.months(), n_t);

        // Mean field bit-identical to the batch average.
        let mean = ds.mean_field().unwrap();
        for s in 0..n_s {
            let batch: f64 = months.iter().map(|m| m[s]).sum::<f64>() / n_t as f64;
            assert_eq!(mean[s].to_bits(), batch.to_bits(), "s={s}");
        }

        // Variability analysis matches the batch per-point pipeline.
        let lp = lowpass_period(n_t);
        let mut data = vec![vec![0.0; n_s]; n_t];
        for s in 0..n_s {
            if weights[s] == 0.0 {
                continue;
            }
            let series: Vec<f64> = months.iter().map(|m| m[s]).collect();
            let mut anom = anomalies_monthly(&series);
            detrend(&mut anom);
            for (t, v) in lanczos_lowpass(&anom, lp).into_iter().enumerate() {
                data[t][s] = v;
            }
        }
        let batch_eof = eof_analysis(&data, &weights, 4);
        let analysis = ds.analyze_variability(4).unwrap();
        assert!(
            ds.discarded_fraction() < 1e-9,
            "rank-8 sketch must be exact"
        );
        for k in 0..2 {
            assert!(
                (analysis.eof.variance_fraction[k] - batch_eof.variance_fraction[k]).abs() < 1e-8,
                "mode {k}"
            );
        }
        // VARIMAX rotation and box-mean projection agree too.
        let batch_rot = varimax(&data, &weights, &batch_eof, 2);
        let rot = analysis.varimax(2);
        assert!((rot.variance_fraction[0] - batch_rot.variance_fraction[0]).abs() < 1e-8);
        let profile: Vec<f64> = (0..n_s)
            .map(|s| if s < n_s / 2 { weights[s] } else { 0.0 })
            .collect();
        let stream_series = analysis.series(&profile);
        let batch_series: Vec<f64> = (0..n_t)
            .map(|t| (0..n_s).map(|s| profile[s] * data[t][s]).sum())
            .collect();
        assert!(correlation(&stream_series, &batch_series) > 1.0 - 1e-9);
    }

    #[test]
    fn too_short_records_refuse_analysis() {
        let mut ds = DriverStream::new(vec![1.0; 5], 3);
        for t in 0..23 {
            ds.push_month(&synth_month(t, 5)).unwrap();
        }
        assert!(ds.analyze_variability(2).is_none());
        ds.push_month(&synth_month(23, 5)).unwrap();
        assert!(ds.analyze_variability(2).is_some());
    }

    #[test]
    fn codec_roundtrip_and_split_resume_are_identical() {
        let n_s = 12;
        let mut full = DriverStream::new(vec![1.0; n_s], 4);
        let mut split = DriverStream::new(vec![1.0; n_s], 4);
        for t in 0..50 {
            full.push_month(&synth_month(t, n_s)).unwrap();
            split.push_month(&synth_month(t, n_s)).unwrap();
            if t == 20 {
                // Checkpoint and resume mid-stream.
                split = DriverStream::decode(&mut ByteReader::new(&split.to_bytes())).unwrap();
            }
        }
        assert_eq!(full, split);
    }

    #[test]
    fn mismatched_grid_is_a_typed_error() {
        let mut ds = DriverStream::new(vec![1.0; 4], 2);
        assert!(ds.push_month(&[1.0, 2.0]).is_err());
        assert_eq!(ds.months(), 0, "a rejected sample must not half-apply");
    }
}
