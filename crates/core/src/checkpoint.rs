//! Checkpoint/restart of a coupled run.
//!
//! # Snapshot layout
//!
//! A snapshot is a directory `ckpt-<interval>` under [`FoamConfig::ckpt`]'s
//! root, committed by an atomic rename of a `.tmp` staging directory
//! (see [`foam_ckpt::CheckpointStore`]). It holds one shard per rank —
//! `rank-0000.foam` … `rank-<n_atm>.foam` (the last one is the ocean's) —
//! plus `MANIFEST.foam`, written last, so a directory with a readable
//! manifest is complete by construction. Every file is a sectioned,
//! CRC64-checksummed [`foam_ckpt::Snapshot`]; floats are stored as raw
//! IEEE-754 bits, which is what makes restarts bit-identical.
//!
//! Atmosphere shards carry the rank's latitude rows of the prognostic
//! state (temperature, humidity, radiation caches), the last atmosphere
//! export (the coupler consumes it before the next step produces one),
//! and the row-local coupler stores (soil, buckets, ice columns) plus
//! this rank's partial ocean-forcing accumulator. The root shard
//! additionally carries everything replicated or root-held: the spectral
//! dynamics state, rivers, the ice mask, the shared accumulator, the
//! exchange buffers (current SST, its sequence number, retained
//! forcings) and the driver's diagnostic series. The ocean shard holds
//! the full [`OceanState`] and its count of completed coupling
//! intervals.
//!
//! # Restart across rank counts
//!
//! [`load_snapshot`] stitches the shards back into a [`GlobalSnapshot`]
//! on the full grid (shard row ranges must tile the latitudes), and each
//! rank of the restarted run slices its own rows back out — so a run
//! checkpointed on N atmosphere ranks restarts on M. Restarts on the
//! *same* rank count are bit-identical; a different rank count changes
//! the summation order of the forcing reduction, so it resumes the same
//! trajectory only up to floating-point reassociation.

use std::path::Path;

use foam_atm::{AtmExport, AtmState, QgState};
use foam_ckpt::{CheckpointStore, CkptError, Snapshot, SnapshotWriter};
use foam_coupler::{CouplerState, ExchangeBuffers};
use foam_grid::Field2;
use foam_land::{Bucket, RiverState, SoilColumn};
use foam_ocean::{OceanForcing, OceanState, SplitScheme};
use foam_physics::{Forcings, RadCache};

use crate::config::{CouplingMode, FoamConfig};
use crate::stream::DriverStream;

/// The complete model state at a coupling-interval boundary, reassembled
/// on the full grid from the per-rank shards.
#[derive(Debug, Clone)]
pub struct GlobalSnapshot {
    /// Coupling intervals completed; the resumed run starts at this one.
    pub interval: usize,
    /// Written by the emergency (abort-time) path rather than the
    /// periodic cadence; resumable, but the recorded SST is the last
    /// *accepted* one, which lies off the failure-free trajectory.
    pub emergency: bool,
    /// Spectral dynamics state (replicated across atmosphere ranks).
    pub qg: QgState,
    /// Temperature and humidity per physics level, full grid.
    pub atm_t: Vec<Field2>,
    pub atm_q: Vec<Field2>,
    /// Radiation caches, one per column (flattened `j·nlon + i`).
    pub atm_rad: Vec<RadCache>,
    pub atm_sim_t: f64,
    pub atm_step_count: u64,
    /// The last atmosphere export, full grid (the coupler reads it
    /// before the first resumed step produces a fresh one).
    pub export: AtmExport,
    pub soil: Vec<SoilColumn>,
    pub bucket: Vec<Bucket>,
    pub ice_col: Vec<SoilColumn>,
    pub river: RiverState,
    pub ice: Vec<bool>,
    /// Row-local forcing accumulators summed over ranks. Zero at every
    /// interval boundary (the exchange drains them), but restored
    /// faithfully: the whole sum goes to rank 0, zeros elsewhere, which
    /// reproduces the same reduction result bit-for-bit.
    pub acc_total: OceanForcing,
    pub acc_shared: OceanForcing,
    pub acc_seconds: f64,
    pub fw_oneshot: Field2,
    /// Root exchange bookkeeping: current SST, its sequence number, the
    /// forcings retained for retransmission.
    pub exchange: ExchangeBuffers,
    pub mean_sst_series: Vec<f64>,
    pub monthly_sst: Vec<Field2>,
    pub month_acc: Option<(Field2, usize)>,
    /// Streaming-statistics state (section `driver/stream`; `None` for
    /// snapshots written before the section existed or by runs without
    /// [`FoamConfig::stream`]).
    pub stream: Option<DriverStream>,
    /// Per-shard `(j0, j1, work)` physics work counters.
    pub work_rows: Vec<(usize, usize, usize)>,
    pub ocean: OceanState,
}

/// Root-only extras of an atmosphere shard.
pub struct RootShardExtras<'a> {
    pub exchange: &'a ExchangeBuffers,
    pub series: &'a [f64],
    pub monthly: &'a [Field2],
    pub month_acc: &'a Option<(Field2, usize)>,
    pub stream: &'a Option<DriverStream>,
    pub emergency: bool,
}

fn mode_code(m: CouplingMode) -> u64 {
    match m {
        CouplingMode::Lagged => 0,
        CouplingMode::Sequential => 1,
    }
}

fn scheme_code(s: SplitScheme) -> u64 {
    match s {
        SplitScheme::FoamSplit => 0,
        SplitScheme::Unsplit => 1,
    }
}

/// The configuration facts a snapshot must agree on to be resumable:
/// grid shapes, truncation, level counts, subcycling, coupling scheme.
fn config_dims(cfg: &FoamConfig) -> Vec<u64> {
    vec![
        cfg.atm.nlon as u64,
        cfg.atm.nlat as u64,
        cfg.atm.m_max as u64,
        cfg.atm.nlev_phys as u64,
        cfg.ocean.nx as u64,
        cfg.ocean.ny as u64,
        cfg.ocean.nz as u64,
        cfg.ocean.n_trac as u64,
        mode_code(cfg.coupling),
        scheme_code(cfg.ocean_scheme),
    ]
}

/// Timestep facts, compared bitwise.
fn config_dts(cfg: &FoamConfig) -> Vec<f64> {
    vec![
        cfg.atm.dt,
        cfg.dt_couple,
        cfg.ocean.dt_int,
        cfg.ocean.slowdown,
    ]
}

/// Write one atmosphere rank's shard into the staging directory.
pub fn write_atm_shard(
    dir: &Path,
    rank: usize,
    rows: (usize, usize),
    nlon: usize,
    state: &AtmState,
    export: &AtmExport,
    cs: &CouplerState,
    work: usize,
    root: Option<RootShardExtras<'_>>,
) -> Result<(), CkptError> {
    // Timed by the caller's "checkpoint" scope (the rendezvous).
    let (j0, j1) = rows;
    let (ka0, ka1) = (j0 * nlon, j1 * nlon);
    let mut w = SnapshotWriter::new();
    w.put("meta/role", &"atm".to_string());
    w.put("meta/rank", &rank);
    w.put("meta/rows", &rows);
    w.put("atm/state", state);
    w.put("atm/export", export);
    w.put("coupler/soil", &cs.soil[ka0..ka1].to_vec());
    w.put("coupler/bucket", &cs.bucket[ka0..ka1].to_vec());
    w.put("coupler/ice_col", &cs.ice_col[ka0..ka1].to_vec());
    w.put("coupler/acc", &cs.acc);
    w.put("driver/work", &work);
    if let Some(r) = root {
        w.put("coupler/river", &cs.river);
        w.put("coupler/ice", &cs.ice);
        w.put("coupler/acc_shared", &cs.acc_shared);
        w.put("coupler/acc_seconds", &cs.acc_seconds);
        w.put("coupler/fw_oneshot", &cs.fw_oneshot);
        w.put("exchange", r.exchange);
        w.put("driver/series", &r.series.to_vec());
        w.put("driver/monthly", &r.monthly.to_vec());
        w.put("driver/month_acc", r.month_acc);
        w.put("driver/stream", r.stream);
        w.put("driver/emergency", &r.emergency);
    }
    let path = CheckpointStore::shard_path(dir, rank);
    w.write_atomic(&path)?;
    count_shard_bytes(&path);
    Ok(())
}

/// Record a written shard's size in the telemetry counters (no-op when
/// telemetry is off or the file cannot be stat'ed).
fn count_shard_bytes(path: &Path) {
    if foam_telemetry::installed() {
        foam_telemetry::count("ckpt.shards_written", 1);
        if let Ok(meta) = std::fs::metadata(path) {
            foam_telemetry::count("ckpt.bytes_written", meta.len());
        }
    }
}

/// Write the ocean rank's shard into the staging directory.
pub fn write_ocean_shard(
    dir: &Path,
    rank: usize,
    state: &OceanState,
    completed: usize,
) -> Result<(), CkptError> {
    let _t = foam_telemetry::scope("checkpoint");
    let mut w = SnapshotWriter::new();
    w.put("meta/role", &"ocean".to_string());
    w.put("meta/rank", &rank);
    w.put("ocean/state", state);
    w.put("ocean/completed", &completed);
    let path = CheckpointStore::shard_path(dir, rank);
    w.write_atomic(&path)?;
    count_shard_bytes(&path);
    Ok(())
}

/// Write the manifest — always last, so its presence marks a complete
/// snapshot.
pub fn write_manifest(
    dir: &Path,
    cfg: &FoamConfig,
    interval: usize,
    n_atm_ranks: usize,
    emergency: bool,
) -> Result<(), CkptError> {
    let mut w = SnapshotWriter::new();
    w.put("manifest/interval", &(interval as u64));
    w.put("manifest/n_atm_ranks", &n_atm_ranks);
    w.put("manifest/dims", &config_dims(cfg));
    w.put("manifest/dts", &config_dts(cfg));
    w.put("manifest/emergency", &emergency);
    // Scenario facts the resumed trajectory depends on: the forcing
    // series (`Codec`-encoded breakpoints) and the static radiative
    // scenario knobs. Kept out of `manifest/dts` so snapshots written
    // before scenarios existed stay loadable (see `load_snapshot`'s
    // absent-tolerant check).
    w.put("manifest/forcings", &cfg.forcings);
    w.put("manifest/scenario_statics", &scenario_statics(cfg));
    w.write_atomic(&CheckpointStore::manifest_path(dir))
}

/// Static scenario knobs compared bitwise on resume (like
/// `config_dts`): solar scale, aerosol optical depth, obliquity.
fn scenario_statics(cfg: &FoamConfig) -> Vec<f64> {
    vec![
        cfg.atm.physics.rad.solar_scale,
        cfg.atm.physics.rad.aerosol_od,
        cfg.atm.physics.obliquity_deg,
    ]
}

/// One decoded atmosphere shard, prior to stitching.
struct AtmShard {
    rows: (usize, usize),
    state: AtmState,
    export: AtmExport,
    soil: Vec<SoilColumn>,
    bucket: Vec<Bucket>,
    ice_col: Vec<SoilColumn>,
    acc: OceanForcing,
    work: usize,
    is_root: bool,
    snap: Snapshot,
}

fn field_dims_ok(f: &Field2, nx: usize, ny: usize) -> bool {
    f.nx() == nx && f.ny() == ny
}

/// Load one committed (or staged) snapshot directory, verifying it
/// against `cfg` and stitching the shards into full-grid state.
pub fn load_snapshot(dir: &Path, cfg: &FoamConfig) -> Result<GlobalSnapshot, CkptError> {
    let manifest = Snapshot::open(&CheckpointStore::manifest_path(dir))?;
    if manifest.get::<Vec<u64>>("manifest/dims")? != config_dims(cfg) {
        return Err(CkptError::ConfigMismatch(
            "snapshot grid/truncation/scheme facts differ from the configuration".into(),
        ));
    }
    let dts = manifest.get::<Vec<f64>>("manifest/dts")?;
    let same_dts = dts.len() == config_dts(cfg).len()
        && dts
            .iter()
            .zip(config_dts(cfg))
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !same_dts {
        return Err(CkptError::ConfigMismatch(
            "snapshot timesteps differ from the configuration".into(),
        ));
    }
    // Scenario forcings are trajectory-determining configuration:
    // resuming a CO₂-ramp snapshot under different forcings (or vice
    // versa) would silently diverge from both experiments. Snapshots
    // that predate the sections count as unforced/present-day.
    let snap_forcings = if manifest.has("manifest/forcings") {
        manifest.get::<Forcings>("manifest/forcings")?
    } else {
        Forcings::default()
    };
    if snap_forcings != cfg.forcings {
        return Err(CkptError::ConfigMismatch(
            "snapshot scenario forcings differ from the configuration".into(),
        ));
    }
    let snap_statics = if manifest.has("manifest/scenario_statics") {
        manifest.get::<Vec<f64>>("manifest/scenario_statics")?
    } else {
        scenario_statics(&FoamConfig::tiny(0)) // the unforced defaults
    };
    let statics_ok = snap_statics.len() == scenario_statics(cfg).len()
        && snap_statics
            .iter()
            .zip(scenario_statics(cfg))
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !statics_ok {
        return Err(CkptError::ConfigMismatch(
            "snapshot solar/aerosol/obliquity settings differ from the configuration".into(),
        ));
    }
    let interval = manifest.get::<u64>("manifest/interval")? as usize;
    let n_atm_then = manifest.get::<usize>("manifest/n_atm_ranks")?;
    let emergency = manifest.get::<bool>("manifest/emergency")?;
    if n_atm_then == 0 {
        return Err(CkptError::Corrupt("manifest records zero ranks".into()));
    }

    let (nlon, nlat, nlev) = (cfg.atm.nlon, cfg.atm.nlat, cfg.atm.nlev_phys);
    let (onx, ony) = (cfg.ocean.nx, cfg.ocean.ny);

    // ---- Read and validate the atmosphere shards. --------------------
    let mut shards = Vec::with_capacity(n_atm_then);
    for rank in 0..n_atm_then {
        let snap = Snapshot::open(&CheckpointStore::shard_path(dir, rank))?;
        if snap.get::<String>("meta/role")? != "atm" {
            return Err(CkptError::Corrupt(format!(
                "shard {rank} does not carry an atmosphere role"
            )));
        }
        let rows = snap.get::<(usize, usize)>("meta/rows")?;
        let (j0, j1) = rows;
        if j0 >= j1 || j1 > nlat {
            return Err(CkptError::Corrupt(format!(
                "shard {rank} rows {j0}..{j1} outside 0..{nlat}"
            )));
        }
        let nloc = (j1 - j0) * nlon;
        let state = snap.get::<AtmState>("atm/state")?;
        let export = snap.get::<AtmExport>("atm/export")?;
        let dims_ok = state.t.len() == nlev
            && state.q.len() == nlev
            && state.rad.len() == nloc
            && state.t.iter().all(|f| field_dims_ok(f, nlon, j1 - j0))
            && state.q.iter().all(|f| field_dims_ok(f, nlon, j1 - j0))
            && field_dims_ok(&export.t_low, nlon, j1 - j0)
            && export.work.len() == nloc;
        if !dims_ok {
            return Err(CkptError::Corrupt(format!(
                "shard {rank} field shapes disagree with the configuration"
            )));
        }
        let soil = snap.get::<Vec<SoilColumn>>("coupler/soil")?;
        let bucket = snap.get::<Vec<Bucket>>("coupler/bucket")?;
        let ice_col = snap.get::<Vec<SoilColumn>>("coupler/ice_col")?;
        if soil.len() != nloc || bucket.len() != nloc || ice_col.len() != nloc {
            return Err(CkptError::Corrupt(format!(
                "shard {rank} coupler stores have the wrong length"
            )));
        }
        let acc = snap.get::<OceanForcing>("coupler/acc")?;
        if !field_dims_ok(&acc.heat, onx, ony) {
            return Err(CkptError::Corrupt(format!(
                "shard {rank} forcing accumulator is not on the ocean grid"
            )));
        }
        let work = snap.get::<usize>("driver/work")?;
        shards.push(AtmShard {
            rows,
            state,
            export,
            soil,
            bucket,
            ice_col,
            acc,
            work,
            is_root: rank == 0,
            snap,
        });
    }
    shards.sort_by_key(|s| s.rows.0);
    let tiles = shards.first().map(|s| s.rows.0) == Some(0)
        && shards.last().map(|s| s.rows.1) == Some(nlat)
        && shards.windows(2).all(|w| w[0].rows.1 == w[1].rows.0);
    if !tiles {
        return Err(CkptError::Corrupt(
            "atmosphere shards do not tile the latitude rows".into(),
        ));
    }

    // ---- Stitch: shards are sorted by row start and contiguous, and
    //      Field2 is row-major, so concatenating row blocks in order
    //      reassembles every full-grid vector directly. ----------------
    let stitch_levels = |pick: fn(&AtmShard) -> &Vec<Field2>| -> Vec<Field2> {
        (0..nlev)
            .map(|k| {
                let mut data = Vec::with_capacity(nlon * nlat);
                for s in &shards {
                    data.extend_from_slice(pick(s)[k].as_slice());
                }
                Field2::from_vec(nlon, nlat, data)
            })
            .collect()
    };
    let stitch_field = |pick: fn(&AtmShard) -> &Field2| -> Field2 {
        let mut data = Vec::with_capacity(nlon * nlat);
        for s in &shards {
            data.extend_from_slice(pick(s).as_slice());
        }
        Field2::from_vec(nlon, nlat, data)
    };

    let atm_t = stitch_levels(|s| &s.state.t);
    let atm_q = stitch_levels(|s| &s.state.q);
    let atm_rad: Vec<RadCache> = shards
        .iter()
        .flat_map(|s| s.state.rad.iter().cloned())
        .collect();
    let export = AtmExport {
        t_low: stitch_field(|s| &s.export.t_low),
        q_low: stitch_field(|s| &s.export.q_low),
        u_low: stitch_field(|s| &s.export.u_low),
        v_low: stitch_field(|s| &s.export.v_low),
        precip: stitch_field(|s| &s.export.precip),
        sw_sfc: stitch_field(|s| &s.export.sw_sfc),
        lw_down: stitch_field(|s| &s.export.lw_down),
        cloud: stitch_field(|s| &s.export.cloud),
        work: shards
            .iter()
            .flat_map(|s| s.export.work.iter().copied())
            .collect(),
    };
    let soil: Vec<SoilColumn> = shards.iter().flat_map(|s| s.soil.iter().cloned()).collect();
    let bucket: Vec<Bucket> = shards
        .iter()
        .flat_map(|s| s.bucket.iter().cloned())
        .collect();
    let ice_col: Vec<SoilColumn> = shards
        .iter()
        .flat_map(|s| s.ice_col.iter().cloned())
        .collect();
    let mut acc_total = OceanForcing {
        tau_x: Field2::zeros(onx, ony),
        tau_y: Field2::zeros(onx, ony),
        heat: Field2::zeros(onx, ony),
        freshwater: Field2::zeros(onx, ony),
    };
    for s in &shards {
        acc_total.tau_x.axpy(1.0, &s.acc.tau_x);
        acc_total.tau_y.axpy(1.0, &s.acc.tau_y);
        acc_total.heat.axpy(1.0, &s.acc.heat);
        acc_total.freshwater.axpy(1.0, &s.acc.freshwater);
    }
    let work_rows: Vec<(usize, usize, usize)> = shards
        .iter()
        .map(|s| (s.rows.0, s.rows.1, s.work))
        .collect();

    // ---- Root-held and replicated sections. --------------------------
    let root = shards
        .iter()
        .find(|s| s.is_root)
        .ok_or_else(|| CkptError::Corrupt("no rank-0 atmosphere shard".into()))?;
    let qg = root.state.qg.clone();
    let river = root.snap.get::<RiverState>("coupler/river")?;
    let ice = root.snap.get::<Vec<bool>>("coupler/ice")?;
    let acc_shared = root.snap.get::<OceanForcing>("coupler/acc_shared")?;
    let acc_seconds = root.snap.get::<f64>("coupler/acc_seconds")?;
    let fw_oneshot = root.snap.get::<Field2>("coupler/fw_oneshot")?;
    let exchange = root.snap.get::<ExchangeBuffers>("exchange")?;
    let mean_sst_series = root.snap.get::<Vec<f64>>("driver/series")?;
    let monthly_sst = root.snap.get::<Vec<Field2>>("driver/monthly")?;
    let month_acc = root
        .snap
        .get::<Option<(Field2, usize)>>("driver/month_acc")?;
    // Older snapshots predate the streaming-statistics section; they
    // remain loadable, the stream just restarts from the resume point.
    let stream = if root.snap.has("driver/stream") {
        root.snap.get::<Option<DriverStream>>("driver/stream")?
    } else {
        None
    };
    if !field_dims_ok(&exchange.sst, onx, ony) || !field_dims_ok(&fw_oneshot, onx, ony) {
        return Err(CkptError::Corrupt(
            "root shard ocean-grid fields have the wrong shape".into(),
        ));
    }

    // ---- The ocean shard. --------------------------------------------
    let osnap = Snapshot::open(&CheckpointStore::shard_path(dir, n_atm_then))?;
    if osnap.get::<String>("meta/role")? != "ocean" {
        return Err(CkptError::Corrupt(
            "the last shard does not carry the ocean role".into(),
        ));
    }
    let ocean = osnap.get::<OceanState>("ocean/state")?;
    let completed = osnap.get::<usize>("ocean/completed")?;
    if completed != interval {
        return Err(CkptError::Corrupt(format!(
            "ocean completed {completed} intervals but the manifest says {interval}"
        )));
    }
    let ocean_ok = ocean.t.len() == cfg.ocean.nz
        && ocean.t.iter().all(|f| field_dims_ok(f, onx, ony))
        && field_dims_ok(&ocean.baro.eta, onx, ony);
    if !ocean_ok {
        return Err(CkptError::Corrupt(
            "ocean shard field shapes disagree with the configuration".into(),
        ));
    }

    Ok(GlobalSnapshot {
        interval,
        emergency,
        qg,
        atm_t,
        atm_q,
        atm_rad,
        atm_sim_t: root.state.sim_t,
        atm_step_count: root.state.step_count,
        export,
        soil,
        bucket,
        ice_col,
        river,
        ice,
        acc_total,
        acc_shared,
        acc_seconds,
        fw_oneshot,
        exchange,
        mean_sst_series,
        monthly_sst,
        month_acc,
        stream,
        work_rows,
        ocean,
    })
}

/// Load the newest snapshot that verifies, walking older candidates on
/// corruption — the fallback that makes `ckpt_keep > 1` useful.
pub fn load_latest(store: &CheckpointStore, cfg: &FoamConfig) -> Result<GlobalSnapshot, CkptError> {
    let mut last_err = CkptError::NoCheckpoint;
    for (_, dir) in store.candidates()? {
        match load_snapshot(&dir, cfg) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn rows_of(f: &Field2, j0: usize, j1: usize) -> Field2 {
    let nx = f.nx();
    Field2::from_vec(nx, j1 - j0, f.as_slice()[j0 * nx..j1 * nx].to_vec())
}

impl GlobalSnapshot {
    /// This rank's slice of the atmosphere state (rows `j0..j1`).
    pub fn atm_state_for_rows(&self, j0: usize, j1: usize) -> AtmState {
        let nlon = self.export.t_low.nx();
        AtmState {
            qg: self.qg.clone(),
            t: self.atm_t.iter().map(|f| rows_of(f, j0, j1)).collect(),
            q: self.atm_q.iter().map(|f| rows_of(f, j0, j1)).collect(),
            rad: self.atm_rad[j0 * nlon..j1 * nlon].to_vec(),
            sim_t: self.atm_sim_t,
            step_count: self.atm_step_count,
        }
    }

    /// This rank's slice of the last atmosphere export.
    pub fn export_for_rows(&self, j0: usize, j1: usize) -> AtmExport {
        let nlon = self.export.t_low.nx();
        AtmExport {
            t_low: rows_of(&self.export.t_low, j0, j1),
            q_low: rows_of(&self.export.q_low, j0, j1),
            u_low: rows_of(&self.export.u_low, j0, j1),
            v_low: rows_of(&self.export.v_low, j0, j1),
            precip: rows_of(&self.export.precip, j0, j1),
            sw_sfc: rows_of(&self.export.sw_sfc, j0, j1),
            lw_down: rows_of(&self.export.lw_down, j0, j1),
            cloud: rows_of(&self.export.cloud, j0, j1),
            work: self.export.work[j0 * nlon..j1 * nlon].to_vec(),
        }
    }

    /// The coupler state for one rank. The stores are full-length on
    /// every rank (each touches only its rows); the row-local forcing
    /// accumulator total goes to the owner (atmosphere rank 0), zeros
    /// elsewhere, so the restart reduction reproduces the same sum.
    pub fn coupler_state_for_rank(&self, acc_owner: bool) -> CouplerState {
        let (onx, ony) = (self.fw_oneshot.nx(), self.fw_oneshot.ny());
        let acc = if acc_owner {
            self.acc_total.clone()
        } else {
            OceanForcing {
                tau_x: Field2::zeros(onx, ony),
                tau_y: Field2::zeros(onx, ony),
                heat: Field2::zeros(onx, ony),
                freshwater: Field2::zeros(onx, ony),
            }
        };
        CouplerState {
            soil: self.soil.clone(),
            bucket: self.bucket.clone(),
            river: self.river.clone(),
            ice: self.ice.clone(),
            ice_col: self.ice_col.clone(),
            acc,
            acc_shared: self.acc_shared.clone(),
            acc_seconds: self.acc_seconds,
            fw_oneshot: self.fw_oneshot.clone(),
        }
    }

    /// The restored physics-work counter for one rank: exact when the
    /// rank count matches the snapshot's, otherwise the total lands on
    /// rank 0 (the per-rank split is a diagnostic, not model state).
    pub fn work_for_rank(&self, rank: usize, n_ranks: usize) -> usize {
        if self.work_rows.len() == n_ranks {
            self.work_rows[rank].2
        } else if rank == 0 {
            self.work_rows.iter().map(|w| w.2).sum()
        } else {
            0
        }
    }
}
