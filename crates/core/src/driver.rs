//! The coupled SPMD driver: N atmosphere ranks (with the coupler
//! co-located, as in the paper) plus one ocean rank.
//!
//! Rank layout (world communicator):
//! * ranks `0 .. n_atm` — atmosphere + coupler,
//! * rank `n_atm` — ocean.
//!
//! Exchange protocol (tags on the world communicator):
//! * the ocean sends the initial SST, then loops
//!   `recv forcing → integrate one coupling interval → send SST`;
//! * in **lagged** mode the atmosphere posts its forcing and only
//!   collects the SST produced from the *previous* forcing after it has
//!   finished its own next interval — so the single ocean node works
//!   concurrently with all the atmosphere nodes (the overlap visible in
//!   the paper's Figure 2, where "one ocean processor has no difficulty
//!   keeping up with 16 atmosphere processors");
//! * in **sequential** mode (the CSM-like baseline) the atmosphere
//!   blocks on the SST immediately.

use foam_atm::{AtmForcing, AtmModel};
use foam_coupler::{AtmSurfaceFields, Coupler};
use foam_grid::constants::SECONDS_PER_DAY;
use foam_grid::{Field2, World};
use foam_mpi::{Comm, RankTrace, Universe};
use foam_ocean::{OceanForcing, OceanModel, SplitScheme};

use crate::config::{CouplingMode, FoamConfig};

const TAG_FORCING: u32 = 10;
const TAG_SST: u32 = 11;

/// Results of a coupled run.
#[derive(Debug)]
pub struct CoupledOutput {
    /// Simulated span \[s\].
    pub sim_seconds: f64,
    /// Wall-clock span of the integration \[s\].
    pub wall_seconds: f64,
    /// The paper's headline metric: simulated time per wall-clock time.
    pub model_speedup: f64,
    /// Area-mean SST after each coupling interval \[°C\].
    pub mean_sst_series: Vec<f64>,
    /// Monthly-mean SST fields (ocean grid), if collection was enabled.
    pub monthly_sst: Vec<Field2>,
    /// SST at the end of the run.
    pub final_sst: Field2,
    /// Sea-ice fraction of the ocean area at the end.
    pub ice_fraction: f64,
    /// Per-rank activity traces (when tracing was enabled).
    pub traces: Vec<RankTrace>,
    /// Total physics work units per atmosphere rank (load balance).
    pub work_per_rank: Vec<usize>,
}

/// Per-rank result carried out of the SPMD closure.
#[derive(Debug, Default, Clone)]
struct RankResult {
    mean_sst_series: Vec<f64>,
    monthly_sst: Vec<Field2>,
    final_sst: Option<Field2>,
    wall_seconds: f64,
    work: usize,
}

/// The baseline ("CSM-like") variant of a configuration: identical
/// physics with FOAM's two throughput devices removed — sequential
/// coupling and the unsplit gravity-wave-limited ocean (experiment T2).
pub fn baseline_config(cfg: &FoamConfig) -> FoamConfig {
    let mut c = cfg.clone();
    c.coupling = CouplingMode::Sequential;
    c.ocean_scheme = SplitScheme::Unsplit;
    c
}

/// Run the coupled model for `days` simulated days.
pub fn run_coupled(cfg: &FoamConfig, days: f64) -> CoupledOutput {
    let n_couple = ((days * SECONDS_PER_DAY) / cfg.dt_couple).round().max(1.0) as usize;
    let n_atm = cfg.n_atm_ranks;
    let out = Universe::run_traced(cfg.n_ranks(), cfg.tracing, |world| {
        if world.rank() < n_atm {
            atm_rank(cfg, world, n_couple)
        } else {
            ocean_rank(cfg, world, n_couple)
        }
    });
    let r0 = out.results[0].clone();
    let work_per_rank = out.results[..n_atm].iter().map(|r| r.work).collect();
    let sim_seconds = n_couple as f64 * cfg.dt_couple;
    let wall = r0.wall_seconds.max(1e-9);
    let final_sst = r0.final_sst.expect("rank 0 must produce a final SST");
    // Ice fraction diagnosed from the clamp on the final field.
    let world_obj = World::earthlike();
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world_obj);
    let icy: Vec<f64> = final_sst
        .as_slice()
        .iter()
        .map(|&t| {
            if t <= foam_grid::constants::SEAWATER_FREEZE_C + 1e-6 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let ice_fraction = grid.masked_mean(&icy, &mask);
    CoupledOutput {
        sim_seconds,
        wall_seconds: wall,
        model_speedup: sim_seconds / wall,
        mean_sst_series: r0.mean_sst_series,
        monthly_sst: r0.monthly_sst,
        final_sst,
        ice_fraction,
        traces: out.traces,
        work_per_rank,
    }
}

fn atm_rank(cfg: &FoamConfig, world: &Comm, n_couple: usize) -> RankResult {
    let n_atm = cfg.n_atm_ranks;
    let ocean_rank_id = n_atm;
    let atm_comm = world
        .split(0, world.rank() as i64)
        .expect("atmosphere rank must join the atmosphere communicator");
    let is_root = atm_comm.rank() == 0;

    let planet = World::earthlike();
    let model = AtmModel::new(cfg.atm.clone(), &atm_comm);
    let nlon = model.grid().nlon;
    let sea_mask = OceanModel::effective_sea_mask(&cfg.ocean, &planet);
    let ocn_grid =
        foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let coupler = Coupler::new(
        model.grid().clone(),
        ocn_grid.clone(),
        sea_mask.clone(),
        &planet,
        cfg.atm.physics,
    );

    // Initial SST from the ocean.
    let mut sst = if is_root {
        let s: Field2 = world.recv(ocean_rank_id, TAG_SST);
        atm_comm.bcast(0, Some(s))
    } else {
        atm_comm.bcast(0, None)
    };

    let mut atm_state = model.init_state();
    let mut coupler_state = coupler.init_state(&sst, AtmModel::t_init);
    let mut export = model.initial_export(&atm_state);

    let steps_per_couple = cfg.atm_steps_per_couple();
    let intervals_per_month = ((30.0 * SECONDS_PER_DAY) / cfg.dt_couple).round() as usize;
    let mut res = RankResult::default();
    let mut month_acc: Option<(Field2, usize)> = None;
    let t_start = world.now();

    for c in 0..n_couple {
        for _ in 0..steps_per_couple {
            // ---- Coupler, distributed by latitude rows (co-located
            //      with the atmosphere decomposition, as in the paper).
            let forcing_local = world.region("coupler", || {
                let (j0, j1) = model.rows();
                let (ka0, ka1) = (j0 * nlon, j1 * nlon);
                // The export fields already hold exactly this rank's rows.
                let fields = AtmSurfaceFields {
                    t_low: export.t_low.clone(),
                    q_low: export.q_low.clone(),
                    u_low: export.u_low.clone(),
                    v_low: export.v_low.clone(),
                    precip: export.precip.clone(),
                    sw_sfc: export.sw_sfc.clone(),
                    lw_down: export.lw_down.clone(),
                };
                let (sfc, runoff) = coupler.step_rows(
                    &mut coupler_state,
                    &fields,
                    &sst,
                    cfg.atm.dt,
                    ka0,
                    ka1,
                    ka0,
                );
                // Rivers need the global runoff; they are cheap, so they
                // run replicated from the allgathered field.
                let local_runoff = runoff[ka0..ka1].to_vec();
                let full_runoff: Vec<f64> = atm_comm
                    .allgather(local_runoff)
                    .into_iter()
                    .flatten()
                    .collect();
                coupler.route_rivers(&mut coupler_state, &full_runoff, cfg.atm.dt);
                AtmForcing {
                    fluxes: sfc.fluxes[ka0..ka1].to_vec(),
                    t_sfc: sfc.t_sfc[ka0..ka1].to_vec(),
                    albedo: sfc.albedo[ka0..ka1].to_vec(),
                }
            });
            // ---- Atmosphere step. ------------------------------------
            export = world.region("atmosphere", || {
                model.step(&mut atm_state, &atm_comm, &forcing_local)
            });
            res.work += export.work.iter().sum::<usize>();
        }

        // ---- Ocean exchange: sum the row-local forcing parts across
        //      the atmosphere ranks, add the replicated part once. -----
        let forcing = world.region("coupler", || {
            let (local, shared) = coupler.take_ocean_forcing_parts(&mut coupler_state);
            let n_o = local.heat.as_slice().len();
            let mut flat = Vec::with_capacity(4 * n_o);
            flat.extend_from_slice(local.tau_x.as_slice());
            flat.extend_from_slice(local.tau_y.as_slice());
            flat.extend_from_slice(local.heat.as_slice());
            flat.extend_from_slice(local.freshwater.as_slice());
            let summed = atm_comm.allreduce(&flat, foam_mpi::ReduceOp::Sum);
            let (onx, ony) = (ocn_grid.nx, ocn_grid.ny);
            let mut f = foam_ocean::OceanForcing {
                tau_x: Field2::from_vec(onx, ony, summed[..n_o].to_vec()),
                tau_y: Field2::from_vec(onx, ony, summed[n_o..2 * n_o].to_vec()),
                heat: Field2::from_vec(onx, ony, summed[2 * n_o..3 * n_o].to_vec()),
                freshwater: Field2::from_vec(onx, ony, summed[3 * n_o..].to_vec()),
            };
            f.tau_x.axpy(1.0, &shared.tau_x);
            f.tau_y.axpy(1.0, &shared.tau_y);
            f.heat.axpy(1.0, &shared.heat);
            f.freshwater.axpy(1.0, &shared.freshwater);
            f
        });
        let received = world.region("coupler", || {
            let mut got: Option<Field2> = None;
            if is_root {
                world.send(ocean_rank_id, TAG_FORCING, forcing);
                let due = match cfg.coupling {
                    CouplingMode::Sequential => true,
                    CouplingMode::Lagged => c >= 1,
                };
                if due {
                    got = Some(world.recv(ocean_rank_id, TAG_SST));
                }
            }
            // Everyone learns whether an update arrived.
            let flag = atm_comm.bcast(0, if atm_comm.rank() == 0 { Some(got.is_some()) } else { None });
            if flag {
                let s = if atm_comm.rank() == 0 {
                    atm_comm.bcast(0, got)
                } else {
                    atm_comm.bcast(0, None)
                };
                Some(s)
            } else {
                None
            }
        });
        if let Some(new_sst) = received {
            sst = new_sst;
            coupler.update_ice(&mut coupler_state, &sst);
        }

        // ---- Bookkeeping on the root. --------------------------------
        if is_root {
            let mean = ocn_grid.masked_mean(sst.as_slice(), &sea_mask);
            res.mean_sst_series.push(mean);
            if cfg.collect_monthly_sst {
                let (acc, n) = month_acc.get_or_insert_with(|| {
                    (Field2::zeros(ocn_grid.nx, ocn_grid.ny), 0usize)
                });
                acc.axpy(1.0, &sst);
                *n += 1;
                if *n == intervals_per_month {
                    let mut mean_field = acc.clone();
                    mean_field.scale(1.0 / *n as f64);
                    res.monthly_sst.push(mean_field);
                    month_acc = None;
                }
            }
        }
    }

    // Drain the final SST in lagged mode (the ocean always sends one per
    // interval).
    if is_root && cfg.coupling == CouplingMode::Lagged {
        sst = world.recv(ocean_rank_id, TAG_SST);
    }
    res.wall_seconds = world.now() - t_start;
    if is_root {
        res.final_sst = Some(sst);
    }
    res
}

fn ocean_rank(cfg: &FoamConfig, world: &Comm, n_couple: usize) -> RankResult {
    // Participate in the split even though the ocean keeps no sub-comm.
    let _ = world.split(-1, 0);
    let planet = World::earthlike();
    let model = OceanModel::new(cfg.ocean.clone(), &planet);
    let mut state = model.init_state(&planet);
    let atm_root = 0usize;

    world.send(atm_root, TAG_SST, model.sst(&state));
    for _ in 0..n_couple {
        let forcing: OceanForcing = world.recv(atm_root, TAG_FORCING);
        world.region("ocean", || match cfg.ocean_scheme {
            SplitScheme::FoamSplit => model.step_coupled(&mut state, &forcing, cfg.dt_couple),
            SplitScheme::Unsplit => model.step_unsplit(&mut state, &forcing, cfg.dt_couple),
        });
        world.send(atm_root, TAG_SST, model.sst(&state));
    }
    RankResult::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_run_advances_and_stays_physical() {
        let cfg = FoamConfig::tiny(1);
        let out = run_coupled(&cfg, 2.0);
        assert_eq!(out.mean_sst_series.len(), 8); // 4 exchanges/day
        assert!(out.final_sst.all_finite());
        let last = *out.mean_sst_series.last().unwrap();
        assert!((-2.0..30.0).contains(&last), "mean SST {last}");
        assert!(out.model_speedup > 1.0, "slower than real time?!");
        assert!((0.0..=1.0).contains(&out.ice_fraction));
    }

    #[test]
    fn lagged_and_sequential_agree_on_short_runs() {
        // The lag changes SST timing by one interval; over a couple of
        // days the mean-SST trajectories must still be close.
        let cfg = FoamConfig::tiny(2);
        let lag = run_coupled(&cfg, 2.0);
        let mut cfg_seq = cfg.clone();
        cfg_seq.coupling = CouplingMode::Sequential;
        let seq = run_coupled(&cfg_seq, 2.0);
        let a = lag.mean_sst_series.last().unwrap();
        let b = seq.mean_sst_series.last().unwrap();
        assert!((a - b).abs() < 0.3, "lagged {a} vs sequential {b}");
    }

    #[test]
    fn tracing_produces_all_three_component_labels() {
        let mut cfg = FoamConfig::tiny(3);
        cfg.tracing = true;
        let out = run_coupled(&cfg, 0.5);
        // Atmosphere ranks show atmosphere + coupler work.
        for t in &out.traces[..cfg.n_atm_ranks] {
            assert!(t.work_time("atmosphere") > 0.0, "rank {} no atm work", t.rank);
            assert!(t.work_time("coupler") > 0.0, "rank {} no coupler work", t.rank);
        }
        // The ocean rank shows ocean work and (waiting for forcing) idle
        // time.
        let to = &out.traces[cfg.n_atm_ranks];
        assert!(to.work_time("ocean") > 0.0);
    }

    #[test]
    fn monthly_sst_collection_counts_months() {
        let mut cfg = FoamConfig::tiny(4);
        cfg.collect_monthly_sst = true;
        // 1/4 month → 0 complete months; keep the test fast.
        let out = run_coupled(&cfg, 7.5);
        assert!(out.monthly_sst.is_empty());
        assert_eq!(out.mean_sst_series.len(), 30);
    }

    #[test]
    fn baseline_config_flips_both_devices() {
        let cfg = FoamConfig::tiny(5);
        let base = baseline_config(&cfg);
        assert_eq!(base.coupling, CouplingMode::Sequential);
        assert_eq!(base.ocean_scheme, SplitScheme::Unsplit);
        assert_eq!(base.atm.nlon, cfg.atm.nlon);
    }
}
