//! The coupled SPMD driver: N atmosphere ranks (with the coupler
//! co-located, as in the paper) plus one ocean rank.
//!
//! Rank layout (world communicator):
//! * ranks `0 .. n_atm` — atmosphere + coupler,
//! * rank `n_atm` — ocean.
//!
//! Exchange protocol (tags on the world communicator, defined in
//! [`foam_coupler::tags`]):
//! * the ocean sends the initial SST, then loops
//!   `recv forcing → integrate one coupling interval → send SST`;
//! * in **lagged** mode the atmosphere posts its forcing and only
//!   collects the SST produced from the *previous* forcing after it has
//!   finished its own next interval — so the single ocean node works
//!   concurrently with all the atmosphere nodes (the overlap visible in
//!   the paper's Figure 2, where "one ocean processor has no difficulty
//!   keeping up with 16 atmosphere processors");
//! * in **sequential** mode (the CSM-like baseline) the atmosphere
//!   blocks on the SST immediately.
//!
//! # Failure semantics
//!
//! Every exchange message carries a sequence number (forcings count
//! coupling intervals, SSTs count completed ocean integrations), which
//! makes the protocol idempotent: duplicates and stale retransmissions
//! are recognized and ignored. When the atmosphere root's SST receive
//! misses its deadline ([`crate::RuntimeConfig::sst_retry_timeout_secs`])
//! it sends a `TAG_SST_RETRY` NACK and backs off exponentially; the
//! ocean answers by retransmitting its latest SST. A stale answer tells
//! the root the *forcing* was lost, and it retransmits that instead. An
//! exhausted retry budget aborts the run with a typed
//! [`CoupledError`] — broadcast to the other atmosphere ranks and
//! signalled to the ocean via the `TAG_DONE` handshake — rather than
//! panicking or hanging. The same handshake ends clean runs: the root's
//! final drain of retransmitted duplicates is what lets the runtime's
//! teardown comm-lint come back clean even for faulty runs that
//! recovered.

use std::time::Duration;

use foam_atm::{AtmForcing, AtmModel};
use foam_coupler::tags::{TAG_DONE, TAG_FORCING, TAG_SST, TAG_SST_RETRY};
use foam_coupler::{AtmSurfaceFields, Coupler};
use foam_grid::constants::SECONDS_PER_DAY;
use foam_grid::{Field2, World};
use foam_mpi::{Comm, CommLint, RankTrace, RunConfig, Universe};
use foam_ocean::{OceanForcing, OceanModel, SplitScheme};

use crate::config::{CouplingMode, FoamConfig, RuntimeConfig};

/// Typed failure of a coupled run — the graceful alternative to a
/// panicking (or silently hanging) exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoupledError {
    /// The atmosphere root exhausted its retry budget waiting for the
    /// SST with sequence number `expected_seq`.
    SstExchange { expected_seq: usize, retries: u32 },
    /// This rank was told by the root that the run is aborting.
    Aborted,
}

impl std::fmt::Display for CoupledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoupledError::SstExchange {
                expected_seq,
                retries,
            } => write!(
                f,
                "SST exchange failed: sequence {expected_seq} never arrived after {retries} retries"
            ),
            CoupledError::Aborted => write!(f, "run aborted by the atmosphere root"),
        }
    }
}

impl std::error::Error for CoupledError {}

/// Results of a coupled run.
#[derive(Debug)]
pub struct CoupledOutput {
    /// Simulated span \[s\].
    pub sim_seconds: f64,
    /// Wall-clock span of the integration \[s\].
    pub wall_seconds: f64,
    /// The paper's headline metric: simulated time per wall-clock time.
    pub model_speedup: f64,
    /// Area-mean SST after each coupling interval \[°C\].
    pub mean_sst_series: Vec<f64>,
    /// Monthly-mean SST fields (ocean grid), if collection was enabled.
    pub monthly_sst: Vec<Field2>,
    /// SST at the end of the run.
    pub final_sst: Field2,
    /// Sea-ice fraction of the ocean area at the end.
    pub ice_fraction: f64,
    /// Per-rank activity traces; each carries per-tag comm statistics
    /// (always collected, segments only when tracing was enabled).
    pub traces: Vec<RankTrace>,
    /// Teardown report of the message-passing runtime: leaked messages,
    /// tag imbalances, expired deadlines.
    pub comm_lint: CommLint,
    /// Total physics work units per atmosphere rank (load balance).
    pub work_per_rank: Vec<usize>,
}

/// Per-rank result carried out of the SPMD closure.
#[derive(Debug, Default, Clone)]
struct RankResult {
    mean_sst_series: Vec<f64>,
    monthly_sst: Vec<Field2>,
    final_sst: Option<Field2>,
    wall_seconds: f64,
    work: usize,
}

/// The baseline ("CSM-like") variant of a configuration: identical
/// physics with FOAM's two throughput devices removed — sequential
/// coupling and the unsplit gravity-wave-limited ocean (experiment T2).
pub fn baseline_config(cfg: &FoamConfig) -> FoamConfig {
    let mut c = cfg.clone();
    c.coupling = CouplingMode::Sequential;
    c.ocean_scheme = SplitScheme::Unsplit;
    c
}

/// Run the coupled model for `days` simulated days, panicking on a
/// communication failure (see [`try_run_coupled`] for the fallible
/// form).
pub fn run_coupled(cfg: &FoamConfig, days: f64) -> CoupledOutput {
    match try_run_coupled(cfg, days) {
        Ok(out) => out,
        Err(e) => panic!("coupled run failed: {e}"),
    }
}

/// Run the coupled model for `days` simulated days. Communication
/// failures that survive the retry protocol surface as a typed
/// [`CoupledError`]; every rank (including the ocean) shuts down
/// cleanly first, so the returned error is accompanied by an orderly
/// teardown rather than a poisoned job.
pub fn try_run_coupled(cfg: &FoamConfig, days: f64) -> Result<CoupledOutput, CoupledError> {
    let n_couple = ((days * SECONDS_PER_DAY) / cfg.dt_couple).round().max(1.0) as usize;
    let n_atm = cfg.n_atm_ranks;
    let run_cfg = RunConfig {
        tracing: cfg.tracing,
        deadline: cfg.runtime.recv_deadline_secs.map(Duration::from_secs_f64),
        faults: cfg.runtime.fault_plan.clone(),
    };
    let out = Universe::run_cfg(cfg.n_ranks(), run_cfg, |world| {
        if world.rank() < n_atm {
            atm_rank(cfg, world, n_couple)
        } else {
            ocean_rank(cfg, world)
        }
    });
    // The root's error is the authoritative one; others only report
    // the abort it broadcast.
    let mut results = out.results;
    let r0 = results.remove(0)?;
    let mut work_per_rank = vec![r0.work];
    for r in results.drain(..n_atm - 1) {
        work_per_rank.push(r?.work);
    }
    results.remove(0)?; // the ocean rank
    let sim_seconds = n_couple as f64 * cfg.dt_couple;
    let wall = r0.wall_seconds.max(1e-9);
    let final_sst = r0.final_sst.expect("rank 0 must produce a final SST");
    // Ice fraction diagnosed from the clamp on the final field.
    let world_obj = World::earthlike();
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world_obj);
    let icy: Vec<f64> = final_sst
        .as_slice()
        .iter()
        .map(|&t| {
            if t <= foam_grid::constants::SEAWATER_FREEZE_C + 1e-6 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let ice_fraction = grid.masked_mean(&icy, &mask);
    Ok(CoupledOutput {
        sim_seconds,
        wall_seconds: wall,
        model_speedup: sim_seconds / wall,
        mean_sst_series: r0.mean_sst_series,
        monthly_sst: r0.monthly_sst,
        final_sst,
        ice_fraction,
        traces: out.traces,
        comm_lint: out.lint,
        work_per_rank,
    })
}

/// Receive the SST with sequence number `expected`, driving the retry
/// protocol: deadline → NACK → exponential backoff; stale answers
/// trigger a forcing retransmission from `recent` (the forcings the
/// root still holds). With `sst_retry_max == 0` this is a plain
/// blocking receive, classic-MPI style.
fn recv_sst(
    world: &Comm,
    rt: &RuntimeConfig,
    ocean: usize,
    expected: usize,
    recent: &[(usize, OceanForcing)],
) -> Result<Field2, CoupledError> {
    if rt.sst_retry_max == 0 {
        loop {
            let (seq, sst): (usize, Field2) = world.recv(ocean, TAG_SST);
            if seq >= expected {
                return Ok(sst);
            }
        }
    }
    let timeout = Duration::from_secs_f64(rt.sst_retry_timeout_secs);
    let mut retries = 0u32;
    loop {
        match world.recv_deadline::<(usize, Field2)>(ocean, TAG_SST, timeout) {
            Ok((seq, sst)) if seq >= expected => return Ok(sst),
            Ok((stale_seq, _)) => {
                // A retransmission from before the integration we need:
                // the ocean is still waiting for the forcing of interval
                // `stale_seq`. Resend it if we still hold it (the ocean
                // recognizes duplicates by index).
                for f in recent.iter().filter(|(idx, _)| *idx == stale_seq) {
                    world.send(ocean, TAG_FORCING, f.clone());
                }
            }
            Err(_) => {
                if retries >= rt.sst_retry_max {
                    return Err(CoupledError::SstExchange {
                        expected_seq: expected,
                        retries,
                    });
                }
                retries += 1;
                world.send(ocean, TAG_SST_RETRY, expected);
                std::thread::sleep(Duration::from_secs_f64(
                    rt.sst_retry_backoff_secs * (1u64 << (retries - 1).min(10)) as f64,
                ));
            }
        }
    }
}

/// Tell the ocean the exchange is over and clear retransmitted
/// duplicates from the mailbox. The ocean's ack is ordered after any
/// SST it sent earlier, so after it arrives the drain leaves nothing
/// behind for teardown lint to flag.
fn shutdown_ocean(world: &Comm, ocean: usize) {
    world.send(ocean, TAG_DONE, ());
    let () = world.recv(ocean, TAG_DONE);
    let _ = world.drain::<(usize, Field2)>(ocean, TAG_SST);
}

fn atm_rank(cfg: &FoamConfig, world: &Comm, n_couple: usize) -> Result<RankResult, CoupledError> {
    let n_atm = cfg.n_atm_ranks;
    let ocean_rank_id = n_atm;
    let atm_comm = world
        .split(0, world.rank() as i64)
        .expect("atmosphere rank must join the atmosphere communicator");
    let is_root = atm_comm.rank() == 0;

    let planet = World::earthlike();
    let model = AtmModel::new(cfg.atm.clone(), &atm_comm);
    let nlon = model.grid().nlon;
    let sea_mask = OceanModel::effective_sea_mask(&cfg.ocean, &planet);
    let ocn_grid =
        foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let coupler = Coupler::new(
        model.grid().clone(),
        ocn_grid.clone(),
        sea_mask.clone(),
        &planet,
        cfg.atm.physics,
    );

    // Initial SST from the ocean (sequence 0). The root broadcasts
    // `None` to signal an abort to the other atmosphere ranks.
    let mut sst = if is_root {
        match recv_sst(world, &cfg.runtime, ocean_rank_id, 0, &[]) {
            Ok(s) => atm_comm
                .bcast(0, Some(Some(s)))
                .expect("root broadcast its own SST"),
            Err(e) => {
                atm_comm.bcast::<Option<Field2>>(0, Some(None));
                shutdown_ocean(world, ocean_rank_id);
                return Err(e);
            }
        }
    } else {
        match atm_comm.bcast::<Option<Field2>>(0, None) {
            Some(s) => s,
            None => return Err(CoupledError::Aborted),
        }
    };

    let mut atm_state = model.init_state();
    let mut coupler_state = coupler.init_state(&sst, AtmModel::t_init);
    let mut export = model.initial_export(&atm_state);

    let steps_per_couple = cfg.atm_steps_per_couple();
    let intervals_per_month = ((30.0 * SECONDS_PER_DAY) / cfg.dt_couple).round() as usize;
    let mut res = RankResult::default();
    let mut month_acc: Option<(Field2, usize)> = None;
    // The forcings the root keeps for retransmission (lagged mode can
    // be asked for the previous interval's, so hold the last two).
    let mut recent: Vec<(usize, OceanForcing)> = Vec::new();
    let t_start = world.now();

    for c in 0..n_couple {
        for _ in 0..steps_per_couple {
            // ---- Coupler, distributed by latitude rows (co-located
            //      with the atmosphere decomposition, as in the paper).
            let forcing_local = world.region("coupler", || {
                let (j0, j1) = model.rows();
                let (ka0, ka1) = (j0 * nlon, j1 * nlon);
                // The export fields already hold exactly this rank's rows.
                let fields = AtmSurfaceFields {
                    t_low: export.t_low.clone(),
                    q_low: export.q_low.clone(),
                    u_low: export.u_low.clone(),
                    v_low: export.v_low.clone(),
                    precip: export.precip.clone(),
                    sw_sfc: export.sw_sfc.clone(),
                    lw_down: export.lw_down.clone(),
                };
                let (sfc, runoff) =
                    coupler.step_rows(&mut coupler_state, &fields, &sst, cfg.atm.dt, ka0, ka1, ka0);
                // Rivers need the global runoff; they are cheap, so they
                // run replicated from the allgathered field.
                let local_runoff = runoff[ka0..ka1].to_vec();
                let full_runoff: Vec<f64> = atm_comm
                    .allgather(local_runoff)
                    .into_iter()
                    .flatten()
                    .collect();
                coupler.route_rivers(&mut coupler_state, &full_runoff, cfg.atm.dt);
                AtmForcing {
                    fluxes: sfc.fluxes[ka0..ka1].to_vec(),
                    t_sfc: sfc.t_sfc[ka0..ka1].to_vec(),
                    albedo: sfc.albedo[ka0..ka1].to_vec(),
                }
            });
            // ---- Atmosphere step. ------------------------------------
            export = world.region("atmosphere", || {
                model.step(&mut atm_state, &atm_comm, &forcing_local)
            });
            res.work += export.work.iter().sum::<usize>();
        }

        // ---- Ocean exchange: sum the row-local forcing parts across
        //      the atmosphere ranks, add the replicated part once. -----
        let forcing = world.region("coupler", || {
            let (local, shared) = coupler.take_ocean_forcing_parts(&mut coupler_state);
            let n_o = local.heat.as_slice().len();
            let mut flat = Vec::with_capacity(4 * n_o);
            flat.extend_from_slice(local.tau_x.as_slice());
            flat.extend_from_slice(local.tau_y.as_slice());
            flat.extend_from_slice(local.heat.as_slice());
            flat.extend_from_slice(local.freshwater.as_slice());
            let summed = atm_comm.allreduce(&flat, foam_mpi::ReduceOp::Sum);
            let (onx, ony) = (ocn_grid.nx, ocn_grid.ny);
            let mut f = foam_ocean::OceanForcing {
                tau_x: Field2::from_vec(onx, ony, summed[..n_o].to_vec()),
                tau_y: Field2::from_vec(onx, ony, summed[n_o..2 * n_o].to_vec()),
                heat: Field2::from_vec(onx, ony, summed[2 * n_o..3 * n_o].to_vec()),
                freshwater: Field2::from_vec(onx, ony, summed[3 * n_o..].to_vec()),
            };
            f.tau_x.axpy(1.0, &shared.tau_x);
            f.tau_y.axpy(1.0, &shared.tau_y);
            f.heat.axpy(1.0, &shared.heat);
            f.freshwater.axpy(1.0, &shared.freshwater);
            f
        });
        let received: Option<Field2> = world.region("coupler", || {
            if is_root {
                let tagged = (c, forcing);
                world.send(ocean_rank_id, TAG_FORCING, tagged.clone());
                recent.push(tagged);
                if recent.len() > 2 {
                    recent.remove(0);
                }
                // When is the ocean's answer due? Sequentially: right
                // now, producing sequence c+1. Lagged: the SST from the
                // *previous* forcing (sequence c), overlapping the
                // ocean's work with the interval we just integrated.
                let due = match cfg.coupling {
                    CouplingMode::Sequential => Some(c + 1),
                    CouplingMode::Lagged => (c >= 1).then_some(c),
                };
                let got = match due {
                    Some(expected) => {
                        match recv_sst(world, &cfg.runtime, ocean_rank_id, expected, &recent) {
                            Ok(s) => Some(s),
                            Err(e) => {
                                atm_comm.bcast(0, Some(2u8));
                                shutdown_ocean(world, ocean_rank_id);
                                return Err(e);
                            }
                        }
                    }
                    None => None,
                };
                // Status to the other atmosphere ranks: 0 = no update,
                // 1 = update follows, 2 = abort.
                let status = u8::from(got.is_some());
                atm_comm.bcast(0, Some(status));
                match got {
                    Some(s) => Ok(Some(atm_comm.bcast(0, Some(s)))),
                    None => Ok(None),
                }
            } else {
                match atm_comm.bcast::<u8>(0, None) {
                    2 => Err(CoupledError::Aborted),
                    1 => Ok(Some(atm_comm.bcast(0, None))),
                    _ => Ok(None),
                }
            }
        })?;
        if let Some(new_sst) = received {
            sst = new_sst;
            coupler.update_ice(&mut coupler_state, &sst);
        }

        // ---- Bookkeeping on the root. --------------------------------
        if is_root {
            let mean = ocn_grid.masked_mean(sst.as_slice(), &sea_mask);
            res.mean_sst_series.push(mean);
            if cfg.collect_monthly_sst {
                let (acc, n) = month_acc
                    .get_or_insert_with(|| (Field2::zeros(ocn_grid.nx, ocn_grid.ny), 0usize));
                acc.axpy(1.0, &sst);
                *n += 1;
                if *n == intervals_per_month {
                    let mut mean_field = acc.clone();
                    mean_field.scale(1.0 / *n as f64);
                    res.monthly_sst.push(mean_field);
                    month_acc = None;
                }
            }
        }
    }

    // Drain the final SST in lagged mode (the ocean produces one per
    // forcing), then run the shutdown handshake so retransmitted
    // duplicates don't dirty the teardown lint.
    if is_root {
        if cfg.coupling == CouplingMode::Lagged {
            match recv_sst(world, &cfg.runtime, ocean_rank_id, n_couple, &recent) {
                Ok(s) => sst = s,
                Err(e) => {
                    shutdown_ocean(world, ocean_rank_id);
                    return Err(e);
                }
            }
        }
        shutdown_ocean(world, ocean_rank_id);
    }
    res.wall_seconds = world.now() - t_start;
    if is_root {
        res.final_sst = Some(sst);
    }
    Ok(res)
}

fn ocean_rank(cfg: &FoamConfig, world: &Comm) -> Result<RankResult, CoupledError> {
    // Participate in the split even though the ocean keeps no sub-comm.
    let _ = world.split(-1, 0);
    let planet = World::earthlike();
    let model = OceanModel::new(cfg.ocean.clone(), &planet);
    let mut state = model.init_state(&planet);
    let atm_root = 0usize;

    // `completed` counts integrated coupling intervals; the SST carrying
    // sequence number k is the state after k integrations.
    let mut completed = 0usize;
    let mut latest: (usize, Field2) = (0, model.sst(&state));
    world.send(atm_root, TAG_SST, latest.clone());

    // Serve the exchange protocol until the root says we are done: step
    // on each new forcing, retransmit on each NACK, ignore duplicates.
    loop {
        let msg = world.recv_match(atm_root, &[TAG_FORCING, TAG_SST_RETRY, TAG_DONE]);
        match msg.tag() {
            TAG_FORCING => {
                let (idx, forcing) = msg.downcast::<(usize, OceanForcing)>();
                // Only the forcing for the next interval advances the
                // model; duplicates (idx < completed) and early
                // retransmissions (idx > completed) are ignored.
                if idx == completed {
                    world.region("ocean", || match cfg.ocean_scheme {
                        SplitScheme::FoamSplit => {
                            model.step_coupled(&mut state, &forcing, cfg.dt_couple)
                        }
                        SplitScheme::Unsplit => {
                            model.step_unsplit(&mut state, &forcing, cfg.dt_couple)
                        }
                    });
                    completed += 1;
                    latest = (completed, model.sst(&state));
                    world.send(atm_root, TAG_SST, latest.clone());
                }
            }
            TAG_SST_RETRY => {
                let _expected: usize = msg.downcast();
                world.send(atm_root, TAG_SST, latest.clone());
            }
            TAG_DONE => {
                msg.downcast::<()>();
                world.send(atm_root, TAG_DONE, ());
                break;
            }
            other => unreachable!("unexpected tag {other} on the ocean rank"),
        }
    }
    Ok(RankResult::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_run_advances_and_stays_physical() {
        let cfg = FoamConfig::tiny(1);
        let out = run_coupled(&cfg, 2.0);
        assert_eq!(out.mean_sst_series.len(), 8); // 4 exchanges/day
        assert!(out.final_sst.all_finite());
        let last = *out.mean_sst_series.last().unwrap();
        assert!((-2.0..30.0).contains(&last), "mean SST {last}");
        assert!(out.model_speedup > 1.0, "slower than real time?!");
        assert!((0.0..=1.0).contains(&out.ice_fraction));
        assert!(out.comm_lint.is_clean(), "{}", out.comm_lint);
    }

    #[test]
    fn lagged_and_sequential_agree_on_short_runs() {
        // The lag changes SST timing by one interval; over a couple of
        // days the mean-SST trajectories must still be close.
        let cfg = FoamConfig::tiny(2);
        let lag = run_coupled(&cfg, 2.0);
        let mut cfg_seq = cfg.clone();
        cfg_seq.coupling = CouplingMode::Sequential;
        let seq = run_coupled(&cfg_seq, 2.0);
        let a = lag.mean_sst_series.last().unwrap();
        let b = seq.mean_sst_series.last().unwrap();
        assert!((a - b).abs() < 0.3, "lagged {a} vs sequential {b}");
    }

    #[test]
    fn tracing_produces_all_three_component_labels() {
        let mut cfg = FoamConfig::tiny(3);
        cfg.tracing = true;
        let out = run_coupled(&cfg, 0.5);
        // Atmosphere ranks show atmosphere + coupler work.
        for t in &out.traces[..cfg.n_atm_ranks] {
            assert!(
                t.work_time("atmosphere") > 0.0,
                "rank {} no atm work",
                t.rank
            );
            assert!(
                t.work_time("coupler") > 0.0,
                "rank {} no coupler work",
                t.rank
            );
        }
        // The ocean rank shows ocean work and (waiting for forcing) idle
        // time.
        let to = &out.traces[cfg.n_atm_ranks];
        assert!(to.work_time("ocean") > 0.0);
    }

    #[test]
    fn monthly_sst_collection_counts_months() {
        let mut cfg = FoamConfig::tiny(4);
        cfg.collect_monthly_sst = true;
        // 1/4 month → 0 complete months; keep the test fast.
        let out = run_coupled(&cfg, 7.5);
        assert!(out.monthly_sst.is_empty());
        assert_eq!(out.mean_sst_series.len(), 30);
    }

    #[test]
    fn baseline_config_flips_both_devices() {
        let cfg = FoamConfig::tiny(5);
        let base = baseline_config(&cfg);
        assert_eq!(base.coupling, CouplingMode::Sequential);
        assert_eq!(base.ocean_scheme, SplitScheme::Unsplit);
        assert_eq!(base.atm.nlon, cfg.atm.nlon);
    }

    #[test]
    fn exchange_tags_show_up_in_comm_stats() {
        let mut cfg = FoamConfig::tiny(6);
        // Generous per-attempt timeout so a slow CI machine cannot
        // trigger spurious retransmissions and skew the exact counts.
        cfg.runtime.sst_retry_timeout_secs = 30.0;
        let out = run_coupled(&cfg, 1.0);
        let mut merged = foam_mpi::CommStats::default();
        for t in &out.traces {
            merged.merge(&t.stats);
        }
        let forcing = merged.tag(TAG_FORCING);
        let sst = merged.tag(TAG_SST);
        // 4 coupling intervals → 4 forcings, 4 SSTs + the initial one.
        assert_eq!(forcing.msgs_sent, 4);
        assert_eq!(forcing.msgs_recvd, 4);
        assert_eq!(sst.msgs_sent, 5);
        assert_eq!(sst.msgs_recvd, 5);
        assert!(forcing.bytes_sent > 0);
        assert!(sst.bytes_sent > 0);
    }

    #[test]
    fn exhausted_retries_return_a_typed_error() {
        // Drop *every* SST so no retry can succeed; the run must come
        // back with a typed error, not a panic or a hang.
        let mut cfg = FoamConfig::tiny(7);
        cfg.runtime.sst_retry_timeout_secs = 0.05;
        cfg.runtime.sst_retry_backoff_secs = 0.01;
        cfg.runtime.sst_retry_max = 2;
        cfg.runtime.fault_plan =
            Some(foam_mpi::FaultPlan::new(11).with_rule(foam_mpi::FaultRule {
                src: None,
                dst: None,
                tag: Some(TAG_SST),
                action: foam_mpi::FaultAction::Drop,
                max_hits: None,
                probability: 1.0,
            }));
        let err = try_run_coupled(&cfg, 0.25).unwrap_err();
        assert_eq!(
            err,
            CoupledError::SstExchange {
                expected_seq: 0,
                retries: 2
            }
        );
    }
}
