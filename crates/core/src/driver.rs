//! The coupled SPMD driver: N atmosphere ranks (with the coupler
//! co-located, as in the paper) plus one ocean rank.
//!
//! Rank layout (world communicator):
//! * ranks `0 .. n_atm` — atmosphere + coupler,
//! * rank `n_atm` — ocean.
//!
//! Exchange protocol (tags on the world communicator, defined in
//! [`foam_coupler::tags`]):
//! * the ocean sends the initial SST, then loops
//!   `recv forcing → integrate one coupling interval → send SST`;
//! * in **lagged** mode the atmosphere posts its forcing and only
//!   collects the SST produced from the *previous* forcing after it has
//!   finished its own next interval — so the single ocean node works
//!   concurrently with all the atmosphere nodes (the overlap visible in
//!   the paper's Figure 2, where "one ocean processor has no difficulty
//!   keeping up with 16 atmosphere processors");
//! * in **sequential** mode (the CSM-like baseline) the atmosphere
//!   blocks on the SST immediately.
//!
//! # Failure semantics
//!
//! Every exchange message carries a sequence number (forcings count
//! coupling intervals, SSTs count completed ocean integrations), which
//! makes the protocol idempotent: duplicates and stale retransmissions
//! are recognized and ignored. When the atmosphere root's SST receive
//! misses its deadline ([`crate::RuntimeConfig::sst_retry_timeout_secs`])
//! it sends a `TAG_SST_RETRY` NACK and backs off exponentially; the
//! ocean answers by retransmitting its latest SST. A stale answer tells
//! the root the *forcing* was lost, and it retransmits that instead. An
//! exhausted retry budget aborts the run with a typed
//! [`CoupledError`] — broadcast to the other atmosphere ranks and
//! signalled to the ocean via the `TAG_DONE` handshake — rather than
//! panicking or hanging. The same handshake ends clean runs: the root's
//! final drain of retransmitted duplicates is what lets the runtime's
//! teardown comm-lint come back clean even for faulty runs that
//! recovered.

use std::path::{Path, PathBuf};
use std::time::Duration;

use foam_atm::{AtmExport, AtmForcing, AtmModel, AtmState, AtmWorkspace};
use foam_ckpt::{CheckpointStore, CkptError, FaultyStore};
use foam_coupler::tags::{TAG_CKPT, TAG_DONE, TAG_FORCING, TAG_SST, TAG_SST_RETRY};
use foam_coupler::{AtmSurfaceView, Coupler, CouplerState, CouplerWorkspace, ExchangeBuffers};
use foam_grid::constants::SECONDS_PER_DAY;
use foam_grid::{Field2, OceanGrid, World};
use foam_mpi::{Backoff, Comm, CommLint, RankTrace, RunConfig, Universe};
use foam_ocean::{OceanForcing, OceanModel, SplitScheme};
use foam_telemetry::{TelemetryRegistry, TelemetryReport};

use crate::checkpoint::{self, GlobalSnapshot, RootShardExtras};
use crate::config::{
    ConfigError, CouplingMode, FoamConfig, PhysicsFaultKind, RuntimeConfig, SentinelConfig,
};
use crate::observer::{ProgressEvent, RunObserver};
use crate::stream::{sea_area_weights, DriverStream};

/// Kelvin → Celsius offset for the soil-temperature sentinel (soil
/// columns integrate in K, the sentinel bounds are configured in °C).
const KELVIN_OFFSET: f64 = 273.15;

/// How long the root waits for the ocean's checkpoint acknowledgement
/// before abandoning the snapshot attempt (never the run) \[s\].
const CKPT_ACK_TIMEOUT_SECS: f64 = 30.0;

/// Typed failure of a coupled run — the graceful alternative to a
/// panicking (or silently hanging) exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum CoupledError {
    /// The atmosphere root exhausted its retry budget waiting for the
    /// SST with sequence number `expected_seq`.
    SstExchange { expected_seq: usize, retries: u32 },
    /// This rank was told by the root that the run is aborting.
    Aborted,
    /// The configuration failed [`FoamConfig::validate`].
    Config(ConfigError),
    /// Checkpointing or restarting failed (no readable snapshot, a
    /// mismatched configuration, an unwritable store).
    Ckpt(CkptError),
    /// The end-of-run telemetry report could not be written to the
    /// configured path. ([`FoamConfig::validate`] catches a missing
    /// parent directory up front; this covers failures at write time.)
    TelemetryWrite { path: PathBuf, error: String },
    /// A rank died mid-run (a panic, or an injected
    /// [`crate::RankKill`]). The surviving ranks were quiesced by the
    /// runtime, so the job tore down promptly instead of hanging.
    RankDead { rank: usize, detail: String },
    /// The physics sentinel found a non-finite or out-of-range value in
    /// a coupled field ([`crate::SentinelConfig`]) — the model blew up,
    /// but the last on-trajectory checkpoint predates the poison, so
    /// the run is resumable.
    Sentinel {
        /// Coupling interval at which the sentinel tripped.
        interval: usize,
        /// Which field tripped it (`"sst"` or `"soil"`).
        field: &'static str,
        /// The offending value (°C; may be NaN or ±inf).
        value: f64,
    },
    /// An internal invariant failed after the SPMD region completed —
    /// "impossible" states surfaced as data instead of a panic.
    Internal { what: String },
}

impl std::fmt::Display for CoupledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoupledError::SstExchange {
                expected_seq,
                retries,
            } => write!(
                f,
                "SST exchange failed: sequence {expected_seq} never arrived after {retries} retries"
            ),
            CoupledError::Aborted => write!(f, "run aborted by the atmosphere root"),
            CoupledError::Config(e) => write!(f, "invalid configuration: {e}"),
            CoupledError::Ckpt(e) => write!(f, "checkpoint failure: {e}"),
            CoupledError::TelemetryWrite { path, error } => {
                write!(
                    f,
                    "failed to write the telemetry report to {}: {error}",
                    path.display()
                )
            }
            CoupledError::RankDead { rank, detail } => {
                write!(f, "rank {rank} died mid-run: {detail}")
            }
            CoupledError::Sentinel {
                interval,
                field,
                value,
            } => write!(
                f,
                "physics sentinel tripped at coupling interval {interval}: {field} = {value}"
            ),
            CoupledError::Internal { what } => {
                write!(f, "internal driver invariant failed: {what}")
            }
        }
    }
}

impl std::error::Error for CoupledError {}

impl From<ConfigError> for CoupledError {
    fn from(e: ConfigError) -> Self {
        CoupledError::Config(e)
    }
}

impl From<CkptError> for CoupledError {
    fn from(e: CkptError) -> Self {
        CoupledError::Ckpt(e)
    }
}

/// Results of a coupled run.
#[derive(Debug)]
pub struct CoupledOutput {
    /// Simulated span \[s\].
    pub sim_seconds: f64,
    /// Wall-clock span of the integration \[s\].
    pub wall_seconds: f64,
    /// The paper's headline metric: simulated time per wall-clock time.
    pub model_speedup: f64,
    /// Area-mean SST after each coupling interval \[°C\].
    pub mean_sst_series: Vec<f64>,
    /// Monthly-mean SST fields (ocean grid), if collection was enabled.
    pub monthly_sst: Vec<Field2>,
    /// SST at the end of the run.
    pub final_sst: Field2,
    /// Sea-ice fraction of the ocean area at the end.
    pub ice_fraction: f64,
    /// Per-rank activity traces; each carries per-tag comm statistics
    /// (always collected, segments only when tracing was enabled).
    pub traces: Vec<RankTrace>,
    /// Teardown report of the message-passing runtime: leaked messages,
    /// tag imbalances, expired deadlines.
    pub comm_lint: CommLint,
    /// Total physics work units per atmosphere rank (load balance).
    pub work_per_rank: Vec<usize>,
    /// The cross-rank telemetry report (phase breakdown, counters,
    /// model speedup), when [`crate::TelemetryConfig`] enabled
    /// collection.
    pub telemetry: Option<TelemetryReport>,
    /// Streaming per-month SST statistics, when [`crate::FoamConfig`]'s
    /// `stream` was set — the `O(grid)` century-scale replacement for
    /// `monthly_sst`.
    pub stream: Option<DriverStream>,
}

impl CoupledOutput {
    /// Area-mean SST after the last completed coupling interval, or
    /// `None` if the run completed no interval — the panic-free
    /// alternative to `mean_sst_series.last().unwrap()`.
    pub fn final_mean_sst(&self) -> Option<f64> {
        self.mean_sst_series.last().copied()
    }
}

/// Per-rank result carried out of the SPMD closure.
#[derive(Debug, Default, Clone)]
struct RankResult {
    mean_sst_series: Vec<f64>,
    monthly_sst: Vec<Field2>,
    final_sst: Option<Field2>,
    wall_seconds: f64,
    work: usize,
    /// This rank's harvested registry (boxed: it is much larger than the
    /// rest of the struct and absent unless telemetry is enabled).
    telemetry: Option<Box<TelemetryRegistry>>,
    /// Root-only streaming statistics (when configured).
    stream: Option<DriverStream>,
}

/// The baseline ("CSM-like") variant of a configuration: identical
/// physics with FOAM's two throughput devices removed — sequential
/// coupling and the unsplit gravity-wave-limited ocean (experiment T2).
pub fn baseline_config(cfg: &FoamConfig) -> FoamConfig {
    let mut c = cfg.clone();
    c.coupling = CouplingMode::Sequential;
    c.ocean_scheme = SplitScheme::Unsplit;
    c
}

/// Run the coupled model for `days` simulated days, panicking on a
/// communication failure (see [`try_run_coupled`] for the fallible
/// form).
pub fn run_coupled(cfg: &FoamConfig, days: f64) -> CoupledOutput {
    match try_run_coupled(cfg, days) {
        Ok(out) => out,
        Err(e) => panic!("coupled run failed: {e}"),
    }
}

/// Run the coupled model for `days` simulated days. Communication
/// failures that survive the retry protocol surface as a typed
/// [`CoupledError`]; every rank (including the ocean) shuts down
/// cleanly first, so the returned error is accompanied by an orderly
/// teardown rather than a poisoned job.
pub fn try_run_coupled(cfg: &FoamConfig, days: f64) -> Result<CoupledOutput, CoupledError> {
    cfg.validate()?;
    validate_days(days)?;
    run_inner(cfg, days, None, None)
}

/// [`try_run_coupled`] with a live [`RunObserver`]: the root rank
/// reports each completed coupling interval and polls for
/// cancellation. Observation is read-only — the simulated bits are
/// identical with or without an observer attached.
pub fn try_run_coupled_observed(
    cfg: &FoamConfig,
    days: f64,
    obs: &dyn RunObserver,
) -> Result<CoupledOutput, CoupledError> {
    cfg.validate()?;
    validate_days(days)?;
    run_inner(cfg, days, None, Some(obs))
}

/// A zero-day (or negative, or NaN) run would integrate nothing and
/// hand back an empty `mean_sst_series` that downstream diagnostics
/// trip over — reject it up front as a typed error instead.
fn validate_days(days: f64) -> Result<(), CoupledError> {
    if days > 0.0 && days.is_finite() {
        Ok(())
    } else {
        Err(CoupledError::Config(ConfigError::NonPositive {
            what: "days",
            value: days,
        }))
    }
}

/// Resume the coupled model from the newest readable checkpoint under
/// `cfg.ckpt.dir`, then integrate until `days` *total* simulated days
/// (counted from the original start, like the diagnostics series, which
/// continue seamlessly). Snapshots that fail verification — truncated
/// files, checksum mismatches, wrong versions — are skipped in favor of
/// the next-older retained one; if none is readable the error of the
/// newest candidate is returned.
///
/// A restart on the same rank count is bit-identical to the
/// uninterrupted run: the snapshot stores raw IEEE-754 bits and is taken
/// at a coupling-interval boundary on the failure-free trajectory. A
/// restart on a *different* rank count resumes the same model state but
/// reassociates the forcing reduction, so it matches only to rounding.
pub fn try_resume_coupled(cfg: &FoamConfig, days: f64) -> Result<CoupledOutput, CoupledError> {
    cfg.validate()?;
    validate_days(days)?;
    let dir = cfg
        .ckpt
        .dir
        .as_deref()
        .ok_or(CoupledError::Ckpt(CkptError::NoCheckpoint))?;
    let store = CheckpointStore::open(dir)?;
    let snap = checkpoint::load_latest(&store, cfg)?;
    run_inner(cfg, days, Some(snap), None)
}

/// [`try_resume_coupled`] with a live [`RunObserver`] (see
/// [`try_run_coupled_observed`]). Progress events resume from the
/// snapshot's interval.
pub fn try_resume_coupled_observed(
    cfg: &FoamConfig,
    days: f64,
    obs: &dyn RunObserver,
) -> Result<CoupledOutput, CoupledError> {
    cfg.validate()?;
    validate_days(days)?;
    let dir = cfg
        .ckpt
        .dir
        .as_deref()
        .ok_or(CoupledError::Ckpt(CkptError::NoCheckpoint))?;
    let store = CheckpointStore::open(dir)?;
    let snap = checkpoint::load_latest(&store, cfg)?;
    run_inner(cfg, days, Some(snap), Some(obs))
}

/// Validate-then-run, fresh start, optional observer — the shape the
/// supervisor needs for its restart attempts.
pub(crate) fn run_validated(
    cfg: &FoamConfig,
    days: f64,
    obs: Option<&dyn RunObserver>,
) -> Result<CoupledOutput, CoupledError> {
    cfg.validate()?;
    validate_days(days)?;
    run_inner(cfg, days, None, obs)
}

/// Number of coupling intervals a `days`-day run of `cfg` integrates
/// (the loop bound of the exchange protocol; shared with the run
/// supervisor so it can tell "resumable checkpoint" from "checkpoint
/// already at the end of the run").
pub(crate) fn n_couple_for(cfg: &FoamConfig, days: f64) -> usize {
    ((days * SECONDS_PER_DAY) / cfg.dt_couple).round().max(1.0) as usize
}

pub(crate) fn run_inner(
    cfg: &FoamConfig,
    days: f64,
    resume: Option<GlobalSnapshot>,
    obs: Option<&dyn RunObserver>,
) -> Result<CoupledOutput, CoupledError> {
    let n_couple = n_couple_for(cfg, days);
    if let Some(snap) = &resume {
        if snap.interval >= n_couple {
            return Err(CoupledError::Ckpt(CkptError::ConfigMismatch(format!(
                "checkpoint already at interval {} of a {n_couple}-interval run",
                snap.interval
            ))));
        }
    }
    // Surface an unusable checkpoint root as a typed error up front,
    // before ranks silently run without snapshots.
    if let Some(dir) = &cfg.ckpt.dir {
        CheckpointStore::open(dir)?;
    }
    let n_atm = cfg.n_atm_ranks;
    let run_cfg = RunConfig {
        tracing: cfg.tracing,
        deadline: cfg.runtime.recv_deadline_secs.map(Duration::from_secs_f64),
        faults: cfg.runtime.fault_plan.clone(),
    };
    let start_c = resume.as_ref().map(|s| s.interval).unwrap_or(0);
    let collect_telemetry = cfg.telemetry.collect();
    let resume_ref = resume.as_ref();
    let out = Universe::try_run_cfg(cfg.n_ranks(), run_cfg, |world| {
        // Each rank is one OS thread, so a thread-local registry is a
        // per-rank registry. Harvest on both the success and the error
        // path so a reused thread never inherits stale state.
        if collect_telemetry {
            foam_telemetry::install(TelemetryRegistry::new(world.rank()));
        }
        let result = if world.rank() < n_atm {
            atm_rank(cfg, world, n_couple, resume_ref, obs)
        } else {
            ocean_rank(cfg, world, resume_ref)
        };
        let telemetry = foam_telemetry::harvest().map(Box::new);
        result.map(|mut res| {
            res.telemetry = telemetry;
            res
        })
    })
    // A rank that panicked (organically or via an injected
    // `RankKill`) surfaces as a typed error instead of re-raising the
    // panic; the runtime already quiesced the survivors.
    .map_err(|failure| CoupledError::RankDead {
        rank: failure.rank,
        detail: failure.detail,
    })?;
    // The root's error is the authoritative one; others only report
    // the abort it broadcast.
    let mut results = out.results;
    let mut regs: Vec<TelemetryRegistry> = results
        .iter_mut()
        .filter_map(|r| r.as_mut().ok().and_then(|res| res.telemetry.take()))
        .map(|b| *b)
        .collect();
    let r0 = results.remove(0)?;
    let mut work_per_rank = vec![r0.work];
    for r in results.drain(..n_atm - 1) {
        work_per_rank.push(r?.work);
    }
    results.remove(0)?; // the ocean rank
    let sim_seconds = n_couple as f64 * cfg.dt_couple;
    let wall = r0.wall_seconds.max(1e-9);
    let final_sst = r0.final_sst.ok_or_else(|| CoupledError::Internal {
        what: "rank 0 completed without producing a final SST".to_string(),
    })?;
    // Ice fraction diagnosed from the clamp on the final field.
    let world_obj = World::earthlike();
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world_obj);
    let icy: Vec<f64> = final_sst
        .as_slice()
        .iter()
        .map(|&t| {
            if t <= foam_grid::constants::SEAWATER_FREEZE_C + 1e-6 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let ice_fraction = grid.masked_mean(&icy, &mask);
    let telemetry = if collect_telemetry {
        // Fold each rank's communication counters (collected by the
        // runtime regardless of telemetry) into its registry, so the
        // report carries messages/bytes/waits per protocol tag.
        for reg in &mut regs {
            if let Some(t) = out.traces.iter().find(|t| t.rank == reg.rank()) {
                fold_comm_stats(reg, &t.stats);
            }
        }
        // The speedup window is what this run actually integrated — a
        // resumed run is only charged for the intervals after its
        // snapshot.
        let window = (n_couple - start_c) as f64 * cfg.dt_couple;
        let report = TelemetryReport::from_ranks(window, wall, regs);
        if let Some(path) = &cfg.telemetry.path {
            report
                .write_json(path)
                .map_err(|e| CoupledError::TelemetryWrite {
                    path: path.clone(),
                    error: e.to_string(),
                })?;
        }
        Some(report)
    } else {
        None
    };
    Ok(CoupledOutput {
        sim_seconds,
        wall_seconds: wall,
        model_speedup: sim_seconds / wall,
        mean_sst_series: r0.mean_sst_series,
        monthly_sst: r0.monthly_sst,
        final_sst,
        ice_fraction,
        traces: out.traces,
        comm_lint: out.lint,
        work_per_rank,
        telemetry,
        stream: r0.stream,
    })
}

/// Convert one rank's per-tag communication statistics into telemetry
/// counters (`comm.<tag>.msgs_sent`, `.bytes_recvd`, `.wait_us`, ...),
/// using the coupler's protocol names where the tag has one.
fn fold_comm_stats(reg: &mut TelemetryRegistry, stats: &foam_mpi::CommStats) {
    for (&tag, t) in &stats.by_tag {
        let name = foam_coupler::tags::tag_name(tag)
            .map(str::to_string)
            .unwrap_or_else(|| foam_mpi::tag_label(tag).replace(' ', ""));
        let mut put = |what: &str, n: u64| {
            if n > 0 {
                reg.add(&format!("comm.{name}.{what}"), n);
            }
        };
        put("msgs_sent", t.msgs_sent);
        put("msgs_recvd", t.msgs_recvd);
        put("bytes_sent", t.bytes_sent);
        put("bytes_recvd", t.bytes_recvd);
        put("drops_injected", t.injected_drops);
        put("wait_us", (t.wait_seconds * 1e6) as u64);
    }
}

/// Receive the SST with sequence number `expected`, driving the retry
/// protocol: deadline → NACK → exponential backoff; stale answers
/// trigger a forcing retransmission from `recent` (the forcings the
/// root still holds). With `sst_retry_max == 0` this is a plain
/// blocking receive, classic-MPI style.
fn recv_sst(
    world: &Comm,
    rt: &RuntimeConfig,
    ocean: usize,
    expected: usize,
    recent: &[(usize, OceanForcing)],
) -> Result<(usize, Field2), CoupledError> {
    // Time blocked on the exchange (nests under "coupler" when the call
    // comes from inside a coupler region).
    let _t = foam_telemetry::scope("sst_wait");
    if rt.sst_retry_max == 0 {
        loop {
            let (seq, sst): (usize, Field2) = world.recv(ocean, TAG_SST);
            if seq >= expected {
                return Ok((seq, sst));
            }
        }
    }
    let timeout = Duration::from_secs_f64(rt.sst_retry_timeout_secs);
    let backoff = Backoff::new(rt.sst_retry_backoff_secs);
    let mut retries = 0u32;
    loop {
        match world.recv_deadline::<(usize, Field2)>(ocean, TAG_SST, timeout) {
            Ok((seq, sst)) if seq >= expected => return Ok((seq, sst)),
            Ok((stale_seq, _)) => {
                // A retransmission from before the integration we need:
                // the ocean is still waiting for the forcing of interval
                // `stale_seq`. Resend it if we still hold it (the ocean
                // recognizes duplicates by index).
                for f in recent.iter().filter(|(idx, _)| *idx == stale_seq) {
                    world.send(ocean, TAG_FORCING, f.clone());
                }
            }
            Err(_) => {
                if retries >= rt.sst_retry_max {
                    return Err(CoupledError::SstExchange {
                        expected_seq: expected,
                        retries,
                    });
                }
                retries += 1;
                foam_telemetry::count("coupler.sst_retries", 1);
                world.send(ocean, TAG_SST_RETRY, expected);
                std::thread::sleep(backoff.delay(retries));
            }
        }
    }
}

/// Tell the ocean the exchange is over and clear retransmitted
/// duplicates from the mailbox. The ocean's ack is ordered after any
/// SST it sent earlier, so after it arrives the drain leaves nothing
/// behind for teardown lint to flag.
fn shutdown_ocean(world: &Comm, ocean: usize) {
    world.send(ocean, TAG_DONE, ());
    let () = world.recv(ocean, TAG_DONE);
    let _ = world.drain::<(usize, Field2)>(ocean, TAG_SST);
    let _ = world.drain::<(usize, bool)>(ocean, TAG_CKPT);
}

/// Scan a just-received SST field for non-finite or out-of-range
/// sea-cell values. Runs on the root (the one rank that holds the full
/// field) before the SST is accepted, so a blown-up ocean never
/// contaminates the model state, the diagnostics, or a checkpoint.
fn sentinel_sst(
    s: &SentinelConfig,
    sst: &Field2,
    sea_mask: &[bool],
    interval: usize,
) -> Option<CoupledError> {
    if !s.enabled {
        return None;
    }
    for (k, &t) in sst.as_slice().iter().enumerate() {
        if sea_mask[k] && (!t.is_finite() || t < s.sst_min_c || t > s.sst_max_c) {
            return Some(CoupledError::Sentinel {
                interval,
                field: "sst",
                value: t,
            });
        }
    }
    None
}

/// Scan the root's soil-column skin temperatures (handed over in K,
/// checked against the °C bounds) before the root posts its forcing.
/// Scope: the root's latitude rows — the sentinel is a blow-up tripwire,
/// not a global audit, and the SST check above already covers the whole
/// ocean.
fn sentinel_soil(
    s: &SentinelConfig,
    skins_kelvin: impl Iterator<Item = f64>,
    interval: usize,
) -> Option<CoupledError> {
    if !s.enabled {
        return None;
    }
    for t_k in skins_kelvin {
        let t = t_k - KELVIN_OFFSET;
        if !t.is_finite() || t < s.soil_min_c || t > s.soil_max_c {
            return Some(CoupledError::Sentinel {
                interval,
                field: "soil",
                value: t,
            });
        }
    }
    None
}

/// Inject a physics fault ([`crate::PhysicsFault`]) into a received SST
/// field: the first sea cell becomes NaN or a wildly out-of-range
/// value, exactly as a numerically blown-up ocean would hand back.
fn poison_sst(sst: &mut Field2, kind: PhysicsFaultKind, sea_mask: &[bool]) {
    let Some(k) = sea_mask.iter().position(|&m| m) else {
        return;
    };
    sst.as_mut_slice()[k] = match kind {
        PhysicsFaultKind::Nan => f64::NAN,
        PhysicsFaultKind::OutOfRange => 1.0e6,
    };
}

/// Root bookkeeping for one completed coupling interval: the mean-SST
/// series entry and, when either consumer wants months, the
/// monthly-mean accumulation — pushed into the retained history
/// (`collect_monthly`) and/or folded into the streaming statistics. The
/// monthly mean is computed once, so when both paths are on they see
/// bit-identical fields.
#[allow(clippy::too_many_arguments)]
fn record_interval(
    series: &mut Vec<f64>,
    monthly: &mut Vec<Field2>,
    month_acc: &mut Option<(Field2, usize)>,
    stream: &mut Option<DriverStream>,
    sst: &Field2,
    ocn_grid: &OceanGrid,
    sea_mask: &[bool],
    collect_monthly: bool,
    intervals_per_month: usize,
) -> Result<(), CoupledError> {
    series.push(ocn_grid.masked_mean(sst.as_slice(), sea_mask));
    if collect_monthly || stream.is_some() {
        let (acc, n) =
            month_acc.get_or_insert_with(|| (Field2::zeros(ocn_grid.nx, ocn_grid.ny), 0usize));
        acc.axpy(1.0, sst);
        *n += 1;
        if *n == intervals_per_month {
            let mut mean_field = acc.clone();
            mean_field.scale(1.0 / *n as f64);
            if let Some(ds) = stream {
                // Unreachable on a correctly built stream (it was sized
                // from this very grid), but surfaced as data, not a
                // panic.
                ds.push_month(mean_field.as_slice())
                    .map_err(|e| CoupledError::Internal {
                        what: format!("streaming statistics rejected a monthly mean: {e}"),
                    })?;
            }
            if collect_monthly {
                monthly.push(mean_field);
            }
            *month_acc = None;
        }
    }
    Ok(())
}

/// One checkpoint attempt, coordinated across the atmosphere ranks and
/// the ocean: the root opens a staging directory and broadcasts it,
/// every rank writes its shard, the ocean is asked for its own via
/// `TAG_CKPT` (FIFO ordering behind the target interval's forcing
/// guarantees its state matches), and the root commits with an atomic
/// rename only when every ack is positive. Any failure abandons the
/// snapshot — never the run. Returns whether this rank's part succeeded.
#[allow(clippy::too_many_arguments)]
fn checkpoint_rendezvous(
    world: &Comm,
    atm_comm: &Comm,
    cfg: &FoamConfig,
    store: Option<&FaultyStore>,
    ocean: usize,
    target: usize,
    model: &AtmModel,
    atm_state: &AtmState,
    export: &AtmExport,
    coupler_state: &CouplerState,
    work: usize,
    root_extras: Option<RootShardExtras<'_>>,
    recent: &[(usize, OceanForcing)],
    resend_forcings: bool,
) -> bool {
    let _t = foam_telemetry::scope("checkpoint");
    let is_root = atm_comm.rank() == 0;
    let emergency = root_extras.as_ref().map(|r| r.emergency).unwrap_or(false);
    let mut pending = None;
    let staging: Option<String> = if is_root {
        pending = store.and_then(|s| s.begin(target as u64).ok());
        let dir = pending
            .as_ref()
            .map(|p| p.staging_dir().to_string_lossy().into_owned());
        atm_comm.bcast(0, Some(dir))
    } else {
        atm_comm.bcast::<Option<String>>(0, None)
    };
    let Some(dir) = staging else {
        return false;
    };
    let ok = checkpoint::write_atm_shard(
        Path::new(&dir),
        atm_comm.rank(),
        model.rows(),
        model.grid().nlon,
        atm_state,
        export,
        coupler_state,
        work,
        root_extras,
    )
    .is_ok();
    let oks = atm_comm.gather(ok, 0);
    if !is_root {
        return ok;
    }
    // On the emergency path the ocean may still be waiting for lost
    // forcings; retransmit what we hold so it can reach the target
    // interval before the shard request (same-tag FIFO) lands.
    if resend_forcings {
        for f in recent {
            world.send(ocean, TAG_FORCING, f.clone());
        }
    }
    world.send(ocean, TAG_CKPT, (target, dir));
    let deadline = Duration::from_secs_f64(CKPT_ACK_TIMEOUT_SECS);
    let ocean_ok = loop {
        match world.recv_deadline::<(usize, bool)>(ocean, TAG_CKPT, deadline) {
            Ok((t, o)) if t == target => break o,
            Ok(_) => continue, // stale ack of an earlier abandoned attempt
            Err(_) => break false,
        }
    };
    let all_ok = ocean_ok && oks.map(|v| v.iter().all(|&b| b)).unwrap_or(false);
    let Some(p) = pending else {
        return false;
    };
    if all_ok
        && checkpoint::write_manifest(p.staging_dir(), cfg, target, atm_comm.size(), emergency)
            .is_ok()
    {
        let committed = p.commit().is_ok();
        if committed {
            if let Some(s) = store {
                let _ = s.retain(cfg.ckpt.keep);
            }
        }
        committed
    } else {
        p.abort();
        false
    }
}

/// Per-rank scratch for the coupled hot loop, created once per run and
/// reused across every step and coupling interval (the zero-churn rule;
/// see PERFORMANCE.md and DESIGN.md §14). Holding these buffers here —
/// instead of allocating them inside [`AtmModel::step`] and
/// [`Coupler::step_rows`] each step — removes essentially all
/// steady-state allocation from the driver without changing a single
/// floating-point operation: the workspace paths are bit-identical to
/// the allocate-per-step ones (pinned by tests in `foam-atm` and
/// `foam-tests`).
struct StepWorkspace {
    /// Spectral/physics scratch for [`AtmModel::step_ws`].
    atm: AtmWorkspace,
    /// Accumulators and outputs for [`Coupler::step_rows_ws`].
    coupler: CouplerWorkspace,
    /// Row-local coupler→atmosphere forcing, refilled in place each
    /// step (`clear` + `extend_from_slice` never reallocates once the
    /// capacity is established).
    forcing: AtmForcing,
    /// Flat `[tau_x | tau_y | heat | freshwater]` buffer for the
    /// per-interval ocean-forcing reduction via
    /// [`Comm::allreduce_mut`].
    flat: Vec<f64>,
}

impl StepWorkspace {
    fn new(model: &AtmModel, coupler: &Coupler) -> Self {
        let n_local = model.n_local();
        StepWorkspace {
            atm: AtmWorkspace::new(model),
            coupler: coupler.workspace(),
            forcing: AtmForcing {
                fluxes: Vec::with_capacity(n_local),
                t_sfc: Vec::with_capacity(n_local),
                albedo: Vec::with_capacity(n_local),
            },
            flat: Vec::new(),
        }
    }
}

fn atm_rank(
    cfg: &FoamConfig,
    world: &Comm,
    n_couple: usize,
    resume: Option<&GlobalSnapshot>,
    obs: Option<&dyn RunObserver>,
) -> Result<RankResult, CoupledError> {
    let n_atm = cfg.n_atm_ranks;
    let ocean_rank_id = n_atm;
    let atm_comm = world
        .split(0, world.rank() as i64)
        .expect("atmosphere rank must join the atmosphere communicator");
    let is_root = atm_comm.rank() == 0;

    let planet = World::earthlike();
    let mut model = AtmModel::new(cfg.atm.clone(), &atm_comm);
    // Scenario forcings apply identically on every atmosphere rank (a
    // pure function of static config + simulated day, so no exchange is
    // ever needed to keep ranks consistent).
    model.set_forcings(cfg.forcings.clone());
    let model = model;
    let nlon = model.grid().nlon;
    let sea_mask = OceanModel::effective_sea_mask(&cfg.ocean, &planet);
    let ocn_grid =
        foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let coupler = Coupler::new(
        model.grid().clone(),
        ocn_grid.clone(),
        sea_mask.clone(),
        &planet,
        cfg.atm.physics,
    );
    // Only the root coordinates checkpoints. A store that cannot open
    // disables them quietly: snapshots are best-effort, the run itself
    // must not die for one. The store is always routed through the
    // fault-injection wrapper; with no plan configured it is
    // transparent.
    let ckpt_store = if is_root {
        cfg.ckpt
            .dir
            .as_deref()
            .and_then(|d| CheckpointStore::open(d).ok())
            .map(|s| FaultyStore::wrap(s, cfg.ckpt.fault_plan.clone().unwrap_or_default()))
    } else {
        None
    };

    // Initial SST. A fresh run receives sequence 0 from the ocean (the
    // root broadcasts `None` to signal an abort to the other ranks); a
    // restart restores the exchange buffers from the shared snapshot on
    // every rank directly, no messages needed.
    let mut sst_seq = resume.map(|s| s.exchange.sst_seq).unwrap_or(0);
    let mut sst = match resume {
        Some(snap) => snap.exchange.sst.clone(),
        None if is_root => match recv_sst(world, &cfg.runtime, ocean_rank_id, 0, &[]) {
            Ok((seq, s)) => {
                sst_seq = seq;
                match atm_comm.bcast(0, Some(Some(s))) {
                    Some(s) => s,
                    // Structurally unreachable: a broadcast returns the
                    // root's own value to the root. Abort typed rather
                    // than panic if it ever isn't.
                    None => {
                        shutdown_ocean(world, ocean_rank_id);
                        return Err(CoupledError::Internal {
                            what: "root broadcast of the initial SST came back empty".to_string(),
                        });
                    }
                }
            }
            Err(e) => {
                atm_comm.bcast::<Option<Field2>>(0, Some(None));
                shutdown_ocean(world, ocean_rank_id);
                return Err(e);
            }
        },
        None => match atm_comm.bcast::<Option<Field2>>(0, None) {
            Some(s) => s,
            None => return Err(CoupledError::Aborted),
        },
    };

    let (j0, j1) = model.rows();
    let start_c = resume.map(|s| s.interval).unwrap_or(0);
    let mut atm_state = match resume {
        Some(snap) => snap.atm_state_for_rows(j0, j1),
        None => model.init_state(),
    };
    let mut coupler_state = match resume {
        Some(snap) => snap.coupler_state_for_rank(is_root),
        None => coupler.init_state(&sst, AtmModel::t_init),
    };
    let mut export = match resume {
        Some(snap) => snap.export_for_rows(j0, j1),
        None => model.initial_export(&atm_state),
    };

    let steps_per_couple = cfg.atm_steps_per_couple();
    let intervals_per_month = ((30.0 * SECONDS_PER_DAY) / cfg.dt_couple).round() as usize;
    let mut res = RankResult::default();
    let mut month_acc: Option<(Field2, usize)> = None;
    // Root-only streaming statistics: restored from the snapshot when
    // it carries them, started fresh otherwise (a pre-stream snapshot
    // resumes with the stream counting from the resume point).
    let mut stream: Option<DriverStream> = if is_root && cfg.stream.is_some() {
        resume.and_then(|s| s.stream.clone()).or_else(|| {
            cfg.stream
                .as_ref()
                .map(|s| DriverStream::new(sea_area_weights(&ocn_grid, &sea_mask), s.eof_rank))
        })
    } else {
        None
    };
    // The forcings the root keeps for retransmission (lagged mode can
    // be asked for the previous interval's, so hold the last two).
    let mut recent: Vec<(usize, OceanForcing)> = Vec::new();
    if let Some(snap) = resume {
        res.work = snap.work_for_rank(atm_comm.rank(), atm_comm.size());
        if is_root {
            res.mean_sst_series = snap.mean_sst_series.clone();
            res.monthly_sst = snap.monthly_sst.clone();
            month_acc = snap.month_acc.clone();
            recent = snap.exchange.recent.clone();
        }
    }
    // All hot-loop scratch, allocated once here; the loop below runs
    // allocation-free in steady state (PERFORMANCE.md).
    let mut ws = StepWorkspace::new(&model, &coupler);
    let t_start = world.now();

    for c in start_c..n_couple {
        // Deterministic rank-death injection: die at the *start* of the
        // scheduled interval, before any physics step — the last
        // committed checkpoint is then exactly on the fault-free
        // trajectory, which is what makes supervised recovery
        // bit-identical to an unfaulted run.
        if let Some(k) = cfg.runtime.kill_rank {
            if k.rank == world.rank() && k.interval == c {
                panic!(
                    "injected rank death: rank {} at coupling interval {c}",
                    k.rank
                );
            }
        }
        for _ in 0..steps_per_couple {
            // ---- Coupler, distributed by latitude rows (co-located
            //      with the atmosphere decomposition, as in the paper).
            world.region("coupler", || {
                let _t = foam_telemetry::scope("coupler");
                let (j0, j1) = model.rows();
                let (ka0, ka1) = (j0 * nlon, j1 * nlon);
                // The export fields already hold exactly this rank's
                // rows; borrow them instead of cloning seven fields.
                let view = AtmSurfaceView {
                    t_low: &export.t_low,
                    q_low: &export.q_low,
                    u_low: &export.u_low,
                    v_low: &export.v_low,
                    precip: &export.precip,
                    sw_sfc: &export.sw_sfc,
                    lw_down: &export.lw_down,
                };
                coupler.step_rows_ws(
                    &mut coupler_state,
                    view,
                    &sst,
                    cfg.atm.dt,
                    ka0,
                    ka1,
                    ka0,
                    &mut ws.coupler,
                );
                // Rivers need the global runoff; they are cheap, so they
                // run replicated from the allgathered field. (This
                // gather is the one small per-step allocation left in
                // the loop — see PERFORMANCE.md's steady-state budget.)
                let local_runoff = ws.coupler.runoff[ka0..ka1].to_vec();
                let full_runoff: Vec<f64> = atm_comm
                    .allgather(local_runoff)
                    .into_iter()
                    .flatten()
                    .collect();
                coupler.route_rivers_ws(
                    &mut coupler_state,
                    &full_runoff,
                    cfg.atm.dt,
                    &mut ws.coupler,
                );
                // Refill (never reallocate) the row-local forcing slice.
                let out = &ws.coupler.out;
                ws.forcing.fluxes.clear();
                ws.forcing.fluxes.extend_from_slice(&out.fluxes[ka0..ka1]);
                ws.forcing.t_sfc.clear();
                ws.forcing.t_sfc.extend_from_slice(&out.t_sfc[ka0..ka1]);
                ws.forcing.albedo.clear();
                ws.forcing.albedo.extend_from_slice(&out.albedo[ka0..ka1]);
            });
            // ---- Atmosphere step, writing into the reused export. ----
            world.region("atmosphere", || {
                let _t = foam_telemetry::scope("atmosphere");
                let StepWorkspace { atm, forcing, .. } = &mut ws;
                model.step_ws(&mut atm_state, &atm_comm, forcing, atm, &mut export);
            });
            res.work += export.work.iter().sum::<usize>();
        }

        // ---- Ocean exchange: sum the row-local forcing parts across
        //      the atmosphere ranks, add the replicated part once. -----
        let forcing = world.region("coupler", || {
            let _t = foam_telemetry::scope("coupler");
            let (local, shared) = coupler.take_ocean_forcing_parts(&mut coupler_state);
            let n_o = local.heat.as_slice().len();
            // Reduce through the reused flat buffer: `allreduce_mut` is
            // bit-identical to `allreduce` (same fold order) but
            // allocation-free in steady state. The `OceanForcing` built
            // below is owned by the exchange message, so it (alone)
            // still allocates — once per coupling interval, not per
            // step.
            let flat = &mut ws.flat;
            flat.clear();
            flat.extend_from_slice(local.tau_x.as_slice());
            flat.extend_from_slice(local.tau_y.as_slice());
            flat.extend_from_slice(local.heat.as_slice());
            flat.extend_from_slice(local.freshwater.as_slice());
            atm_comm.allreduce_mut(flat, foam_mpi::ReduceOp::Sum);
            let (onx, ony) = (ocn_grid.nx, ocn_grid.ny);
            let mut f = foam_ocean::OceanForcing {
                tau_x: Field2::from_vec(onx, ony, flat[..n_o].to_vec()),
                tau_y: Field2::from_vec(onx, ony, flat[n_o..2 * n_o].to_vec()),
                heat: Field2::from_vec(onx, ony, flat[2 * n_o..3 * n_o].to_vec()),
                freshwater: Field2::from_vec(onx, ony, flat[3 * n_o..].to_vec()),
            };
            f.tau_x.axpy(1.0, &shared.tau_x);
            f.tau_y.axpy(1.0, &shared.tau_y);
            f.heat.axpy(1.0, &shared.heat);
            f.freshwater.axpy(1.0, &shared.freshwater);
            f
        });
        let received: Option<Field2> = world.region("coupler", || {
            let _t = foam_telemetry::scope("coupler");
            if is_root {
                // Cooperative cancellation, polled at the same
                // coordination point the sentinels use: every other
                // rank is already waiting on the status broadcast, so
                // the abort tears the whole job down cleanly and any
                // committed checkpoint stays resumable.
                if obs.is_some_and(|o| o.should_stop()) {
                    atm_comm.bcast(0, Some(2u8));
                    shutdown_ocean(world, ocean_rank_id);
                    return Err(CoupledError::Aborted);
                }
                // Physics sentinel, land side: check the root's soil
                // rows before committing this interval's forcing to the
                // ocean.
                if let Some(e) = sentinel_soil(
                    &cfg.runtime.sentinel,
                    coupler_state.soil[j0 * nlon..j1 * nlon]
                        .iter()
                        .map(|col| col.skin()),
                    c,
                ) {
                    atm_comm.bcast(0, Some(2u8));
                    shutdown_ocean(world, ocean_rank_id);
                    return Err(e);
                }
                let tagged = (c, forcing);
                world.send(ocean_rank_id, TAG_FORCING, tagged.clone());
                recent.push(tagged);
                if recent.len() > 2 {
                    recent.remove(0);
                }
                // When is the ocean's answer due? Sequentially: right
                // now, producing sequence c+1. Lagged: the SST from the
                // *previous* forcing (sequence c), overlapping the
                // ocean's work with the interval we just integrated.
                let due = match cfg.coupling {
                    CouplingMode::Sequential => Some(c + 1),
                    CouplingMode::Lagged => (c >= 1).then_some(c),
                };
                let got = match due {
                    Some(expected) => {
                        match recv_sst(world, &cfg.runtime, ocean_rank_id, expected, &recent) {
                            Ok((seq, mut s)) => {
                                // Injected physics fault: poison the
                                // received SST exactly as a blown-up
                                // ocean would, *before* the sentinel
                                // scan.
                                if let Some(pf) = cfg.runtime.physics_fault {
                                    if pf.interval == c {
                                        poison_sst(&mut s, pf.kind, &sea_mask);
                                    }
                                }
                                // Physics sentinel, ocean side: refuse
                                // the field before it can reach the
                                // model state or a checkpoint.
                                if let Some(e) =
                                    sentinel_sst(&cfg.runtime.sentinel, &s, &sea_mask, c)
                                {
                                    atm_comm.bcast(0, Some(2u8));
                                    shutdown_ocean(world, ocean_rank_id);
                                    return Err(e);
                                }
                                sst_seq = seq;
                                Some(s)
                            }
                            Err(e) => {
                                // Abort — but first, when configured, a
                                // best-effort emergency checkpoint so the
                                // run is resumable from this interval. It
                                // records the last *accepted* SST (by now
                                // stale), so it lies off the failure-free
                                // trajectory; the manifest marks it.
                                if cfg.ckpt.on_error && ckpt_store.is_some() {
                                    atm_comm.bcast(0, Some(3u8));
                                    let mut series = res.mean_sst_series.clone();
                                    let mut monthly = res.monthly_sst.clone();
                                    let mut macc = month_acc.clone();
                                    let mut strm = stream.clone();
                                    // Best effort: the emergency
                                    // snapshot is already off the
                                    // failure-free trajectory.
                                    let _ = record_interval(
                                        &mut series,
                                        &mut monthly,
                                        &mut macc,
                                        &mut strm,
                                        &sst,
                                        &ocn_grid,
                                        &sea_mask,
                                        cfg.collect_monthly_sst,
                                        intervals_per_month,
                                    );
                                    let exchange = ExchangeBuffers {
                                        sst_seq,
                                        sst: sst.clone(),
                                        recent: recent.clone(),
                                    };
                                    checkpoint_rendezvous(
                                        world,
                                        &atm_comm,
                                        cfg,
                                        ckpt_store.as_ref(),
                                        ocean_rank_id,
                                        c + 1,
                                        &model,
                                        &atm_state,
                                        &export,
                                        &coupler_state,
                                        res.work,
                                        Some(RootShardExtras {
                                            exchange: &exchange,
                                            series: &series,
                                            monthly: &monthly,
                                            month_acc: &macc,
                                            stream: &strm,
                                            emergency: true,
                                        }),
                                        &recent,
                                        true,
                                    );
                                } else {
                                    atm_comm.bcast(0, Some(2u8));
                                }
                                shutdown_ocean(world, ocean_rank_id);
                                return Err(e);
                            }
                        }
                    }
                    None => None,
                };
                // Status to the other atmosphere ranks: 0 = no update,
                // 1 = update follows, 2 = abort, 3 = emergency
                // checkpoint, then abort.
                let status = u8::from(got.is_some());
                atm_comm.bcast(0, Some(status));
                match got {
                    Some(s) => Ok(Some(atm_comm.bcast(0, Some(s)))),
                    None => Ok(None),
                }
            } else {
                match atm_comm.bcast::<u8>(0, None) {
                    3 => {
                        checkpoint_rendezvous(
                            world,
                            &atm_comm,
                            cfg,
                            None,
                            ocean_rank_id,
                            c + 1,
                            &model,
                            &atm_state,
                            &export,
                            &coupler_state,
                            res.work,
                            None,
                            &[],
                            false,
                        );
                        Err(CoupledError::Aborted)
                    }
                    2 => Err(CoupledError::Aborted),
                    1 => Ok(Some(atm_comm.bcast(0, None))),
                    _ => Ok(None),
                }
            }
        })?;
        if let Some(new_sst) = received {
            sst = new_sst;
            coupler.update_ice(&mut coupler_state, &sst);
        }

        // ---- Bookkeeping on the root. --------------------------------
        if is_root {
            record_interval(
                &mut res.mean_sst_series,
                &mut res.monthly_sst,
                &mut month_acc,
                &mut stream,
                &sst,
                &ocn_grid,
                &sea_mask,
                cfg.collect_monthly_sst,
                intervals_per_month,
            )?;
            if let Some(o) = obs {
                o.on_interval(&ProgressEvent {
                    interval: c + 1,
                    n_intervals: n_couple,
                    day: ((c + 1) as f64) * cfg.dt_couple / SECONDS_PER_DAY,
                    mean_sst: res.mean_sst_series.last().copied().unwrap_or(f64::NAN),
                });
            }
        }

        // ---- Periodic checkpoint at the configured cadence. ----------
        if cfg.ckpt.dir.is_some() && (c + 1) % cfg.ckpt.interval == 0 {
            let exchange = is_root.then(|| ExchangeBuffers {
                sst_seq,
                sst: sst.clone(),
                recent: recent.clone(),
            });
            let extras = exchange.as_ref().map(|x| RootShardExtras {
                exchange: x,
                series: &res.mean_sst_series,
                monthly: &res.monthly_sst,
                month_acc: &month_acc,
                stream: &stream,
                emergency: false,
            });
            checkpoint_rendezvous(
                world,
                &atm_comm,
                cfg,
                ckpt_store.as_ref(),
                ocean_rank_id,
                c + 1,
                &model,
                &atm_state,
                &export,
                &coupler_state,
                res.work,
                extras,
                &recent,
                false,
            );
        }
    }

    // Drain the final SST in lagged mode (the ocean produces one per
    // forcing), then run the shutdown handshake so retransmitted
    // duplicates don't dirty the teardown lint.
    if is_root {
        if cfg.coupling == CouplingMode::Lagged {
            match recv_sst(world, &cfg.runtime, ocean_rank_id, n_couple, &recent) {
                Ok((_, s)) => {
                    // The final drained SST feeds `final_sst`; a blown-up
                    // field is refused like any mid-run one.
                    if let Some(e) = sentinel_sst(&cfg.runtime.sentinel, &s, &sea_mask, n_couple) {
                        shutdown_ocean(world, ocean_rank_id);
                        return Err(e);
                    }
                    sst = s;
                }
                Err(e) => {
                    shutdown_ocean(world, ocean_rank_id);
                    return Err(e);
                }
            }
        }
        shutdown_ocean(world, ocean_rank_id);
    }
    res.wall_seconds = world.now() - t_start;
    if is_root {
        res.final_sst = Some(sst);
        res.stream = stream;
    }
    Ok(res)
}

fn ocean_rank(
    cfg: &FoamConfig,
    world: &Comm,
    resume: Option<&GlobalSnapshot>,
) -> Result<RankResult, CoupledError> {
    // Participate in the split even though the ocean keeps no sub-comm.
    let _ = world.split(-1, 0);
    let planet = World::earthlike();
    let model = OceanModel::new(cfg.ocean.clone(), &planet);
    let atm_root = 0usize;

    // `completed` counts integrated coupling intervals; the SST carrying
    // sequence number k is the state after k integrations. Announcing
    // the latest SST up front serves fresh starts (the initial
    // condition, sequence 0) and restarts (the root either consumes it
    // or absorbs it as a stale duplicate) identically.
    let (mut state, mut completed) = match resume {
        Some(snap) => (snap.ocean.clone(), snap.interval),
        None => (model.init_state(&planet), 0usize),
    };
    let mut latest: (usize, Field2) = (completed, model.sst(&state));
    world.send(atm_root, TAG_SST, latest.clone());

    // Serve the exchange protocol until the root says we are done: step
    // on each new forcing, retransmit on each NACK, write a checkpoint
    // shard on request, ignore duplicates.
    loop {
        let msg = world.recv_match(atm_root, &[TAG_FORCING, TAG_SST_RETRY, TAG_DONE, TAG_CKPT]);
        match msg.tag() {
            TAG_FORCING => {
                let (idx, forcing) = msg.downcast::<(usize, OceanForcing)>();
                // Only the forcing for the next interval advances the
                // model; duplicates (idx < completed) and early
                // retransmissions (idx > completed) are ignored.
                if idx == completed {
                    // Injected rank death for the ocean: die on accepting
                    // the scheduled interval's forcing, before stepping —
                    // the ocean state is still exactly the fault-free
                    // interval-boundary state.
                    if let Some(k) = cfg.runtime.kill_rank {
                        if k.rank == world.rank() && k.interval == idx {
                            panic!(
                                "injected rank death: rank {} at coupling interval {idx}",
                                k.rank
                            );
                        }
                    }
                    world.region("ocean", || {
                        let _t = foam_telemetry::scope("ocean");
                        match cfg.ocean_scheme {
                            SplitScheme::FoamSplit => {
                                model.step_coupled(&mut state, &forcing, cfg.dt_couple)
                            }
                            SplitScheme::Unsplit => {
                                model.step_unsplit(&mut state, &forcing, cfg.dt_couple)
                            }
                        }
                    });
                    completed += 1;
                    latest = (completed, model.sst(&state));
                    world.send(atm_root, TAG_SST, latest.clone());
                }
            }
            TAG_SST_RETRY => {
                let _expected: usize = msg.downcast();
                world.send(atm_root, TAG_SST, latest.clone());
            }
            TAG_CKPT => {
                // The request is FIFO-ordered behind the target
                // interval's forcing, so on a healthy run `completed`
                // has reached the target by now; anything else (lost
                // forcings on the emergency path) aborts the attempt
                // via a negative ack.
                let (target, dir) = msg.downcast::<(usize, String)>();
                let ok = completed == target
                    && checkpoint::write_ocean_shard(
                        Path::new(&dir),
                        world.rank(),
                        &state,
                        completed,
                    )
                    .is_ok();
                world.send(atm_root, TAG_CKPT, (target, ok));
            }
            TAG_DONE => {
                msg.downcast::<()>();
                world.send(atm_root, TAG_DONE, ());
                break;
            }
            other => unreachable!("unexpected tag {other} on the ocean rank"),
        }
    }
    Ok(RankResult::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_run_advances_and_stays_physical() {
        let cfg = FoamConfig::tiny(1);
        let out = run_coupled(&cfg, 2.0);
        assert_eq!(out.mean_sst_series.len(), 8); // 4 exchanges/day
        assert!(out.final_sst.all_finite());
        let last = out
            .final_mean_sst()
            .expect("an 8-interval run has a series");
        assert!((-2.0..30.0).contains(&last), "mean SST {last}");
        assert!(out.model_speedup > 1.0, "slower than real time?!");
        assert!((0.0..=1.0).contains(&out.ice_fraction));
        assert!(out.comm_lint.is_clean(), "{}", out.comm_lint);
    }

    #[test]
    fn lagged_and_sequential_agree_on_short_runs() {
        // The lag changes SST timing by one interval; over a couple of
        // days the mean-SST trajectories must still be close.
        let cfg = FoamConfig::tiny(2);
        let lag = run_coupled(&cfg, 2.0);
        let mut cfg_seq = cfg.clone();
        cfg_seq.coupling = CouplingMode::Sequential;
        let seq = run_coupled(&cfg_seq, 2.0);
        let a = lag.final_mean_sst().expect("lagged run has a series");
        let b = seq.final_mean_sst().expect("sequential run has a series");
        assert!((a - b).abs() < 0.3, "lagged {a} vs sequential {b}");
    }

    #[test]
    fn tracing_produces_all_three_component_labels() {
        let mut cfg = FoamConfig::tiny(3);
        cfg.tracing = true;
        let out = run_coupled(&cfg, 0.5);
        // Atmosphere ranks show atmosphere + coupler work.
        for t in &out.traces[..cfg.n_atm_ranks] {
            assert!(
                t.work_time("atmosphere") > 0.0,
                "rank {} no atm work",
                t.rank
            );
            assert!(
                t.work_time("coupler") > 0.0,
                "rank {} no coupler work",
                t.rank
            );
        }
        // The ocean rank shows ocean work and (waiting for forcing) idle
        // time.
        let to = &out.traces[cfg.n_atm_ranks];
        assert!(to.work_time("ocean") > 0.0);
    }

    #[test]
    fn monthly_sst_collection_counts_months() {
        let mut cfg = FoamConfig::tiny(4);
        cfg.collect_monthly_sst = true;
        // 1/4 month → 0 complete months; keep the test fast.
        let out = run_coupled(&cfg, 7.5);
        assert!(out.monthly_sst.is_empty());
        assert_eq!(out.mean_sst_series.len(), 30);
    }

    #[test]
    fn streaming_and_collected_months_agree_bit_for_bit() {
        // Run with BOTH paths on: every completed month must land in the
        // retained history and the stream as the same bits, and the
        // stream's mean field must equal averaging the history. Two
        // 30-day months on the century grid keeps this quick.
        let mut cfg = FoamConfig::century(12);
        cfg.collect_monthly_sst = true;
        let out = run_coupled(&cfg, 60.0);
        let ds = out.stream.expect("stream configured");
        assert_eq!(out.monthly_sst.len(), 2);
        assert_eq!(ds.months(), 2);
        let mean = ds.mean_field().expect("two months streamed");
        let n = out.monthly_sst.len() as f64;
        for (s, m) in mean.iter().enumerate() {
            let batch: f64 = out.monthly_sst.iter().map(|f| f.as_slice()[s]).sum::<f64>() / n;
            assert_eq!(m.to_bits(), batch.to_bits(), "s={s}");
        }
        // Streaming off by default: no stream state, no monthly cost.
        let plain = run_coupled(&FoamConfig::tiny(12), 1.0);
        assert!(plain.stream.is_none());
    }

    #[test]
    fn baseline_config_flips_both_devices() {
        let cfg = FoamConfig::tiny(5);
        let base = baseline_config(&cfg);
        assert_eq!(base.coupling, CouplingMode::Sequential);
        assert_eq!(base.ocean_scheme, SplitScheme::Unsplit);
        assert_eq!(base.atm.nlon, cfg.atm.nlon);
    }

    #[test]
    fn exchange_tags_show_up_in_comm_stats() {
        let mut cfg = FoamConfig::tiny(6);
        // Generous per-attempt timeout so a slow CI machine cannot
        // trigger spurious retransmissions and skew the exact counts.
        cfg.runtime.sst_retry_timeout_secs = 30.0;
        let out = run_coupled(&cfg, 1.0);
        let mut merged = foam_mpi::CommStats::default();
        for t in &out.traces {
            merged.merge(&t.stats);
        }
        let forcing = merged.tag(TAG_FORCING);
        let sst = merged.tag(TAG_SST);
        // 4 coupling intervals → 4 forcings, 4 SSTs + the initial one.
        assert_eq!(forcing.msgs_sent, 4);
        assert_eq!(forcing.msgs_recvd, 4);
        assert_eq!(sst.msgs_sent, 5);
        assert_eq!(sst.msgs_recvd, 5);
        assert!(forcing.bytes_sent > 0);
        assert!(sst.bytes_sent > 0);
    }

    #[test]
    fn zero_day_runs_are_a_typed_error() {
        // A zero-day run would complete no coupling interval and leave
        // `mean_sst_series` empty; it must be refused up front, not
        // panic a diagnostic later.
        let cfg = FoamConfig::tiny(8);
        for days in [0.0, -1.0, f64::NAN] {
            let err = try_run_coupled(&cfg, days).unwrap_err();
            assert!(
                matches!(
                    err,
                    CoupledError::Config(ConfigError::NonPositive { what: "days", .. })
                ),
                "days = {days}: {err}"
            );
        }
        // The resume entry point refuses the same way.
        let mut cfg = FoamConfig::tiny(8);
        cfg.ckpt = crate::CkptConfig::every(std::env::temp_dir().join("foam-zero-day"), 4);
        let err = try_resume_coupled(&cfg, 0.0).unwrap_err();
        assert!(
            matches!(err, CoupledError::Config(ConfigError::NonPositive { .. })),
            "{err}"
        );
    }

    #[test]
    fn exhausted_retries_return_a_typed_error() {
        // Drop *every* SST so no retry can succeed; the run must come
        // back with a typed error, not a panic or a hang.
        let mut cfg = FoamConfig::tiny(7);
        cfg.runtime.sst_retry_timeout_secs = 0.05;
        cfg.runtime.sst_retry_backoff_secs = 0.01;
        cfg.runtime.sst_retry_max = 2;
        cfg.runtime.fault_plan =
            Some(foam_mpi::FaultPlan::new(11).with_rule(foam_mpi::FaultRule {
                src: None,
                dst: None,
                tag: Some(TAG_SST),
                action: foam_mpi::FaultAction::Drop,
                max_hits: None,
                probability: 1.0,
            }));
        let err = try_run_coupled(&cfg, 0.25).unwrap_err();
        assert_eq!(
            err,
            CoupledError::SstExchange {
                expected_seq: 0,
                retries: 2
            }
        );
    }
}
