//! History output: a minimal self-describing binary format for field
//! sequences.
//!
//! The paper's outlook section discusses making FOAM's "large datasets"
//! browsable (Vis5D, remote I/O). This module provides the library
//! equivalent: monthly SST (or any `Field2` sequence) can be streamed to
//! disk during a long run and read back for analysis, so multi-century
//! experiments need not hold their history in memory.
//!
//! Format (little-endian): magic `FOAMHIST`, `u32` version, `u32 nx`,
//! `u32 ny`, then frames of (`f64` time \[s\], `nx·ny` × `f64` values).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use foam_grid::Field2;

const MAGIC: &[u8; 8] = b"FOAMHIST";
const VERSION: u32 = 1;

/// Streams frames to a file.
pub struct HistoryWriter {
    out: BufWriter<File>,
    nx: usize,
    ny: usize,
    frames: usize,
}

impl HistoryWriter {
    pub fn create(path: impl AsRef<Path>, nx: usize, ny: usize) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(nx as u32).to_le_bytes())?;
        out.write_all(&(ny as u32).to_le_bytes())?;
        Ok(HistoryWriter {
            out,
            nx,
            ny,
            frames: 0,
        })
    }

    /// Append one frame at simulated time `t` \[s\].
    pub fn write_frame(&mut self, t: f64, field: &Field2) -> io::Result<()> {
        assert_eq!((field.nx(), field.ny()), (self.nx, self.ny));
        self.out.write_all(&t.to_le_bytes())?;
        for v in field.as_slice() {
            self.out.write_all(&v.to_le_bytes())?;
        }
        self.frames += 1;
        Ok(())
    }

    pub fn frames_written(&self) -> usize {
        self.frames
    }

    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Reads a history file produced by [`HistoryWriter`].
pub struct HistoryReader {
    inp: BufReader<File>,
    pub nx: usize,
    pub ny: usize,
}

impl HistoryReader {
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut inp = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        inp.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a FOAM history file",
            ));
        }
        let mut b4 = [0u8; 4];
        inp.read_exact(&mut b4)?;
        let version = u32::from_le_bytes(b4);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported history version {version}"),
            ));
        }
        inp.read_exact(&mut b4)?;
        let nx = u32::from_le_bytes(b4) as usize;
        inp.read_exact(&mut b4)?;
        let ny = u32::from_le_bytes(b4) as usize;
        Ok(HistoryReader { inp, nx, ny })
    }

    /// Read the next frame, or `None` at end of file.
    pub fn next_frame(&mut self) -> io::Result<Option<(f64, Field2)>> {
        let mut b8 = [0u8; 8];
        match self.inp.read_exact(&mut b8) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let t = f64::from_le_bytes(b8);
        let mut data = Vec::with_capacity(self.nx * self.ny);
        for _ in 0..self.nx * self.ny {
            self.inp.read_exact(&mut b8)?;
            data.push(f64::from_le_bytes(b8));
        }
        Ok(Some((t, Field2::from_vec(self.nx, self.ny, data))))
    }

    /// Read every remaining frame.
    pub fn read_all(&mut self) -> io::Result<Vec<(f64, Field2)>> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("foam_hist_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_frames_exactly() {
        let path = tmp("roundtrip");
        let mut w = HistoryWriter::create(&path, 8, 4).unwrap();
        let f1 = Field2::from_fn(8, 4, |i, j| (i * 10 + j) as f64 * 0.5);
        let f2 = Field2::from_fn(8, 4, |i, j| -(i as f64) + j as f64 * 3.0);
        w.write_frame(0.0, &f1).unwrap();
        w.write_frame(21_600.0, &f2).unwrap();
        assert_eq!(w.frames_written(), 2);
        w.finish().unwrap();

        let mut r = HistoryReader::open(&path).unwrap();
        assert_eq!((r.nx, r.ny), (8, 4));
        let frames = r.read_all().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, 0.0);
        assert_eq!(frames[1].0, 21_600.0);
        assert_eq!(frames[0].1, f1);
        assert_eq!(frames[1].1, f2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a history file").unwrap();
        assert!(HistoryReader::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_history_reads_zero_frames() {
        let path = tmp("empty");
        HistoryWriter::create(&path, 4, 4)
            .unwrap()
            .finish()
            .unwrap();
        let mut r = HistoryReader::open(&path).unwrap();
        assert!(r.read_all().unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn shape_mismatch_panics() {
        let path = tmp("shape");
        let mut w = HistoryWriter::create(&path, 4, 4).unwrap();
        let wrong = Field2::zeros(5, 4);
        let _ = w.write_frame(0.0, &wrong);
    }
}
