//! Climate diagnostics computed from model output: zonal means, basin
//! means, and the summary numbers the examples and experiments print —
//! plus the communication-statistics report that accompanies the
//! Figure 2 timeline.

use foam_grid::{Basin, Field2, OceanGrid, World};
use foam_mpi::RankTrace;

/// Render the per-tag communication counters carried on a run's traces
/// as a table: messages, bytes, blocked time, and the wait-time
/// histogram, merged over all ranks. Coupler protocol tags are shown by
/// name; the runtime's internal collective traffic is summed into one
/// row so the exchange protocol stands out.
pub fn comm_stats_report(traces: &[RankTrace]) -> String {
    use std::fmt::Write;
    let mut merged = foam_mpi::CommStats::default();
    for t in traces {
        merged.merge(&t.stats);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>7} {:>12} {:>9}  wait histogram",
        "tag", "sent", "recvd", "bytes-sent", "wait[s]"
    );
    let mut internal = foam_mpi::TagStats::default();
    let mut internal_wait = foam_mpi::WaitHistogram::default();
    for (tag, s) in &merged.by_tag {
        let label = match foam_coupler::tags::tag_name(*tag) {
            Some(name) => format!("{name} ({tag})"),
            None => foam_mpi::tag_label(*tag),
        };
        if label.starts_with("internal") {
            internal.msgs_sent += s.msgs_sent;
            internal.msgs_recvd += s.msgs_recvd;
            internal.bytes_sent += s.bytes_sent;
            internal.wait_seconds += s.wait_seconds;
            for (b, ob) in internal_wait.buckets.iter_mut().zip(s.wait_hist.buckets) {
                *b += ob;
            }
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>7} {:>12} {:>9.3}  {}",
            label,
            s.msgs_sent,
            s.msgs_recvd,
            s.bytes_sent,
            s.wait_seconds,
            s.wait_hist.summarize()
        );
    }
    if internal.msgs_sent > 0 {
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>7} {:>12} {:>9.3}  {}",
            "(collectives)",
            internal.msgs_sent,
            internal.msgs_recvd,
            internal.bytes_sent,
            internal.wait_seconds,
            internal_wait.summarize()
        );
    }
    out
}

/// Zonal mean of a field per latitude row (simple arithmetic mean over
/// longitudes; pass a mask to restrict to sea or land points).
pub fn zonal_mean(f: &Field2, mask: Option<&[bool]>) -> Vec<f64> {
    let (nx, ny) = (f.nx(), f.ny());
    (0..ny)
        .map(|j| {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..nx {
                if mask.map(|m| m[j * nx + i]).unwrap_or(true) {
                    num += f.get(i, j);
                    den += 1.0;
                }
            }
            if den > 0.0 {
                num / den
            } else {
                f64::NAN
            }
        })
        .collect()
}

/// Area-weighted mean of an ocean-grid field over one basin within a
/// latitude band \[deg\].
pub fn basin_mean(
    f: &Field2,
    grid: &OceanGrid,
    mask: &[bool],
    world: &World,
    basin: Basin,
    lat_band: (f64, f64),
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for j in 0..grid.ny {
        let latd = grid.lats[j].to_degrees();
        if latd < lat_band.0 || latd > lat_band.1 {
            continue;
        }
        for i in 0..grid.nx {
            let k = grid.idx(i, j);
            if mask[k] && world.basin(grid.lons[i], grid.lats[j]) == basin {
                let a = grid.cell_area(i, j);
                num += a * f.get(i, j);
                den += a;
            }
        }
    }
    if den > 0.0 {
        num / den
    } else {
        f64::NAN
    }
}

/// Equator-to-pole SST contrast \[°C\]: mean within ±10° minus the mean
/// poleward of 55° (both hemispheres) — a one-number circulation check.
pub fn equator_pole_contrast(sst: &Field2, grid: &OceanGrid, mask: &[bool]) -> f64 {
    let mut eq = (0.0, 0.0);
    let mut po = (0.0, 0.0);
    for j in 0..grid.ny {
        let latd = grid.lats[j].to_degrees().abs();
        for i in 0..grid.nx {
            let k = grid.idx(i, j);
            if !mask[k] {
                continue;
            }
            let a = grid.cell_area(i, j);
            if latd < 10.0 {
                eq.0 += a * sst.get(i, j);
                eq.1 += a;
            } else if latd > 55.0 {
                po.0 += a * sst.get(i, j);
                po.1 += a;
            }
        }
    }
    eq.0 / eq.1.max(1e-9) - po.0 / po.1.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_ocean::{OceanConfig, OceanModel};

    fn setup() -> (OceanGrid, Vec<bool>, World) {
        let world = World::earthlike();
        let cfg = OceanConfig::tiny();
        let grid = OceanGrid::mercator(cfg.nx, cfg.ny, cfg.lat_max_deg);
        let mask = OceanModel::effective_sea_mask(&cfg, &world);
        (grid, mask, world)
    }

    #[test]
    fn zonal_mean_of_zonally_uniform_field_is_exact() {
        let f = Field2::from_fn(10, 6, |_i, j| j as f64 * 2.0);
        let zm = zonal_mean(&f, None);
        for (j, v) in zm.iter().enumerate() {
            assert!((v - j as f64 * 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zonal_mean_respects_mask() {
        let f = Field2::from_fn(4, 1, |i, _| i as f64);
        let mask = vec![true, false, true, false];
        let zm = zonal_mean(&f, Some(&mask));
        assert!((zm[0] - 1.0).abs() < 1e-12); // mean of {0, 2}
    }

    #[test]
    fn climatology_has_positive_equator_pole_contrast() {
        let (grid, mask, world) = setup();
        let sst = Field2::from_fn(grid.nx, grid.ny, |i, j| {
            world.sst_climatology(grid.lons[i], grid.lats[j])
        });
        let c = equator_pole_contrast(&sst, &grid, &mask);
        assert!((15.0..35.0).contains(&c), "contrast {c} °C");
    }

    #[test]
    fn comm_stats_report_names_protocol_tags() {
        let out = crate::run_coupled(&crate::FoamConfig::tiny(8), 0.5);
        let report = comm_stats_report(&out.traces);
        assert!(report.contains("forcing (10)"), "{report}");
        assert!(report.contains("sst (11)"), "{report}");
        assert!(report.contains("(collectives)"), "{report}");
    }

    #[test]
    fn basin_means_are_finite_for_both_northern_basins() {
        let (grid, mask, world) = setup();
        let sst = Field2::from_fn(grid.nx, grid.ny, |i, j| {
            world.sst_climatology(grid.lons[i], grid.lats[j])
        });
        let atl = basin_mean(&sst, &grid, &mask, &world, Basin::Atlantic, (25.0, 60.0));
        let pac = basin_mean(&sst, &grid, &mask, &world, Basin::Pacific, (25.0, 60.0));
        assert!(atl.is_finite() && pac.is_finite());
        assert!((0.0..25.0).contains(&atl), "N.Atl {atl}");
        assert!((0.0..25.0).contains(&pac), "N.Pac {pac}");
    }
}
