//! The run supervisor: detect → rollback → resume.
//!
//! A coupled run can die four ways that operators of long climate
//! integrations know well: a rank crashes, an exchange times out past
//! its retry budget, the checkpoint store misbehaves, or the physics
//! blows up. Without supervision each of those ends the job and waits
//! for a human to restart it. [`supervise_run`] closes the loop
//! in-process:
//!
//! 1. **Detect** — the driver surfaces every failure as a typed
//!    [`CoupledError`] (rank deaths are caught by the runtime's
//!    heartbeat/quiesce machinery in `foam-mpi` and mapped to
//!    [`CoupledError::RankDead`]); the supervisor classifies it into a
//!    [`RunFault`].
//! 2. **Rollback** — survivors are already quiesced by the runtime; the
//!    supervisor restores the newest readable coordinated snapshot
//!    (falling back across corrupt ones) or restarts from the initial
//!    condition when none exists.
//! 3. **Resume** — the SPMD job is relaunched (worker threads respawn
//!    inside [`foam_mpi::Universe`]) and integrates from the rollback
//!    point, under a bounded recovery budget and the shared
//!    deterministic [`Backoff`].
//!
//! Recovery is **deterministic and observable**: periodic snapshots lie
//! on the failure-free trajectory and injected faults are disarmed
//! after firing once (the transient-fault model), so the same seed and
//! fault plan produce a bit-identical final state — and a byte-identical
//! [`RecoveryReport`] — every run. The report carries no wall-clock or
//! heartbeat counts for exactly that reason.

use std::path::Path;

use foam_ckpt::{CheckpointStore, CkptError};
use foam_mpi::Backoff;
use foam_telemetry::json::Value;

use crate::checkpoint;
use crate::config::FoamConfig;
use crate::driver::{self, CoupledError, CoupledOutput};
use crate::observer::RunObserver;

/// Schema identifier of the recovery section/report JSON.
pub const RECOVERY_SCHEMA: &str = "foam-recovery/1";

/// The failure classes the supervisor can recover from — the typed
/// output of triaging a [`CoupledError`]. Anything that does not map
/// here (invalid configuration, a secondary rank's `Aborted`, an
/// unwritable telemetry path, a broken internal invariant) is
/// *unrecoverable*: retrying cannot change the outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFault {
    /// A rank died (panicked) mid-run; the runtime quiesced the
    /// survivors and reported the culprit.
    RankDead { rank: usize, detail: String },
    /// The SST exchange exhausted its retry budget — the comm path is
    /// lossy beyond what the protocol absorbs.
    ExchangeTimeout { expected_seq: usize, retries: u32 },
    /// Checkpoint-store I/O failed (unreadable snapshot, ENOSPC-style
    /// write error, corrupt shards all the way down).
    CheckpointStore { detail: String },
    /// The physics sentinel refused a NaN/Inf or out-of-range field;
    /// the state before the poison is still on disk.
    PhysicsSentinel { interval: usize, detail: String },
}

impl RunFault {
    /// Triage a driver error: `Some` for the recoverable classes,
    /// `None` for errors a retry cannot fix.
    pub fn classify(e: &CoupledError) -> Option<RunFault> {
        match e {
            CoupledError::RankDead { rank, detail } => Some(RunFault::RankDead {
                rank: *rank,
                detail: detail.clone(),
            }),
            CoupledError::SstExchange {
                expected_seq,
                retries,
            } => Some(RunFault::ExchangeTimeout {
                expected_seq: *expected_seq,
                retries: *retries,
            }),
            CoupledError::Ckpt(e) => Some(RunFault::CheckpointStore {
                detail: e.to_string(),
            }),
            CoupledError::Sentinel {
                interval,
                field,
                value,
            } => Some(RunFault::PhysicsSentinel {
                interval: *interval,
                detail: format!("{field} = {value}"),
            }),
            CoupledError::Aborted
            | CoupledError::Config(_)
            | CoupledError::TelemetryWrite { .. }
            | CoupledError::Internal { .. } => None,
        }
    }

    /// Stable machine-readable tag used in the recovery report.
    pub fn kind(&self) -> &'static str {
        match self {
            RunFault::RankDead { .. } => "rank_dead",
            RunFault::ExchangeTimeout { .. } => "exchange_timeout",
            RunFault::CheckpointStore { .. } => "checkpoint_store",
            RunFault::PhysicsSentinel { .. } => "physics_sentinel",
        }
    }
}

impl std::fmt::Display for RunFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFault::RankDead { rank, detail } => write!(f, "rank {rank} dead: {detail}"),
            RunFault::ExchangeTimeout {
                expected_seq,
                retries,
            } => write!(
                f,
                "exchange timeout: SST sequence {expected_seq} missing after {retries} retries"
            ),
            RunFault::CheckpointStore { detail } => write!(f, "checkpoint store: {detail}"),
            RunFault::PhysicsSentinel { interval, detail } => {
                write!(f, "physics sentinel at interval {interval}: {detail}")
            }
        }
    }
}

/// How the supervisor resumed after a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restored the coordinated snapshot at `from_interval` and
    /// continued from there.
    Resumed { from_interval: usize },
    /// No usable snapshot: restarted the run from the initial
    /// condition.
    Restarted,
}

/// One recovery attempt: the fault that triggered it, what the rollback
/// did, and how much simulated work had to be repeated.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The classified fault that killed the attempt.
    pub fault: RunFault,
    /// Resumed-from-snapshot or restarted-from-scratch.
    pub action: RecoveryAction,
    /// Coupling intervals integrated again because of the rollback
    /// (fault interval minus rollback interval, where the fault
    /// interval is known).
    pub replayed_intervals: usize,
    /// Set when the rollback's snapshot load itself failed (a second,
    /// storage-side fault observed during recovery) — the supervisor
    /// then restarted from scratch.
    pub store_error: Option<String>,
}

/// The deterministic, observable record of a supervised run's recovery
/// activity: which faults were seen, which rollbacks were taken, and
/// how many simulated days were replayed. Contains **no wall-clock
/// times and no heartbeat counts** — identical seed + fault plan must
/// render byte-identical ([`RecoveryReport::to_json`]) across reruns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// One entry per recovery attempt, in order.
    pub events: Vec<RecoveryEvent>,
    /// Total simulated days integrated more than once due to rollbacks.
    pub sim_days_replayed: f64,
}

impl RecoveryReport {
    /// Faults observed: one per recovery attempt, plus any storage
    /// faults met during the rollbacks themselves.
    pub fn faults_seen(&self) -> usize {
        self.events
            .iter()
            .map(|e| 1 + usize::from(e.store_error.is_some()))
            .sum()
    }

    /// Rollbacks taken (recovery attempts, whether resumed or
    /// restarted).
    pub fn rollbacks(&self) -> usize {
        self.events.len()
    }

    /// Render the report as a deterministic JSON value (schema
    /// [`RECOVERY_SCHEMA`]); this is the object embedded as the
    /// `recovery` section of the telemetry report.
    pub fn to_json(&self) -> Value {
        let events = Value::Array(
            self.events
                .iter()
                .map(|e| {
                    let (action, from) = match e.action {
                        RecoveryAction::Resumed { from_interval } => {
                            ("resumed", Value::from(from_interval))
                        }
                        RecoveryAction::Restarted => ("restarted", Value::Null),
                    };
                    Value::object([
                        ("kind".to_string(), e.fault.kind().into()),
                        ("fault".to_string(), e.fault.to_string().into()),
                        ("action".to_string(), action.into()),
                        ("from_interval".to_string(), from),
                        (
                            "replayed_intervals".to_string(),
                            e.replayed_intervals.into(),
                        ),
                        (
                            "store_error".to_string(),
                            match &e.store_error {
                                Some(s) => s.as_str().into(),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        Value::object([
            ("schema".to_string(), RECOVERY_SCHEMA.into()),
            ("faults_seen".to_string(), self.faults_seen().into()),
            ("rollbacks".to_string(), self.rollbacks().into()),
            (
                "sim_days_replayed".to_string(),
                self.sim_days_replayed.into(),
            ),
            ("events".to_string(), events),
        ])
    }
}

/// Why a supervised run gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorErrorKind {
    /// The error is outside the recoverable classes ([`RunFault`]);
    /// retrying cannot change the outcome.
    Unrecoverable,
    /// The recovery budget ([`SupervisorConfig::max_recoveries`]) is
    /// spent.
    BudgetExhausted { recoveries: u32 },
}

/// Typed terminal failure of a supervised run: what finally went wrong,
/// why the supervisor stopped, and the recovery activity up to that
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorError {
    /// Gave up because unrecoverable, or because the budget ran out.
    pub kind: SupervisorErrorKind,
    /// The error of the last attempt.
    pub last_error: CoupledError,
    /// Recovery activity before giving up (still deterministic).
    pub recovery: RecoveryReport,
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            SupervisorErrorKind::Unrecoverable => {
                write!(f, "unrecoverable failure: {}", self.last_error)
            }
            SupervisorErrorKind::BudgetExhausted { recoveries } => write!(
                f,
                "recovery budget exhausted after {recoveries} attempts; last error: {}",
                self.last_error
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Supervisor policy: how many rollback-and-resume attempts to make and
/// how to pace them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Recovery attempts before the run fails with
    /// [`SupervisorErrorKind::BudgetExhausted`].
    pub max_recoveries: u32,
    /// Pause before each recovery attempt (shared deterministic
    /// schedule; see [`Backoff`]).
    pub backoff: Backoff,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_recoveries: 3,
            backoff: Backoff::capped(0.05, 2.0),
        }
    }
}

/// A supervised run's result: the coupled output plus the recovery
/// record. When telemetry was collected, the same record is embedded in
/// the report as its `recovery` section (and rewritten to
/// `cfg.telemetry.path` when one is configured).
#[derive(Debug)]
pub struct SupervisedOutput {
    /// The completed run's output, exactly as an unfaulted run would
    /// produce it.
    pub output: CoupledOutput,
    /// What the supervisor had to do to get there (empty on a clean
    /// run).
    pub recovery: RecoveryReport,
    /// The coupling interval the *first* attempt resumed from, when the
    /// run was started with [`supervise_run_resumable`] over a store
    /// that already held a snapshot (`None` for a fresh start).
    /// Mid-run rollbacks are recorded in `recovery`, not here.
    pub resumed_from: Option<usize>,
}

/// Run the coupled model under the supervisor: detect typed faults,
/// roll back to the newest readable coordinated snapshot, and resume —
/// up to `sup.max_recoveries` times — before surfacing a typed
/// [`SupervisorError`].
///
/// Emergency ("on-error") snapshots are force-disabled for the
/// supervised run: they record a stale SST off the failure-free
/// trajectory, which would break the determinism contract. Injected
/// faults are disarmed after the class fires once (the transient-fault
/// model), mirroring how the comm layer's fault plans bound their own
/// hits.
pub fn supervise_run(
    cfg: &FoamConfig,
    days: f64,
    sup: &SupervisorConfig,
) -> Result<SupervisedOutput, SupervisorError> {
    supervise_inner(cfg, days, sup, None, false)
}

/// [`supervise_run`] for *hosted* jobs: attach a live [`RunObserver`]
/// (progress, cancellation, recovery notifications), and — the
/// job-facing difference — let the **first** attempt resume from a
/// snapshot already in `cfg.ckpt.dir`. A service that died mid-job and
/// restarted calls this to continue the job from its newest committed
/// interval instead of recomputing; a snapshot taken at interval `k`
/// restores the full diagnostics series, so the finished output is
/// byte-identical to an uninterrupted run. With an empty (or absent)
/// store this is exactly `supervise_run` plus the observer.
pub fn supervise_run_resumable(
    cfg: &FoamConfig,
    days: f64,
    sup: &SupervisorConfig,
    obs: Option<&dyn RunObserver>,
) -> Result<SupervisedOutput, SupervisorError> {
    supervise_inner(cfg, days, sup, obs, true)
}

fn supervise_inner(
    cfg: &FoamConfig,
    days: f64,
    sup: &SupervisorConfig,
    obs: Option<&dyn RunObserver>,
    resume_first: bool,
) -> Result<SupervisedOutput, SupervisorError> {
    let mut cfg = cfg.clone();
    cfg.ckpt.on_error = false;
    let n_couple = driver::n_couple_for(&cfg, days);
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut sim_days_replayed = 0.0f64;
    let mut recoveries = 0u32;
    // A resumable start is *tolerant* of an unreadable store (it is an
    // optimization, not a contract): fall back to a fresh run and let
    // the recovery loop handle any store fault that persists.
    let first_snapshot = if resume_first {
        cfg.ckpt
            .dir
            .as_deref()
            .and_then(|dir| load_snapshot(dir, &cfg).ok().flatten())
            .filter(|s| s.interval < n_couple)
    } else {
        None
    };
    let resumed_from = first_snapshot.as_ref().map(|s| s.interval);
    let mut result = match first_snapshot {
        Some(snap) => cfg
            .validate()
            .map_err(CoupledError::from)
            .and_then(|()| driver::run_inner(&cfg, days, Some(snap), obs)),
        None => driver::run_validated(&cfg, days, obs),
    };
    loop {
        let err = match result {
            Ok(mut output) => {
                let recovery = RecoveryReport {
                    events,
                    sim_days_replayed,
                };
                attach_recovery(&mut output, &cfg, &recovery);
                return Ok(SupervisedOutput {
                    output,
                    recovery,
                    resumed_from,
                });
            }
            Err(e) => e,
        };
        let Some(fault) = RunFault::classify(&err) else {
            return Err(SupervisorError {
                kind: SupervisorErrorKind::Unrecoverable,
                last_error: err,
                recovery: RecoveryReport {
                    events,
                    sim_days_replayed,
                },
            });
        };
        if recoveries >= sup.max_recoveries {
            return Err(SupervisorError {
                kind: SupervisorErrorKind::BudgetExhausted { recoveries },
                last_error: err,
                recovery: RecoveryReport {
                    events,
                    sim_days_replayed,
                },
            });
        }
        recoveries += 1;
        std::thread::sleep(sup.backoff.delay(recoveries));
        // Where did the run die? Known exactly for sentinel/exchange
        // faults, from the (pre-disarm) kill schedule for injected rank
        // deaths, unknown (0) otherwise — the replay accounting is then
        // a lower bound.
        let fault_interval = match &fault {
            RunFault::ExchangeTimeout { expected_seq, .. } => *expected_seq,
            RunFault::PhysicsSentinel { interval, .. } => *interval,
            RunFault::RankDead { .. } => cfg
                .runtime
                .kill_rank
                .map(|k| k.interval)
                .unwrap_or_default(),
            RunFault::CheckpointStore { .. } => 0,
        };
        disarm(&mut cfg, &fault);
        // Roll back: newest readable snapshot short of the end of the
        // run, else a fresh start. A failing load is itself a
        // storage-side fault — recorded, then recovered from by
        // restarting.
        let mut store_error = None;
        let snapshot = match cfg.ckpt.dir.as_deref() {
            Some(dir) => match load_snapshot(dir, &cfg) {
                Ok(s) => s.filter(|s| s.interval < n_couple),
                Err(e) => {
                    store_error = Some(e.to_string());
                    None
                }
            },
            None => None,
        };
        let (action, replayed) = match &snapshot {
            Some(s) => (
                RecoveryAction::Resumed {
                    from_interval: s.interval,
                },
                fault_interval.saturating_sub(s.interval),
            ),
            None => (RecoveryAction::Restarted, fault_interval),
        };
        sim_days_replayed += replayed as f64 * cfg.dt_couple / 86_400.0;
        events.push(RecoveryEvent {
            fault,
            action,
            replayed_intervals: replayed,
            store_error,
        });
        if let (Some(o), Some(ev)) = (obs, events.last()) {
            o.on_recovery(ev);
        }
        result = match snapshot {
            Some(snap) => driver::run_inner(&cfg, days, Some(snap), obs),
            None => driver::run_validated(&cfg, days, obs),
        };
    }
}

/// Load the newest readable snapshot under `dir`; `Ok(None)` when the
/// store holds no checkpoint at all (a fresh start, not a fault).
fn load_snapshot(
    dir: &Path,
    cfg: &FoamConfig,
) -> Result<Option<checkpoint::GlobalSnapshot>, CkptError> {
    let store = CheckpointStore::open(dir)?;
    match checkpoint::load_latest(&store, cfg) {
        Ok(snap) => Ok(Some(snap)),
        Err(CkptError::NoCheckpoint) => Ok(None),
        Err(e) => Err(e),
    }
}

/// The transient-fault model: after a fault class fires (and is
/// recovered from), its injection knob is cleared so the next attempt
/// runs clean. Mirrors the ensemble's retry loop, which drops the comm
/// fault plan on retry.
fn disarm(cfg: &mut FoamConfig, fault: &RunFault) {
    match fault {
        RunFault::RankDead { .. } => {
            cfg.runtime.kill_rank = None;
            // An organic rank death may have been provoked by comm
            // faults; clear those too.
            cfg.runtime.fault_plan = None;
        }
        RunFault::ExchangeTimeout { .. } => cfg.runtime.fault_plan = None,
        RunFault::PhysicsSentinel { .. } => cfg.runtime.physics_fault = None,
        RunFault::CheckpointStore { .. } => cfg.ckpt.fault_plan = None,
    }
}

/// Embed the recovery record into the run's telemetry report (the
/// `recovery` section) and rewrite the report file when a path is
/// configured, so the on-disk document matches the in-memory one.
fn attach_recovery(output: &mut CoupledOutput, cfg: &FoamConfig, recovery: &RecoveryReport) {
    if let Some(report) = output.telemetry.as_mut() {
        report
            .extra
            .insert("recovery".to_string(), recovery.to_json());
        if let Some(path) = &cfg.telemetry.path {
            // Best effort: the unsupervised write already succeeded; a
            // failure here leaves that (recovery-less) document behind.
            let _ = report.write_json(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhysicsFault, PhysicsFaultKind, RankKill};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "foam-supervisor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn classification_covers_the_fault_matrix() {
        assert_eq!(
            RunFault::classify(&CoupledError::RankDead {
                rank: 2,
                detail: "boom".into()
            }),
            Some(RunFault::RankDead {
                rank: 2,
                detail: "boom".into()
            })
        );
        assert_eq!(
            RunFault::classify(&CoupledError::SstExchange {
                expected_seq: 3,
                retries: 2
            }),
            Some(RunFault::ExchangeTimeout {
                expected_seq: 3,
                retries: 2
            })
        );
        assert!(matches!(
            RunFault::classify(&CoupledError::Ckpt(CkptError::NoCheckpoint)),
            Some(RunFault::CheckpointStore { .. })
        ));
        assert!(matches!(
            RunFault::classify(&CoupledError::Sentinel {
                interval: 1,
                field: "sst",
                value: f64::NAN
            }),
            Some(RunFault::PhysicsSentinel { interval: 1, .. })
        ));
        assert_eq!(RunFault::classify(&CoupledError::Aborted), None);
        assert_eq!(
            RunFault::classify(&CoupledError::Internal { what: "x".into() }),
            None
        );
    }

    #[test]
    fn clean_runs_report_no_recovery_activity() {
        let mut cfg = FoamConfig::tiny(21);
        cfg.telemetry.enabled = true;
        let out = supervise_run(&cfg, 0.5, &SupervisorConfig::default()).expect("clean run");
        assert!(out.recovery.events.is_empty());
        assert_eq!(out.recovery.faults_seen(), 0);
        assert_eq!(out.recovery.sim_days_replayed, 0.0);
        // The telemetry report carries the (empty) recovery section.
        let report = out.output.telemetry.expect("telemetry on");
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"recovery\""), "{json}");
        assert!(json.contains(RECOVERY_SCHEMA), "{json}");
    }

    #[test]
    fn rank_death_recovers_by_resuming_the_checkpoint() {
        let dir = scratch("rank-death");
        let mut cfg = FoamConfig::tiny(22);
        cfg.ckpt = crate::CkptConfig::every(&dir, 2);
        // 2 days = 8 intervals, checkpoints at 2,4,6,8; kill rank 1 at
        // interval 5 → resume from interval 4, replaying one interval.
        cfg.runtime.kill_rank = Some(RankKill {
            rank: 1,
            interval: 5,
        });
        let sup = SupervisorConfig {
            max_recoveries: 2,
            backoff: Backoff::capped(0.0, 0.0),
        };
        let out = supervise_run(&cfg, 2.0, &sup).expect("supervised recovery");
        assert_eq!(out.recovery.rollbacks(), 1);
        let e = &out.recovery.events[0];
        assert!(
            matches!(&e.fault, RunFault::RankDead { rank: 1, detail } if detail.contains("injected rank death")),
            "{:?}",
            e.fault
        );
        assert_eq!(e.action, RecoveryAction::Resumed { from_interval: 4 });
        assert_eq!(e.replayed_intervals, 1);
        // The run completed its full span after recovery.
        assert_eq!(out.output.mean_sst_series.len(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn physics_fault_recovers_and_disarms() {
        let dir = scratch("sentinel");
        let mut cfg = FoamConfig::tiny(23);
        cfg.ckpt = crate::CkptConfig::every(&dir, 2);
        cfg.runtime.physics_fault = Some(PhysicsFault {
            interval: 3,
            kind: PhysicsFaultKind::Nan,
        });
        let sup = SupervisorConfig {
            max_recoveries: 1,
            backoff: Backoff::capped(0.0, 0.0),
        };
        let out = supervise_run(&cfg, 1.0, &sup).expect("recovered from NaN");
        assert_eq!(out.recovery.rollbacks(), 1);
        assert!(matches!(
            out.recovery.events[0].fault,
            RunFault::PhysicsSentinel { interval: 3, .. }
        ));
        assert_eq!(
            out.recovery.events[0].action,
            RecoveryAction::Resumed { from_interval: 2 }
        );
        assert_eq!(out.output.mean_sst_series.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_checkpoints_recovery_restarts_from_scratch() {
        let mut cfg = FoamConfig::tiny(24);
        cfg.runtime.kill_rank = Some(RankKill {
            rank: 0,
            interval: 2,
        });
        let sup = SupervisorConfig {
            max_recoveries: 1,
            backoff: Backoff::capped(0.0, 0.0),
        };
        let out = supervise_run(&cfg, 1.0, &sup).expect("restarted");
        assert_eq!(out.recovery.events[0].action, RecoveryAction::Restarted);
        assert_eq!(out.recovery.events[0].replayed_intervals, 2);
        assert_eq!(out.output.mean_sst_series.len(), 4);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_terminal_error() {
        // An exchange that can never succeed: every SST dropped, and the
        // comm fault plan survives disarm... it does not — so instead
        // exhaust the budget with max_recoveries = 0.
        let mut cfg = FoamConfig::tiny(25);
        cfg.runtime.kill_rank = Some(RankKill {
            rank: 0,
            interval: 0,
        });
        let sup = SupervisorConfig {
            max_recoveries: 0,
            backoff: Backoff::capped(0.0, 0.0),
        };
        let err = supervise_run(&cfg, 0.5, &sup).unwrap_err();
        assert_eq!(
            err.kind,
            SupervisorErrorKind::BudgetExhausted { recoveries: 0 }
        );
        assert!(matches!(err.last_error, CoupledError::RankDead { .. }));
        assert!(err.recovery.events.is_empty());
    }

    #[test]
    fn unrecoverable_errors_bypass_the_budget() {
        let mut cfg = FoamConfig::tiny(26);
        cfg.atm.dt = 0.0; // invalid configuration
        let err = supervise_run(&cfg, 1.0, &SupervisorConfig::default()).unwrap_err();
        assert_eq!(err.kind, SupervisorErrorKind::Unrecoverable);
        assert!(matches!(err.last_error, CoupledError::Config(_)));
    }

    #[test]
    fn recovery_report_json_is_deterministic() {
        let report = RecoveryReport {
            events: vec![RecoveryEvent {
                fault: RunFault::RankDead {
                    rank: 1,
                    detail: "injected".into(),
                },
                action: RecoveryAction::Resumed { from_interval: 4 },
                replayed_intervals: 2,
                store_error: None,
            }],
            sim_days_replayed: 0.5,
        };
        let a = report.to_json().to_string_pretty();
        let b = report.clone().to_json().to_string_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"rank_dead\""));
        assert!(a.contains("\"resumed\""));
    }
}
