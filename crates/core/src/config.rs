//! Configuration of a coupled FOAM run.

use std::path::PathBuf;

use foam_atm::AtmConfig;
use foam_ckpt::StoreFaultPlan;
use foam_mpi::FaultPlan;
use foam_ocean::{OceanConfig, SplitScheme};
use foam_physics::forcing::Forcings;

/// A configuration rejected by [`FoamConfig::validate`] — the typed
/// alternative to panicking deep inside the run when a zero timestep or
/// subcycle count divides something.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A quantity that must be strictly positive (a timestep, an
    /// interval length) was zero, negative, or not finite.
    NonPositive { what: &'static str, value: f64 },
    /// A count that must be at least one (ranks, subcycles, checkpoint
    /// cadence) was zero.
    ZeroCount { what: &'static str },
    /// The telemetry report path cannot be written (its parent directory
    /// does not exist or is not a directory). Caught up front so a long
    /// run does not integrate for hours and then lose its report.
    UnwritablePath { what: &'static str, path: PathBuf },
    /// A scenario forcing series is malformed (breakpoint days not
    /// strictly increasing / non-finite) or a forced value leaves the
    /// physically admissible range for its channel.
    BadForcing {
        what: &'static str,
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            ConfigError::ZeroCount { what } => write!(f, "{what} must be at least 1"),
            ConfigError::UnwritablePath { what, path } => {
                write!(
                    f,
                    "{what} is not writable: {} (parent directory missing?)",
                    path.display()
                )
            }
            ConfigError::BadForcing { what, reason } => {
                write!(f, "{what} is not a valid forcing series: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checkpoint/restart knobs. Checkpointing is off unless `dir` is set;
/// see `foam::checkpoint` for the snapshot format and the restart
/// guarantee.
#[derive(Debug, Clone, Default)]
pub struct CkptConfig {
    /// Root directory for checkpoints (`None` disables checkpointing).
    /// Each snapshot is a subdirectory `ckpt-<interval>` holding one
    /// shard per rank plus a manifest, committed by an atomic rename.
    pub dir: Option<PathBuf>,
    /// Checkpoint cadence in coupling intervals.
    pub interval: usize,
    /// Committed snapshots retained (older ones are deleted).
    pub keep: usize,
    /// Also attempt a best-effort emergency checkpoint when the run
    /// aborts with a [`crate::CoupledError`]. Emergency snapshots are
    /// resumable but lie off the failure-free trajectory (the root
    /// records its last *accepted* SST, which by then is stale).
    pub on_error: bool,
    /// Deterministic checkpoint-store fault injection (testing only):
    /// torn writes, CRC corruption, ENOSPC-style write failures on a
    /// schedule (see [`foam_ckpt::FaultyStore`]).
    pub fault_plan: Option<StoreFaultPlan>,
}

impl CkptConfig {
    /// Checkpoint into `dir` every `interval` coupling intervals,
    /// keeping the last two snapshots.
    pub fn every(dir: impl Into<PathBuf>, interval: usize) -> Self {
        CkptConfig {
            dir: Some(dir.into()),
            interval,
            keep: 2,
            on_error: true,
            fault_plan: None,
        }
    }
}

/// Telemetry knobs. Telemetry is collected when [`enabled`] is true —
/// either explicitly or implicitly by setting a report [`path`]. It
/// observes wall-clock time only: enabling it cannot change any
/// simulated field bit-for-bit (asserted by the integration tests).
///
/// [`enabled`]: TelemetryConfig::enabled
/// [`path`]: TelemetryConfig::path
///
/// ```
/// use foam::TelemetryConfig;
///
/// assert!(!TelemetryConfig::default().collect());
/// assert!(TelemetryConfig { enabled: true, ..Default::default() }.collect());
/// assert!(TelemetryConfig::to_file("report.json").collect());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Collect phase timings and counters even when no report path is
    /// set (the report is then only available programmatically on
    /// [`crate::CoupledOutput::telemetry`]).
    pub enabled: bool,
    /// Where to write the JSON report at the end of the run. Setting a
    /// path implies `enabled`. The parent directory must exist —
    /// [`FoamConfig::validate`] rejects the config otherwise.
    pub path: Option<PathBuf>,
}

impl TelemetryConfig {
    /// Enable telemetry and write the end-of-run report to `path`.
    pub fn to_file(path: impl Into<PathBuf>) -> Self {
        TelemetryConfig {
            enabled: true,
            path: Some(path.into()),
        }
    }

    /// Whether telemetry should be collected this run.
    pub fn collect(&self) -> bool {
        self.enabled || self.path.is_some()
    }
}

/// Failure-handling knobs of the message-passing runtime, separate from
/// the science configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Default deadline \[s\] applied to every blocking receive on every
    /// rank. `None` (the default) waits forever, like classic MPI; set
    /// it to turn communication deadlocks into diagnosable aborts.
    pub recv_deadline_secs: Option<f64>,
    /// How long the atmosphere root waits for an expected SST before
    /// sending a retry request to the ocean \[s\]. The protocol is
    /// idempotent, so a premature retry is absorbed — but keep this
    /// comfortably above one ocean coupling-interval integration to
    /// avoid spurious retry traffic.
    pub sst_retry_timeout_secs: f64,
    /// Retry requests per SST exchange before giving up with a
    /// [`crate::CoupledError`]. `0` disables the retry protocol (a lost
    /// message then hangs until `recv_deadline_secs`, if set).
    pub sst_retry_max: u32,
    /// Base backoff between retry requests \[s\]; doubles per attempt.
    pub sst_retry_backoff_secs: f64,
    /// Deterministic fault-injection plan for point-to-point messages
    /// (testing only).
    pub fault_plan: Option<FaultPlan>,
    /// Physics sentinel: validates exchanged fields on the atmosphere
    /// root and turns a numerical blow-up into a recoverable
    /// [`crate::CoupledError::Sentinel`] instead of silently
    /// propagating NaN through the rest of the run.
    pub sentinel: SentinelConfig,
    /// Deterministically kill one rank at a coupling interval (testing
    /// only) — the chaos matrix's "node death" entry.
    pub kill_rank: Option<RankKill>,
    /// Deterministically poison one exchanged SST field (testing only)
    /// — the chaos matrix's "physics blow-up" entry, caught by the
    /// sentinel.
    pub physics_fault: Option<PhysicsFault>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            recv_deadline_secs: None,
            sst_retry_timeout_secs: 2.0,
            sst_retry_max: 3,
            sst_retry_backoff_secs: 0.05,
            fault_plan: None,
            sentinel: SentinelConfig::default(),
            kill_rank: None,
            physics_fault: None,
        }
    }
}

/// Physics-sentinel thresholds. The sentinel checks the fields crossing
/// the coupler boundary on the atmosphere root — every accepted SST
/// field (sea-masked cells) and the root's own soil-column skin
/// temperatures — for NaN/Inf and out-of-physical-range values. The
/// default bounds are far outside anything a healthy run produces, so
/// false trips cost nothing while a genuine blow-up is caught at the
/// interval it happens.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelConfig {
    /// Check exchanged fields at all (on by default).
    pub enabled: bool,
    /// Coldest plausible SST \[°C\] (sea water freezes near −1.92 °C).
    pub sst_min_c: f64,
    /// Warmest plausible SST \[°C\].
    pub sst_max_c: f64,
    /// Coldest plausible soil skin temperature \[°C\]. The default sits
    /// just above absolute zero: coarse polar columns in this model
    /// legitimately reach −230 °C during spin-up, so the soil bound is a
    /// NaN/absolute-zero tripwire, not a climatological range. Tighten
    /// per experiment when the resolution supports it.
    pub soil_min_c: f64,
    /// Warmest plausible soil skin temperature \[°C\].
    pub soil_max_c: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            enabled: true,
            sst_min_c: -5.0,
            sst_max_c: 60.0,
            soil_min_c: -270.0,
            soil_max_c: 200.0,
        }
    }
}

/// Deterministic rank-death injection: `rank` panics at the top of
/// coupling interval `interval` (an in-process stand-in for a node
/// crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// World rank to kill (atmosphere ranks `0..n_atm_ranks`, ocean at
    /// `n_atm_ranks`).
    pub rank: usize,
    /// Coupling interval at which the rank dies.
    pub interval: usize,
}

/// Deterministic physics blow-up injection: the accepted SST of
/// coupling interval `interval` is poisoned on the atmosphere root
/// before the sentinel inspects it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicsFault {
    /// Coupling interval whose SST exchange is poisoned.
    pub interval: usize,
    /// How the field blows up.
    pub kind: PhysicsFaultKind,
}

/// The ways an injected physics fault corrupts the SST field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicsFaultKind {
    /// One cell becomes NaN (the classic numerical-instability
    /// signature).
    Nan,
    /// One cell leaves the physical range by orders of magnitude.
    OutOfRange,
}

/// In-run streaming statistics knobs. When [`FoamConfig::stream`] is
/// set, the driver folds each completed monthly-mean SST field into an
/// `O(grid)` streaming estimator ([`crate::DriverStream`]) instead of
/// (or in addition to) retaining the `O(grid × months)` monthly history
/// — the device that makes century-scale variability runs fit in
/// memory. The stream state checkpoints and resumes bit-identically
/// with the rest of the run.
#[derive(Debug, Clone)]
pub struct StreamStatsConfig {
    /// Maximum spatial rank of the streaming EOF sketch
    /// ([`foam_stats::StreamingEof`]). Variability beyond this many
    /// spatial degrees of freedom is measured (as a discarded-energy
    /// fraction) but not resolved; 8 comfortably covers the handful of
    /// modes Figure 4 interprets.
    pub eof_rank: usize,
}

impl Default for StreamStatsConfig {
    fn default() -> Self {
        StreamStatsConfig { eof_rank: 8 }
    }
}

/// How the atmosphere and ocean exchange information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingMode {
    /// FOAM's scheme: the ocean integrates each coupling interval
    /// *concurrently* with the atmosphere's next one (SSTs lag one
    /// interval). One ocean node thus overlaps 16 atmosphere nodes.
    Lagged,
    /// Naive scheme: the atmosphere blocks while the ocean integrates
    /// (the conventional sequential coupling of contemporary models).
    Sequential,
}

/// Full configuration of a coupled run.
#[derive(Debug, Clone)]
pub struct FoamConfig {
    pub atm: AtmConfig,
    pub ocean: OceanConfig,
    /// Number of atmosphere ranks ("nodes"); the coupler is co-located
    /// on them. One additional rank runs the ocean.
    pub n_atm_ranks: usize,
    /// Ocean coupling interval \[s\] (paper: 6 h — the ocean is called
    /// four times per simulated day).
    pub dt_couple: f64,
    pub coupling: CouplingMode,
    /// Ocean stepping scheme (FOAM split vs unsplit baseline).
    pub ocean_scheme: SplitScheme,
    /// Record per-rank activity traces (Figure 2).
    pub tracing: bool,
    /// Collect monthly-mean SST fields (needed by Figures 3–4; costs
    /// memory on long runs).
    pub collect_monthly_sst: bool,
    /// Fold monthly-mean SST into streaming statistics as the run goes
    /// (`O(grid)` memory however long the run) — the century-scale
    /// replacement for `collect_monthly_sst`. Both can be on at once,
    /// which is how the equivalence tests compare the two paths.
    pub stream: Option<StreamStatsConfig>,
    /// Scenario forcings: piecewise-linear CO₂ / solar / aerosol time
    /// series (in simulated days) the atmosphere folds into its column
    /// physics once per simulated day. Empty (the default) is the
    /// identity — unforced runs are bit-identical to pre-scenario
    /// builds. The content participates in
    /// [`FoamConfig::canonical_digest`] and is recorded in snapshots so
    /// a resume under different forcings is rejected instead of
    /// silently diverging.
    pub forcings: Forcings,
    /// Failure-handling knobs (deadlines, retries, fault injection).
    pub runtime: RuntimeConfig,
    /// Checkpoint/restart knobs (off unless a directory is set).
    pub ckpt: CkptConfig,
    /// Telemetry knobs (phase timers, counters, model-speedup report).
    pub telemetry: TelemetryConfig,
}

impl FoamConfig {
    /// The paper's production configuration: R15 atmosphere (48×40×18,
    /// Δt = 30 min) on `n_atm_ranks` nodes, 128×128×16 ocean on one node,
    /// 6-hour lagged coupling.
    pub fn paper(n_atm_ranks: usize, seed: u64) -> Self {
        FoamConfig {
            atm: AtmConfig {
                seed,
                ..Default::default()
            },
            ocean: OceanConfig::default(),
            n_atm_ranks,
            dt_couple: 21_600.0,
            coupling: CouplingMode::Lagged,
            ocean_scheme: SplitScheme::FoamSplit,
            tracing: false,
            collect_monthly_sst: false,
            stream: None,
            forcings: Forcings::default(),
            runtime: RuntimeConfig::default(),
            ckpt: CkptConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }

    /// A reduced configuration for tests and demos: 24×16 R5 atmosphere,
    /// 32×24×6 ocean, 2 atmosphere ranks.
    pub fn tiny(seed: u64) -> Self {
        FoamConfig {
            atm: AtmConfig::tiny(seed),
            ocean: OceanConfig::tiny(),
            n_atm_ranks: 2,
            dt_couple: 21_600.0,
            coupling: CouplingMode::Lagged,
            ocean_scheme: SplitScheme::FoamSplit,
            tracing: false,
            collect_monthly_sst: false,
            stream: None,
            forcings: Forcings::default(),
            runtime: RuntimeConfig::default(),
            ckpt: CkptConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }

    /// The century-throughput configuration: a further-reduced grid (16×12
    /// R3 atmosphere on one rank, 24×16×4 ocean) with streaming
    /// statistics on and monthly-history collection *off*, sized so a
    /// single machine pushes 100 simulated years through the full
    /// coupled pipeline in well under an hour while the statistics
    /// memory stays `O(grid)`. This is what the `century` bench bin
    /// runs.
    pub fn century(seed: u64) -> Self {
        let mut atm = AtmConfig::tiny(seed);
        atm.nlon = 16;
        atm.nlat = 12;
        atm.m_max = 3;
        atm.nlev_phys = 4;
        // The coarser grids admit longer stable steps than `tiny`'s.
        atm.dt = 3600.0;
        let mut ocean = OceanConfig::tiny();
        ocean.nx = 24;
        ocean.ny = 16;
        ocean.nz = 4;
        ocean.dt_int = 7200.0;
        FoamConfig {
            atm,
            ocean,
            n_atm_ranks: 1,
            dt_couple: 21_600.0,
            coupling: CouplingMode::Lagged,
            ocean_scheme: SplitScheme::FoamSplit,
            tracing: false,
            collect_monthly_sst: false,
            stream: Some(StreamStatsConfig::default()),
            forcings: Forcings::default(),
            runtime: RuntimeConfig::default(),
            ckpt: CkptConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Check the configuration before it can divide by zero or spin in
    /// an empty subcycle loop somewhere deep inside the run. Called by
    /// the driver entry points; a failure comes back as a typed
    /// [`crate::CoupledError::Config`] instead of a panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive(what: &'static str, value: f64) -> Result<(), ConfigError> {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(ConfigError::NonPositive { what, value })
            }
        }
        fn at_least_one(what: &'static str, n: usize) -> Result<(), ConfigError> {
            if n >= 1 {
                Ok(())
            } else {
                Err(ConfigError::ZeroCount { what })
            }
        }
        positive("atm.dt", self.atm.dt)?;
        positive("ocean.dt_int", self.ocean.dt_int)?;
        positive("dt_couple", self.dt_couple)?;
        positive("ocean.slowdown", self.ocean.slowdown)?;
        at_least_one("ocean.n_trac", self.ocean.n_trac)?;
        at_least_one("n_atm_ranks", self.n_atm_ranks)?;
        at_least_one("atm.nlat", self.atm.nlat)?;
        if self.ckpt.dir.is_some() {
            at_least_one("ckpt.interval", self.ckpt.interval)?;
            at_least_one("ckpt.keep", self.ckpt.keep)?;
        }
        if let Some(stream) = &self.stream {
            at_least_one("stream.eof_rank", stream.eof_rank)?;
        }
        // Scenario forcings: every breakpoint value must stay inside
        // the physically admissible envelope of its channel. Piecewise-
        // linear interpolation and constant extrapolation cannot leave
        // the convex hull of the breakpoints, so checking breakpoints
        // bounds the whole series.
        fn forcing_range(
            what: &'static str,
            series: &foam_physics::ForcingSeries,
            lo: f64,
            hi: f64,
        ) -> Result<(), ConfigError> {
            if series
                .points()
                .iter()
                .any(|&(_, v)| !(lo..=hi).contains(&v))
            {
                return Err(ConfigError::BadForcing {
                    what,
                    reason: "breakpoint value outside the admissible range",
                });
            }
            Ok(())
        }
        forcing_range("forcings.co2", &self.forcings.co2, 1.0 / 32.0, 32.0)?;
        forcing_range("forcings.solar", &self.forcings.solar, 0.8, 1.2)?;
        forcing_range("forcings.aerosol", &self.forcings.aerosol, 0.0, 5.0)?;
        // The static knobs the forcings multiply into obey the same
        // envelopes (sweep overrides land here, not in the series).
        let rad = &self.atm.physics.rad;
        if !(0.8..=1.2).contains(&rad.solar_scale) {
            return Err(ConfigError::BadForcing {
                what: "atm.physics.rad.solar_scale",
                reason: "static value outside the admissible range [0.8, 1.2]",
            });
        }
        if !(0.0..=5.0).contains(&rad.aerosol_od) {
            return Err(ConfigError::BadForcing {
                what: "atm.physics.rad.aerosol_od",
                reason: "static value outside the admissible range [0, 5]",
            });
        }
        if !(1.0 / 32.0..=32.0).contains(&rad.co2_factor) {
            return Err(ConfigError::BadForcing {
                what: "atm.physics.rad.co2_factor",
                reason: "static value outside the admissible range [1/32, 32]",
            });
        }
        let obl = self.atm.physics.obliquity_deg;
        if !(0.0..=45.0).contains(&obl) || !obl.is_finite() {
            return Err(ConfigError::NonPositive {
                what: "atm.physics.obliquity_deg (must lie in [0, 45])",
                value: obl,
            });
        }
        if self.runtime.sentinel.enabled {
            let s = &self.runtime.sentinel;
            positive(
                "runtime.sentinel SST range width",
                s.sst_max_c - s.sst_min_c,
            )?;
            positive(
                "runtime.sentinel soil range width",
                s.soil_max_c - s.soil_min_c,
            )?;
        }
        if let Some(path) = &self.telemetry.path {
            // The file itself is created at the end of the run; what must
            // already exist is the directory it lands in.
            let parent = match path.parent() {
                // `"report.json".parent()` is `Some("")` — the cwd.
                Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
                Some(p) => p.to_path_buf(),
                None => PathBuf::from("."),
            };
            if !parent.is_dir() {
                return Err(ConfigError::UnwritablePath {
                    what: "telemetry.path",
                    path: path.clone(),
                });
            }
        }
        Ok(())
    }

    /// Total ranks of the job (atmosphere + one ocean node).
    pub fn n_ranks(&self) -> usize {
        self.n_atm_ranks + 1
    }

    /// Atmosphere steps per coupling interval.
    pub fn atm_steps_per_couple(&self) -> usize {
        (self.dt_couple / self.atm.dt).round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_numbers() {
        let c = FoamConfig::paper(16, 1);
        assert_eq!(c.atm.nlon, 48);
        assert_eq!(c.atm.nlat, 40);
        assert_eq!(c.atm.m_max, 15);
        assert_eq!(c.atm.nlev_phys, 18);
        assert_eq!(c.atm.dt, 1800.0);
        assert_eq!(c.ocean.nx, 128);
        assert_eq!(c.ocean.ny, 128);
        assert_eq!(c.ocean.nz, 16);
        // Ocean called 4 times per simulated day.
        assert_eq!((86_400.0 / c.dt_couple) as usize, 4);
        // 48 atmosphere steps per day (30-minute step).
        assert_eq!(c.atm_steps_per_couple() * 4, 48);
        assert_eq!(c.n_ranks(), 17); // the paper's typical 17-node runs
    }

    #[test]
    fn tiny_config_is_consistent() {
        let c = FoamConfig::tiny(3);
        assert_eq!(c.n_ranks(), 3);
        assert!(c.atm_steps_per_couple() >= 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn century_config_streams_instead_of_collecting() {
        let c = FoamConfig::century(9);
        assert!(c.validate().is_ok());
        assert!(!c.collect_monthly_sst);
        let stream = c
            .stream
            .as_ref()
            .expect("century preset streams statistics");
        assert!(stream.eof_rank >= 4);
        assert_eq!(c.n_ranks(), 2);
        // Smaller than tiny in every dimension that costs time.
        let t = FoamConfig::tiny(9);
        assert!(c.atm.nlon * c.atm.nlat < t.atm.nlon * t.atm.nlat);
        assert!(c.ocean.nx * c.ocean.ny * c.ocean.nz < t.ocean.nx * t.ocean.ny * t.ocean.nz);
    }

    #[test]
    fn validate_rejects_zero_stream_rank() {
        let mut c = FoamConfig::century(1);
        c.stream = Some(StreamStatsConfig { eof_rank: 0 });
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                what: "stream.eof_rank"
            })
        );
    }

    #[test]
    fn validate_rejects_nonpositive_timesteps() {
        let mut c = FoamConfig::tiny(1);
        c.atm.dt = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositive {
                what: "atm.dt",
                value: 0.0
            })
        );
        let mut c = FoamConfig::tiny(1);
        c.dt_couple = -21_600.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                what: "dt_couple",
                ..
            })
        ));
        let mut c = FoamConfig::tiny(1);
        c.ocean.dt_int = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                what: "ocean.dt_int",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_zero_counts() {
        let mut c = FoamConfig::tiny(1);
        c.ocean.n_trac = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                what: "ocean.n_trac"
            })
        );
        let mut c = FoamConfig::tiny(1);
        c.n_atm_ranks = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                what: "n_atm_ranks"
            })
        );
        let mut c = FoamConfig::tiny(1);
        c.ckpt = CkptConfig::every("/tmp/unused", 4);
        c.ckpt.interval = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                what: "ckpt.interval"
            })
        );
        // Checkpoint knobs are only checked when checkpointing is on.
        c.ckpt.dir = None;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_forcings() {
        use foam_physics::ForcingSeries;
        let mut c = FoamConfig::tiny(1);
        c.forcings.co2 = ForcingSeries::constant(100.0); // > 32× CO₂
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadForcing {
                what: "forcings.co2",
                reason: "breakpoint value outside the admissible range",
            })
        );
        let mut c = FoamConfig::tiny(1);
        c.forcings.solar = ForcingSeries::constant(0.5); // a half-dark sun
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadForcing {
                what: "forcings.solar",
                ..
            })
        ));
        let mut c = FoamConfig::tiny(1);
        c.forcings.aerosol = ForcingSeries::from_points(vec![(0.0, 0.0), (30.0, -0.1)]).unwrap();
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadForcing {
                what: "forcings.aerosol",
                ..
            })
        ));
        // In-range forcings pass.
        let mut c = FoamConfig::tiny(1);
        c.forcings.co2 = ForcingSeries::from_points(vec![(0.0, 1.0), (360.0, 2.0)]).unwrap();
        c.forcings.solar = ForcingSeries::constant(1.01);
        c.forcings.aerosol = ForcingSeries::constant(0.15);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_wild_obliquity() {
        let mut c = FoamConfig::tiny(1);
        c.atm.physics.obliquity_deg = 90.0;
        assert!(matches!(c.validate(), Err(ConfigError::NonPositive { .. })));
        c.atm.physics.obliquity_deg = 22.1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unwritable_telemetry_path() {
        let mut c = FoamConfig::tiny(1);
        c.telemetry = TelemetryConfig::to_file("/nonexistent-dir-xyzzy/report.json");
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnwritablePath {
                what: "telemetry.path",
                ..
            })
        ));
        // A bare filename lands in the cwd, which exists.
        c.telemetry = TelemetryConfig::to_file("report.json");
        assert!(c.validate().is_ok());
        // Plain `enabled` needs no path at all.
        c.telemetry = TelemetryConfig {
            enabled: true,
            path: None,
        };
        assert!(c.validate().is_ok());
    }
}
