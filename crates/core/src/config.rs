//! Configuration of a coupled FOAM run.

use foam_atm::AtmConfig;
use foam_mpi::FaultPlan;
use foam_ocean::{OceanConfig, SplitScheme};

/// Failure-handling knobs of the message-passing runtime, separate from
/// the science configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Default deadline \[s\] applied to every blocking receive on every
    /// rank. `None` (the default) waits forever, like classic MPI; set
    /// it to turn communication deadlocks into diagnosable aborts.
    pub recv_deadline_secs: Option<f64>,
    /// How long the atmosphere root waits for an expected SST before
    /// sending a retry request to the ocean \[s\]. The protocol is
    /// idempotent, so a premature retry is absorbed — but keep this
    /// comfortably above one ocean coupling-interval integration to
    /// avoid spurious retry traffic.
    pub sst_retry_timeout_secs: f64,
    /// Retry requests per SST exchange before giving up with a
    /// [`crate::CoupledError`]. `0` disables the retry protocol (a lost
    /// message then hangs until `recv_deadline_secs`, if set).
    pub sst_retry_max: u32,
    /// Base backoff between retry requests \[s\]; doubles per attempt.
    pub sst_retry_backoff_secs: f64,
    /// Deterministic fault-injection plan for point-to-point messages
    /// (testing only).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            recv_deadline_secs: None,
            sst_retry_timeout_secs: 2.0,
            sst_retry_max: 3,
            sst_retry_backoff_secs: 0.05,
            fault_plan: None,
        }
    }
}

/// How the atmosphere and ocean exchange information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingMode {
    /// FOAM's scheme: the ocean integrates each coupling interval
    /// *concurrently* with the atmosphere's next one (SSTs lag one
    /// interval). One ocean node thus overlaps 16 atmosphere nodes.
    Lagged,
    /// Naive scheme: the atmosphere blocks while the ocean integrates
    /// (the conventional sequential coupling of contemporary models).
    Sequential,
}

/// Full configuration of a coupled run.
#[derive(Debug, Clone)]
pub struct FoamConfig {
    pub atm: AtmConfig,
    pub ocean: OceanConfig,
    /// Number of atmosphere ranks ("nodes"); the coupler is co-located
    /// on them. One additional rank runs the ocean.
    pub n_atm_ranks: usize,
    /// Ocean coupling interval \[s\] (paper: 6 h — the ocean is called
    /// four times per simulated day).
    pub dt_couple: f64,
    pub coupling: CouplingMode,
    /// Ocean stepping scheme (FOAM split vs unsplit baseline).
    pub ocean_scheme: SplitScheme,
    /// Record per-rank activity traces (Figure 2).
    pub tracing: bool,
    /// Collect monthly-mean SST fields (needed by Figures 3–4; costs
    /// memory on long runs).
    pub collect_monthly_sst: bool,
    /// Failure-handling knobs (deadlines, retries, fault injection).
    pub runtime: RuntimeConfig,
}

impl FoamConfig {
    /// The paper's production configuration: R15 atmosphere (48×40×18,
    /// Δt = 30 min) on `n_atm_ranks` nodes, 128×128×16 ocean on one node,
    /// 6-hour lagged coupling.
    pub fn paper(n_atm_ranks: usize, seed: u64) -> Self {
        FoamConfig {
            atm: AtmConfig {
                seed,
                ..Default::default()
            },
            ocean: OceanConfig::default(),
            n_atm_ranks,
            dt_couple: 21_600.0,
            coupling: CouplingMode::Lagged,
            ocean_scheme: SplitScheme::FoamSplit,
            tracing: false,
            collect_monthly_sst: false,
            runtime: RuntimeConfig::default(),
        }
    }

    /// A reduced configuration for tests and demos: 24×16 R5 atmosphere,
    /// 32×24×6 ocean, 2 atmosphere ranks.
    pub fn tiny(seed: u64) -> Self {
        FoamConfig {
            atm: AtmConfig::tiny(seed),
            ocean: OceanConfig::tiny(),
            n_atm_ranks: 2,
            dt_couple: 21_600.0,
            coupling: CouplingMode::Lagged,
            ocean_scheme: SplitScheme::FoamSplit,
            tracing: false,
            collect_monthly_sst: false,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Total ranks of the job (atmosphere + one ocean node).
    pub fn n_ranks(&self) -> usize {
        self.n_atm_ranks + 1
    }

    /// Atmosphere steps per coupling interval.
    pub fn atm_steps_per_couple(&self) -> usize {
        (self.dt_couple / self.atm.dt).round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_numbers() {
        let c = FoamConfig::paper(16, 1);
        assert_eq!(c.atm.nlon, 48);
        assert_eq!(c.atm.nlat, 40);
        assert_eq!(c.atm.m_max, 15);
        assert_eq!(c.atm.nlev_phys, 18);
        assert_eq!(c.atm.dt, 1800.0);
        assert_eq!(c.ocean.nx, 128);
        assert_eq!(c.ocean.ny, 128);
        assert_eq!(c.ocean.nz, 16);
        // Ocean called 4 times per simulated day.
        assert_eq!((86_400.0 / c.dt_couple) as usize, 4);
        // 48 atmosphere steps per day (30-minute step).
        assert_eq!(c.atm_steps_per_couple() * 4, 48);
        assert_eq!(c.n_ranks(), 17); // the paper's typical 17-node runs
    }

    #[test]
    fn tiny_config_is_consistent() {
        let c = FoamConfig::tiny(3);
        assert_eq!(c.n_ranks(), 3);
        assert!(c.atm_steps_per_couple() >= 1);
    }
}
