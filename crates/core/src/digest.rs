//! Canonical content digests of run configurations.
//!
//! A long-lived simulation service wants to recognize that two
//! submissions ask for *the same run* — same physics, same grids, same
//! seed, same code — so the second one can be served from a cache (or
//! join the first while it is still executing) instead of costing a
//! full integration. The key is [`FoamConfig::canonical_digest`]: a
//! CRC-64/XZ hash (the same polynomial `foam-ckpt` uses for snapshot
//! integrity) over a **canonical encoding** of every science-relevant
//! configuration field plus the crate version.
//!
//! "Canonical" is the load-bearing word. The encoding emits each field
//! as a `(name, type-tag, raw bytes)` triple and hashes the triples in
//! **sorted field-name order** — never in struct declaration order. A
//! refactor that reorders struct fields (or the hashing code) therefore
//! cannot change any digest, which is exactly the property a persistent
//! on-disk cache needs; [`CanonicalHasher`] exposes the mechanism so
//! callers composing their own keys (a job = config + days + kind)
//! inherit the guarantee. `f64` fields are hashed by their exact
//! IEEE-754 bit patterns, matching the bit-for-bit determinism contract
//! of the rest of the codebase.
//!
//! What is *excluded* is as deliberate as what is included: wall-clock
//! and observability knobs (telemetry, tracing, retry timeouts,
//! checkpoint cadence) cannot change a simulated bit, and injected
//! fault plans are excluded because a supervised run recovers from them
//! bit-identically — the same trajectory, so the same digest.
//!
//! ```
//! use foam::FoamConfig;
//!
//! let a = FoamConfig::tiny(42).canonical_digest();
//! assert_eq!(a, FoamConfig::tiny(42).canonical_digest());
//! assert_ne!(a, FoamConfig::tiny(43).canonical_digest()); // seed differs
//! assert_eq!(a.len(), 16); // 16 lowercase hex digits
//! ```

use foam_ckpt::crc64;

use crate::config::{CouplingMode, FoamConfig};
use foam_ocean::SplitScheme;

/// Incremental builder of a canonical field-order-independent digest.
///
/// Feed named fields in *any* order; [`finish`](CanonicalHasher::finish)
/// sorts the `(name, payload)` entries by name before hashing, so two
/// call sites that list the same fields differently produce the same
/// digest. Field names must be unique per hasher (checked in debug
/// builds); nest sub-structures by hashing them with their own
/// `CanonicalHasher` and feeding the result via
/// [`field_digest`](CanonicalHasher::field_digest).
#[derive(Debug, Default)]
pub struct CanonicalHasher {
    entries: Vec<(&'static str, u8, Vec<u8>)>,
}

// Type tags keep `field_u64("x", 1)` and `field_f64("x", f64::from_bits(1))`
// from colliding.
const TAG_U64: u8 = b'u';
const TAG_I64: u8 = b'i';
const TAG_F64: u8 = b'f';
const TAG_BOOL: u8 = b'b';
const TAG_STR: u8 = b's';
const TAG_F64S: u8 = b'v';
const TAG_DIGEST: u8 = b'd';

impl CanonicalHasher {
    pub fn new() -> Self {
        CanonicalHasher::default()
    }

    fn push(&mut self, name: &'static str, tag: u8, bytes: Vec<u8>) {
        debug_assert!(
            !self.entries.iter().any(|(n, _, _)| *n == name),
            "duplicate canonical field name {name:?}"
        );
        self.entries.push((name, tag, bytes));
    }

    /// An unsigned integer field (counts, seeds, grid sizes).
    pub fn field_u64(&mut self, name: &'static str, x: u64) -> &mut Self {
        self.push(name, TAG_U64, x.to_le_bytes().to_vec());
        self
    }

    /// A signed integer field.
    pub fn field_i64(&mut self, name: &'static str, x: i64) -> &mut Self {
        self.push(name, TAG_I64, x.to_le_bytes().to_vec());
        self
    }

    /// A float field, hashed by its exact IEEE-754 bit pattern.
    pub fn field_f64(&mut self, name: &'static str, x: f64) -> &mut Self {
        self.push(name, TAG_F64, x.to_bits().to_le_bytes().to_vec());
        self
    }

    /// A boolean field.
    pub fn field_bool(&mut self, name: &'static str, x: bool) -> &mut Self {
        self.push(name, TAG_BOOL, vec![u8::from(x)]);
        self
    }

    /// A string field (enum variants, version strings).
    pub fn field_str(&mut self, name: &'static str, x: &str) -> &mut Self {
        self.push(name, TAG_STR, x.as_bytes().to_vec());
        self
    }

    /// An ordered float-sequence field (the order *is* content here —
    /// Rossby radii per interface, say).
    pub fn field_f64s(&mut self, name: &'static str, xs: &[f64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(8 * xs.len());
        for x in xs {
            bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self.push(name, TAG_F64S, bytes);
        self
    }

    /// A nested structure, represented by its own canonical digest.
    pub fn field_digest(&mut self, name: &'static str, digest: &str) -> &mut Self {
        self.push(name, TAG_DIGEST, digest.as_bytes().to_vec());
        self
    }

    /// Sort the fields by name, hash, and render as 16 lowercase hex
    /// digits.
    pub fn finish(mut self) -> String {
        self.entries.sort_by_key(|(name, _, _)| *name);
        let mut buf = Vec::new();
        for (name, tag, bytes) in &self.entries {
            buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.push(*tag);
            buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        format!("{:016x}", crc64(&buf))
    }
}

impl FoamConfig {
    /// Canonical digest of everything that determines this
    /// configuration's simulated bits: the science fields of the
    /// atmosphere, ocean, physics, and coupling configuration, the
    /// seed, the rank layout, and the crate version (an upgraded binary
    /// must never serve stale cached results). 16 lowercase hex digits
    /// of CRC-64/XZ — see the module docs for the canonicalization and
    /// exclusion rules.
    pub fn canonical_digest(&self) -> String {
        let qg = &self.atm.dynamics;
        let mut qg_h = CanonicalHasher::new();
        qg_h.field_u64("nlev", qg.nlev as u64)
            .field_f64s("rossby_radii", &qg.rossby_radii)
            .field_f64("tau_ekman", qg.tau_ekman)
            .field_f64("tau_thermal", qg.tau_thermal)
            .field_f64("nu_hyper", qg.nu_hyper)
            .field_f64("robert", qg.robert);

        let phys = &self.atm.physics;
        let mut rad_h = CanonicalHasher::new();
        rad_h
            .field_f64("k_h2o", phys.rad.k_h2o)
            .field_f64("k_co2", phys.rad.k_co2)
            .field_f64("co2_factor", phys.rad.co2_factor)
            .field_f64("sw_abs_per_pw", phys.rad.sw_abs_per_pw)
            .field_f64("cloud_albedo", phys.rad.cloud_albedo)
            .field_f64("cloud_lw", phys.rad.cloud_lw)
            .field_f64("solar_scale", phys.rad.solar_scale)
            .field_f64("aerosol_od", phys.rad.aerosol_od);
        let mut conv_h = CanonicalHasher::new();
        conv_h
            .field_bool("deep_enabled", phys.conv.deep_enabled)
            .field_f64("cape_threshold", phys.conv.cape_threshold)
            .field_f64("tau_deep", phys.conv.tau_deep)
            .field_u64("max_iters", phys.conv.max_iters as u64)
            .field_f64("evap_eff", phys.conv.evap_eff);
        let mut phys_h = CanonicalHasher::new();
        phys_h
            .field_digest("rad", &rad_h.finish())
            .field_digest("conv", &conv_h.finish())
            .field_f64("rad_refresh", phys.rad_refresh)
            .field_f64("k_pbl_unstable", phys.k_pbl_unstable)
            .field_f64("k_pbl_stable", phys.k_pbl_stable)
            .field_f64("pbl_depth", phys.pbl_depth)
            .field_f64("z_ref", phys.z_ref)
            .field_bool("diurnal", phys.diurnal)
            .field_str("vintage", &format!("{:?}", phys.vintage))
            .field_f64("obliquity_deg", phys.obliquity_deg);

        let mut atm_h = CanonicalHasher::new();
        atm_h
            .field_u64("nlon", self.atm.nlon as u64)
            .field_u64("nlat", self.atm.nlat as u64)
            .field_u64("m_max", self.atm.m_max as u64)
            .field_u64("nlev_phys", self.atm.nlev_phys as u64)
            .field_f64("dt", self.atm.dt)
            .field_digest("dynamics", &qg_h.finish())
            .field_digest("physics", &phys_h.finish())
            .field_f64("tracer_nu4", self.atm.tracer_nu4)
            .field_bool("orography", self.atm.orography)
            .field_u64("seed", self.atm.seed);

        let o = &self.ocean;
        let mut pp_h = CanonicalHasher::new();
        pp_h.field_f64("nu0", o.pp.nu0)
            .field_f64("nu_b", o.pp.nu_b)
            .field_f64("kappa_b", o.pp.kappa_b)
            .field_f64("alpha", o.pp.alpha)
            .field_i64("exponent", i64::from(o.pp.exponent));
        let mut ocean_h = CanonicalHasher::new();
        ocean_h
            .field_u64("nx", o.nx as u64)
            .field_u64("ny", o.ny as u64)
            .field_f64("lat_max_deg", o.lat_max_deg)
            .field_u64("nz", o.nz as u64)
            .field_f64("depth", o.depth)
            .field_f64("stretch", o.stretch)
            .field_f64("dt_int", o.dt_int)
            .field_u64("n_trac", o.n_trac as u64)
            .field_f64("slowdown", o.slowdown)
            .field_f64("nu4", o.nu4)
            .field_f64("kappa_h", o.kappa_h)
            .field_f64("upwind", o.upwind)
            .field_digest("pp", &pp_h.finish())
            .field_f64("polar_lat", o.polar_lat)
            .field_bool("polar_filter_on", o.polar_filter_on);

        let mut h = CanonicalHasher::new();
        h.field_str("crate_version", env!("CARGO_PKG_VERSION"))
            .field_digest("atm", &atm_h.finish())
            .field_digest("ocean", &ocean_h.finish())
            .field_u64("n_atm_ranks", self.n_atm_ranks as u64)
            .field_f64("dt_couple", self.dt_couple)
            .field_str(
                "coupling",
                match self.coupling {
                    CouplingMode::Lagged => "lagged",
                    CouplingMode::Sequential => "sequential",
                },
            )
            .field_str(
                "ocean_scheme",
                match self.ocean_scheme {
                    SplitScheme::FoamSplit => "foam_split",
                    SplitScheme::Unsplit => "unsplit",
                },
            )
            // Streaming statistics change what the run *reports* (the
            // stream section), so the sketch rank is content.
            .field_u64(
                "stream_eof_rank",
                self.stream.as_ref().map(|s| s.eof_rank as u64).unwrap_or(0),
            )
            .field_bool("collect_monthly_sst", self.collect_monthly_sst)
            // Scenario forcings are content: a CO₂ ramp and a control
            // over the same base config are different experiments and
            // must never collide in a result cache.
            .field_digest("forcings", &forcings_digest(&self.forcings));
        h.finish()
    }
}

/// Canonical sub-digest of a forcing bundle: each channel's breakpoint
/// series flattened to `[day₀, value₀, day₁, value₁, …]` (order is
/// content — the series *is* an ordered sequence). Empty channels hash
/// as empty sequences, so the default `Forcings` contributes a fixed
/// digest and legacy digests shift uniformly exactly once.
fn forcings_digest(f: &foam_physics::Forcings) -> String {
    fn flat(points: &[(f64, f64)]) -> Vec<f64> {
        points.iter().flat_map(|&(d, v)| [d, v]).collect()
    }
    let mut h = CanonicalHasher::new();
    h.field_f64s("co2", &flat(f.co2.points()))
        .field_f64s("solar", &flat(f.solar.points()))
        .field_f64s("aerosol", &flat(f.aerosol.points()));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_independent_of_field_feed_order() {
        // The same three fields, fed in every permutation, must hash
        // identically — this is the property that makes struct-field
        // reorders (and hashing-code reorders) digest-preserving.
        let fields: [(&'static str, f64); 3] = [("dt", 1800.0), ("nu", 1.0e16), ("robert", 0.02)];
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let digests: Vec<String> = orders
            .iter()
            .map(|order| {
                let mut h = CanonicalHasher::new();
                for &i in order {
                    h.field_f64(fields[i].0, fields[i].1);
                }
                h.field_u64("seed", 7).field_str("version", "0.1.0");
                h.finish()
            })
            .collect();
        for d in &digests[1..] {
            assert_eq!(d, &digests[0]);
        }
    }

    #[test]
    fn type_tags_and_names_disambiguate() {
        let mut a = CanonicalHasher::new();
        a.field_u64("x", 1);
        let mut b = CanonicalHasher::new();
        b.field_f64("x", f64::from_bits(1));
        assert_ne!(a.finish(), b.finish(), "same bytes, different type");

        let mut c = CanonicalHasher::new();
        c.field_str("ab", "c");
        let mut d = CanonicalHasher::new();
        d.field_str("a", "bc");
        assert_ne!(c.finish(), d.finish(), "name/payload boundary encoded");
    }

    #[test]
    fn config_digest_round_trips_and_discriminates() {
        let base = FoamConfig::tiny(42);
        let d = base.canonical_digest();
        assert_eq!(d, base.clone().canonical_digest(), "clone-stable");
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));

        // Science knobs move the digest...
        assert_ne!(d, FoamConfig::tiny(43).canonical_digest());
        let mut c = base.clone();
        c.ocean.slowdown *= 2.0;
        assert_ne!(d, c.canonical_digest());
        let mut c = base.clone();
        c.coupling = CouplingMode::Sequential;
        assert_ne!(d, c.canonical_digest());
        let mut c = base.clone();
        c.n_atm_ranks += 1;
        assert_ne!(d, c.canonical_digest());
        let mut c = base.clone();
        c.atm.physics.rad.co2_factor = 2.0;
        assert_ne!(d, c.canonical_digest());

        // ...observability and fault-handling knobs do not.
        let mut c = base.clone();
        c.telemetry.enabled = true;
        c.tracing = true;
        c.runtime.sst_retry_timeout_secs = 99.0;
        c.ckpt = crate::CkptConfig::every("/tmp/anywhere", 3);
        assert_eq!(d, c.canonical_digest());
    }

    #[test]
    fn forcing_content_moves_the_digest() {
        use foam_physics::ForcingSeries;
        let base = FoamConfig::tiny(42);
        let d = base.canonical_digest();

        // Two different scenarios over the same base config must get
        // distinct digests (the result-cache collision regression).
        let mut ramp = base.clone();
        ramp.forcings.co2 =
            ForcingSeries::from_points(vec![(0.0, 1.0), (70.0 * 360.0, 2.0)]).unwrap();
        let mut pulse = base.clone();
        pulse.forcings.aerosol =
            ForcingSeries::from_points(vec![(0.0, 0.0), (30.0, 0.15), (400.0, 0.0)]).unwrap();
        let (dr, dp) = (ramp.canonical_digest(), pulse.canonical_digest());
        assert_ne!(dr, d, "CO₂ ramp must move the digest");
        assert_ne!(dp, d, "aerosol pulse must move the digest");
        assert_ne!(dr, dp, "distinct scenarios over one base must not collide");

        // The series *content* is hashed, not just its presence.
        let mut ramp2 = base.clone();
        ramp2.forcings.co2 =
            ForcingSeries::from_points(vec![(0.0, 1.0), (70.0 * 360.0, 4.0)]).unwrap();
        assert_ne!(ramp.canonical_digest(), ramp2.canonical_digest());

        // New static science knobs are content too.
        let mut solar = base.clone();
        solar.atm.physics.rad.solar_scale = 1.01;
        assert_ne!(solar.canonical_digest(), d);
        let mut paleo = base.clone();
        paleo.atm.physics.obliquity_deg = 22.1;
        assert_ne!(paleo.canonical_digest(), d);
    }

    #[test]
    fn presets_have_distinct_digests() {
        let seeds = [
            FoamConfig::tiny(1).canonical_digest(),
            FoamConfig::century(1).canonical_digest(),
            FoamConfig::paper(16, 1).canonical_digest(),
        ];
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        assert_ne!(seeds[0], seeds[2]);
    }
}
