//! Live observation hooks for long-running coupled integrations.
//!
//! A batch run only needs its final [`CoupledOutput`]; a *service*
//! hosting the run needs to watch it: stream per-interval diagnostics
//! to a client, cancel a job whose tenant disconnected, and record
//! recoveries as they happen rather than after the fact. A
//! [`RunObserver`] is that window. The driver invokes it **on the root
//! rank only** (the rank that owns the diagnostics series and the
//! exchange protocol), so implementations see one coherent stream of
//! events in simulated-time order, never racing callbacks from sibling
//! ranks.
//!
//! Observation must not perturb the simulated bits: the hooks receive
//! read-only snapshots of values the root already computed, and a
//! cancellation via [`RunObserver::should_stop`] reuses the abort
//! broadcast of the exchange protocol — every rank (and the ocean)
//! tears down cleanly, committed checkpoints stay on disk, and a later
//! resume continues the identical trajectory.
//!
//! [`CoupledOutput`]: crate::CoupledOutput

use crate::supervisor::RecoveryEvent;

/// One completed coupling interval, as seen by the root rank right
/// after it recorded the interval's diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Coupling intervals completed so far (1-based; equals
    /// `n_intervals` on the final event). After a resume this starts
    /// from the snapshot's interval, not from 1.
    pub interval: usize,
    /// Total coupling intervals in the run.
    pub n_intervals: usize,
    /// Simulated days completed (`interval * dt_couple / 86 400`).
    pub day: f64,
    /// Area-weighted mean SST over sea points (°C) at the end of this
    /// interval — the newest value of `mean_sst_series`.
    pub mean_sst: f64,
}

/// Callbacks a hosted run delivers from its root rank. All methods
/// default to no-ops so implementations override only what they watch.
///
/// Implementations must be `Sync`: the observer reference is captured
/// by every rank thread (though only the root calls it).
pub trait RunObserver: Sync {
    /// A coupling interval finished and its diagnostics were recorded.
    fn on_interval(&self, _ev: &ProgressEvent) {}

    /// Polled by the root once per coupling interval, before the
    /// interval's ocean exchange. Returning `true` aborts the run
    /// cleanly: the root broadcasts the abort to the other ranks,
    /// shuts the ocean down, and the run returns
    /// [`CoupledError::Aborted`](crate::CoupledError::Aborted).
    /// Checkpoints already committed remain on disk, so a cancelled
    /// job is resumable.
    fn should_stop(&self) -> bool {
        false
    }

    /// The supervisor rolled back and resumed after a fault (only
    /// delivered by [`supervise_run_resumable`] and friends, which
    /// host the recovery loop).
    ///
    /// [`supervise_run_resumable`]: crate::supervisor::supervise_run_resumable
    fn on_recovery(&self, _ev: &RecoveryEvent) {}
}

/// The do-nothing observer; useful as a default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}
