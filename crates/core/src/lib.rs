//! `foam` — the Fast Ocean-Atmosphere Model, reproduced in Rust.
//!
//! This crate is the paper's deliverable: a *coupled* ocean–atmosphere
//! climate model engineered for throughput, assembled from the substrate
//! crates:
//!
//! * `foam-atm` — the R15 spectral atmosphere (latitude-decomposed SPMD),
//! * `foam-ocean` — the 128×128×16 Mercator ocean with FOAM's slowed,
//!   mode-split, subcycled time stepping,
//! * `foam-coupler` — overlap-grid fluxes, land surface, rivers, sea ice,
//! * `foam-mpi` — the message-passing runtime (one thread per "node").
//!
//! [`run_coupled`] launches the paper's production configuration: N
//! atmosphere ranks (the coupler co-located on them, as in the paper) and
//! one ocean rank, with **lagged coupling**: the ocean integrates a 6-hour
//! interval concurrently with the atmosphere's next interval, so one
//! ocean node overlaps its work with 16 atmosphere nodes — the structure
//! visible in the paper's Figure 2. The [`baseline_config`] driver variant integrates
//! the identical physics with the two FOAM advantages removed (unsplit
//! gravity-wave-limited ocean, sequential blocking coupling) — the
//! NCAR-CSM-like comparator of experiment T2.
//!
//! For unattended long runs, [`supervisor::supervise_run`] wraps the
//! driver in a self-healing loop: typed fault classification (rank
//! death, exchange timeout, checkpoint-store I/O, physics sentinel),
//! rollback to the newest readable snapshot, and resume under a bounded
//! recovery budget — with a deterministic, telemetry-embedded record of
//! every recovery taken.
//!
//! # Quickstart
//!
//! ```no_run
//! use foam::{FoamConfig, run_coupled};
//!
//! let cfg = FoamConfig::tiny(42); // reduced resolution for a demo
//! let out = run_coupled(&cfg, 5.0); // five simulated days
//! println!(
//!     "simulated {:.1} days at {:.0}× real time; mean SST {:.2} °C",
//!     out.sim_seconds / 86_400.0,
//!     out.model_speedup,
//!     out.final_mean_sst().unwrap_or(f64::NAN)
//! );
//! ```

pub mod checkpoint;
mod config;
pub mod diagnostics;
pub mod digest;
mod driver;
pub mod history;
pub mod observer;
pub mod stream;
pub mod supervisor;

pub use checkpoint::GlobalSnapshot;
pub use config::{
    CkptConfig, ConfigError, CouplingMode, FoamConfig, PhysicsFault, PhysicsFaultKind, RankKill,
    RuntimeConfig, SentinelConfig, StreamStatsConfig, TelemetryConfig,
};
pub use digest::CanonicalHasher;
pub use driver::{
    baseline_config, run_coupled, try_resume_coupled, try_resume_coupled_observed, try_run_coupled,
    try_run_coupled_observed, CoupledError, CoupledOutput,
};
pub use foam_ckpt::{
    CheckpointStore, CkptError, FaultyStore, Snapshot, StoreFault, StoreFaultKind, StoreFaultPlan,
};
pub use history::{HistoryReader, HistoryWriter};
pub use observer::{NullObserver, ProgressEvent, RunObserver};
pub use stream::{sea_area_weights, DriverStream};
pub use supervisor::{
    supervise_run, supervise_run_resumable, RecoveryAction, RecoveryEvent, RecoveryReport,
    RunFault, SupervisedOutput, SupervisorConfig, SupervisorError, SupervisorErrorKind,
};

pub use foam_atm::{AtmConfig, AtmModel};
pub use foam_coupler::Coupler;
pub use foam_grid::{Field2, World};
pub use foam_mpi::{Backoff, CommLint, CommStats, FaultPlan, RankTrace, TraceSummary, Universe};
pub use foam_ocean::{OceanConfig, OceanModel, SplitScheme};
pub use foam_telemetry::{TelemetryRegistry, TelemetryReport};
