//! A minimal blocking HTTP/1.1 client for the job API.
//!
//! The server speaks a deliberately small dialect (fixed-length JSON
//! or chunked NDJSON, `Connection: close`), so its counterpart client
//! is equally small: one request per connection, read to close,
//! de-chunk if needed. This is what the bench harness, the integration
//! tests, and the CI smoke job talk to the server with — no external
//! HTTP stack required.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One completed exchange: status code plus the (de-chunked) body.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
}

impl Response {
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body's non-empty lines — the natural shape of an NDJSON
    /// progress stream.
    pub fn lines(&self) -> Vec<String> {
        self.text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    }
}

/// Perform one request against `addr` (e.g. `"127.0.0.1:7341"`).
pub fn request(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "malformed chunk size"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else {
        // `Connection: close` responses end at EOF.
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { status, body })
}

pub fn get(addr: &str, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

pub fn post(addr: &str, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.as_bytes()))
}
