//! A deliberately small HTTP/1.1 layer over `TcpStream`.
//!
//! No async runtime is vendored, and none is needed: a simulation
//! service is bounded by the model, not by connection volume, so
//! blocking I/O with one OS thread per connection is the right tool —
//! the same thread-as-rank philosophy `foam-mpi` uses. This module
//! implements exactly the slice of HTTP/1.1 the job API requires:
//! request-line + headers + `Content-Length` bodies on the way in;
//! fixed-length JSON responses and `Transfer-Encoding: chunked` NDJSON
//! streams on the way out. Every response closes the connection
//! (`Connection: close`), which keeps the state machine trivial and is
//! cheap at job-queue request rates.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use foam_telemetry::json::Value;

/// Upper bound on request bodies (a job spec is a few hundred bytes;
/// a megabyte is paranoia headroom, not a real limit).
const MAX_BODY: usize = 1 << 20;

/// One parsed request: method, path (with any `?query` dropped), body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Read and parse one request from the stream. Malformed requests
/// surface as `Err`; the caller answers 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    }
}

/// Write a complete JSON response and flush. The body bytes are passed
/// through verbatim — important for the result cache, whose contract is
/// *byte-identical* replies.
pub fn respond_bytes(stream: &mut TcpStream, code: u16, body: &[u8]) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Write a JSON value as a pretty-printed response.
pub fn respond_json(stream: &mut TcpStream, code: u16, value: &Value) -> io::Result<()> {
    let mut body = value.to_string_pretty();
    body.push('\n');
    respond_bytes(stream, code, body.as_bytes())
}

/// Write a JSON error envelope: `{"error": "..."}`.
pub fn respond_error(stream: &mut TcpStream, code: u16, message: &str) -> io::Result<()> {
    respond_json(
        stream,
        code,
        &Value::object([("error".to_string(), Value::from(message))]),
    )
}

/// A `Transfer-Encoding: chunked` NDJSON stream: one JSON object per
/// line, each flushed as its own chunk so clients see progress live.
pub struct NdjsonStream<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> NdjsonStream<'a> {
    /// Write the response head and hand back the line writer.
    pub fn begin(stream: &'a mut TcpStream) -> io::Result<Self> {
        stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        Ok(NdjsonStream { stream })
    }

    /// Send one NDJSON line (without its trailing newline) as a chunk.
    pub fn line(&mut self, line: &str) -> io::Result<()> {
        let payload = format!("{line}\n");
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the chunked body.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
