//! The content-addressed result cache.
//!
//! One file per digest under `<root>/cache/`, holding the report's
//! exact serialized bytes. Byte-exactness is the point: FOAM's reports
//! are deterministic down to the IEEE-754 bit (the ensemble and
//! supervisor test suites prove it), so the cache can hand every
//! future requester *the same bytes* the first run produced, and an
//! integration test can assert `cached == fresh` with `==`, not an
//! epsilon.
//!
//! Writes go through the same tmp-then-rename discipline as
//! `foam-ckpt` snapshot commits: a reader never observes a torn file,
//! and a crash mid-write leaves only a `*.tmp` that the next store
//! overwrites harmlessly.
//!
//! # Eviction
//!
//! An optional byte budget bounds the cache. Every access (`get` or
//! `put`) stamps the digest with a monotonic sequence number persisted
//! in a `<digest>.at` sidecar; when a `put` pushes the total report
//! bytes over the budget, the least-recently-stamped entries are
//! evicted until the cache fits again. The sequence survives restarts
//! (it resumes from the largest stamp on disk), so recency is a
//! property of the cache directory, not of one server incarnation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

pub struct ResultCache {
    dir: PathBuf,
    /// Byte budget over the stored report bytes; `None` = unbounded.
    budget: Option<u64>,
    /// Monotonic access clock; the next stamp to hand out.
    clock: AtomicU64,
}

impl ResultCache {
    /// Open (creating if needed) the cache directory under `root`,
    /// with no size bound.
    pub fn open(root: &Path) -> io::Result<ResultCache> {
        ResultCache::open_with_budget(root, None)
    }

    /// Open the cache with an optional LRU byte budget over the stored
    /// report bytes (sidecar stamps are not counted; they are tens of
    /// bytes per entry).
    pub fn open_with_budget(root: &Path, budget: Option<u64>) -> io::Result<ResultCache> {
        let dir = root.join("cache");
        fs::create_dir_all(&dir)?;
        // Resume the access clock past every stamp already on disk.
        let mut max_stamp = 0u64;
        for e in fs::read_dir(&dir)?.flatten() {
            if let Some(name) = e.file_name().to_str() {
                if let Some(digest) = name.strip_suffix(".at") {
                    max_stamp = max_stamp.max(read_stamp(&dir, digest));
                }
            }
        }
        Ok(ResultCache {
            dir,
            budget,
            clock: AtomicU64::new(max_stamp + 1),
        })
    }

    fn path(&self, digest: &str) -> PathBuf {
        // Digests are 16 hex chars; anything else could not have come
        // from us and must not touch the filesystem.
        debug_assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        self.dir.join(format!("{digest}.json"))
    }

    fn stamp_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.at"))
    }

    /// Record an access: bump the clock and persist the stamp.
    fn touch(&self, digest: &str) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let _ = fs::write(self.stamp_path(digest), stamp.to_string());
    }

    /// The cached report bytes, if this digest has completed before.
    /// Refreshes the entry's recency.
    pub fn get(&self, digest: &str) -> Option<Vec<u8>> {
        let bytes = fs::read(self.path(digest)).ok()?;
        self.touch(digest);
        Some(bytes)
    }

    pub fn contains(&self, digest: &str) -> bool {
        self.path(digest).is_file()
    }

    /// Atomically store the report for `digest`, then evict the
    /// least-recently-used entries if the byte budget is exceeded. The
    /// entry just stored is the most recent, so a single oversized
    /// report can only evict *others*, never break the cache.
    pub fn put(&self, digest: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{digest}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.path(digest))?;
        self.touch(digest);
        self.evict_to_budget();
        Ok(())
    }

    /// All cached digests, sorted (restart uses this to list completed
    /// jobs without any in-memory state surviving).
    pub fn digests(&self) -> Vec<String> {
        let mut out: Vec<String> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect();
        out.sort();
        out
    }

    /// Total stored report bytes (the quantity the budget bounds).
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.bytes).sum()
    }

    fn entries(&self) -> Vec<EntryMeta> {
        self.digests()
            .into_iter()
            .map(|digest| {
                let bytes = fs::metadata(self.path(&digest))
                    .map(|m| m.len())
                    .unwrap_or(0);
                let stamp = read_stamp(&self.dir, &digest);
                EntryMeta {
                    digest,
                    bytes,
                    stamp,
                }
            })
            .collect()
    }

    fn evict_to_budget(&self) {
        let Some(budget) = self.budget else { return };
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        if total <= budget {
            return;
        }
        // Oldest stamp first; unstamped entries (foreign files) first
        // of all. Ties break on digest so eviction is deterministic.
        entries.sort_by(|a, b| a.stamp.cmp(&b.stamp).then(a.digest.cmp(&b.digest)));
        // Never evict the newest entry (the one just stored): a report
        // larger than the whole budget must still be servable.
        for e in &entries[..entries.len() - 1] {
            if total <= budget {
                break;
            }
            let _ = fs::remove_file(self.path(&e.digest));
            let _ = fs::remove_file(self.stamp_path(&e.digest));
            total = total.saturating_sub(e.bytes);
        }
    }
}

struct EntryMeta {
    digest: String,
    bytes: u64,
    stamp: u64,
}

fn read_stamp(dir: &Path, digest: &str) -> u64 {
    fs::read_to_string(dir.join(format!("{digest}.at")))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("foam-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_exact_bytes() {
        let dir = tmp_dir("rt");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get("00ff00ff00ff00ff").is_none());
        let payload = b"{\"x\": 0.30000000000000004}\n".to_vec();
        cache.put("00ff00ff00ff00ff", &payload).unwrap();
        assert_eq!(cache.get("00ff00ff00ff00ff").unwrap(), payload);
        assert!(cache.contains("00ff00ff00ff00ff"));
        assert_eq!(cache.digests(), vec!["00ff00ff00ff00ff".to_string()]);
        // Reopening sees the same content (it is all on disk).
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.get("00ff00ff00ff00ff").unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let dir = tmp_dir("lru");
        // Budget for ~2.5 100-byte entries.
        let cache = ResultCache::open_with_budget(&dir, Some(250)).unwrap();
        let blob = vec![b'x'; 100];
        cache.put("aaaaaaaaaaaaaaaa", &blob).unwrap();
        cache.put("bbbbbbbbbbbbbbbb", &blob).unwrap();
        // Refresh `a`: it is now more recent than `b`.
        assert!(cache.get("aaaaaaaaaaaaaaaa").is_some());
        // Third entry busts the budget: the LRU entry (`b`) goes.
        cache.put("cccccccccccccccc", &blob).unwrap();
        assert!(cache.contains("aaaaaaaaaaaaaaaa"), "recently read survives");
        assert!(!cache.contains("bbbbbbbbbbbbbbbb"), "LRU entry evicted");
        assert!(cache.contains("cccccccccccccccc"), "fresh entry survives");
        assert!(cache.total_bytes() <= 250);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recency_survives_restart_and_oversize_put_keeps_itself() {
        let dir = tmp_dir("restart");
        {
            let cache = ResultCache::open_with_budget(&dir, Some(250)).unwrap();
            cache.put("aaaaaaaaaaaaaaaa", &[b'x'; 100]).unwrap();
            cache.put("bbbbbbbbbbbbbbbb", &[b'x'; 100]).unwrap();
            assert!(cache.get("aaaaaaaaaaaaaaaa").is_some());
        }
        // A new incarnation resumes the clock: `b` is still the LRU.
        let cache = ResultCache::open_with_budget(&dir, Some(250)).unwrap();
        cache.put("cccccccccccccccc", &[b'x'; 100]).unwrap();
        assert!(cache.contains("aaaaaaaaaaaaaaaa"));
        assert!(!cache.contains("bbbbbbbbbbbbbbbb"));
        // A single report larger than the whole budget evicts everything
        // else but remains cached itself.
        cache.put("dddddddddddddddd", &[b'x'; 400]).unwrap();
        assert!(cache.contains("dddddddddddddddd"));
        assert_eq!(cache.digests(), vec!["dddddddddddddddd".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let dir = tmp_dir("unbounded");
        let cache = ResultCache::open(&dir).unwrap();
        for i in 0..8 {
            cache.put(&format!("{i:016x}"), &[b'x'; 1000]).unwrap();
        }
        assert_eq!(cache.digests().len(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
