//! The content-addressed result cache.
//!
//! One file per digest under `<root>/cache/`, holding the report's
//! exact serialized bytes. Byte-exactness is the point: FOAM's reports
//! are deterministic down to the IEEE-754 bit (the ensemble and
//! supervisor test suites prove it), so the cache can hand every
//! future requester *the same bytes* the first run produced, and an
//! integration test can assert `cached == fresh` with `==`, not an
//! epsilon.
//!
//! Writes go through the same tmp-then-rename discipline as
//! `foam-ckpt` snapshot commits: a reader never observes a torn file,
//! and a crash mid-write leaves only a `*.tmp` that the next store
//! overwrites harmlessly.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) the cache directory under `root`.
    pub fn open(root: &Path) -> io::Result<ResultCache> {
        let dir = root.join("cache");
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    fn path(&self, digest: &str) -> PathBuf {
        // Digests are 16 hex chars; anything else could not have come
        // from us and must not touch the filesystem.
        debug_assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        self.dir.join(format!("{digest}.json"))
    }

    /// The cached report bytes, if this digest has completed before.
    pub fn get(&self, digest: &str) -> Option<Vec<u8>> {
        fs::read(self.path(digest)).ok()
    }

    pub fn contains(&self, digest: &str) -> bool {
        self.path(digest).is_file()
    }

    /// Atomically store the report for `digest`.
    pub fn put(&self, digest: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{digest}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.path(digest))
    }

    /// All cached digests, sorted (restart uses this to list completed
    /// jobs without any in-memory state surviving).
    pub fn digests(&self) -> Vec<String> {
        let mut out: Vec<String> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trips_exact_bytes() {
        let dir = std::env::temp_dir().join(format!("foam-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get("00ff00ff00ff00ff").is_none());
        let payload = b"{\"x\": 0.30000000000000004}\n".to_vec();
        cache.put("00ff00ff00ff00ff", &payload).unwrap();
        assert_eq!(cache.get("00ff00ff00ff00ff").unwrap(), payload);
        assert!(cache.contains("00ff00ff00ff00ff"));
        assert_eq!(cache.digests(), vec!["00ff00ff00ff00ff".to_string()]);
        // Reopening sees the same content (it is all on disk).
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.get("00ff00ff00ff00ff").unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }
}
