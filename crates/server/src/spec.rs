//! Job specifications: what a client submits, and how it becomes both
//! a [`FoamConfig`] and a content-address.
//!
//! A spec deliberately exposes *presets + knobs* rather than the full
//! configuration surface: the service vocabulary is "a `tiny` run,
//! seed 42, 4 simulated days", which keeps the digest space clean and
//! the HTTP API stable. Two axes are kept strictly apart:
//!
//! * **Content** — preset, seed, days, rank/member counts: everything
//!   that determines the simulated bits. These feed the canonical
//!   digest (via [`FoamConfig::canonical_digest`], which also folds in
//!   the crate version), which is the job id *and* the cache key.
//! * **Placement** — tenant, priority, checkpoint cadence: who is
//!   asking and how the service schedules and protects the work. These
//!   never touch the digest, so the same run submitted by two tenants
//!   at different priorities is recognized as the same content and
//!   computed once.

use foam::{CanonicalHasher, FoamConfig};
use foam_ensemble::EnsembleSpec;
use foam_telemetry::json::{parse, Value};

/// What kind of computation a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One supervised coupled run.
    Run,
    /// A perturbed-initial-condition seed sweep, aggregated into the
    /// deterministic `foam-ensemble/1` report.
    Ensemble,
}

impl JobKind {
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Ensemble => "ensemble",
        }
    }
}

/// A parsed, validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub kind: JobKind,
    /// Configuration preset: `tiny`, `century`, or `paper`.
    pub preset: String,
    pub seed: u64,
    pub days: f64,
    /// Atmosphere ranks for the `paper` preset (ignored otherwise —
    /// `tiny`/`century` fix their own decomposition).
    pub ranks: usize,
    /// Ensemble members (`kind == Ensemble` only).
    pub members: usize,
    /// Ensemble worker threads (placement, not content).
    pub workers: usize,
    /// Who submitted (fair-share bucket). Defaults to `"anonymous"`.
    pub tenant: String,
    /// Dispatch priority within the tenant (higher first).
    pub priority: i32,
    /// Checkpoint cadence in coupling intervals.
    pub ckpt_interval: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid job spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn get_u64(obj: &Value, key: &str, default: u64) -> Result<u64, SpecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .ok_or_else(|| SpecError(format!("{key} must be a non-negative integer")))?;
            Ok(n as u64)
        }
    }
}

impl JobSpec {
    /// Parse a submission body. Unknown keys are rejected so typos
    /// (`"dayz": 30`) fail loudly instead of running the default.
    pub fn parse(body: &str) -> Result<JobSpec, SpecError> {
        let v = parse(body).map_err(|e| SpecError(format!("bad JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| SpecError("body must be a JSON object".to_string()))?;
        const KNOWN: [&str; 10] = [
            "kind",
            "preset",
            "seed",
            "days",
            "ranks",
            "members",
            "workers",
            "tenant",
            "priority",
            "ckpt_interval",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(SpecError(format!("unknown key {key:?}")));
            }
        }
        let kind = match v.get("kind").and_then(Value::as_str).unwrap_or("run") {
            "run" => JobKind::Run,
            "ensemble" => JobKind::Ensemble,
            other => return Err(SpecError(format!("unknown kind {other:?}"))),
        };
        let preset = v
            .get("preset")
            .and_then(Value::as_str)
            .unwrap_or("tiny")
            .to_string();
        if !matches!(preset.as_str(), "tiny" | "century" | "paper") {
            return Err(SpecError(format!("unknown preset {preset:?}")));
        }
        let days = v.get("days").and_then(Value::as_f64).unwrap_or(1.0);
        if !(days > 0.0 && days.is_finite()) {
            return Err(SpecError("days must be positive and finite".to_string()));
        }
        let tenant = v
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or("anonymous")
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(SpecError("tenant must be 1..=64 characters".to_string()));
        }
        let priority = v
            .get("priority")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            .clamp(-1_000.0, 1_000.0) as i32;
        let spec = JobSpec {
            kind,
            preset,
            seed: get_u64(&v, "seed", 42)?,
            days,
            ranks: get_u64(&v, "ranks", 4)?.clamp(1, 64) as usize,
            members: get_u64(&v, "members", 2)?.clamp(1, 256) as usize,
            workers: get_u64(&v, "workers", 2)?.clamp(1, 64) as usize,
            tenant,
            priority,
            ckpt_interval: get_u64(&v, "ckpt_interval", 4)?.max(1) as usize,
        };
        Ok(spec)
    }

    /// The base model configuration this spec names (checkpoint and
    /// telemetry routing are the executor's business, not the spec's).
    pub fn config(&self) -> FoamConfig {
        match self.preset.as_str() {
            "century" => FoamConfig::century(self.seed),
            "paper" => FoamConfig::paper(self.ranks, self.seed),
            _ => FoamConfig::tiny(self.seed),
        }
    }

    /// The content-address: job id and cache key in one. Folds the
    /// model config's canonical digest (which includes seed and crate
    /// version) with the job-shape fields; placement fields (tenant,
    /// priority, workers, checkpoint cadence) are deliberately
    /// excluded — they cannot change a simulated bit.
    pub fn digest(&self) -> String {
        let mut h = CanonicalHasher::new();
        h.field_str("kind", self.kind.as_str())
            .field_digest("config", &self.config().canonical_digest())
            .field_f64("days", self.days)
            .field_u64(
                "members",
                if self.kind == JobKind::Ensemble {
                    self.members as u64
                } else {
                    0
                },
            );
        h.finish()
    }

    /// The ensemble expansion of this spec (`kind == Ensemble`).
    pub fn ensemble(&self) -> EnsembleSpec {
        let mut spec = EnsembleSpec::seed_sweep(self.config(), self.days, self.members);
        spec.workers = self.workers;
        spec.ckpt_interval = self.ckpt_interval;
        spec
    }

    /// Canonical JSON form — what `spec.json` stores for restart
    /// recovery and what job listings embed.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("kind".to_string(), Value::from(self.kind.as_str())),
            ("preset".to_string(), Value::from(self.preset.as_str())),
            ("seed".to_string(), Value::from(self.seed)),
            ("days".to_string(), Value::from(self.days)),
            ("ranks".to_string(), Value::from(self.ranks)),
            ("members".to_string(), Value::from(self.members)),
            ("workers".to_string(), Value::from(self.workers)),
            ("tenant".to_string(), Value::from(self.tenant.as_str())),
            (
                "priority".to_string(),
                Value::from(f64::from(self.priority)),
            ),
            ("ckpt_interval".to_string(), Value::from(self.ckpt_interval)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_round_trip() {
        let spec = JobSpec::parse(r#"{"preset":"tiny","seed":7,"days":2}"#).unwrap();
        assert_eq!(spec.kind, JobKind::Run);
        assert_eq!(spec.tenant, "anonymous");
        let rt = JobSpec::parse(&spec.to_value().to_string_pretty()).unwrap();
        assert_eq!(rt.digest(), spec.digest());
        assert_eq!(rt.tenant, spec.tenant);
    }

    #[test]
    fn placement_fields_do_not_move_the_digest() {
        let a = JobSpec::parse(r#"{"seed":7,"days":2}"#).unwrap();
        let b = JobSpec::parse(
            r#"{"seed":7,"days":2,"tenant":"alice","priority":9,"workers":8,"ckpt_interval":2}"#,
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
        // Content fields do.
        let c = JobSpec::parse(r#"{"seed":8,"days":2}"#).unwrap();
        let d = JobSpec::parse(r#"{"seed":7,"days":3}"#).unwrap();
        let e = JobSpec::parse(r#"{"seed":7,"days":2,"kind":"ensemble"}"#).unwrap();
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(JobSpec::parse(r#"{"dayz":30}"#).is_err());
        assert!(JobSpec::parse(r#"{"days":0}"#).is_err());
        assert!(JobSpec::parse(r#"{"days":-1}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"sorcery"}"#).is_err());
        assert!(JobSpec::parse(r#"{"preset":"huge"}"#).is_err());
        assert!(JobSpec::parse(r#"{"seed":1.5}"#).is_err());
        assert!(JobSpec::parse("[]").is_err());
        assert!(JobSpec::parse("not json").is_err());
    }
}
