//! Job specifications: what a client submits, and how it becomes both
//! a [`FoamConfig`] and a content-address.
//!
//! A spec deliberately exposes *presets + knobs* rather than the full
//! configuration surface: the service vocabulary is "a `tiny` run,
//! seed 42, 4 simulated days", which keeps the digest space clean and
//! the HTTP API stable. Two axes are kept strictly apart:
//!
//! * **Content** — preset, seed, days, rank/member counts: everything
//!   that determines the simulated bits. These feed the canonical
//!   digest (via [`FoamConfig::canonical_digest`], which also folds in
//!   the crate version), which is the job id *and* the cache key.
//! * **Placement** — tenant, priority, checkpoint cadence: who is
//!   asking and how the service schedules and protects the work. These
//!   never touch the digest, so the same run submitted by two tenants
//!   at different priorities is recognized as the same content and
//!   computed once.

use foam::{CanonicalHasher, FoamConfig};
use foam_ensemble::EnsembleSpec;
use foam_scenario::Scenario;
use foam_telemetry::json::{parse, Value};

/// What kind of computation a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One supervised coupled run.
    Run,
    /// A perturbed-initial-condition seed sweep, aggregated into the
    /// deterministic `foam-ensemble/1` report.
    Ensemble,
}

impl JobKind {
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Ensemble => "ensemble",
        }
    }
}

/// A parsed, validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub kind: JobKind,
    /// Configuration preset: `tiny`, `century`, or `paper`.
    pub preset: String,
    pub seed: u64,
    pub days: f64,
    /// Atmosphere ranks for the `paper` preset (ignored otherwise —
    /// `tiny`/`century` fix their own decomposition).
    pub ranks: usize,
    /// Ensemble members (`kind == Ensemble` only).
    pub members: usize,
    /// Ensemble worker threads (placement, not content).
    pub workers: usize,
    /// Who submitted (fair-share bucket). Defaults to `"anonymous"`.
    pub tenant: String,
    /// Dispatch priority within the tenant (higher first).
    pub priority: i32,
    /// Checkpoint cadence in coupling intervals.
    pub ckpt_interval: usize,
    /// The scenario this job was submitted as, if any. When present,
    /// `kind`, `preset`, `seed`, `days`, and `members` are *derived*
    /// from the scenario (a sweep becomes an ensemble) and may not be
    /// given alongside it.
    pub scenario: Option<ScenarioJob>,
}

/// A scenario-file submission: the raw source (persisted in
/// `spec.json` so restart recovery can re-derive everything) plus its
/// parsed, validated form.
#[derive(Debug, Clone)]
pub struct ScenarioJob {
    pub src: String,
    pub scenario: Scenario,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid job spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn get_u64(obj: &Value, key: &str, default: u64) -> Result<u64, SpecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .ok_or_else(|| SpecError(format!("{key} must be a non-negative integer")))?;
            Ok(n as u64)
        }
    }
}

impl JobSpec {
    /// Parse a submission body. Unknown keys are rejected so typos
    /// (`"dayz": 30`) fail loudly instead of running the default.
    pub fn parse(body: &str) -> Result<JobSpec, SpecError> {
        let v = parse(body).map_err(|e| SpecError(format!("bad JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| SpecError("body must be a JSON object".to_string()))?;
        const KNOWN: [&str; 11] = [
            "kind",
            "preset",
            "seed",
            "days",
            "ranks",
            "members",
            "workers",
            "tenant",
            "priority",
            "ckpt_interval",
            "scenario",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(SpecError(format!("unknown key {key:?}")));
            }
        }
        if let Some(sv) = v.get("scenario") {
            let src = sv
                .as_str()
                .ok_or_else(|| SpecError("scenario must be a string".to_string()))?;
            // Everything content-shaped is the scenario's to decide.
            for key in ["kind", "preset", "seed", "days", "ranks", "members"] {
                if obj.contains_key(key) {
                    return Err(SpecError(format!(
                        "{key:?} cannot be given alongside \"scenario\" (the scenario defines it)"
                    )));
                }
            }
            return Self::parse_scenario_job(src, &v);
        }
        let kind = match v.get("kind").and_then(Value::as_str).unwrap_or("run") {
            "run" => JobKind::Run,
            "ensemble" => JobKind::Ensemble,
            other => return Err(SpecError(format!("unknown kind {other:?}"))),
        };
        let preset = v
            .get("preset")
            .and_then(Value::as_str)
            .unwrap_or("tiny")
            .to_string();
        if !matches!(preset.as_str(), "tiny" | "century" | "paper") {
            return Err(SpecError(format!("unknown preset {preset:?}")));
        }
        let days = v.get("days").and_then(Value::as_f64).unwrap_or(1.0);
        if !(days > 0.0 && days.is_finite()) {
            return Err(SpecError("days must be positive and finite".to_string()));
        }
        let tenant = v
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or("anonymous")
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(SpecError("tenant must be 1..=64 characters".to_string()));
        }
        let priority = v
            .get("priority")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            .clamp(-1_000.0, 1_000.0) as i32;
        let spec = JobSpec {
            kind,
            preset,
            seed: get_u64(&v, "seed", 42)?,
            days,
            ranks: get_u64(&v, "ranks", 4)?.clamp(1, 64) as usize,
            members: get_u64(&v, "members", 2)?.clamp(1, 256) as usize,
            workers: get_u64(&v, "workers", 2)?.clamp(1, 64) as usize,
            tenant,
            priority,
            ckpt_interval: get_u64(&v, "ckpt_interval", 4)?.max(1) as usize,
            scenario: None,
        };
        Ok(spec)
    }

    /// Build a spec from a scenario-file submission: parse + validate
    /// the scenario (spans and all — the diagnostic text goes straight
    /// back to the client), then derive the content fields from it.
    /// Placement fields still come from the surrounding JSON.
    fn parse_scenario_job(src: &str, v: &Value) -> Result<JobSpec, SpecError> {
        let scenario = Scenario::parse(src).map_err(|e| SpecError(format!("scenario: {e}")))?;
        // Validate the lowering now so config()/ensemble() cannot fail
        // later on the executor thread.
        scenario
            .config()
            .map_err(|e| SpecError(format!("scenario: {e}")))?;
        let lowered = scenario
            .ensemble()
            .map_err(|e| SpecError(format!("scenario: {e}")))?;
        let tenant = v
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or("anonymous")
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(SpecError("tenant must be 1..=64 characters".to_string()));
        }
        let priority = v
            .get("priority")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            .clamp(-1_000.0, 1_000.0) as i32;
        let (kind, members, workers) = match (&scenario.sweep, lowered) {
            (Some(sweep), Some(spec)) => (
                JobKind::Ensemble,
                spec.members.len(),
                get_u64(v, "workers", sweep.workers as u64)?.clamp(1, 64) as usize,
            ),
            _ => (
                JobKind::Run,
                1,
                get_u64(v, "workers", 2)?.clamp(1, 64) as usize,
            ),
        };
        Ok(JobSpec {
            kind,
            preset: scenario.preset.clone(),
            seed: scenario.seed,
            days: scenario.days,
            ranks: 4,
            members,
            workers,
            tenant,
            priority,
            ckpt_interval: get_u64(v, "ckpt_interval", 4)?.max(1) as usize,
            scenario: Some(ScenarioJob {
                src: src.to_string(),
                scenario,
            }),
        })
    }

    /// The base model configuration this spec names (checkpoint and
    /// telemetry routing are the executor's business, not the spec's).
    pub fn config(&self) -> FoamConfig {
        if let Some(sj) = &self.scenario {
            return sj
                .scenario
                .config()
                .expect("scenario lowering validated at parse");
        }
        match self.preset.as_str() {
            "century" => FoamConfig::century(self.seed),
            "paper" => FoamConfig::paper(self.ranks, self.seed),
            _ => FoamConfig::tiny(self.seed),
        }
    }

    /// The content-address: job id and cache key in one. Folds the
    /// model config's canonical digest (which includes seed and crate
    /// version) with the job-shape fields; placement fields (tenant,
    /// priority, workers, checkpoint cadence) are deliberately
    /// excluded — they cannot change a simulated bit.
    pub fn digest(&self) -> String {
        let mut h = CanonicalHasher::new();
        h.field_str("kind", self.kind.as_str())
            .field_digest("config", &self.config().canonical_digest())
            .field_f64("days", self.days)
            .field_u64(
                "members",
                if self.kind == JobKind::Ensemble {
                    self.members as u64
                } else {
                    0
                },
            );
        if let Some(sj) = &self.scenario {
            // The config digest already folds the scenario's forcings
            // and statics; the scenario content digest adds what lives
            // outside the config — the sweep axis and values.
            h.field_digest(
                "scenario",
                &sj.scenario
                    .content_digest()
                    .expect("scenario lowering validated at parse"),
            );
        }
        h.finish()
    }

    /// The ensemble expansion of this spec (`kind == Ensemble`): the
    /// scenario's sweep when this is a scenario job, a seed sweep
    /// otherwise.
    pub fn ensemble(&self) -> EnsembleSpec {
        let mut spec = match &self.scenario {
            Some(sj) => sj
                .scenario
                .ensemble()
                .expect("scenario lowering validated at parse")
                .expect("kind Ensemble implies a sweep"),
            None => EnsembleSpec::seed_sweep(self.config(), self.days, self.members),
        };
        spec.workers = self.workers;
        spec.ckpt_interval = self.ckpt_interval;
        spec
    }

    /// Canonical JSON form — what `spec.json` stores for restart
    /// recovery and what job listings embed. A scenario job stores the
    /// scenario source plus placement only: the content fields are
    /// derived, and re-deriving on re-parse keeps one source of truth.
    pub fn to_value(&self) -> Value {
        if let Some(sj) = &self.scenario {
            return Value::object([
                ("scenario".to_string(), Value::from(sj.src.as_str())),
                ("workers".to_string(), Value::from(self.workers)),
                ("tenant".to_string(), Value::from(self.tenant.as_str())),
                (
                    "priority".to_string(),
                    Value::from(f64::from(self.priority)),
                ),
                ("ckpt_interval".to_string(), Value::from(self.ckpt_interval)),
            ]);
        }
        Value::object([
            ("kind".to_string(), Value::from(self.kind.as_str())),
            ("preset".to_string(), Value::from(self.preset.as_str())),
            ("seed".to_string(), Value::from(self.seed)),
            ("days".to_string(), Value::from(self.days)),
            ("ranks".to_string(), Value::from(self.ranks)),
            ("members".to_string(), Value::from(self.members)),
            ("workers".to_string(), Value::from(self.workers)),
            ("tenant".to_string(), Value::from(self.tenant.as_str())),
            (
                "priority".to_string(),
                Value::from(f64::from(self.priority)),
            ),
            ("ckpt_interval".to_string(), Value::from(self.ckpt_interval)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_round_trip() {
        let spec = JobSpec::parse(r#"{"preset":"tiny","seed":7,"days":2}"#).unwrap();
        assert_eq!(spec.kind, JobKind::Run);
        assert_eq!(spec.tenant, "anonymous");
        let rt = JobSpec::parse(&spec.to_value().to_string_pretty()).unwrap();
        assert_eq!(rt.digest(), spec.digest());
        assert_eq!(rt.tenant, spec.tenant);
    }

    #[test]
    fn placement_fields_do_not_move_the_digest() {
        let a = JobSpec::parse(r#"{"seed":7,"days":2}"#).unwrap();
        let b = JobSpec::parse(
            r#"{"seed":7,"days":2,"tenant":"alice","priority":9,"workers":8,"ckpt_interval":2}"#,
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
        // Content fields do.
        let c = JobSpec::parse(r#"{"seed":8,"days":2}"#).unwrap();
        let d = JobSpec::parse(r#"{"seed":7,"days":3}"#).unwrap();
        let e = JobSpec::parse(r#"{"seed":7,"days":2,"kind":"ensemble"}"#).unwrap();
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn scenario_jobs_derive_content_and_get_distinct_digests() {
        let ramp = "[scenario]\nname = \"ramp\"\npreset = tiny\nseed = 7\ndays = 4\n\
                    [forcing.co2]\nkind = ramp\nfrom = 1.0\nto = 2.0\nstart_day = 0\nend_day = 4\n";
        let pulse = "[scenario]\nname = \"pulse\"\npreset = tiny\nseed = 7\ndays = 4\n\
                     [forcing.aerosol]\nkind = pulse\npeak = 0.1\nonset_day = 0\n\
                     rise_days = 1\ndecay_days = 2\n";
        let control = "[scenario]\nname = \"control\"\npreset = tiny\nseed = 7\ndays = 4\n";
        let body = |src: &str| {
            Value::object([("scenario".to_string(), Value::from(src))]).to_string_pretty()
        };
        let a = JobSpec::parse(&body(ramp)).unwrap();
        let b = JobSpec::parse(&body(pulse)).unwrap();
        let c = JobSpec::parse(&body(control)).unwrap();
        assert_eq!(a.kind, JobKind::Run);
        assert_eq!(a.preset, "tiny");
        assert_eq!(a.seed, 7);
        assert_eq!(a.days, 4.0);
        // The satellite regression: same base preset/seed/days, but the
        // scenarios' forcing content keeps every digest distinct.
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(b.digest(), c.digest());
        // spec.json round-trip re-derives identical content.
        let rt = JobSpec::parse(&a.to_value().to_string_pretty()).unwrap();
        assert_eq!(rt.digest(), a.digest());
        assert_eq!(
            rt.config().canonical_digest(),
            a.config().canonical_digest()
        );
    }

    #[test]
    fn sweep_scenarios_become_ensemble_jobs() {
        let sweep = "[scenario]\nname = \"sweep\"\ndays = 2\n\
                     [sweep]\naxis = solar_scale\nvalues = [0.99, 1.0, 1.01]\nworkers = 3\n";
        let body = Value::object([("scenario".to_string(), Value::from(sweep))]);
        let spec = JobSpec::parse(&body.to_string_pretty()).unwrap();
        assert_eq!(spec.kind, JobKind::Ensemble);
        assert_eq!(spec.members, 3);
        assert_eq!(spec.workers, 3);
        let es = spec.ensemble();
        assert_eq!(es.members.len(), 3);
        assert_eq!(
            es.member_config(&es.members[0]).atm.physics.rad.solar_scale,
            0.99
        );
    }

    #[test]
    fn scenario_jobs_reject_conflicts_and_bad_sources() {
        let body = Value::object([
            (
                "scenario".to_string(),
                Value::from("[scenario]\nname = \"x\"\n"),
            ),
            ("seed".to_string(), Value::from(9u64)),
        ]);
        let err = JobSpec::parse(&body.to_string_pretty()).unwrap_err();
        assert!(err.0.contains("seed"), "{err}");
        // Scenario diagnostics (with spans) surface through SpecError.
        let bad = Value::object([(
            "scenario".to_string(),
            Value::from("[scenario]\nname = \"x\"\ndayz = 1\n"),
        )]);
        let err = JobSpec::parse(&bad.to_string_pretty()).unwrap_err();
        assert!(err.0.contains("line 3"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(JobSpec::parse(r#"{"dayz":30}"#).is_err());
        assert!(JobSpec::parse(r#"{"days":0}"#).is_err());
        assert!(JobSpec::parse(r#"{"days":-1}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"sorcery"}"#).is_err());
        assert!(JobSpec::parse(r#"{"preset":"huge"}"#).is_err());
        assert!(JobSpec::parse(r#"{"seed":1.5}"#).is_err());
        assert!(JobSpec::parse("[]").is_err());
        assert!(JobSpec::parse("not json").is_err());
    }
}
