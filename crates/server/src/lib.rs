//! `foam-server` — FOAM as a service.
//!
//! A long-lived simulation server over the stack the previous layers
//! built: jobs run under [`foam::supervisor`] (so rank death and
//! checkpoint corruption self-heal mid-job), dispatch goes through a
//! multi-tenant [`FairShareQueue`], results are **content-addressed**
//! by [`JobSpec::digest`] and served byte-identically from an on-disk
//! [`ResultCache`], and the `foam-ckpt` [`CheckpointStore`] doubles as
//! the resumable-job backing store: a server that dies mid-job picks
//! the job back up from its newest snapshot on the next start and
//! converges to the *same report bits* an uninterrupted run produces.
//!
//! The transport is hand-rolled HTTP/1.1 over `TcpListener` + OS
//! threads (no async runtime — see [`http`]):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | Submit a [`JobSpec`]; returns the job (id = digest). Duplicate content single-flights. |
//! | `GET /v1/jobs` | List known jobs. |
//! | `GET /v1/jobs/<id>` | One job's state machine view. |
//! | `GET /v1/jobs/<id>/progress` | NDJSON stream: one line per coupling interval, then a final `event: done` line. |
//! | `GET /v1/jobs/<id>/report` | The deterministic report, verbatim cache bytes. |
//! | `POST /v1/jobs/<id>/cancel` | Cooperative cancel at the next interval boundary. |
//! | `GET /v1/healthz` | Liveness. |
//!
//! ```no_run
//! use foam_server::{Server, ServerConfig};
//!
//! let server = Server::start(
//!     ServerConfig::new("/var/lib/foam-server"),
//!     "127.0.0.1:0",
//! ).unwrap();
//! println!("serving on http://{}", server.addr());
//! # server.shutdown();
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use foam::{
    supervise_run_resumable, CheckpointStore, CkptConfig, SupervisedOutput, SupervisorConfig,
};
use foam_ensemble::FairShareQueue;
use foam_telemetry::json::Value;

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod spec;

pub use cache::ResultCache;
pub use job::{Job, JobState};
pub use spec::{JobKind, JobSpec, ScenarioJob, SpecError};

use http::{respond_bytes, respond_error, respond_json, NdjsonStream, Request};
use job::JobObserver;

/// Serving knobs. Everything a deployment tunes lives here; everything
/// a *job* means lives in [`JobSpec`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// State directory: `<root>/cache/` for completed reports,
    /// `<root>/jobs/job-<digest>/` for in-flight checkpoint stores.
    pub root: PathBuf,
    /// Concurrent job executors (each job itself runs an SPMD pool of
    /// rank threads, so keep this modest).
    pub workers: usize,
    /// Per-job recovery budget handed to [`foam::supervisor`].
    pub max_recoveries: u32,
    /// LRU byte budget for the result cache (`None` = unbounded).
    /// Recency is persisted on disk, so the budget is enforced across
    /// server restarts, not just within one incarnation.
    pub cache_budget_bytes: Option<u64>,
}

impl ServerConfig {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            root: root.into(),
            workers: 2,
            max_recoveries: 3,
            cache_budget_bytes: None,
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    jobs_dir: PathBuf,
    cache: ResultCache,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    queue: FairShareQueue<String>,
}

/// A running server: accept loop plus executor pool, all OS threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Boot: open the state directory, **resume any job a previous
    /// incarnation left unfinished** (a `job-*` root with a `spec.json`
    /// but no cache entry), garbage-collect roots whose results are
    /// already cached, bind `addr`, and start serving.
    pub fn start(cfg: ServerConfig, addr: &str) -> io::Result<Server> {
        let jobs_dir = cfg.root.join("jobs");
        fs::create_dir_all(&jobs_dir)?;
        let cache = ResultCache::open_with_budget(&cfg.root, cfg.cache_budget_bytes)?;
        let shared = Arc::new(Shared {
            jobs: Mutex::new(BTreeMap::new()),
            queue: FairShareQueue::new(),
            jobs_dir,
            cache,
            cfg,
        });
        recover_jobs(&shared)?;

        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some((tenant, digest)) = shared.queue.pop() {
                        execute_job(&shared, &digest);
                        shared.queue.complete(&tenant);
                    }
                })
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // One thread per connection; each closes after one
                    // response, so these are short-lived (except
                    // progress streams, which end with their job).
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                    });
                }
            })
        };

        Ok(Server {
            addr,
            shared,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving: close the queue, cooperatively cancel running
    /// jobs (they abort at the next interval boundary, leaving their
    /// checkpoints on disk), and join every thread. In-flight jobs are
    /// *not* lost — the next [`Server::start`] on the same root
    /// resumes them from their newest snapshot.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        self.shared.queue.close();
        {
            let jobs = self.shared.jobs.lock().expect("jobs lock poisoned");
            for job in jobs.values() {
                job.cancel();
            }
        }
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Release anyone still streaming a job that never got to run.
        let jobs = self.shared.jobs.lock().expect("jobs lock poisoned");
        for job in jobs.values() {
            if !job.state().is_terminal() {
                job.set_state(JobState::Failed("server shutdown".to_string()));
            }
        }
    }
}

/// Scan the jobs directory for roots a previous server left behind:
/// finished ones (already cached) are garbage-collected, unfinished
/// ones are re-queued so they resume from their newest snapshot.
fn recover_jobs(shared: &Shared) -> io::Result<()> {
    let roots = CheckpointStore::roots(&shared.jobs_dir)
        .map_err(|e| io::Error::other(format!("scanning job roots: {e}")))?;
    let mut finished: Vec<String> = Vec::new();
    for (name, path) in roots {
        if !name.starts_with("job-") {
            continue; // a member root of some ensemble job: owned by its job
        }
        let Ok(body) = fs::read_to_string(path.join("spec.json")) else {
            // No spec — nothing to resume from this root; treat as
            // finished debris.
            finished.push(name);
            continue;
        };
        let Ok(spec) = JobSpec::parse(&body) else {
            finished.push(name);
            continue;
        };
        let digest = spec.digest();
        if shared.cache.contains(&digest) {
            finished.push(name);
            continue;
        }
        // A crate-version change moves the digest; keep the checkpoint
        // store reachable under the new id.
        let expected = CheckpointStore::job_root(&shared.jobs_dir, &digest);
        if expected != path {
            let _ = fs::rename(&path, &expected);
        }
        let tenant = spec.tenant.clone();
        let priority = spec.priority;
        let job = Arc::new(Job::new(digest.clone(), spec, JobState::Queued));
        shared
            .jobs
            .lock()
            .expect("jobs lock poisoned")
            .insert(digest.clone(), Arc::clone(&job));
        shared.queue.submit(&tenant, priority, digest);
    }
    // Retention-driven GC: completed jobs' checkpoint roots are dead
    // weight (their content lives in the cache now).
    let _ =
        CheckpointStore::sweep_roots(&shared.jobs_dir, |name| !finished.iter().any(|f| f == name));
    Ok(())
}

/// Submit (or join, or serve from cache) one parsed spec. Returns the
/// job plus whether the caller got a cache hit.
fn submit(shared: &Shared, spec: JobSpec) -> (Arc<Job>, bool) {
    let digest = spec.digest();
    let mut jobs = shared.jobs.lock().expect("jobs lock poisoned");
    // Single-flight: the map is the synchronization point. Everyone
    // submitting this digest — before, during, or after execution —
    // lands on the same `Job`.
    if let Some(job) = jobs.get(&digest) {
        return (Arc::clone(job), job.state() == JobState::Done);
    }
    if shared.cache.contains(&digest) {
        // Cold hit: a previous incarnation computed this. Materialize a
        // done job so listings and progress behave uniformly.
        let job = Arc::new(Job::new(digest.clone(), spec, JobState::Done));
        jobs.insert(digest, Arc::clone(&job));
        return (job, true);
    }
    let job = Arc::new(Job::new(digest.clone(), spec, JobState::Queued));
    jobs.insert(digest.clone(), Arc::clone(&job));
    drop(jobs);
    // Persist the spec *before* queueing: from here on, a crashed
    // server rediscovers and resumes this job on restart.
    let root = CheckpointStore::job_root(&shared.jobs_dir, &digest);
    let _ = fs::create_dir_all(&root);
    let mut body = job.spec.to_value().to_string_pretty();
    body.push('\n');
    let tmp = root.join("spec.json.tmp");
    if fs::write(&tmp, &body).is_ok() {
        let _ = fs::rename(&tmp, root.join("spec.json"));
    }
    shared
        .queue
        .submit(&job.spec.tenant, job.spec.priority, digest);
    (job, false)
}

/// Run one job to completion (or failure) on the calling worker thread.
fn execute_job(shared: &Shared, digest: &str) {
    let job = {
        let jobs = shared.jobs.lock().expect("jobs lock poisoned");
        match jobs.get(digest) {
            Some(job) => Arc::clone(job),
            None => return,
        }
    };
    if job.cancelled() {
        job.set_state(JobState::Failed("cancelled".to_string()));
        return;
    }
    job.executions.fetch_add(1, Ordering::AcqRel);
    job.set_state(JobState::Running);
    let root = CheckpointStore::job_root(&shared.jobs_dir, digest);
    let _ = fs::create_dir_all(&root);

    let report = match job.spec.kind {
        JobKind::Run => run_job(shared, &job, &root),
        JobKind::Ensemble => ensemble_job(&job, &root),
    };
    match report {
        Ok(report) => {
            let mut bytes = report.to_string_pretty().into_bytes();
            bytes.push(b'\n');
            if let Err(e) = shared.cache.put(digest, &bytes) {
                job.set_state(JobState::Failed(format!("storing report: {e}")));
                return;
            }
            job.set_state(JobState::Done);
            // This job's checkpoints are now redundant with the cache.
            let gone = root.file_name().and_then(|n| n.to_str()).map(String::from);
            if let Some(gone) = gone {
                let _ = CheckpointStore::sweep_roots(&shared.jobs_dir, |name| name != gone);
            }
        }
        Err(why) => {
            let why = if job.cancelled() {
                "cancelled".to_string()
            } else {
                why
            };
            job.set_state(JobState::Failed(why));
        }
    }
}

/// Execute a `kind: run` job under the supervisor, resuming from any
/// snapshot a previous attempt (or previous server) committed.
fn run_job(shared: &Shared, job: &Job, root: &std::path::Path) -> Result<Value, String> {
    let mut cfg = job.spec.config();
    cfg.ckpt = CkptConfig::every(root, job.spec.ckpt_interval);
    cfg.telemetry.enabled = true;
    cfg.telemetry.path = Some(root.join("telemetry.json"));
    let sup = SupervisorConfig {
        max_recoveries: shared.cfg.max_recoveries,
        ..SupervisorConfig::default()
    };
    let obs = JobObserver { job };
    let out = supervise_run_resumable(&cfg, job.spec.days, &sup, Some(&obs))
        .map_err(|e| e.to_string())?;
    if let Some(from) = out.resumed_from {
        job.set_resumed_from(from);
    }
    Ok(run_report(&job.spec, &job.digest, &out))
}

/// Execute a `kind: ensemble` job. The ensemble runner owns its own
/// scheduling, retries, and member checkpoint stores (under this job's
/// root, so a restarted server retries unfinished members with their
/// snapshots available).
fn ensemble_job(job: &Job, root: &std::path::Path) -> Result<Value, String> {
    let mut spec = job.spec.ensemble();
    spec.output_dir = Some(root.to_path_buf());
    let out = foam_ensemble::run_ensemble(&spec).map_err(|e| e.to_string())?;
    Ok(Value::object([
        ("schema".to_string(), Value::from("foam-server/1")),
        ("id".to_string(), Value::from(job.digest.as_str())),
        ("kind".to_string(), Value::from("ensemble")),
        ("content".to_string(), content_value(&job.spec)),
        ("ensemble".to_string(), out.report.to_json()),
    ]))
}

/// The content half of a spec — the fields that feed the digest.
/// Reports embed *this*, never the full spec: a report must be
/// byte-identical no matter which tenant at which priority asked.
fn content_value(spec: &JobSpec) -> Value {
    Value::object([
        ("kind".to_string(), Value::from(spec.kind.as_str())),
        ("preset".to_string(), Value::from(spec.preset.as_str())),
        ("seed".to_string(), Value::from(spec.seed)),
        ("days".to_string(), Value::from(spec.days)),
        ("ranks".to_string(), Value::from(spec.ranks)),
        (
            "members".to_string(),
            Value::from(if spec.kind == JobKind::Ensemble {
                spec.members
            } else {
                0
            }),
        ),
    ])
}

/// The deterministic `foam-server/1` run report. Wall-clock numbers
/// (speedup, elapsed) are deliberately absent — every field is a pure
/// function of the content digest, which is what lets the cache serve
/// these bytes forever.
fn run_report(spec: &JobSpec, digest: &str, out: &SupervisedOutput) -> Value {
    let series = Value::Array(
        out.output
            .mean_sst_series
            .iter()
            .map(|v| Value::from(*v))
            .collect(),
    );
    Value::object([
        ("schema".to_string(), Value::from("foam-server/1")),
        ("id".to_string(), Value::from(digest)),
        ("kind".to_string(), Value::from("run")),
        ("content".to_string(), content_value(spec)),
        (
            "n_intervals".to_string(),
            Value::from(out.output.mean_sst_series.len()),
        ),
        ("mean_sst_series".to_string(), series),
        (
            "final_mean_sst".to_string(),
            Value::from(out.output.final_mean_sst().unwrap_or(f64::NAN)),
        ),
        (
            "ice_fraction".to_string(),
            Value::from(out.output.ice_fraction),
        ),
        ("recovery".to_string(), out.recovery.to_json()),
    ])
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    let req = match http::read_request(&mut stream) {
        Ok(req) => req,
        Err(e) => return respond_error(&mut stream, 400, &e.to_string()),
    };
    route(shared, &mut stream, &req)
}

fn route(shared: &Shared, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => respond_json(
            stream,
            200,
            &Value::object([("ok".to_string(), Value::Bool(true))]),
        ),
        ("POST", ["v1", "jobs"]) => {
            let body = String::from_utf8_lossy(&req.body);
            match JobSpec::parse(&body) {
                Ok(spec) => {
                    let (job, cached) = submit(shared, spec);
                    let mut v = match job.to_value() {
                        Value::Object(map) => map,
                        _ => unreachable!("job JSON is an object"),
                    };
                    v.insert("cached".to_string(), Value::Bool(cached));
                    respond_json(stream, 202, &Value::Object(v))
                }
                Err(e) => respond_error(stream, 400, &e.to_string()),
            }
        }
        ("GET", ["v1", "jobs"]) => {
            let jobs = shared.jobs.lock().expect("jobs lock poisoned");
            let list = Value::Array(jobs.values().map(|j| j.to_value()).collect());
            respond_json(stream, 200, &Value::object([("jobs".to_string(), list)]))
        }
        ("GET", ["v1", "jobs", id]) => match lookup(shared, id) {
            Some(job) => respond_json(stream, 200, &job.to_value()),
            None => respond_error(stream, 404, "no such job"),
        },
        ("POST", ["v1", "jobs", id, "cancel"]) => match lookup(shared, id) {
            Some(job) => {
                job.cancel();
                respond_json(
                    stream,
                    200,
                    &Value::object([
                        ("id".to_string(), Value::from(*id)),
                        ("cancelling".to_string(), Value::Bool(true)),
                    ]),
                )
            }
            None => respond_error(stream, 404, "no such job"),
        },
        ("GET", ["v1", "jobs", id, "report"]) => match shared.cache.get(id) {
            // Verbatim cache bytes: the byte-identity contract.
            Some(bytes) => respond_bytes(stream, 200, &bytes),
            None => match lookup(shared, id) {
                Some(job) => match job.state() {
                    JobState::Failed(why) => {
                        respond_error(stream, 409, &format!("job failed: {why}"))
                    }
                    _ => respond_error(stream, 404, "job not finished"),
                },
                None => respond_error(stream, 404, "no such job"),
            },
        },
        ("GET", ["v1", "jobs", id, "progress"]) => match lookup(shared, id) {
            Some(job) => stream_progress(stream, &job),
            None => respond_error(stream, 404, "no such job"),
        },
        _ => respond_error(stream, 404, "no such endpoint"),
    }
}

fn lookup(shared: &Shared, id: &str) -> Option<Arc<Job>> {
    shared
        .jobs
        .lock()
        .expect("jobs lock poisoned")
        .get(id)
        .cloned()
}

/// Stream a job's progress as NDJSON until it reaches a terminal
/// state, then a final `{"event": "done", ...}` line.
fn stream_progress(stream: &mut TcpStream, job: &Job) -> io::Result<()> {
    let mut out = NdjsonStream::begin(stream)?;
    let mut from = 0usize;
    loop {
        let (lines, state) = job.wait_progress(from);
        from += lines.len();
        for line in &lines {
            out.line(line)?;
        }
        if state.is_terminal() {
            let fin = Value::object([
                ("event".to_string(), Value::from("done")),
                ("state".to_string(), Value::from(state.as_str())),
                ("lines".to_string(), Value::from(from)),
            ]);
            out.line(&job::oneline(&fin))?;
            return out.finish();
        }
    }
}
