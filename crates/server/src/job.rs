//! In-memory job state: the submitted→queued→running→recovering→
//! done/failed machine, live progress fan-out, and the observer that
//! bridges a running simulation to its watchers.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use foam::{ProgressEvent, RecoveryEvent, RunObserver};
use foam_telemetry::json::Value;

use crate::spec::JobSpec;

/// Where a job is in its lifecycle. Linear except for the
/// running⇄recovering oscillation (each supervisor rollback enters
/// `Recovering`; the next completed interval returns to `Running`).
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted and persisted, not yet handed to the queue. (Jobs served
    /// straight from cache skip from here to `Done`.)
    Submitted,
    /// In the fair-share queue, waiting for a worker.
    Queued,
    /// A worker is integrating it.
    Running,
    /// The supervisor is rolling back to a snapshot after a fault.
    Recovering,
    /// Finished; the report is in the cache.
    Done,
    /// Gave up (unrecoverable fault, exhausted recovery budget, or
    /// cancellation). The detail string says why; checkpoints stay on
    /// disk, so a server restart retries the job from its newest
    /// snapshot.
    Failed(String),
}

impl JobState {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Recovering => "recovering",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed(_))
    }
}

struct Progress {
    state: JobState,
    /// NDJSON lines already emitted (each a serialized JSON object,
    /// no trailing newline). Streams replay these, then follow.
    lines: Vec<String>,
    /// Set when the first (possibly only) execution attempt resumed
    /// from a pre-existing snapshot — i.e. this server continued a job
    /// a previous incarnation left behind.
    resumed_from: Option<usize>,
}

/// One job the server knows about, shared between the HTTP threads,
/// the queue, and the executing worker.
pub struct Job {
    /// Content digest: job id and cache key.
    pub digest: String,
    pub spec: JobSpec,
    /// Times a worker actually integrated this job (0 when served
    /// entirely from cache; 1 under single-flight no matter how many
    /// clients submitted it).
    pub executions: AtomicUsize,
    /// Cooperative cancellation flag, polled once per coupling interval.
    cancel: AtomicBool,
    progress: Mutex<Progress>,
    changed: Condvar,
}

impl Job {
    pub fn new(digest: String, spec: JobSpec, state: JobState) -> Self {
        Job {
            digest,
            spec,
            executions: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            progress: Mutex::new(Progress {
                state,
                lines: Vec::new(),
                resumed_from: None,
            }),
            changed: Condvar::new(),
        }
    }

    pub fn state(&self) -> JobState {
        self.progress
            .lock()
            .expect("job lock poisoned")
            .state
            .clone()
    }

    pub fn set_state(&self, state: JobState) {
        let mut p = self.progress.lock().expect("job lock poisoned");
        // Terminal states are final: a late observer callback must not
        // resurrect a job already marked done or failed.
        if p.state.is_terminal() {
            return;
        }
        p.state = state;
        drop(p);
        self.changed.notify_all();
    }

    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    pub fn set_resumed_from(&self, interval: usize) {
        let mut p = self.progress.lock().expect("job lock poisoned");
        p.resumed_from = Some(interval);
    }

    pub fn resumed_from(&self) -> Option<usize> {
        self.progress
            .lock()
            .expect("job lock poisoned")
            .resumed_from
    }

    /// Append one NDJSON progress line and wake streamers.
    pub fn push_line(&self, line: String) {
        let mut p = self.progress.lock().expect("job lock poisoned");
        p.lines.push(line);
        drop(p);
        self.changed.notify_all();
    }

    /// Progress lines from index `from` on, plus the current state.
    /// Blocks until there is something newer than `from` or the job is
    /// terminal — the long-poll a streaming response is built from.
    pub fn wait_progress(&self, from: usize) -> (Vec<String>, JobState) {
        let mut p = self.progress.lock().expect("job lock poisoned");
        loop {
            if p.lines.len() > from || p.state.is_terminal() {
                return (p.lines[from.min(p.lines.len())..].to_vec(), p.state.clone());
            }
            p = self.changed.wait(p).expect("job lock poisoned");
        }
    }

    /// The job's public JSON shape (the `GET /v1/jobs/<id>` body).
    pub fn to_value(&self) -> Value {
        let p = self.progress.lock().expect("job lock poisoned");
        let mut fields = vec![
            ("id".to_string(), Value::from(self.digest.as_str())),
            ("kind".to_string(), Value::from(self.spec.kind.as_str())),
            ("tenant".to_string(), Value::from(self.spec.tenant.as_str())),
            ("state".to_string(), Value::from(p.state.as_str())),
            (
                "executions".to_string(),
                Value::from(self.executions.load(Ordering::Acquire)),
            ),
            ("progress_lines".to_string(), Value::from(p.lines.len())),
            ("spec".to_string(), self.spec.to_value()),
        ];
        if let JobState::Failed(why) = &p.state {
            fields.push(("detail".to_string(), Value::from(why.as_str())));
        }
        if let Some(from) = p.resumed_from {
            fields.push(("resumed_from_interval".to_string(), Value::from(from)));
        }
        Value::object(fields)
    }
}

/// The bridge from a running simulation (root rank callbacks) to the
/// job's watchers: progress lines, state flips, cancellation.
pub struct JobObserver<'a> {
    pub job: &'a Job,
}

impl RunObserver for JobObserver<'_> {
    fn on_interval(&self, ev: &ProgressEvent) {
        // A completed interval means any rollback has been replayed.
        self.job.set_state(JobState::Running);
        let line = Value::object([
            ("day".to_string(), Value::from(ev.day)),
            ("interval".to_string(), Value::from(ev.interval)),
            ("mean_sst".to_string(), Value::from(ev.mean_sst)),
            ("n_intervals".to_string(), Value::from(ev.n_intervals)),
        ]);
        self.job.push_line(oneline(&line));
    }

    fn should_stop(&self) -> bool {
        self.job.cancelled()
    }

    fn on_recovery(&self, ev: &RecoveryEvent) {
        self.job.set_state(JobState::Recovering);
        let line = Value::object([
            ("event".to_string(), Value::from("recovery")),
            ("fault".to_string(), Value::from(ev.fault.to_string())),
            (
                "replayed_intervals".to_string(),
                Value::from(ev.replayed_intervals),
            ),
        ]);
        self.job.push_line(oneline(&line));
    }
}

/// NDJSON needs one-object-per-line; `to_string_pretty` is multi-line
/// by design. Render compactly by collapsing the pretty form's
/// newlines — safe because the serializer escapes all control
/// characters inside strings.
pub(crate) fn oneline(v: &Value) -> String {
    let pretty = v.to_string_pretty();
    let mut out = String::with_capacity(pretty.len());
    for (i, line) in pretty.lines().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(line.trim_start());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn job() -> Job {
        let spec = JobSpec::parse(r#"{"seed":1,"days":1}"#).unwrap();
        Job::new(spec.digest(), spec, JobState::Submitted)
    }

    #[test]
    fn terminal_states_are_sticky() {
        let j = job();
        j.set_state(JobState::Running);
        assert_eq!(j.state(), JobState::Running);
        j.set_state(JobState::Failed("boom".to_string()));
        j.set_state(JobState::Running); // late callback: ignored
        assert_eq!(j.state(), JobState::Failed("boom".to_string()));
    }

    #[test]
    fn wait_progress_returns_new_lines_and_unblocks_on_terminal() {
        let j = std::sync::Arc::new(job());
        j.push_line("{\"day\": 0.25}".to_string());
        let (lines, _) = j.wait_progress(0);
        assert_eq!(lines, vec!["{\"day\": 0.25}".to_string()]);
        // A waiter past the end unblocks when the job finishes.
        let waiter = {
            let j = std::sync::Arc::clone(&j);
            std::thread::spawn(move || j.wait_progress(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        j.set_state(JobState::Done);
        let (lines, state) = waiter.join().unwrap();
        assert!(lines.is_empty());
        assert_eq!(state, JobState::Done);
    }

    #[test]
    fn oneline_json_is_single_line_and_parses_back() {
        let v = Value::object([
            ("day".to_string(), Value::from(0.25)),
            ("note".to_string(), Value::from("two\nlines")),
        ]);
        let line = oneline(&v);
        assert!(!line.contains('\n'));
        assert_eq!(foam_telemetry::json::parse(&line).unwrap(), v);
    }
}
