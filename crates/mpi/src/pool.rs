//! A thread-local recycling pool for `Vec<f64>` message payloads.
//!
//! The coupled hot loop exchanges same-shaped `Vec<f64>` payloads
//! (spectral reduction buffers, SST/forcing slabs) every interval.
//! Allocating a fresh vector per message churns the heap at a rate
//! proportional to simulated time — the dominant cost the century bench
//! counts. This pool lets send paths *recycle* payload capacity instead:
//! [`take`] hands back a previously freed buffer when one is available,
//! and receive paths return consumed payloads with [`put`].
//!
//! The pool is per-thread (each simulated rank is one OS thread, and
//! `Comm` itself is deliberately not `Send`), so no locking is involved.
//! Buffers flow freely between ranks — a payload taken from one rank's
//! pool is typically `put` back on the receiving rank — and each
//! thread's idle stash is capped (16 buffers), so a chatty rank cannot
//! hoard unbounded memory.
//!
//! See PERFORMANCE.md for the zero-churn rule this implements.

use std::cell::RefCell;

/// Maximum number of idle buffers retained per thread; beyond this,
/// [`put`] simply drops its argument. Bounds worst-case idle memory at
/// `CAP × largest payload` per rank.
const CAP: usize = 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Take a zero-filled buffer of exactly `len` elements, reusing pooled
/// capacity when possible (a fresh allocation only happens when the pool
/// is empty or the recycled buffer is too small).
///
/// ```
/// let a = foam_mpi::pool::take(8);
/// assert_eq!(a.len(), 8);
/// assert!(a.iter().all(|&x| x == 0.0));
/// foam_mpi::pool::put(a);
/// // The next take reuses the freed capacity instead of allocating.
/// let b = foam_mpi::pool::take(4);
/// assert_eq!(b.len(), 4);
/// assert!(b.capacity() >= 8);
/// ```
pub fn take(len: usize) -> Vec<f64> {
    let mut v = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v.resize(len, 0.0);
    v
}

/// Return a consumed payload buffer to the calling thread's pool so a
/// later [`take`] can reuse its capacity. Zero-capacity vectors and
/// buffers beyond the per-thread cap are simply dropped.
pub fn put(buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < CAP {
            p.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_sized_and_zeroed_even_after_dirty_put() {
        let mut a = take(4);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        put(a);
        let b = take(6);
        assert_eq!(b, vec![0.0; 6]);
        let c = take(2);
        assert_eq!(c, vec![0.0; 2]);
    }

    #[test]
    fn pool_is_capped() {
        for _ in 0..(2 * CAP) {
            put(vec![0.0; 8]);
        }
        let held = POOL.with(|p| p.borrow().len());
        assert!(held <= CAP, "pool held {held} > CAP {CAP}");
    }
}
