//! `foam-mpi` — a message-passing runtime standing in for MPI.
//!
//! The SC'97 FOAM paper runs its coupled climate model as an SPMD program
//! over MPI on IBM SP distributed-memory nodes. Rust has no mature MPI
//! bindings, so this crate provides the same programming model with one OS
//! thread per rank and channel-based communication:
//!
//! * tagged, typed point-to-point [`Comm::send`] / [`Comm::recv`] with
//!   MPI-style (source, tag) matching and out-of-order message stashing,
//! * the collectives FOAM needs: [`Comm::barrier`], [`Comm::bcast`],
//!   [`Comm::reduce`], [`Comm::allreduce`], [`Comm::gather`],
//!   [`Comm::allgather`], [`Comm::alltoallv`], [`Comm::scatter`],
//! * communicator splitting ([`Comm::split`]) so the atmosphere, ocean and
//!   coupler can each own a sub-communicator exactly as in the paper,
//! * built-in activity tracing ([`Comm::region`]) so the per-processor time
//!   allocation of the paper's Figure 2 can be regenerated: time blocked in
//!   `recv`/collectives is recorded as *wait* (idle) time.
//!
//! The communication *pattern* of the original — global sums for the
//! spectral transform, gather/scatter at the coupler boundary, idle time
//! from load imbalance — is preserved; only the transport differs.
//!
//! # Failure-aware runtime
//!
//! On top of the MPI model, the runtime is instrumented for debugging
//! coupled-model communication bugs:
//!
//! * **Deadlines instead of deadlocks** — [`Comm::recv_deadline`] and the
//!   job-wide default in [`RunConfig::deadline`] turn a mismatched tag
//!   from an infinite hang into a [`RecvTimeout`] (or a panic carrying
//!   the same diagnosis) that names the unmatched messages sitting in
//!   the mailbox.
//! * **Comm-lint at teardown** — every [`Universe`] run returns a
//!   [`CommLint`]: leaked (sent-but-never-received) messages by
//!   `(source, tag)`, per-tag send/receive imbalances, and ranks whose
//!   receives timed out. When a rank panics, the lint is printed to
//!   stderr before the panic propagates.
//! * **Deterministic fault injection** — a seeded [`FaultPlan`] drops,
//!   delays, or reorders selected point-to-point messages so recovery
//!   paths can be tested reproducibly ([`RunConfig::faults`]).
//! * **Per-rank comm statistics** — message/byte counters and wait-time
//!   histograms per tag ([`CommStats`]), carried on each
//!   [`RankTrace`], so trace tooling reports *what* ranks waited on.
//! * **Typed rank-death detection** — [`Universe::try_run_cfg`] returns a
//!   [`RankFailure`] naming the first rank that died instead of
//!   re-raising its panic; survivors blocked in receives are woken by a
//!   job-abort broadcast and parked (quiesced) so the job tears down
//!   promptly. Every rank ticks a [`HeartbeatBoard`] — beats piggyback
//!   on sends/receives, and blocked ranks emit idle beacons — so
//!   "waiting" and "dead" are distinguishable.
//! * **Payload recycling** — the per-thread [`pool`] recycles `Vec<f64>`
//!   message payloads, and [`Comm::allreduce_mut`] is an in-place,
//!   steady-state allocation-free reduction for hot-loop use (see
//!   PERFORMANCE.md).
//! * **Shared deterministic backoff** — [`Backoff`], the jitter-free
//!   exponential schedule reused by every retry loop in the workspace
//!   (driver SST retries, ensemble member retries, supervisor
//!   rollback-and-resume).
//!
//! # Example
//!
//! ```
//! use foam_mpi::Universe;
//!
//! let out = Universe::run(4, |comm| {
//!     // Each rank contributes its rank id; everyone learns the sum.
//!     let total = comm.allreduce_scalar(comm.rank() as f64, foam_mpi::ReduceOp::Sum);
//!     total as usize
//! });
//! assert_eq!(out.results, vec![6, 6, 6, 6]);
//! ```

mod backoff;
mod comm;
mod fault;
mod heartbeat;
pub mod pool;
mod stats;
mod trace;
mod universe;

pub use backoff::Backoff;
pub use comm::{Comm, Message, RecvTimeout, ReduceOp};
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use heartbeat::{HeartbeatBoard, RankState};
pub use stats::{
    tag_label, CommLint, CommStats, LeakedMessage, TagImbalance, TagStats, WaitHistogram,
};
pub use trace::{RankTrace, Segment, SegmentKind, TraceSummary};
pub use universe::{RankFailure, RunConfig, RunOutput, Universe};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe_runs() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
    }

    #[test]
    fn ranks_are_distinct_and_complete() {
        let out = Universe::run(8, |comm| comm.rank());
        let mut got = out.results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40]);
    }
}
