//! Per-rank activity tracing used to regenerate the paper's Figure 2
//! (time allocation across atmosphere / coupler / ocean / idle per
//! processor for one simulated day).

use std::time::Instant;

use crate::stats::CommStats;

/// What a rank was doing during a [`Segment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentKind {
    /// Useful work inside a named component region ("atmosphere",
    /// "coupler", "ocean", ...).
    Work(String),
    /// Blocked waiting for a message or inside a collective — the purple
    /// "idle" bars of the paper's Figure 2.
    Wait,
}

/// One contiguous activity interval on a rank, in seconds since the
/// universe epoch.
#[derive(Debug, Clone)]
pub struct Segment {
    pub kind: SegmentKind,
    pub start: f64,
    pub end: f64,
}

impl Segment {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The full activity record of one rank for one run.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    pub rank: usize,
    pub segments: Vec<Segment>,
    /// Per-tag communication counters accumulated over the run (always
    /// collected, even when segment tracing is off).
    pub stats: CommStats,
}

impl RankTrace {
    /// Total time recorded inside `Work` segments whose label equals
    /// `label`.
    pub fn work_time(&self, label: &str) -> f64 {
        self.segments
            .iter()
            .filter(|s| matches!(&s.kind, SegmentKind::Work(l) if l == label))
            .map(Segment::duration)
            .sum()
    }

    /// Total time recorded as waiting/idle.
    pub fn wait_time(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Wait)
            .map(Segment::duration)
            .sum()
    }

    /// Wall-clock span covered by the trace (first start to last end).
    pub fn span(&self) -> f64 {
        let start = self.segments.first().map_or(0.0, |s| s.start);
        let end = self.segments.iter().map(|s| s.end).fold(start, f64::max);
        end - start
    }

    /// Distinct work labels in first-appearance order.
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.segments {
            if let SegmentKind::Work(l) = &s.kind {
                if !out.iter().any(|x| x == l) {
                    out.push(l.clone());
                }
            }
        }
        out
    }

    /// Render this rank's timeline as a fixed-width ASCII bar over
    /// `[t0, t1]` using `width` character cells. Each work label is drawn
    /// with the first letter of its name; waits are drawn as `.` and
    /// unrecorded time as ` `.
    pub fn ascii_bar(&self, t0: f64, t1: f64, width: usize) -> String {
        let mut bar = vec![' '; width];
        let scale = width as f64 / (t1 - t0).max(1e-12);
        for s in &self.segments {
            let a = (((s.start - t0) * scale).floor().max(0.0)) as usize;
            let b = (((s.end - t0) * scale).ceil()) as usize;
            let ch = match &s.kind {
                SegmentKind::Work(l) => l.chars().next().unwrap_or('w').to_ascii_uppercase(),
                SegmentKind::Wait => '.',
            };
            for cell in bar.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = ch;
            }
        }
        bar.into_iter().collect()
    }
}

/// Aggregate percentages across a set of rank traces — the summary table
/// printed next to the Figure 2 Gantt chart.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// (label, total seconds) over all ranks, plus the special "wait" row.
    pub rows: Vec<(String, f64)>,
    pub total: f64,
}

impl TraceSummary {
    pub fn from_traces(traces: &[RankTrace]) -> Self {
        let mut rows: Vec<(String, f64)> = Vec::new();
        let mut total = 0.0;
        for t in traces {
            for s in &t.segments {
                let label = match &s.kind {
                    SegmentKind::Work(l) => l.clone(),
                    SegmentKind::Wait => "wait".to_string(),
                };
                total += s.duration();
                match rows.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, acc)) => *acc += s.duration(),
                    None => rows.push((label, s.duration())),
                }
            }
        }
        TraceSummary { rows, total }
    }

    /// Fraction of traced time spent under `label` (or "wait").
    pub fn fraction(&self, label: &str) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0.0, |(_, v)| v / self.total)
    }
}

/// Mutable trace recorder owned by a [`crate::Comm`].
#[derive(Debug)]
pub(crate) struct Tracer {
    epoch: Instant,
    enabled: bool,
    rank: usize,
    segments: Vec<Segment>,
    /// Nesting depth of open work regions; waits inside a region are still
    /// recorded as waits (they interrupt the region).
    region_stack: Vec<(String, f64)>,
}

impl Tracer {
    pub fn new(rank: usize, epoch: Instant) -> Self {
        Tracer {
            epoch,
            enabled: false,
            rank,
            segments: Vec::new(),
            region_stack: Vec::new(),
        }
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    pub fn open_region(&mut self, label: &str) {
        if self.enabled {
            let t = self.now();
            self.region_stack.push((label.to_string(), t));
        }
    }

    pub fn close_region(&mut self) {
        if self.enabled {
            if let Some((label, start)) = self.region_stack.pop() {
                let end = self.now();
                self.segments.push(Segment {
                    kind: SegmentKind::Work(label),
                    start,
                    end,
                });
            }
        }
    }

    /// Record a wait interval. Splits the innermost open region around the
    /// wait so work time excludes blocked time.
    pub fn record_wait(&mut self, start: f64, end: f64) {
        if self.enabled && end > start {
            // Close out the work accrued so far in the innermost region.
            if let Some((label, rstart)) = self.region_stack.last_mut() {
                if start > *rstart {
                    let seg = Segment {
                        kind: SegmentKind::Work(label.clone()),
                        start: *rstart,
                        end: start,
                    };
                    self.segments.push(seg);
                }
                *rstart = end;
            }
            self.segments.push(Segment {
                kind: SegmentKind::Wait,
                start,
                end,
            });
        }
    }

    pub fn take(&mut self) -> RankTrace {
        // Close any dangling regions so the trace is well formed.
        while !self.region_stack.is_empty() {
            self.close_region();
        }
        let mut segments = std::mem::take(&mut self.segments);
        segments.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        RankTrace {
            rank: self.rank,
            segments,
            stats: CommStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn seg(kind: SegmentKind, start: f64, end: f64) -> Segment {
        Segment { kind, start, end }
    }

    #[test]
    fn work_and_wait_accounting() {
        let t = RankTrace {
            rank: 0,
            segments: vec![
                seg(SegmentKind::Work("atm".into()), 0.0, 1.0),
                seg(SegmentKind::Wait, 1.0, 1.5),
                seg(SegmentKind::Work("ocean".into()), 1.5, 2.0),
                seg(SegmentKind::Work("atm".into()), 2.0, 3.0),
            ],
            ..Default::default()
        };
        assert!((t.work_time("atm") - 2.0).abs() < 1e-12);
        assert!((t.work_time("ocean") - 0.5).abs() < 1e-12);
        assert!((t.wait_time() - 0.5).abs() < 1e-12);
        assert!((t.span() - 3.0).abs() < 1e-12);
        assert_eq!(t.labels(), vec!["atm".to_string(), "ocean".to_string()]);
    }

    #[test]
    fn ascii_bar_renders_in_proportion() {
        let t = RankTrace {
            rank: 0,
            segments: vec![
                seg(SegmentKind::Work("atm".into()), 0.0, 5.0),
                seg(SegmentKind::Wait, 5.0, 10.0),
            ],
            ..Default::default()
        };
        let bar = t.ascii_bar(0.0, 10.0, 10);
        assert_eq!(bar.len(), 10);
        assert!(bar.starts_with("AAAA"));
        assert!(bar.ends_with("...."));
    }

    #[test]
    fn summary_fractions_sum_to_one() {
        let t = RankTrace {
            rank: 0,
            segments: vec![
                seg(SegmentKind::Work("atm".into()), 0.0, 3.0),
                seg(SegmentKind::Wait, 3.0, 4.0),
            ],
            ..Default::default()
        };
        let s = TraceSummary::from_traces(&[t]);
        let f = s.fraction("atm") + s.fraction("wait");
        assert!((f - 1.0).abs() < 1e-12);
        assert!((s.fraction("atm") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tracer_splits_region_around_wait() {
        let mut tr = Tracer::new(0, Instant::now());
        tr.set_enabled(true);
        tr.open_region("atm");
        let now = tr.now();
        tr.record_wait(now + 0.5, now + 1.0);
        tr.close_region();
        let trace = tr.take();
        // Expect: work [.., now+0.5], wait [now+0.5, now+1.0], work [now+1.0, ..]
        assert_eq!(trace.segments.len(), 3);
        assert!((trace.wait_time() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new(3, Instant::now());
        tr.open_region("x");
        tr.record_wait(0.0, 1.0);
        tr.close_region();
        let trace = tr.take();
        assert!(trace.segments.is_empty());
        assert_eq!(trace.rank, 3);
    }
}
