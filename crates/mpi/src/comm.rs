//! The communicator: tagged typed point-to-point messaging, collectives,
//! and communicator splitting, in the style of MPI.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};

use crate::trace::{RankTrace, Tracer};

/// Reduction operators supported by [`Comm::reduce`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// A message in flight. `src` is the *world* rank of the sender; matching
/// is on `(ctx, src, tag)`.
pub(crate) struct Envelope {
    ctx: u32,
    src: usize,
    tag: u32,
    payload: Box<dyn Any + Send>,
}

/// Internal tags live above this bound; user tags must stay below it.
const INTERNAL_TAG: u32 = 0x8000_0000;
const TAG_BARRIER_UP: u32 = INTERNAL_TAG;
const TAG_BARRIER_DOWN: u32 = INTERNAL_TAG + 1;
const TAG_BCAST: u32 = INTERNAL_TAG + 2;
const TAG_REDUCE: u32 = INTERNAL_TAG + 3;
const TAG_GATHER: u32 = INTERNAL_TAG + 4;
const TAG_SCATTER: u32 = INTERNAL_TAG + 5;
const TAG_ALLTOALL: u32 = INTERNAL_TAG + 6;
const TAG_SPLIT: u32 = INTERNAL_TAG + 7;

/// Per-thread endpoint shared by every communicator that lives on this
/// rank: the inbound channel, the stash of out-of-order messages, the
/// tracer, and the context-id allocator.
pub(crate) struct Endpoint {
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    pub(crate) tracer: Tracer,
    next_ctx: u32,
}

/// A communicator over a group of ranks.
///
/// Cheap to clone within a rank (shared endpoint). `Comm` is deliberately
/// *not* `Send`: like an `MPI_Comm`, it belongs to the rank that holds it.
pub struct Comm {
    endpoint: Rc<RefCell<Endpoint>>,
    senders: Arc<Vec<Sender<Envelope>>>,
    /// Context id distinguishing this communicator's traffic.
    ctx: u32,
    /// Map from communicator rank to world rank.
    group: Rc<Vec<usize>>,
    /// This process's rank within the group.
    rank: usize,
}

impl Comm {
    pub(crate) fn new_world(
        world_rank: usize,
        rx: Receiver<Envelope>,
        senders: Arc<Vec<Sender<Envelope>>>,
        epoch: Instant,
        tracing: bool,
    ) -> Self {
        let n = senders.len();
        let mut tracer = Tracer::new(world_rank, epoch);
        tracer.set_enabled(tracing);
        Comm {
            endpoint: Rc::new(RefCell::new(Endpoint {
                rx,
                pending: VecDeque::new(),
                tracer,
                next_ctx: 1,
            })),
            senders,
            ctx: 0,
            group: Rc::new((0..n).collect()),
            rank: world_rank,
        }
    }

    /// Rank of this process within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// World rank of this process.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.group[self.rank]
    }

    /// Translate a rank of this communicator into a world rank.
    #[inline]
    pub fn translate(&self, rank: usize) -> usize {
        self.group[rank]
    }

    /// Seconds since the universe epoch.
    pub fn now(&self) -> f64 {
        self.endpoint.borrow().tracer.now()
    }

    /// Enable or disable activity tracing on this rank.
    pub fn set_tracing(&self, on: bool) {
        self.endpoint.borrow_mut().tracer.set_enabled(on);
    }

    /// Run `f` inside a named work region (for Figure 2-style traces).
    /// Time spent blocked in `recv`/collectives inside the region is
    /// recorded as wait, not work.
    pub fn region<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        self.endpoint.borrow_mut().tracer.open_region(label);
        let out = f();
        self.endpoint.borrow_mut().tracer.close_region();
        out
    }

    /// Extract the trace recorded so far, resetting the recorder.
    pub fn take_trace(&self) -> RankTrace {
        self.endpoint.borrow_mut().tracer.take()
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send `value` to `dst` (a rank of this communicator) with `tag`.
    /// Non-blocking (buffered): like MPI's eager protocol.
    ///
    /// # Panics
    /// Panics if `tag` is in the internal range (>= 2^31) or `dst` is out
    /// of range.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        self.send_internal(dst, tag, value);
    }

    fn send_internal<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        let dst_world = self.group[dst];
        let env = Envelope {
            ctx: self.ctx,
            src: self.world_rank(),
            tag,
            payload: Box::new(value),
        };
        self.senders[dst_world]
            .send(env)
            .expect("peer rank endpoint dropped while sending");
    }

    /// Receive a `T` from rank `src` of this communicator with `tag`,
    /// blocking until it arrives. Messages between the same (ctx, src,
    /// tag) triple are delivered in send order.
    ///
    /// # Panics
    /// Panics if the matched message's payload is not a `T`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        self.recv_internal(src, tag)
    }

    fn recv_internal<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        let src_world = self.group[src];
        let mut ep = self.endpoint.borrow_mut();

        // Check the stash first.
        if let Some(pos) = ep
            .pending
            .iter()
            .position(|e| e.ctx == self.ctx && e.src == src_world && e.tag == tag)
        {
            let env = ep.pending.remove(pos).unwrap();
            return downcast(env);
        }

        // Drain the channel without blocking.
        loop {
            match ep.rx.try_recv() {
                Ok(env) => {
                    if env.ctx == self.ctx && env.src == src_world && env.tag == tag {
                        return downcast(env);
                    }
                    ep.pending.push_back(env);
                }
                Err(_) => break,
            }
        }

        // Block; account the blocked interval as wait time.
        let t0 = ep.tracer.now();
        loop {
            let env = ep
                .rx
                .recv()
                .expect("all senders dropped while this rank is still receiving");
            if env.ctx == self.ctx && env.src == src_world && env.tag == tag {
                let t1 = ep.tracer.now();
                ep.tracer.record_wait(t0, t1);
                return downcast(env);
            }
            ep.pending.push_back(env);
        }
    }

    /// Non-blocking probe: is a message from `src` with `tag` available?
    pub fn probe(&self, src: usize, tag: u32) -> bool {
        let src_world = self.group[src];
        let mut ep = self.endpoint.borrow_mut();
        while let Ok(env) = ep.rx.try_recv() {
            ep.pending.push_back(env);
        }
        ep.pending
            .iter()
            .any(|e| e.ctx == self.ctx && e.src == src_world && e.tag == tag)
    }

    // ------------------------------------------------------------------
    // Collectives (binomial trees; all ranks of the comm must call)
    // ------------------------------------------------------------------

    /// Block until every rank of this communicator has entered.
    /// Implemented as a binomial-tree fan-in to rank 0 followed by a
    /// tree broadcast release (O(log p) rounds).
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        // Fan-in to rank 0.
        let r = self.rank;
        let mut mask = 1usize;
        while mask < p {
            if r & mask != 0 {
                self.send_internal(r - mask, TAG_BARRIER_UP, ());
                break;
            }
            if r + mask < p {
                let () = self.recv_internal(r + mask, TAG_BARRIER_UP);
            }
            mask <<= 1;
        }
        // Release via the bcast tree.
        let _ = TAG_BARRIER_DOWN;
        let v = if r == 0 { Some(()) } else { None };
        self.bcast(0, v);
    }

    /// Broadcast from `root`. `value` must be `Some` on the root and is
    /// ignored elsewhere; every rank returns the root's value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let p = self.size();
        let vr = (self.rank + p - root) % p; // virtual rank, root -> 0
        let mut current: Option<T> = if vr == 0 {
            Some(value.expect("bcast root must supply a value"))
        } else {
            None
        };
        // Receive from virtual parent.
        if vr != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vr & mask != 0 {
                    let parent = ((vr - mask) + root) % p;
                    current = Some(self.recv_internal(parent, TAG_BCAST));
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to virtual children.
        let v = current.expect("bcast tree delivered no value");
        let mut mask = 1usize;
        while mask < p && vr & mask == 0 {
            mask <<= 1;
        }
        let mut child = mask >> 1;
        while child > 0 {
            if vr + child < p {
                let dst = (vr + child + root) % p;
                self.send_internal(dst, TAG_BCAST, v.clone());
            }
            child >>= 1;
        }
        v
    }

    /// Element-wise reduction of `data` to `root`. Returns `Some(result)`
    /// on the root and `None` elsewhere. All ranks must pass slices of the
    /// same length.
    pub fn reduce(&self, data: &[f64], op: ReduceOp, root: usize) -> Option<Vec<f64>> {
        let p = self.size();
        let vr = (self.rank + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = ((vr - mask) + root) % p;
                self.send_internal(parent, TAG_REDUCE, acc);
                return None;
            } else if vr + mask < p {
                let src = (vr + mask + root) % p;
                let other: Vec<f64> = self.recv_internal(src, TAG_REDUCE);
                assert_eq!(
                    other.len(),
                    acc.len(),
                    "reduce called with mismatched lengths"
                );
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    *a = op.apply(*a, *b);
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduction delivered to every rank.
    pub fn allreduce(&self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let r = self.reduce(data, op, 0);
        self.bcast(0, r)
    }

    /// Scalar convenience wrapper over [`Comm::allreduce`].
    pub fn allreduce_scalar(&self, x: f64, op: ReduceOp) -> f64 {
        self.allreduce(&[x], op)[0]
    }

    /// Gather one `T` from each rank to `root`, in rank order.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for r in 0..self.size() {
                if r != root {
                    out[r] = Some(self.recv_internal(r, TAG_GATHER));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_internal(root, TAG_GATHER, value);
            None
        }
    }

    /// Gather delivered to every rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let g = self.gather(value, 0);
        self.bcast(0, g)
    }

    /// Scatter one `T` to each rank from `root` (which supplies
    /// `Some(vec)` of length `size()`).
    pub fn scatter<T: Send + 'static>(&self, values: Option<Vec<T>>, root: usize) -> T {
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), self.size(), "scatter length != comm size");
            let mut mine: Option<T> = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    mine = Some(v);
                } else {
                    self.send_internal(r, TAG_SCATTER, v);
                }
            }
            mine.unwrap()
        } else {
            self.recv_internal(root, TAG_SCATTER)
        }
    }

    /// Variable all-to-all: rank `i` sends `sends[j]` to rank `j`; returns
    /// the vector received from each rank, in rank order.
    pub fn alltoallv(&self, sends: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(sends.len(), self.size(), "alltoallv length != comm size");
        for (j, buf) in sends.into_iter().enumerate() {
            if j == self.rank {
                // Deliver to self without touching the channel below.
                self.send_internal(j, TAG_ALLTOALL, buf);
            } else {
                self.send_internal(j, TAG_ALLTOALL, buf);
            }
        }
        (0..self.size())
            .map(|j| self.recv_internal::<Vec<f64>>(j, TAG_ALLTOALL))
            .collect()
    }

    // ------------------------------------------------------------------
    // Splitting
    // ------------------------------------------------------------------

    /// Partition this communicator by `color` (like `MPI_Comm_split`).
    /// Ranks passing the same non-negative color form a new communicator
    /// ordered by `(key, parent rank)`; a negative color returns `None`.
    /// All ranks of this communicator must call.
    pub fn split(&self, color: i64, key: i64) -> Option<Comm> {
        // Agree on a fresh context id: max of everyone's allocator, +1.
        let my_next = self.endpoint.borrow().next_ctx;
        let new_ctx = self.allreduce_scalar(my_next as f64, ReduceOp::Max) as u32;
        self.endpoint.borrow_mut().next_ctx = new_ctx + 1;

        // Share (color, key, world_rank) with everyone.
        let entries: Vec<(i64, i64, usize)> = {
            let mine = (color, key, self.world_rank());
            // allgather over parent ctx
            let g = self.gather(mine, 0);
            self.bcast(0, g)
        };
        // Explicit sync point so no one reuses TAG_SPLIT traffic across
        // overlapping splits on the same parent.
        let _ = TAG_SPLIT;

        if color < 0 {
            return None;
        }
        let mut members: Vec<(i64, usize, usize)> = entries
            .iter()
            .enumerate()
            .filter(|(_, (c, _, _))| *c == color)
            .map(|(parent_rank, (_, k, w))| (*k, parent_rank, *w))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|(_, _, w)| *w).collect();
        let my_world = self.world_rank();
        let rank = group
            .iter()
            .position(|&w| w == my_world)
            .expect("split member missing from its own group");
        Some(Comm {
            endpoint: Rc::clone(&self.endpoint),
            senders: Arc::clone(&self.senders),
            ctx: new_ctx,
            group: Rc::new(group),
            rank,
        })
    }

    /// Duplicate this communicator with a fresh context id (like
    /// `MPI_Comm_dup`): same group, isolated traffic.
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as i64)
            .expect("dup split cannot fail")
    }
}

fn downcast<T: Send + 'static>(env: Envelope) -> T {
    *env.payload.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "message type mismatch: received payload is not a {}",
            std::any::type_name::<T>()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn send_recv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn tag_matching_reorders_messages() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10i32);
                comm.send(1, 2, 20i32);
            } else {
                // Receive tag 2 first even though tag 1 was sent first.
                let b: i32 = comm.recv(0, 2);
                let a: i32 = comm.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn fifo_order_within_a_tag() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100i64 {
                    comm.send(1, 3, i);
                }
            } else {
                for i in 0..100i64 {
                    let got: i64 = comm.recv(0, 3);
                    assert_eq!(got, i);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1.5f64);
            } else {
                let _: i32 = comm.recv(0, 0);
            }
        });
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=9 {
            Universe::run(p, |comm| {
                for _ in 0..5 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in 1..=6 {
            Universe::run(p, move |comm| {
                for root in 0..p {
                    let v = if comm.rank() == root {
                        Some(vec![root as f64; 3])
                    } else {
                        None
                    };
                    let got = comm.bcast(root, v);
                    assert_eq!(got, vec![root as f64; 3]);
                }
            });
        }
    }

    #[test]
    fn reduce_sum_min_max() {
        Universe::run(7, |comm| {
            let x = comm.rank() as f64;
            let s = comm.allreduce_scalar(x, ReduceOp::Sum);
            let mn = comm.allreduce_scalar(x, ReduceOp::Min);
            let mx = comm.allreduce_scalar(x, ReduceOp::Max);
            assert_eq!(s, 21.0);
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 6.0);
        });
    }

    #[test]
    fn reduce_vector_to_nonzero_root() {
        Universe::run(5, |comm| {
            let data = vec![comm.rank() as f64, 1.0];
            let out = comm.reduce(&data, ReduceOp::Sum, 3);
            if comm.rank() == 3 {
                assert_eq!(out.unwrap(), vec![10.0, 5.0]);
            } else {
                assert!(out.is_none());
            }
        });
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order() {
        Universe::run(6, |comm| {
            let all = comm.allgather(comm.rank() * 2);
            assert_eq!(all, vec![0, 2, 4, 6, 8, 10]);
        });
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        Universe::run(4, |comm| {
            let vals = if comm.rank() == 0 {
                Some(vec![10, 11, 12, 13])
            } else {
                None
            };
            let mine = comm.scatter(vals, 0);
            assert_eq!(mine, 10 + comm.rank());
        });
    }

    #[test]
    fn alltoallv_exchanges_all_pairs() {
        Universe::run(4, |comm| {
            let sends: Vec<Vec<f64>> = (0..4)
                .map(|j| vec![(comm.rank() * 10 + j) as f64])
                .collect();
            let recvd = comm.alltoallv(sends);
            for (j, buf) in recvd.iter().enumerate() {
                assert_eq!(buf, &vec![(j * 10 + comm.rank()) as f64]);
            }
        });
    }

    #[test]
    fn split_into_even_odd_groups() {
        Universe::run(6, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color, comm.rank() as i64).unwrap();
            assert_eq!(sub.size(), 3);
            // Sum of ranks within each sub-comm is over world ranks with
            // the same parity.
            let s = sub.allreduce_scalar(comm.rank() as f64, ReduceOp::Sum);
            if color == 0 {
                assert_eq!(s, 0.0 + 2.0 + 4.0);
            } else {
                assert_eq!(s, 1.0 + 3.0 + 5.0);
            }
        });
    }

    #[test]
    fn split_with_negative_color_excludes() {
        Universe::run(4, |comm| {
            let color = if comm.rank() == 0 { -1 } else { 0 };
            let sub = comm.split(color, 0);
            if comm.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
                sub.barrier();
            }
        });
    }

    #[test]
    fn sub_comm_traffic_is_isolated_from_parent() {
        Universe::run(4, |comm| {
            let sub = comm.split(0, comm.rank() as i64).unwrap();
            if comm.rank() == 0 {
                comm.send(1, 5, 111i32);
                sub.send(1, 5, 222i32);
            } else if comm.rank() == 1 {
                // Receive in the opposite order: ctx separation must hold.
                let from_sub: i32 = sub.recv(0, 5);
                let from_parent: i32 = comm.recv(0, 5);
                assert_eq!(from_sub, 222);
                assert_eq!(from_parent, 111);
            }
        });
    }

    #[test]
    fn dup_isolates_traffic() {
        Universe::run(2, |comm| {
            let d = comm.dup();
            if comm.rank() == 0 {
                d.send(1, 9, 1u8);
                comm.send(1, 9, 2u8);
            } else {
                let b: u8 = comm.recv(0, 9);
                let a: u8 = d.recv(0, 9);
                assert_eq!((a, b), (1, 2));
            }
        });
    }

    #[test]
    fn split_key_reorders_ranks() {
        Universe::run(4, |comm| {
            // Reverse order via descending keys.
            let sub = comm.split(0, -(comm.rank() as i64)).unwrap();
            assert_eq!(sub.rank(), 3 - comm.rank());
            assert_eq!(sub.translate(sub.rank()), comm.rank());
        });
    }

    #[test]
    fn probe_sees_pending_message() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 5i32);
                comm.barrier();
            } else {
                comm.barrier();
                assert!(comm.probe(0, 4));
                assert!(!comm.probe(0, 99));
                let _: i32 = comm.recv(0, 4);
            }
        });
    }

    #[test]
    fn wait_time_is_recorded_when_tracing() {
        let out = Universe::run_traced(2, true, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                comm.send(1, 0, ());
            } else {
                comm.region("work", || {
                    let () = comm.recv(0, 0);
                });
            }
        });
        let t1 = &out.traces[1];
        assert!(
            t1.wait_time() > 0.01,
            "expected blocked recv to record wait, got {:?}",
            t1
        );
    }
}
